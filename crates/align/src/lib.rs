//! # align — pairwise, profile and progressive multiple sequence alignment
//!
//! This crate reimplements, from the published descriptions, the sequential
//! MSA machinery that Sample-Align-D runs inside every processor:
//!
//! * [`dp`] — **the** Gotoh kernel: one banded, arena-backed affine-gap
//!   DP, generic over a column scorer, shared by every alignment path in
//!   the crate (see [`dp::BandPolicy`] and [`dp::DpArena`]);
//! * [`pairwise`] — global alignment with affine gaps (Gotoh), semiglobal
//!   overlap alignment, and local alignment (Smith–Waterman), with full
//!   tracebacks;
//! * [`profile`] — weighted profile columns (sparse PSSMs) and the
//!   profile–profile substitution score (PSP);
//! * [`papro`] — profile–profile alignment: affine-gap DP over columns that
//!   merges two sub-alignments into one;
//! * [`distance`] — k-mer and Kimura-corrected %-identity distance
//!   matrices;
//! * [`progressive`] — progressive alignment along a guide tree;
//! * [`refine`] — MUSCLE-style tree-bipartition iterative refinement;
//! * [`consensus`] — consensus/“ancestor” extraction from an alignment
//!   (the local/global ancestors of the paper);
//! * [`trim`] — MaxAlign-style alignment-area optimization: bit-packed
//!   gap masks, greedy sequence exclusion with synergy lookahead and an
//!   optional bounded branch-and-bound refinement;
//! * [`anchor`] — conserved-anchor detection by colinear k-mer chaining,
//!   the substrate of vertical (length-wise) domain decomposition and of
//!   anchor-seeded profile merges;
//! * [`engine`] — the [`MsaEngine`] trait plus two full
//!   systems: [`muscle::MuscleLite`] (k-mer distance → UPGMA → progressive →
//!   optional re-estimation and refinement; a faithful skeleton of MUSCLE
//!   3.x) and [`clustal::ClustalLite`] (identity distance → neighbor
//!   joining → weighted progressive; the CLUSTALW shape).
//!
//! Every kernel reports [`bioseq::Work`] so the virtual cluster can convert
//! compute into deterministic virtual time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anchor;
pub mod clustal;
pub mod consensus;
pub mod distance;
pub mod dp;
pub mod engine;
pub mod muscle;
pub mod pairwise;
pub mod papro;
pub mod profile;
pub mod progressive;
pub mod refine;
pub mod trim;

pub use anchor::{Anchor, AnchorSpec};
pub use clustal::ClustalLite;
pub use dp::{BandPolicy, DpArena, DpKernel};
pub use engine::{EngineChoice, MsaEngine};
pub use muscle::MuscleLite;
pub use profile::Profile;
pub use trim::{trim_msa, TrimConfig, TrimOutcome};
