//! Section 3, executable — empirical scaling exponents of every pipeline
//! phase against the paper's asymptotic cost table.
//!
//! The paper derives per-step costs (`w²L` rank, `w log w` sort, `w⁴+wL²`
//! alignment, `O(p²L + p log p + (N/p)L + L log p)` communication). This
//! bench sweeps N at fixed p over prefix workloads and fits `t ∝ N^e`
//! per phase, printing predicted-vs-measured exponents.

use criterion::{criterion_group, criterion_main, Criterion};
use sad_bench::{banner, paper_scale, rose_workload, table};
use sad_core::audit::{fit_exponent, phase_exponent, sweep_n};
use sad_core::{Phase, SadConfig};
use vcluster::CostModel;

fn experiment() {
    let sizes: Vec<usize> =
        if paper_scale() { vec![500, 1000, 2000, 4000] } else { vec![128, 256, 512] };
    let p = 4;
    banner(
        "Section 3 audit",
        &format!("per-phase scaling exponents in N at p={p}, N in {sizes:?}"),
    );
    // Prefix workloads of one fixed family so only the size varies.
    let full = rose_workload(*sizes.last().unwrap(), 0xC057);
    let points = sweep_n(&sizes, p, &SadConfig::default(), CostModel::beowulf_2008(), |n| {
        full[..n].to_vec()
    });

    // (phase, paper's dominant term at fixed p and L, predicted exponent)
    let expectations = [
        (Phase::LocalKmerRank, "w^2 L", 2.0),
        (Phase::LocalSort, "w log w", 1.0),
        (Phase::SampleExchange, "p^2 L (const in N)", 0.0),
        (Phase::GlobalizedRank, "w k p L", 1.0),
        (Phase::Redistribute, "(N/p) L", 1.0),
        (Phase::LocalAlign, "w^2 L + w L^2", 1.5),
        (Phase::LocalAncestor, "w (profile cols)", 0.5),
        (Phase::GlobalAncestor, "p^4 + p L^2 (const in N)", 0.0),
        (Phase::FineTune, "w L^2 / w? (profile vs GA)", 0.5),
        (Phase::Glue, "N L / p", 1.0),
    ];
    let mut rows = Vec::new();
    for (phase, term, predicted) in expectations {
        let measured = phase_exponent(&points, phase);
        rows.push(vec![
            phase.name().to_string(),
            term.to_string(),
            format!("{predicted:.1}"),
            measured.map_or("n/a".into(), |e| format!("{e:.2}")),
        ]);
    }
    table(&["phase", "paper term", "predicted e", "measured e"], &rows);

    // Communication: total bytes should grow ~linearly in N (redistribution
    // dominates the wire).
    let bytes: Vec<(f64, f64)> = points.iter().map(|pt| (pt.n as f64, pt.bytes as f64)).collect();
    let eb = fit_exponent(&bytes).unwrap_or(f64::NAN);
    println!("\ntotal wire bytes exponent in N: {eb:.2} (predicted ~1.0)");

    // Headline checks: the two quadratic-ish compute phases and the
    // near-constant collective phases.
    let rank_e = phase_exponent(&points, Phase::LocalKmerRank).unwrap_or(f64::NAN);
    let align_e = phase_exponent(&points, Phase::LocalAlign).unwrap_or(f64::NAN);
    let sample_e = phase_exponent(&points, Phase::SampleExchange).unwrap_or(f64::NAN);
    println!(
        "check — rank phase quadratic (e in 1.5..2.5): {}",
        if (1.5..=2.5).contains(&rank_e) { "HOLDS" } else { "does not hold" }
    );
    println!(
        "check — align phase superlinear (e > 1.1): {}",
        if align_e > 1.1 {
            "HOLDS"
        } else {
            "does not hold (scaled sizes favour the linear wL^2 term)"
        }
    );
    println!(
        "check — sample exchange ~independent of N (e < 0.5): {}",
        if sample_e.abs() < 0.5 { "HOLDS" } else { "does not hold" }
    );
}

fn bench(c: &mut Criterion) {
    experiment();
    let full = rose_workload(96, 0xC058);
    c.bench_function("complexity/sweep_3_points_p2", |b| {
        b.iter(|| {
            sweep_n(&[24, 48, 96], 2, &SadConfig::default(), CostModel::beowulf_2008(), |n| {
                full[..n].to_vec()
            })
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
