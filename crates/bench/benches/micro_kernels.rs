//! Micro-benchmarks of the hot kernels (real wall-clock criterion
//! measurements, unlike the figure benches which report virtual time).

use align::pairwise::global_align;
use align::papro::align_and_merge;
use bioseq::{CompressedAlphabet, GapPenalties, KmerProfile, Msa, SubstMatrix, Work};
use criterion::{criterion_group, criterion_main, Criterion};
use sad_bench::rose_workload;

fn bench(c: &mut Criterion) {
    let seqs = rose_workload(64, 0x111);
    let matrix = SubstMatrix::blosum62();
    let gaps = GapPenalties::default();

    // k-mer profile construction + similarity, L ≈ 300.
    let pa = KmerProfile::build(&seqs[0], 6, CompressedAlphabet::Dayhoff6).unwrap();
    let pb = KmerProfile::build(&seqs[1], 6, CompressedAlphabet::Dayhoff6).unwrap();
    c.bench_function("kernel/kmer_profile_build_L300", |b| {
        b.iter(|| {
            KmerProfile::build(std::hint::black_box(&seqs[0]), 6, CompressedAlphabet::Dayhoff6)
        })
    });
    c.bench_function("kernel/kmer_similarity_L300", |b| {
        b.iter(|| std::hint::black_box(&pa).similarity(&pb))
    });

    // Gotoh pairwise alignment, 300×300.
    c.bench_function("kernel/gotoh_global_300x300", |b| {
        b.iter(|| global_align(std::hint::black_box(&seqs[0]), &seqs[1], &matrix, gaps))
    });

    // Profile–profile alignment of two 8-sequence sub-alignments.
    let engine = align::MuscleLite::fast();
    let msa_a = engine.align(&seqs[..8]);
    let msa_b = engine.align(&seqs[8..16]);
    c.bench_function("kernel/profile_align_8x8_L300", |b| {
        b.iter(|| {
            let mut w = Work::ZERO;
            align_and_merge(std::hint::black_box(&msa_a), &msa_b, &matrix, gaps, &mut w)
        })
    });

    // Consensus extraction.
    let merged: Msa = engine.align(&seqs[..16]);
    c.bench_function("kernel/consensus_16xL", |b| {
        b.iter(|| {
            let mut w = Work::ZERO;
            align::consensus::consensus_sequence(std::hint::black_box(&merged), "anc", &mut w)
        })
    });

    // Shared-memory sample sort of 10k keys.
    let keys: Vec<f64> =
        (0..10_000).map(|i| ((i * 2654435761u64 as usize) % 100_000) as f64).collect();
    c.bench_function("kernel/sample_sort_10k_p8", |b| {
        b.iter(|| psrs::shared::sample_sort_by(std::hint::black_box(keys.clone()), 8, |&x| x))
    });

    // Full MUSCLE-lite on a 32-sequence family (the per-bucket unit of
    // work at N=512, p=16).
    let bucket = &seqs[..32];
    c.bench_function("kernel/muscle_lite_fast_32xL300", |b| {
        b.iter(|| align::MuscleLite::fast().align(std::hint::black_box(bucket)))
    });
}

use align::MsaEngine;

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
