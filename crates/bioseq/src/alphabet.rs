//! Amino-acid alphabets.
//!
//! Residues are stored as `u8` codes in the canonical MUSCLE/BLAST order
//! `A R N D C Q E G H I L K M F P S T W Y V` (codes `0..=19`). Two extra
//! codes exist: [`X_CODE`] (`20`) for unknown/ambiguous residues and
//! [`GAP_CODE`] (`21`) for gap characters inside alignments.
//!
//! The k-mer machinery of Edgar (2004) counts k-mers over *compressed*
//! alphabets that merge chemically similar residues; [`CompressedAlphabet`]
//! provides the published groupings (Dayhoff-6, the Murphy reductions, and
//! the SE-B(14) alphabet) plus the identity mapping.

use serde::{Deserialize, Serialize};

/// Number of canonical amino acids.
pub const AA_COUNT: usize = 20;
/// Code for an unknown/ambiguous residue (`X`).
pub const X_CODE: u8 = 20;
/// Code for a gap character (`-`) inside alignments.
pub const GAP_CODE: u8 = 21;
/// Total number of codes a sequence position may hold (residues + X).
pub const CODE_COUNT: usize = 21;

/// Canonical residue letters, indexed by code.
pub const LETTERS: [u8; 21] = [
    b'A', b'R', b'N', b'D', b'C', b'Q', b'E', b'G', b'H', b'I', b'L', b'K', b'M', b'F', b'P', b'S',
    b'T', b'W', b'Y', b'V', b'X',
];

/// Convert a residue code (including [`X_CODE`] and [`GAP_CODE`]) to its
/// ASCII letter.
#[inline]
pub fn code_to_char(code: u8) -> char {
    if code == GAP_CODE {
        '-'
    } else {
        LETTERS[code as usize] as char
    }
}

/// Convert an ASCII letter to a residue code.
///
/// Ambiguity codes are resolved to their most common interpretation
/// (`B → D`, `Z → E`, `J → L`, `U → C`, `O → K`); any other unknown letter
/// maps to [`X_CODE`]. `-` and `.` map to [`GAP_CODE`]. Returns `None` for
/// characters that are not plausibly part of a protein sequence.
#[inline]
pub fn char_to_code(c: char) -> Option<u8> {
    let up = c.to_ascii_uppercase();
    Some(match up {
        'A' => 0,
        'R' => 1,
        'N' => 2,
        'D' => 3,
        'C' => 4,
        'Q' => 5,
        'E' => 6,
        'G' => 7,
        'H' => 8,
        'I' => 9,
        'L' => 10,
        'K' => 11,
        'M' => 12,
        'F' => 13,
        'P' => 14,
        'S' => 15,
        'T' => 16,
        'W' => 17,
        'Y' => 18,
        'V' => 19,
        'B' => 3,  // Asx -> D
        'Z' => 6,  // Glx -> E
        'J' => 10, // Xle -> L
        'U' => 4,  // Sec -> C
        'O' => 11, // Pyl -> K
        'X' => X_CODE,
        '-' | '.' => GAP_CODE,
        _ => return None,
    })
}

/// A residue alphabet: a mapping from the 21 sequence codes onto a smaller
/// symbol set used for k-mer counting.
pub trait Alphabet {
    /// Number of symbols in the target alphabet.
    fn size(&self) -> usize;
    /// Map a residue code (`0..=20`) to a symbol in `0..size()`.
    fn map(&self, code: u8) -> u8;
    /// Human-readable name.
    fn name(&self) -> &'static str;
}

/// The published compressed amino-acid alphabets used for fast k-mer
/// counting (Edgar 2004; Murphy, Wallqvist & Levy 2000).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompressedAlphabet {
    /// Identity mapping: all 20 residues kept distinct (plus X).
    Identity,
    /// Dayhoff's six chemical groups: `AGPST / C / DENQ / FWY / HKR / ILMV`.
    /// This is the default alphabet for the k-mer rank, matching MUSCLE's
    /// `kmer6_6` distance.
    Dayhoff6,
    /// Murphy 10-letter reduction: `LVIM / C / A / G / ST / P / FYW / EDNQ / KR / H`.
    Murphy10,
    /// Murphy 8-letter reduction: `LVIMC / AG / ST / P / FYW / EDNQ / KR / H`.
    Murphy8,
    /// Murphy 4-letter reduction: `LVIMC / AGSTP / FYW / EDNQKRH`.
    Murphy4,
    /// Edgar's SE-B(14): `A / C / D / EQ / FY / G / H / IV / KR / LM / N / P / ST / W`.
    SeB14,
}

impl CompressedAlphabet {
    /// The mapping table for this alphabet: `table[code] = symbol` for
    /// `code` in `0..=20`. `X` always maps to its own extra symbol so that
    /// unknown residues never spuriously match.
    pub fn table(self) -> [u8; CODE_COUNT] {
        // Group strings in canonical letter space; each group index is the
        // compressed symbol.
        let groups: &[&str] = match self {
            CompressedAlphabet::Identity => &[
                "A", "R", "N", "D", "C", "Q", "E", "G", "H", "I", "L", "K", "M", "F", "P", "S",
                "T", "W", "Y", "V",
            ],
            CompressedAlphabet::Dayhoff6 => &["AGPST", "C", "DENQ", "FWY", "HKR", "ILMV"],
            CompressedAlphabet::Murphy10 => {
                &["LVIM", "C", "A", "G", "ST", "P", "FYW", "EDNQ", "KR", "H"]
            }
            CompressedAlphabet::Murphy8 => &["LVIMC", "AG", "ST", "P", "FYW", "EDNQ", "KR", "H"],
            CompressedAlphabet::Murphy4 => &["LVIMC", "AGSTP", "FYW", "EDNQKRH"],
            CompressedAlphabet::SeB14 => {
                &["A", "C", "D", "EQ", "FY", "G", "H", "IV", "KR", "LM", "N", "P", "ST", "W"]
            }
        };
        let mut table = [0u8; CODE_COUNT];
        for (symbol, group) in groups.iter().enumerate() {
            for ch in group.chars() {
                let code = char_to_code(ch).expect("group letters are canonical");
                table[code as usize] = symbol as u8;
            }
        }
        // X gets a dedicated symbol after all groups.
        table[X_CODE as usize] = groups.len() as u8;
        table
    }

    /// Number of symbols (including the dedicated `X` symbol).
    pub fn symbol_count(self) -> usize {
        (match self {
            CompressedAlphabet::Identity => 20,
            CompressedAlphabet::Dayhoff6 => 6,
            CompressedAlphabet::Murphy10 => 10,
            CompressedAlphabet::Murphy8 => 8,
            CompressedAlphabet::Murphy4 => 4,
            CompressedAlphabet::SeB14 => 14,
        }) + 1
    }
}

impl Alphabet for CompressedAlphabet {
    fn size(&self) -> usize {
        self.symbol_count()
    }

    fn map(&self, code: u8) -> u8 {
        debug_assert!(code <= X_CODE, "cannot map gap codes through an alphabet");
        self.table()[code as usize]
    }

    fn name(&self) -> &'static str {
        match self {
            CompressedAlphabet::Identity => "identity20",
            CompressedAlphabet::Dayhoff6 => "dayhoff6",
            CompressedAlphabet::Murphy10 => "murphy10",
            CompressedAlphabet::Murphy8 => "murphy8",
            CompressedAlphabet::Murphy4 => "murphy4",
            CompressedAlphabet::SeB14 => "se-b14",
        }
    }
}

/// All published alphabets, for sweeps/ablations.
pub const ALL_ALPHABETS: [CompressedAlphabet; 6] = [
    CompressedAlphabet::Identity,
    CompressedAlphabet::Dayhoff6,
    CompressedAlphabet::Murphy10,
    CompressedAlphabet::Murphy8,
    CompressedAlphabet::Murphy4,
    CompressedAlphabet::SeB14,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_canonical_letters() {
        for code in 0u8..20 {
            let c = code_to_char(code);
            assert_eq!(char_to_code(c), Some(code), "letter {c}");
        }
    }

    #[test]
    fn gap_and_x_round_trip() {
        assert_eq!(char_to_code('-'), Some(GAP_CODE));
        assert_eq!(char_to_code('.'), Some(GAP_CODE));
        assert_eq!(code_to_char(GAP_CODE), '-');
        assert_eq!(char_to_code('X'), Some(X_CODE));
        assert_eq!(code_to_char(X_CODE), 'X');
    }

    #[test]
    fn lowercase_accepted() {
        assert_eq!(char_to_code('a'), Some(0));
        assert_eq!(char_to_code('v'), Some(19));
    }

    #[test]
    fn ambiguity_codes_resolve() {
        assert_eq!(char_to_code('B'), char_to_code('D'));
        assert_eq!(char_to_code('Z'), char_to_code('E'));
        assert_eq!(char_to_code('J'), char_to_code('L'));
        assert_eq!(char_to_code('U'), char_to_code('C'));
        assert_eq!(char_to_code('O'), char_to_code('K'));
    }

    #[test]
    fn junk_rejected() {
        assert_eq!(char_to_code('1'), None);
        assert_eq!(char_to_code('*'), None);
        assert_eq!(char_to_code(' '), None);
    }

    #[test]
    fn every_alphabet_covers_all_residues() {
        for alpha in ALL_ALPHABETS {
            let table = alpha.table();
            let n = alpha.symbol_count();
            for code in 0..=X_CODE {
                assert!(
                    (table[code as usize] as usize) < n,
                    "{:?} leaves code {code} out of range",
                    alpha
                );
            }
            // Every symbol except possibly X's must actually be used.
            let mut used = vec![false; n];
            for code in 0..=X_CODE {
                used[table[code as usize] as usize] = true;
            }
            assert!(used.iter().all(|&u| u), "{alpha:?} has unused symbols");
        }
    }

    #[test]
    fn x_never_shares_a_symbol() {
        for alpha in ALL_ALPHABETS {
            let table = alpha.table();
            let x_sym = table[X_CODE as usize];
            for code in 0..20u8 {
                assert_ne!(table[code as usize], x_sym, "{alpha:?} merges X with {code}");
            }
        }
    }

    #[test]
    fn dayhoff_groups_match_publication() {
        let t = CompressedAlphabet::Dayhoff6.table();
        // A,G,P,S,T together
        let g = t[char_to_code('A').unwrap() as usize];
        for c in "GPST".chars() {
            assert_eq!(t[char_to_code(c).unwrap() as usize], g);
        }
        // C alone
        let c_sym = t[char_to_code('C').unwrap() as usize];
        for code in 0..20u8 {
            if code != char_to_code('C').unwrap() {
                assert_ne!(t[code as usize], c_sym);
            }
        }
    }

    #[test]
    fn identity_is_injective() {
        let t = CompressedAlphabet::Identity.table();
        let mut seen = std::collections::HashSet::new();
        for code in 0..20u8 {
            assert!(seen.insert(t[code as usize]));
        }
    }
}
