//! The distributed PSRS protocol over a virtual cluster node.

use crate::sampling::{bucket_of, regular_samples, select_pivots, sort_work};
use bioseq::Work;
use vcluster::{Node, WireSize};

/// Result of a distributed PSRS round on one rank.
#[derive(Debug, Clone)]
pub struct PsrsOutcome<T> {
    /// This rank's final bucket, sorted by key. Concatenating buckets over
    /// ranks in rank order yields the globally sorted sequence.
    pub items: Vec<T>,
    /// The pivots every rank agreed on (`p − 1` of them).
    pub pivots: Vec<f64>,
    /// How many items this rank received from each source rank.
    pub received_from: Vec<usize>,
    /// Sorting work this rank charged to its clock during the round, so
    /// callers can attribute it to their own phase accounting.
    pub work: Work,
}

/// Sort `local` across all ranks by `key` using Parallel Sorting by Regular
/// Sampling. Every rank calls this with its share of the data; rank `i`
/// returns the `i`-th bucket of the global order.
///
/// Sorting comparisons are charged to the node's virtual clock as
/// `sort_ops`; communication is charged by the node's cost model.
pub fn psrs<T, F>(node: &Node, mut local: Vec<T>, key: F) -> PsrsOutcome<T>
where
    T: WireSize + Send + 'static,
    F: Fn(&T) -> f64,
{
    let p = node.size();
    let mut work = Work::ZERO;
    // Step 1: local sort.
    local.sort_by(|a, b| key(a).total_cmp(&key(b)));
    work += charge_sort(node, local.len());

    // Step 2: regular sampling of p−1 keys, gathered at root 0. Only the
    // *keys* travel (the paper: "send only their ranks to a root
    // processor").
    let keys: Vec<f64> = local.iter().map(&key).collect();
    let samples = regular_samples(&keys, p.saturating_sub(1));
    let gathered = node.gather(0, samples);

    // Step 3: root sorts the ~p(p−1) sample keys and selects p−1 pivots.
    let pivots: Vec<f64> = node.broadcast(
        0,
        gathered.map(|rows| {
            let flat: Vec<f64> = rows.into_iter().flatten().collect();
            work += charge_sort(node, flat.len());
            select_pivots(flat, p)
        }),
    );

    // Step 4: partition the local data into p buckets.
    let mut blocks: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
    for item in local {
        let b = bucket_of(key(&item), &pivots);
        blocks[b].push(item);
    }

    // Step 5: all-to-all exchange; bucket i accumulates at rank i.
    let received = node.all_to_allv(blocks);
    let received_from: Vec<usize> = received.iter().map(Vec::len).collect();

    // Step 6: merge the p sorted runs (simple sort; runs are short).
    let mut items: Vec<T> = received.into_iter().flatten().collect();
    items.sort_by(|a, b| key(a).total_cmp(&key(b)));
    work += charge_sort(node, items.len());

    PsrsOutcome { items, pivots, received_from, work }
}

/// Charge the clock for an `n log n` sort and return the charged work.
fn charge_sort(node: &Node, n: usize) -> Work {
    let w = sort_work(n);
    if !w.is_zero() {
        node.compute(w);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::max_partition_bound;
    use vcluster::{CostModel, VirtualCluster};

    /// Deterministic pseudo-random keys (LCG), distinct per index.
    fn synth_keys(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64) / ((1u64 << 53) as f64) + i as f64 * 1e-15
            })
            .collect()
    }

    fn run_psrs(p: usize, n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let all = synth_keys(n, seed);
        let cluster = VirtualCluster::new(p, CostModel::beowulf_2008());
        let all_ref = &all;
        let run = cluster.run(move |node| {
            // Block-distribute the input.
            let chunk = n.div_ceil(p);
            let lo = (node.rank() * chunk).min(n);
            let hi = ((node.rank() + 1) * chunk).min(n);
            let local: Vec<f64> = all_ref[lo..hi].to_vec();
            psrs(node, local, |&x| x).items
        });
        let mut sorted = all;
        sorted.sort_by(f64::total_cmp);
        (run.results, sorted)
    }

    #[test]
    fn global_order_reconstructed() {
        for (p, n) in [(2, 50), (4, 1000), (8, 1024), (3, 17)] {
            let (buckets, sorted) = run_psrs(p, n, 42);
            let concat: Vec<f64> = buckets.iter().flatten().copied().collect();
            assert_eq!(concat, sorted, "p={p} n={n}");
        }
    }

    #[test]
    fn buckets_are_locally_sorted_and_disjoint() {
        let (buckets, _) = run_psrs(4, 400, 7);
        for b in &buckets {
            assert!(b.windows(2).all(|w| w[0] <= w[1]));
        }
        for w in buckets.windows(2) {
            if let (Some(&last), Some(&first)) = (w[0].last(), w[1].first()) {
                assert!(last <= first);
            }
        }
    }

    #[test]
    fn load_bound_respected_on_uniform_keys() {
        let p = 8;
        let n = 4096; // n > p^3 as the theorem requires
        let (buckets, _) = run_psrs(p, n, 3);
        let bound = max_partition_bound(n, p);
        for (i, b) in buckets.iter().enumerate() {
            assert!(b.len() <= bound, "bucket {i} holds {} > bound {bound}", b.len());
        }
    }

    #[test]
    fn single_rank_degenerates_to_sort() {
        let (buckets, sorted) = run_psrs(1, 100, 9);
        assert_eq!(buckets[0], sorted);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let cluster = VirtualCluster::new(4, CostModel::beowulf_2008());
        // 2 items across 4 ranks: most ranks start empty.
        let run = cluster.run(|node| {
            let local: Vec<f64> = match node.rank() {
                0 => vec![5.0],
                2 => vec![1.0],
                _ => vec![],
            };
            psrs(node, local, |&x| x).items
        });
        let concat: Vec<f64> = run.results.iter().flatten().copied().collect();
        assert_eq!(concat, vec![1.0, 5.0]);
    }

    #[test]
    fn duplicate_keys_survive() {
        let cluster = VirtualCluster::new(3, CostModel::beowulf_2008());
        let run = cluster.run(|node| {
            let local = vec![1.0; 10];
            psrs(node, local, |&x| x).items
        });
        let total: usize = run.results.iter().map(Vec::len).sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_psrs(4, 512, 11);
        let b = run_psrs(4, 512, 11);
        assert_eq!(a.0, b.0);
    }

    #[test]
    fn sort_work_reported_per_rank() {
        let cluster = VirtualCluster::new(4, CostModel::beowulf_2008());
        let run = cluster.run(|node| {
            let local: Vec<f64> =
                (0..50).map(|i| ((i * 37 + node.rank() * 13) % 400) as f64).collect();
            psrs(node, local, |&x| x).work
        });
        for (rank, work) in run.results.iter().enumerate() {
            assert!(work.sort_ops > 0, "rank {rank} reported no sort work");
        }
        // The root additionally charges the pivot-selection sort.
        assert!(run.results[0].sort_ops > run.results[1].sort_ops);
    }

    #[test]
    fn outcome_metadata_consistent() {
        let cluster = VirtualCluster::new(4, CostModel::beowulf_2008());
        let run = cluster.run(|node| {
            let local: Vec<f64> =
                (0..100).map(|i| ((i * 37 + node.rank() * 13) % 400) as f64).collect();
            let out = psrs(node, local, |&x| x);
            (
                out.pivots.len(),
                out.received_from.len(),
                out.items.len(),
                out.received_from.iter().sum::<usize>(),
            )
        });
        for (np, nrf, nitems, received_total) in run.results {
            assert_eq!(np, 3);
            assert_eq!(nrf, 4);
            assert_eq!(nitems, received_total);
        }
    }
}
