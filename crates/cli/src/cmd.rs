//! Subcommand implementations.

use crate::args::{
    AlignArgs, Backend, BatchArgs, EvalArgs, GenerateArgs, RankArgs, ReadsArgs, ScalingArgs,
    ServeArgs, SubmitArgs, TrimArgs,
};
use bioseq::{fasta, Sequence};
use qbench::{evaluate_engine, evaluate_with, mean_read_pair_q, Benchmark, BenchmarkConfig};
use rosegen::{Family, FamilyConfig, ReadSet, ReadSimConfig};
use sad_core::{
    rank_experiment, Aligner, Backend as SadBackend, BatchJob, RunReport, SadConfig, TrimConfig,
    VerticalConfig,
};
use std::io::Write;
use std::path::{Path, PathBuf};
use vcluster::{CostModel, VirtualCluster};

type Out<'a> = &'a mut dyn Write;

/// Stream a FASTA file into memory record by record: peak ingestion
/// memory is one record plus the collected sequences, never a second
/// whole-file text copy. Parse problems (including non-UTF-8 bytes) are
/// "bad FASTA", I/O problems are "cannot read".
fn read_fasta(path: impl AsRef<Path>) -> Result<Vec<Sequence>, String> {
    let path = path.as_ref();
    let reader = fasta::open(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut seqs = Vec::new();
    for record in reader {
        match record {
            Ok(seq) => seqs.push(seq),
            Err(e) if matches!(e, fasta::ReadError::Parse(_)) || e.is_not_utf8() => {
                return Err(format!("bad FASTA in {}: {e}", path.display()));
            }
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        }
    }
    if seqs.is_empty() {
        return Err(format!("{} contains no sequences", path.display()));
    }
    Ok(seqs)
}

/// `sad align`
pub fn align(a: AlignArgs, out: Out) -> Result<(), String> {
    let seqs = read_fasta(&a.input)?;
    let mut cfg = SadConfig::default()
        .with_engine(a.engine)
        .with_fine_tune(!a.no_fine_tune)
        .with_band_policy(a.band)
        .with_dp_kernel(a.kernel);
    if let Some(k) = a.kmer {
        cfg = cfg.with_kmer_k(k);
    }
    if a.vertical {
        let mut v = VerticalConfig::default();
        if let Some(cap) = a.max_block {
            v.max_block_len = cap;
        }
        if let Some(w) = a.seam_window {
            v.seam_window = w;
        }
        cfg = cfg.with_vertical(v);
    }
    if a.trim {
        cfg = cfg.with_trim(TrimConfig::default());
    }
    // Fail loudly (typed) rather than silently degrading short sequences;
    // `--kmer` lowers k below the shortest sequence when inputs are short.
    cfg.validate_for(&seqs).map_err(|e| e.to_string())?;
    let backend = match a.backend {
        Backend::Sequential => SadBackend::Sequential,
        Backend::Rayon => SadBackend::Rayon { threads: a.parallelism() },
        Backend::Distributed => {
            SadBackend::Distributed(VirtualCluster::new(a.parallelism(), CostModel::beowulf_2008()))
        }
    };
    let mut aligner = Aligner::new(cfg).backend(backend);
    if a.progress {
        // Live phase display on stderr; stdout stays parseable FASTA.
        aligner =
            aligner.observer(std::sync::Arc::new(crate::progress::ProgressObserver::stderr()));
    }
    let report = aligner.run(&seqs).map_err(|e| e.to_string())?;
    write_report_comments(&report, seqs.len(), out);
    write!(out, "{}", fasta::write_alignment(&report.msa)).map_err(|e| e.to_string())
}

/// The unified run summary, written as FASTA `;` comment lines so the
/// stream stays parseable whatever the backend.
fn write_report_comments(report: &RunReport, n_seqs: usize, out: Out) {
    let mut head = format!(
        "; backend {}: {} sequences over {} ranks, load imbalance {:.2}",
        report.backend_name(),
        n_seqs,
        report.ranks,
        report.load_imbalance()
    );
    if let Some(makespan) = report.makespan() {
        head.push_str(&format!(", {makespan:.3} virtual s"));
    }
    writeln!(out, "{head}").ok();
    for line in report.phase_table().lines() {
        writeln!(out, "; {line}").ok();
    }
}

/// `sad reads` — the Pyro-Align-style large-N read mode: align a file of
/// short reads (streamed) or a simulated read set, with buckets over
/// `--max-bucket` recursively decomposed on the rayon backend. Prints a
/// run summary (bucket census, decomposition depth, phase table, and —
/// for simulated input — the mean pair-Q against the known truth) and
/// optionally writes the gapped FASTA to `--out`.
pub fn reads(r: ReadsArgs, out: Out) -> Result<(), String> {
    // 1. Ingest: stream a read file, or simulate a read set whose truth
    //    enables quality gating.
    let (seqs, truth) = match &r.input {
        Some(path) => (read_fasta(path)?, None),
        None => {
            let fam = Family::generate(&FamilyConfig {
                n_seqs: r.sources,
                avg_len: r.source_len,
                relatedness: 800.0,
                seed: r.seed,
                ..Default::default()
            });
            let set = ReadSet::from_family(
                &fam,
                &ReadSimConfig {
                    coverage: r.coverage,
                    total_reads: r.reads,
                    read_len: r.read_len,
                    error_rate: r.error_rate,
                    seed: r.seed,
                    ..Default::default()
                },
            );
            (set.reads.clone(), Some(set))
        }
    };
    let n = seqs.len();

    // 2. Configure. The cap flows into the pipeline; argument parsing
    //    already cleared it for backends that don't support it.
    let mut cfg = SadConfig::default()
        .with_engine(r.engine)
        .with_fine_tune(!r.no_fine_tune)
        .with_band_policy(r.band)
        .with_dp_kernel(r.kernel)
        .with_max_bucket(r.max_bucket);
    if let Some(k) = r.kmer {
        cfg = cfg.with_kmer_k(k);
    }
    if r.trim {
        cfg = cfg.with_trim(TrimConfig::default());
    }
    cfg.validate_for(&seqs).map_err(|e| e.to_string())?;

    // 3. Width: with a cap, widen the first pass to ~cap-sized blocks so
    //    the O(w²) local rank never sees a giant block it would only
    //    decompose later anyway.
    let width = match (r.backend, r.max_bucket) {
        (Backend::Rayon, Some(cap)) => r.parallelism().max(n.div_ceil(cap)),
        _ => r.parallelism(),
    };
    let backend = match r.backend {
        Backend::Sequential => SadBackend::Sequential,
        Backend::Rayon => SadBackend::Rayon { threads: width },
        Backend::Distributed => {
            SadBackend::Distributed(VirtualCluster::new(width, CostModel::beowulf_2008()))
        }
    };
    let mut aligner = Aligner::new(cfg).backend(backend);
    if r.progress {
        aligner =
            aligner.observer(std::sync::Arc::new(crate::progress::ProgressObserver::stderr()));
    }
    let report = aligner.run(&seqs).map_err(|e| e.to_string())?;

    // 4. Summary. Stdout is the report; the alignment itself only lands
    //    on disk via --out (50k reads of FASTA do not belong in a pipe).
    let mean_len = seqs.iter().map(Sequence::len).sum::<usize>() as f64 / n as f64;
    match &r.input {
        Some(path) => writeln!(out, "source            {path}").ok(),
        None => {
            writeln!(out, "source            simulated ({} sources, seed {})", r.sources, r.seed)
                .ok()
        }
    };
    writeln!(out, "reads             {n}").ok();
    writeln!(out, "mean read length  {mean_len:.1}").ok();
    writeln!(out, "backend           {} ({} ranks)", report.backend_name(), report.ranks).ok();
    let largest = report.bucket_sizes.iter().max().copied().unwrap_or(0);
    writeln!(out, "buckets           {} (largest {largest})", report.bucket_sizes.len()).ok();
    // The cap only acts on rayon (sequential has no buckets to split and
    // distributed rejects it outright), so only rayon reports it.
    if let (Backend::Rayon, Some(cap)) = (r.backend, r.max_bucket) {
        writeln!(
            out,
            "bucket cap        {cap} ({})",
            if largest <= cap { "respected" } else { "EXCEEDED" }
        )
        .ok();
        writeln!(out, "decomposition     depth {}", report.decomposition_depth).ok();
    }
    writeln!(
        out,
        "alignment         {} rows, {} cols",
        report.msa.num_rows(),
        report.msa.num_cols()
    )
    .ok();
    let gate_failure =
        truth.as_ref().and_then(|set| match mean_read_pair_q(set, &report.msa, 500) {
            Some(q) => {
                let verdict = match r.min_q {
                    Some(min) if q < min => " FAIL",
                    Some(_) => " pass",
                    None => "",
                };
                let gate = r.min_q.map(|min| format!(" (gate {min}{verdict})")).unwrap_or_default();
                writeln!(out, "mean pair Q       {q:.3}{gate}").ok();
                r.min_q
                    .filter(|&min| q < min)
                    .map(|min| format!("mean pair Q {q:.3} below the --min-q gate {min}"))
            }
            None => {
                writeln!(out, "mean pair Q       n/a (no overlapping pairs)").ok();
                r.min_q.map(|_| "no overlapping pairs to score against --min-q".to_string())
            }
        });
    for line in report.phase_table().lines() {
        writeln!(out, "{line}").ok();
    }
    if let Some(path) = &r.out {
        std::fs::write(path, fasta::write_alignment(&report.msa))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        writeln!(out, "wrote {path}").ok();
    }
    match gate_failure {
        Some(err) => Err(err),
        None => Ok(()),
    }
}

/// `sad trim` — MaxAlign-style alignment-area optimization over an
/// already-aligned FASTA file: drop the sequences whose exclusion grows
/// `retained rows × gap-free columns`, remove the freed all-gap columns,
/// and write the trimmed alignment (stdout, or `--out`). The trim census
/// and the dropped ids ride along as FASTA `;` comments, so stdout stays
/// parseable either way.
pub fn trim(t: TrimArgs, out: Out) -> Result<(), String> {
    let text =
        std::fs::read_to_string(&t.input).map_err(|e| format!("cannot read {}: {e}", t.input))?;
    let msa =
        fasta::parse_alignment(&text).map_err(|e| format!("bad alignment in {}: {e}", t.input))?;
    let cfg = TrimConfig { max_dropped: t.max_dropped, branch_bound: t.branch_bound };
    let outcome = align::trim_msa(&msa, &cfg);
    writeln!(
        out,
        "; trim: dropped {} rows, gained {} gap-free columns, area {} -> {}",
        outcome.rows_dropped(),
        outcome.cols_gained(),
        outcome.area_before,
        outcome.area_after
    )
    .ok();
    for d in &outcome.dropped {
        writeln!(out, "; dropped {} (area {:+})", d.id, d.area_gain).ok();
    }
    let fasta_text = fasta::write_alignment(&outcome.msa);
    match &t.out {
        Some(path) => {
            std::fs::write(path, fasta_text).map_err(|e| format!("cannot write {path}: {e}"))?;
            writeln!(out, "wrote {path}").ok();
            Ok(())
        }
        None => write!(out, "{fasta_text}").map_err(|e| e.to_string()),
    }
}

/// Collect the batch's input files: every `.fa`/`.fasta` in a directory
/// (sorted by name), or the paths listed in a manifest file (one per
/// line, `#` comments and blanks skipped, relative paths resolved against
/// the manifest's directory).
fn batch_inputs(input: &str) -> Result<Vec<PathBuf>, String> {
    let path = Path::new(input);
    let mut files = Vec::new();
    if path.is_dir() {
        let entries =
            std::fs::read_dir(path).map_err(|e| format!("cannot read directory {input}: {e}"))?;
        for entry in entries {
            let p = entry.map_err(|e| format!("cannot read directory {input}: {e}"))?.path();
            let is_fasta = p
                .extension()
                .and_then(|e| e.to_str())
                .is_some_and(|e| e.eq_ignore_ascii_case("fa") || e.eq_ignore_ascii_case("fasta"));
            if p.is_file() && is_fasta {
                files.push(p);
            }
        }
        files.sort();
    } else {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read manifest {input}: {e}"))?;
        let base = path.parent().unwrap_or_else(|| Path::new("."));
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let p = Path::new(line);
            files.push(if p.is_absolute() { p.to_path_buf() } else { base.join(p) });
        }
    }
    if files.is_empty() {
        return Err(format!("{input} yields no FASTA inputs"));
    }
    Ok(files)
}

/// Job ids are file stems; duplicate or colliding stems (a manifest
/// pulling `a/fam.fa` and `b/fam.fa`, or a literal `fam-2.fa` next to
/// them) probe for the first free `<stem>-N` so output files never
/// clobber each other.
fn job_ids(files: &[PathBuf]) -> Vec<String> {
    let mut used = std::collections::HashSet::new();
    files
        .iter()
        .map(|p| {
            let stem = p.file_stem().and_then(|s| s.to_str()).unwrap_or("job").to_string();
            let mut id = stem.clone();
            let mut n = 1usize;
            while !used.insert(id.clone()) {
                n += 1;
                id = format!("{stem}-{n}");
            }
            id
        })
        .collect()
}

/// `sad batch`: align every family in a directory or manifest, write one
/// aligned FASTA per successful job into `--out`, and print the batch
/// summary table. Per-job failures — a one-sequence family, an
/// unreadable or malformed FASTA file — are reported per job and the
/// command exits with an error naming the failure count, without
/// aborting the other jobs.
pub fn batch(b: BatchArgs, out: Out) -> Result<(), String> {
    let files = batch_inputs(&b.input)?;
    let ids = job_ids(&files);
    // Validate the output directory before aligning anything, so a bad
    // `--out` fails in milliseconds instead of after the whole batch.
    std::fs::create_dir_all(&b.out_dir)
        .map_err(|e| format!("cannot create output directory {}: {e}", b.out_dir))?;
    // Unreadable inputs are skipped (reported after the table), never
    // fatal: one corrupt file must not abort its neighbours.
    let mut jobs = Vec::with_capacity(files.len());
    let mut skipped: Vec<(String, String)> = Vec::new();
    for (path, id) in files.iter().zip(&ids) {
        match read_fasta(path) {
            Ok(seqs) => jobs.push(BatchJob::new(id.clone(), seqs)),
            Err(err) => skipped.push((id.clone(), err)),
        }
    }
    let mut cfg = SadConfig::default()
        .with_engine(b.engine)
        .with_fine_tune(!b.no_fine_tune)
        .with_band_policy(b.band)
        .with_dp_kernel(b.kernel);
    if let Some(k) = b.kmer {
        cfg = cfg.with_kmer_k(k);
    }
    if b.trim {
        cfg = cfg.with_trim(TrimConfig::default());
    }
    let backend = match b.backend {
        Backend::Sequential => SadBackend::Sequential,
        Backend::Rayon => SadBackend::Rayon { threads: b.parallelism() },
        Backend::Distributed => {
            SadBackend::Distributed(VirtualCluster::new(b.parallelism(), CostModel::beowulf_2008()))
        }
    };
    let mut aligner = Aligner::new(cfg).backend(backend);
    if b.progress {
        aligner =
            aligner.observer(std::sync::Arc::new(crate::progress::ProgressObserver::stderr()));
    }
    let report = match b.jobs {
        Some(workers) => aligner.run_batch_with(&jobs, workers),
        None => aligner.run_batch(&jobs),
    };
    for job in &report.jobs {
        if let Ok(run) = &job.outcome {
            let path = Path::new(&b.out_dir).join(format!("{}.aligned.fa", job.id));
            std::fs::write(&path, fasta::write_alignment(&run.msa))
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
    }
    write!(out, "{}", report.summary_table()).map_err(|e| e.to_string())?;
    for (id, err) in &skipped {
        writeln!(out, "skipped {id}: {err}").map_err(|e| e.to_string())?;
    }
    let failed = report.failed() + skipped.len();
    if failed > 0 {
        return Err(format!("{failed} of {} jobs failed", files.len()));
    }
    Ok(())
}

/// `sad generate`
pub fn generate(g: GenerateArgs, out: Out) -> Result<(), String> {
    let fam = Family::generate(&FamilyConfig {
        n_seqs: g.n,
        avg_len: g.len,
        relatedness: g.relatedness,
        seed: g.seed,
        ..Default::default()
    });
    if let Some(path) = &g.reference {
        std::fs::write(path, fasta::write_alignment(&fam.reference))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    write!(out, "{}", fasta::write(&fam.seqs)).map_err(|e| e.to_string())
}

/// `sad scaling`
pub fn scaling(s: ScalingArgs, out: Out) -> Result<(), String> {
    let fam = Family::generate(&FamilyConfig {
        n_seqs: s.n,
        avg_len: 300,
        relatedness: 800.0,
        seed: 0,
        ..Default::default()
    });
    let cfg = SadConfig::default();
    writeln!(out, "{:>5} {:>12} {:>10} {:>12}", "p", "time(s)", "speedup", "max bucket").ok();
    let mut t1: Option<f64> = None;
    for &p in &s.procs {
        let cluster = VirtualCluster::new(p, CostModel::beowulf_2008());
        let run = Aligner::new(cfg.clone())
            .backend(SadBackend::Distributed(cluster))
            .run(&fam.seqs)
            .map_err(|e| e.to_string())?;
        let makespan = run.makespan().expect("distributed runs have a makespan");
        let base = *t1.get_or_insert(makespan);
        writeln!(
            out,
            "{:>5} {:>12.3} {:>10.2} {:>12}",
            p,
            makespan,
            base / makespan,
            run.bucket_sizes.iter().max().unwrap()
        )
        .ok();
    }
    Ok(())
}

/// `sad eval`
pub fn eval(e: EvalArgs, out: Out) -> Result<(), String> {
    let benchmark = Benchmark::generate(&BenchmarkConfig {
        n_cases: e.cases,
        seqs_per_case: 20,
        avg_len: 100,
        relatedness: (300.0, 1000.0),
        seed: 0,
    });
    let cfg = SadConfig::default();
    let reports = vec![
        evaluate_engine(&align::MuscleLite::standard(), &benchmark),
        evaluate_engine(&align::MuscleLite::fast(), &benchmark),
        evaluate_engine(&align::ClustalLite::default(), &benchmark),
        evaluate_with(format!("sample-align-d(p={})", e.p), &benchmark, |seqs| {
            let cluster = VirtualCluster::new(e.p, CostModel::beowulf_2008());
            let report = Aligner::new(cfg.clone())
                .backend(SadBackend::Distributed(cluster))
                .run(seqs)
                .expect("benchmark cases are valid inputs");
            (report.msa, report.work)
        }),
    ];
    writeln!(out, "{:<24} {:>8} {:>8}", "method", "Q", "TC").ok();
    for r in &reports {
        writeln!(out, "{:<24} {:>8.3} {:>8.3}", r.name, r.mean_q, r.mean_tc).ok();
    }
    Ok(())
}

/// `sad rank`
pub fn rank(r: RankArgs, out: Out) -> Result<(), String> {
    let seqs = read_fasta(&r.input)?;
    let exp = rank_experiment(&seqs, r.p, &SadConfig::default());
    writeln!(out, "{:<24} {:>12} {:>12}", "id", "centralized", "globalized").ok();
    for (i, s) in seqs.iter().enumerate() {
        writeln!(out, "{:<24} {:>12.5} {:>12.5}", s.id, exp.centralized[i], exp.globalized[i]).ok();
    }
    Ok(())
}

/// `sad serve` — run the alignment daemon until SIGTERM/SIGINT or a
/// client `SHUTDOWN`, then drain and exit.
pub fn serve(s: ServeArgs, out: Out) -> Result<(), String> {
    use sad_serve::{ServeBackend, ServeConfig, Server};
    let mut cfg = SadConfig::default()
        .with_engine(s.engine)
        .with_fine_tune(!s.no_fine_tune)
        .with_band_policy(s.band)
        .with_dp_kernel(s.kernel);
    if let Some(k) = s.kmer {
        cfg = cfg.with_kmer_k(k);
    }
    cfg.validate().map_err(|e| e.to_string())?;
    let backend = match s.backend {
        Backend::Sequential => ServeBackend::Sequential,
        Backend::Rayon => ServeBackend::Rayon { threads: s.parallelism() },
        Backend::Distributed => ServeBackend::Distributed { nodes: s.parallelism() },
    };
    let workers = s.workers.unwrap_or_else(|| {
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
    });
    let serve_cfg = ServeConfig {
        host: s.host.clone(),
        port: s.port,
        journal: PathBuf::from(&s.journal),
        out_dir: PathBuf::from(&s.out_dir),
        workers,
        queue_capacity: s.queue,
        backend,
        sad: cfg,
        cache_budget_bytes: s.cache_mb.saturating_mul(1024 * 1024),
        paused: false,
        log: true,
        hold: None,
    };
    sad_serve::signal::install_shutdown_handler();
    let handle = Server::start(serve_cfg).map_err(|e| e.to_string())?;
    writeln!(
        out,
        "sad-serve listening on {} ({} workers, journal {})",
        handle.addr(),
        workers,
        s.journal
    )
    .ok();
    let recovery = &handle.recovery;
    if !recovery.requeued.is_empty() || !recovery.skipped.is_empty() || !recovery.reran.is_empty() {
        writeln!(
            out,
            "recovered journal: {} re-queued, {} verified-finished (skipped), {} re-run",
            recovery.requeued.len(),
            recovery.skipped.len(),
            recovery.reran.len()
        )
        .ok();
    }
    out.flush().ok();
    while !sad_serve::signal::shutdown_requested() && !handle.is_draining() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let stats = handle.shutdown();
    writeln!(
        out,
        "stopped: {} accepted, {} completed ({} cached), {} cancelled, {} failed",
        stats.accepted, stats.completed, stats.cache_hits, stats.cancelled, stats.failed
    )
    .ok();
    Ok(())
}

/// `sad submit` — send FASTA files (and/or a cancel or shutdown request)
/// to a running `sad serve` and stream back results.
pub fn submit(s: SubmitArgs, out: Out) -> Result<(), String> {
    use sad_serve::{Client, Submitted};
    use std::net::ToSocketAddrs;
    use std::time::Duration;
    let addr = format!("{}:{}", s.host, s.port)
        .to_socket_addrs()
        .map_err(|e| format!("bad server address {}:{}: {e}", s.host, s.port))?
        .next()
        .ok_or_else(|| format!("bad server address {}:{}", s.host, s.port))?;
    let mut client = Client::connect_with_retry(addr, Duration::from_secs(5))
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    if let Some(dir) = &s.out_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create output directory {dir}: {e}"))?;
    }

    let mut failures = 0usize;
    let mut accepted: Vec<String> = Vec::new();
    for file in &s.files {
        let path = Path::new(file);
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("job");
        match client.submit(Some(stem), s.priority, &text).map_err(|e| e.to_string())? {
            Submitted::Accepted { job } => {
                writeln!(out, "accepted {} as job {job}", path.display()).ok();
                accepted.push(job);
            }
            Submitted::Rejected { reason } => {
                writeln!(out, "rejected {}: {reason}", path.display()).ok();
                failures += 1;
            }
        }
    }
    for job in &accepted {
        let terminal =
            client.wait_terminal(job, Duration::from_secs(600)).map_err(|e| e.to_string())?;
        match terminal.get("event").and_then(sad_serve::Json::as_str) {
            Some("result") => {
                let rows = terminal.get("rows").and_then(sad_serve::Json::as_u64).unwrap_or(0);
                let digest =
                    terminal.get("digest").and_then(sad_serve::Json::as_str).unwrap_or("?");
                let cached =
                    terminal.get("cached").and_then(sad_serve::Json::as_bool).unwrap_or(false);
                writeln!(
                    out,
                    "job {job}: {rows} rows, digest {digest}{}",
                    if cached { " (cached)" } else { "" }
                )
                .ok();
                if let Some(dir) = &s.out_dir {
                    if let Some(fasta_text) =
                        terminal.get("fasta").and_then(sad_serve::Json::as_str)
                    {
                        let path = Path::new(dir).join(format!("{job}.aligned.fa"));
                        std::fs::write(&path, fasta_text)
                            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                    }
                }
            }
            Some("cancelled") => {
                let detail = terminal.get("detail").and_then(sad_serve::Json::as_str).unwrap_or("");
                writeln!(out, "job {job}: cancelled ({detail})").ok();
                failures += 1;
            }
            _ => {
                let msg =
                    terminal.get("message").and_then(sad_serve::Json::as_str).unwrap_or("error");
                writeln!(out, "job {job}: error: {msg}").ok();
                failures += 1;
            }
        }
    }
    if let Some(id) = &s.cancel {
        client.cancel(id).map_err(|e| e.to_string())?;
        match client.wait_event(Duration::from_secs(10), |e| {
            e.get("job").and_then(sad_serve::Json::as_str) == Some(id.as_str())
        }) {
            Ok(event) => {
                let kind = event.get("event").and_then(sad_serve::Json::as_str).unwrap_or("?");
                writeln!(out, "cancel {id}: {kind}").ok();
            }
            Err(e) => {
                writeln!(out, "cancel {id}: no acknowledgement ({e})").ok();
                failures += 1;
            }
        }
    }
    if s.shutdown {
        client.shutdown().map_err(|e| e.to_string())?;
        // `bye` confirms the drain request landed; a disconnect counts too.
        match client.wait_event(Duration::from_secs(5), |e| {
            e.get("event").and_then(sad_serve::Json::as_str) == Some("bye")
        }) {
            Ok(_) => writeln!(out, "server draining").ok(),
            Err(_) => writeln!(out, "server closed").ok(),
        };
    }
    if failures > 0 {
        return Err(format!("{failures} request(s) failed"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sad-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_str(argv: &[&str]) -> String {
        let args = parse(argv.iter().copied()).unwrap();
        let mut buf = Vec::new();
        crate::run(args, &mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn generate_then_align_roundtrip() {
        let dir = tmpdir();
        let input = dir.join("family.fa");
        let fasta_text = run_str(&["generate", "--n", "12", "--len", "50", "--seed", "3"]);
        std::fs::write(&input, &fasta_text).unwrap();
        let out = run_str(&["align", input.to_str().unwrap(), "--p", "3"]);
        assert!(out.contains("backend distributed"));
        assert!(out.contains("virtual s"));
        // Output body parses as an alignment with all 12 rows.
        let body: String =
            out.lines().filter(|l| !l.starts_with(';')).collect::<Vec<_>>().join("\n");
        let msa = fasta::parse_alignment(&body).unwrap();
        assert_eq!(msa.num_rows(), 12);
    }

    #[test]
    fn short_sequences_need_and_accept_a_kmer_override() {
        let dir = tmpdir();
        let input = dir.join("short.fa");
        std::fs::write(&input, ">a\nMKVL\n>b\nMKIL\n>c\nMKVI\n").unwrap();
        let path = input.to_str().unwrap();
        // Default k = 6 exceeds the 4-residue sequences: typed error.
        let args = parse(["align", path]).unwrap();
        let mut buf = Vec::new();
        let err = crate::run(args, &mut buf).unwrap_err();
        assert!(err.contains("kmer_k"), "{err}");
        // Lowering k via --kmer aligns the file.
        let out = run_str(&["align", path, "--kmer", "2", "--p", "2"]);
        let body: String =
            out.lines().filter(|l| !l.starts_with(';')).collect::<Vec<_>>().join("\n");
        assert_eq!(fasta::parse_alignment(&body).unwrap().num_rows(), 3);
    }

    #[test]
    fn every_backend_prints_the_unified_phase_table() {
        let dir = tmpdir();
        let input = dir.join("backends.fa");
        std::fs::write(&input, run_str(&["generate", "--n", "8", "--len", "40"])).unwrap();
        let path = input.to_str().unwrap();
        for (backend, width_flag) in
            [("sequential", None), ("rayon", Some("--threads")), ("distributed", Some("--nodes"))]
        {
            let mut argv = vec!["align", path, "--backend", backend];
            if let Some(flag) = width_flag {
                argv.extend(["--p", "8", flag, "2"]);
            }
            let out = run_str(&argv);
            assert!(out.contains(&format!("backend {backend}")), "{backend}:\n{out}");
            assert!(out.contains("; phase"), "{backend} lost the phase table:\n{out}");
            assert!(out.contains("8-local-align"), "{backend} phase rows:\n{out}");
            let body: String =
                out.lines().filter(|l| !l.starts_with(';')).collect::<Vec<_>>().join("\n");
            assert_eq!(fasta::parse_alignment(&body).unwrap().num_rows(), 8, "{backend}");
        }
    }

    #[test]
    fn progress_goes_to_stderr_not_stdout() {
        let dir = tmpdir();
        let input = dir.join("progress.fa");
        std::fs::write(&input, run_str(&["generate", "--n", "8", "--len", "40"])).unwrap();
        // The observer writes to stderr, so the captured stdout stream must
        // stay byte-identical to a run without --progress.
        let plain = run_str(&["align", input.to_str().unwrap(), "--p", "2"]);
        let with_progress = run_str(&["align", input.to_str().unwrap(), "--p", "2", "--progress"]);
        let strip_wall = |out: &str| {
            // Wall-clock columns differ between runs; compare everything else.
            out.lines().filter(|l| !l.starts_with(';')).collect::<Vec<_>>().join("\n")
        };
        assert_eq!(strip_wall(&plain), strip_wall(&with_progress));
        assert!(fasta::parse_alignment(&strip_wall(&with_progress)).is_ok());
    }

    #[test]
    fn band_flag_flows_into_the_run() {
        let dir = tmpdir();
        let input = dir.join("band.fa");
        std::fs::write(&input, run_str(&["generate", "--n", "8", "--len", "60", "--seed", "7"]))
            .unwrap();
        let path = input.to_str().unwrap();
        // Every policy aligns the file; full and auto agree on the rows.
        let full = run_str(&["align", path, "--p", "2", "--band", "full"]);
        let auto = run_str(&["align", path, "--p", "2", "--band", "auto"]);
        let wide = run_str(&["align", path, "--p", "2", "--band", "128"]);
        let body =
            |out: &str| out.lines().filter(|l| !l.starts_with(';')).collect::<Vec<_>>().join("\n");
        assert_eq!(body(&full), body(&auto), "adaptive banding must match full DP");
        assert_eq!(fasta::parse_alignment(&body(&wide)).unwrap().num_rows(), 8);
        // The report surfaces the banded/full cell counts.
        assert!(auto.contains("dp cells (band/full)"), "{auto}");
    }

    #[test]
    fn kernel_flag_flows_into_the_run() {
        let dir = tmpdir();
        let input = dir.join("kernel.fa");
        std::fs::write(&input, run_str(&["generate", "--n", "8", "--len", "60", "--seed", "11"]))
            .unwrap();
        let path = input.to_str().unwrap();
        // All three kernels align the file identically; only the report
        // label differs.
        let scalar = run_str(&["align", path, "--p", "2", "--kernel", "scalar"]);
        let striped = run_str(&["align", path, "--p", "2", "--kernel", "striped"]);
        let auto = run_str(&["align", path, "--p", "2", "--kernel", "auto"]);
        let body =
            |out: &str| out.lines().filter(|l| !l.starts_with(';')).collect::<Vec<_>>().join("\n");
        assert_eq!(body(&scalar), body(&striped), "striped kernel must match scalar");
        assert_eq!(body(&scalar), body(&auto));
        assert!(scalar.contains("dp kernel: scalar"), "{scalar}");
        assert!(striped.contains("dp kernel: striped"), "{striped}");
        assert!(auto.contains("dp kernel: auto"), "{auto}");
    }

    #[test]
    fn batch_directory_aligns_every_family() {
        let dir = tmpdir().join("batch-dir");
        let out_dir = dir.join("aligned");
        std::fs::create_dir_all(&dir).unwrap();
        for (name, seed) in [("fam_a", 1u64), ("fam_b", 2), ("fam_c", 3)] {
            let text =
                run_str(&["generate", "--n", "8", "--len", "40", "--seed", &seed.to_string()]);
            std::fs::write(dir.join(format!("{name}.fa")), text).unwrap();
        }
        // A non-FASTA file in the directory is ignored.
        std::fs::write(dir.join("notes.txt"), "not fasta").unwrap();
        let out = run_str(&[
            "batch",
            dir.to_str().unwrap(),
            "--out",
            out_dir.to_str().unwrap(),
            "--jobs",
            "2",
        ]);
        assert!(out.contains("fam_a"), "{out}");
        assert!(out.contains("3 ok, 0 failed"), "{out}");
        assert!(out.contains("jobs/s"), "{out}");
        for name in ["fam_a", "fam_b", "fam_c"] {
            let written = std::fs::read_to_string(out_dir.join(format!("{name}.aligned.fa")))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(fasta::parse_alignment(&written).unwrap().num_rows(), 8, "{name}");
        }
        // Batch output matches the single-job command byte for byte.
        let single =
            run_str(&["align", dir.join("fam_a.fa").to_str().unwrap(), "--backend", "sequential"]);
        let body: String =
            single.lines().filter(|l| !l.starts_with(';')).collect::<Vec<_>>().join("\n");
        let batched = std::fs::read_to_string(out_dir.join("fam_a.aligned.fa")).unwrap();
        assert_eq!(batched.trim_end(), body.trim_end());
    }

    #[test]
    fn batch_manifest_reports_per_job_failures_without_aborting() {
        let dir = tmpdir().join("batch-manifest");
        std::fs::create_dir_all(&dir).unwrap();
        let good = run_str(&["generate", "--n", "6", "--len", "40", "--seed", "4"]);
        std::fs::write(dir.join("good.fa"), good).unwrap();
        std::fs::write(dir.join("solo.fa"), ">only\nMKVLAWGKVLMKVLAWGKVL\n").unwrap();
        std::fs::write(dir.join("jobs.manifest"), "# one path per line\ngood.fa\n\nsolo.fa\n")
            .unwrap();
        let args = parse([
            "batch",
            dir.join("jobs.manifest").to_str().unwrap(),
            "--out",
            dir.join("out").to_str().unwrap(),
        ])
        .unwrap();
        let mut buf = Vec::new();
        let err = crate::run(args, &mut buf).unwrap_err();
        assert_eq!(err, "1 of 2 jobs failed");
        let table = String::from_utf8(buf).unwrap();
        assert!(table.contains("1 ok, 1 failed"), "{table}");
        assert!(table.contains("error: need at least 2 sequences"), "{table}");
        // The good job still wrote its alignment; the failed one did not.
        assert!(dir.join("out/good.aligned.fa").exists());
        assert!(!dir.join("out/solo.aligned.fa").exists());
    }

    #[test]
    fn job_ids_never_collide() {
        let files: Vec<std::path::PathBuf> =
            ["a/fam.fa", "b/fam.fa", "c/fam-2.fa", "d/fam.fa"].iter().map(Into::into).collect();
        let ids = job_ids(&files);
        assert_eq!(ids, vec!["fam", "fam-2", "fam-2-2", "fam-3"]);
        let unique: std::collections::HashSet<&String> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len());
    }

    #[test]
    fn batch_skips_unreadable_files_without_aborting() {
        let dir = tmpdir().join("batch-garbage");
        std::fs::create_dir_all(&dir).unwrap();
        let good = run_str(&["generate", "--n", "6", "--len", "40", "--seed", "5"]);
        std::fs::write(dir.join("good.fa"), good).unwrap();
        std::fs::write(dir.join("garbage.fa"), "this is not fasta at all").unwrap();
        let args =
            parse(["batch", dir.to_str().unwrap(), "--out", dir.join("out").to_str().unwrap()])
                .unwrap();
        let mut buf = Vec::new();
        let err = crate::run(args, &mut buf).unwrap_err();
        assert_eq!(err, "1 of 2 jobs failed");
        let table = String::from_utf8(buf).unwrap();
        assert!(table.contains("skipped garbage:"), "{table}");
        assert!(table.contains("1 ok, 0 failed"), "{table}");
        assert!(dir.join("out/good.aligned.fa").exists(), "healthy neighbour still aligned");
    }

    #[test]
    fn batch_rejects_empty_inputs() {
        let dir = tmpdir().join("batch-empty");
        std::fs::create_dir_all(&dir).unwrap();
        let args = parse(["batch", dir.to_str().unwrap()]).unwrap();
        let mut buf = Vec::new();
        let err = crate::run(args, &mut buf).unwrap_err();
        assert!(err.contains("no FASTA inputs"), "{err}");
    }

    #[test]
    fn generate_writes_reference() {
        let dir = tmpdir();
        let refpath = dir.join("truth.fa");
        let _ = run_str(&[
            "generate",
            "--n",
            "6",
            "--len",
            "40",
            "--reference",
            refpath.to_str().unwrap(),
        ]);
        let reference =
            fasta::parse_alignment(&std::fs::read_to_string(&refpath).unwrap()).unwrap();
        assert_eq!(reference.num_rows(), 6);
    }

    #[test]
    fn scaling_table_has_all_rows() {
        let out = run_str(&["scaling", "--n", "48", "--procs", "1,2,4"]);
        assert_eq!(out.lines().count(), 4); // header + 3 rows
        assert!(out.contains("speedup"));
    }

    #[test]
    fn rank_lists_every_sequence() {
        let dir = tmpdir();
        let input = dir.join("rank.fa");
        std::fs::write(&input, run_str(&["generate", "--n", "10", "--len", "40"])).unwrap();
        let out = run_str(&["rank", input.to_str().unwrap(), "--p", "2"]);
        assert_eq!(out.lines().count(), 11);
    }

    #[test]
    fn eval_reports_all_methods() {
        let out = run_str(&["eval", "--cases", "2", "--p", "2"]);
        assert!(out.contains("muscle-lite"));
        assert!(out.contains("clustal-lite"));
        assert!(out.contains("sample-align-d(p=2)"));
    }

    #[test]
    fn reads_simulated_run_caps_buckets_and_passes_the_gate() {
        let out = run_str(&[
            "reads",
            "--reads",
            "200",
            "--read-len",
            "60",
            "--source-len",
            "200",
            "--sources",
            "2",
            "--max-bucket",
            "32",
            "--threads",
            "2",
            "--kmer",
            "3",
            "--min-q",
            "0.3",
            "--seed",
            "1",
        ]);
        assert!(out.contains("reads             200"), "{out}");
        assert!(out.contains("bucket cap        32 (respected)"), "{out}");
        assert!(out.contains("decomposition     depth"), "{out}");
        assert!(out.contains("7-sub-partition") || out.contains("depth 0"), "{out}");
        assert!(out.contains("mean pair Q"), "{out}");
        assert!(out.contains("pass"), "{out}");
    }

    #[test]
    fn reads_gate_failure_is_an_error() {
        let args = parse([
            "reads",
            "--reads",
            "60",
            "--read-len",
            "50",
            "--source-len",
            "150",
            "--sources",
            "2",
            "--kmer",
            "3",
            "--min-q",
            "1.0",
            "--error-rate",
            "0.3",
            "--seed",
            "2",
        ])
        .unwrap();
        let mut buf = Vec::new();
        let err = crate::run(args, &mut buf).unwrap_err();
        assert!(err.contains("below the --min-q gate"), "{err}");
        let table = String::from_utf8(buf).unwrap();
        assert!(table.contains("FAIL"), "{table}");
    }

    #[test]
    fn reads_aligns_a_streamed_file_and_writes_out() {
        let dir = tmpdir().join("reads-file");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("reads.fa");
        let aligned = dir.join("aligned.fa");
        // Simulate once to get a realistic read file, then re-ingest it.
        let _ = run_str(&[
            "reads",
            "--reads",
            "40",
            "--read-len",
            "50",
            "--source-len",
            "150",
            "--sources",
            "2",
            "--kmer",
            "3",
            "--out",
            input.to_str().unwrap(),
        ]);
        // --out holds gapped rows; ungap them back into plain reads.
        let msa = fasta::parse_alignment(&std::fs::read_to_string(&input).unwrap()).unwrap();
        std::fs::write(&input, fasta::write(&msa.ungapped_all())).unwrap();
        let out = run_str(&[
            "reads",
            input.to_str().unwrap(),
            "--max-bucket",
            "16",
            "--kmer",
            "3",
            "--out",
            aligned.to_str().unwrap(),
        ]);
        assert!(out.contains("reads             40"), "{out}");
        assert!(out.contains(&format!("source            {}", input.display())), "{out}");
        assert!(!out.contains("mean pair Q"), "file input has no truth:\n{out}");
        let written = std::fs::read_to_string(&aligned).unwrap();
        assert_eq!(fasta::parse_alignment(&written).unwrap().num_rows(), 40);
    }

    #[test]
    fn reads_distributed_works_without_an_explicit_cap() {
        // The default cap steps aside at parse time, so the virtual
        // cluster aligns a read set out of the box — no `--max-bucket
        // none` incantation to discover.
        let out = run_str(&[
            "reads",
            "--reads",
            "40",
            "--read-len",
            "50",
            "--source-len",
            "150",
            "--backend",
            "distributed",
            "--kmer",
            "3",
        ]);
        assert!(out.contains("backend           distributed"), "{out}");
        // An explicit cap on distributed never reaches the pipeline: it
        // is rejected while parsing, like --vertical.
        let err = parse(["reads", "--backend", "distributed", "--max-bucket", "512"]).unwrap_err();
        assert!(err.0.contains("not supported on the distributed backend"), "{}", err.0);
    }

    #[test]
    fn trim_drops_gap_heavy_rows_and_grows_the_area() {
        let dir = tmpdir().join("trim-cli");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("gappy.fa");
        // Rows c and d share the same four gap columns: neither single
        // drop pays off (area 8), only the pair unlocks them (area 12).
        std::fs::write(&input, ">a\nMKVLAW\n>b\nMKILAW\n>c\n--VL--\n>d\n--KL--\n").unwrap();
        let out = run_str(&["trim", input.to_str().unwrap()]);
        assert!(
            out.contains("; trim: dropped 2 rows, gained 4 gap-free columns, area 8 -> 12"),
            "{out}"
        );
        assert!(out.contains("; dropped c"), "{out}");
        assert!(out.contains("; dropped d"), "{out}");
        let body: String =
            out.lines().filter(|l| !l.starts_with(';')).collect::<Vec<_>>().join("\n");
        let msa = fasta::parse_alignment(&body).unwrap();
        assert_eq!((msa.num_rows(), msa.num_cols()), (2, 6));
        assert_eq!(msa.ids(), ["a", "b"]);
        // --out sends the FASTA to disk; stdout keeps only the census.
        let outfile = dir.join("trimmed.fa");
        let with_out =
            run_str(&["trim", input.to_str().unwrap(), "--out", outfile.to_str().unwrap()]);
        assert!(with_out.contains("; trim: dropped 2 rows"), "{with_out}");
        let written = std::fs::read_to_string(&outfile).unwrap();
        assert_eq!(fasta::parse_alignment(&written).unwrap().num_rows(), 2);
        // --max-dropped 0 makes the run a no-op that keeps every row.
        let frozen = run_str(&["trim", input.to_str().unwrap(), "--max-dropped", "0"]);
        assert!(frozen.contains("; trim: dropped 0 rows"), "{frozen}");
        // --branch-bound never does worse than the greedy pass.
        let bb = run_str(&["trim", input.to_str().unwrap(), "--branch-bound"]);
        assert!(bb.contains("area 8 -> 12"), "{bb}");
    }

    #[test]
    fn trim_rejects_bad_inputs_cleanly() {
        let args = parse(["trim", "/nonexistent/xyz.fa"]).unwrap();
        let mut buf = Vec::new();
        assert!(crate::run(args, &mut buf).unwrap_err().contains("cannot read"));
        let dir = tmpdir().join("trim-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let ragged = dir.join("ragged.fa");
        std::fs::write(&ragged, ">a\nMK-VL\n>b\nMKIL\n").unwrap();
        let args = parse(["trim", ragged.to_str().unwrap()]).unwrap();
        let mut buf = Vec::new();
        let err = crate::run(args, &mut buf).unwrap_err();
        assert!(err.contains("bad alignment"), "{err}");
        assert!(err.contains("ragged"), "{err}");
    }

    #[test]
    fn trim_flag_runs_the_stage_inside_align() {
        let dir = tmpdir();
        let input = dir.join("trimflag.fa");
        std::fs::write(&input, run_str(&["generate", "--n", "8", "--len", "40", "--seed", "13"]))
            .unwrap();
        let out = run_str(&["align", input.to_str().unwrap(), "--p", "2", "--trim"]);
        // The census joins the phase table whether or not rows fall.
        assert!(out.contains("; trim: dropped"), "{out}");
        assert!(out.contains("13-trim"), "{out}");
        let body: String =
            out.lines().filter(|l| !l.starts_with(';')).collect::<Vec<_>>().join("\n");
        fasta::parse_alignment(&body).unwrap();
        // Without the flag the stage stays out of the run.
        let plain = run_str(&["align", input.to_str().unwrap(), "--p", "2"]);
        assert!(!plain.contains("; trim:"), "{plain}");
    }

    #[test]
    fn non_utf8_input_is_a_clean_fasta_error() {
        let dir = tmpdir();
        let input = dir.join("binary.fa");
        std::fs::write(&input, b">a\nMK\xFF\xFEVL\n").unwrap();
        let args = parse(["align", input.to_str().unwrap()]).unwrap();
        let mut buf = Vec::new();
        let err = crate::run(args, &mut buf).unwrap_err();
        assert!(err.contains("bad FASTA"), "{err}");
        assert!(err.contains("not UTF-8"), "{err}");
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let args = parse(["align", "/nonexistent/xyz.fa"]).unwrap();
        let mut buf = Vec::new();
        let err = crate::run(args, &mut buf).unwrap_err();
        assert!(err.contains("cannot read"));
    }
}
