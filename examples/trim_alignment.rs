//! Trimming an alignment: MaxAlign-style alignment-area optimization.
//!
//! *Alignment area* is `retained rows × gap-free columns`. Fragment
//! rows — short reads, partial domains — pin most columns gapped, so
//! excluding a few of them can multiply the usable (gap-free) part of
//! an alignment. This example trims a gappy alignment standalone with
//! [`trim_msa`], shows the branch-and-bound refinement knob, and runs
//! the same stage inside the pipeline via `SadConfig::with_trim`.
//!
//! Run with: `cargo run --release --example trim_alignment [aligned.fasta]`
//! (without an argument a gappy demo alignment is built in-memory).

use sample_align_d::align::trim::alignment_area;
use sample_align_d::bioseq::alphabet::GAP_CODE;
use sample_align_d::prelude::*;

/// A clean family plus two fragment rows covering only the first third
/// of the columns — the shape read merges produce, and one where only
/// dropping the fragments *together* pays (pair synergy).
fn demo_alignment() -> Msa {
    let fam = Family::generate(&FamilyConfig {
        n_seqs: 6,
        avg_len: 60,
        relatedness: 250.0,
        indel_rate: 0.0,
        seed: 21,
        ..Default::default()
    });
    let width = fam.reference.num_cols();
    let mut ids = fam.reference.ids().to_vec();
    let mut rows = fam.reference.rows().to_vec();
    for f in 0..2 {
        let mut row = rows[f].clone();
        for cell in row.iter_mut().skip(width / 3) {
            *cell = GAP_CODE;
        }
        ids.push(format!("frag{f}"));
        rows.push(row);
    }
    Msa::from_rows(ids, rows)
}

fn main() {
    let msa = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            fasta::parse_alignment(&text).unwrap_or_else(|e| panic!("bad alignment in {path}: {e}"))
        }
        None => {
            eprintln!("(no input given — building a gappy demo alignment)");
            demo_alignment()
        }
    };
    let (area, free) = alignment_area(&msa);
    eprintln!(
        "input: {} rows x {} cols, {free} gap-free columns, area {area}",
        msa.num_rows(),
        msa.num_cols()
    );

    // Greedy trim: per-row gains plus pair/triple synergy lookahead.
    let outcome = trim_msa(&msa, &TrimConfig::default());
    eprintln!(
        "greedy: dropped {} rows, gained {} gap-free columns, area {} -> {}",
        outcome.rows_dropped(),
        outcome.cols_gained(),
        outcome.area_before,
        outcome.area_after
    );
    for d in &outcome.dropped {
        eprintln!("  dropped {} (area {:+})", d.id, d.area_gain);
    }

    // The bounded branch-and-bound refinement never loses to greedy.
    let refined = trim_msa(&msa, &TrimConfig { branch_bound: true, ..Default::default() });
    eprintln!("branch-and-bound: area {} (never below greedy)", refined.area_after);
    assert!(refined.area_after >= outcome.area_after);

    // The same stage runs inside the pipeline, on any backend, after the
    // root alignment is glued — reported as `13-trim` in the phase table.
    let fam = Family::generate(&FamilyConfig {
        n_seqs: 12,
        avg_len: 60,
        relatedness: 600.0,
        seed: 22,
        ..Default::default()
    });
    let report = Aligner::new(SadConfig::default().with_trim(TrimConfig::default()))
        .run(&fam.seqs)
        .expect("valid demo family");
    let trim = report.trim.as_ref().expect("trim stage ran");
    eprintln!(
        "in-pipeline: dropped {} rows, area {} -> {}",
        trim.rows_dropped, trim.area_before, trim.area_after
    );

    // Trimmed FASTA to stdout.
    print!("{}", fasta::write_alignment(&outcome.msa));
}
