//! Tree-bipartition iterative refinement (MUSCLE stage 3).
//!
//! For every edge of the guide tree, the alignment's rows are split into
//! the two leaf sets induced by removing that edge, each side is collapsed
//! to a profile (dropping columns that became all-gap), the two profiles
//! are re-aligned, and the result is kept iff the *cross-partition*
//! sum-of-pairs score improved. Within-partition scores are unchanged by
//! construction, so scoring only cross pairs is an exact delta computation
//! at a quarter of the cost.

use crate::dp::{BandPolicy, DpArena, DpKernel};
use crate::papro::align_and_merge_with_kernel;
use bioseq::msa::pairwise_row_score;
use bioseq::{GapPenalties, Msa, SubstMatrix, Work};
use phylo::Tree;
use std::collections::HashMap;

/// Result of a refinement run.
#[derive(Debug, Clone)]
pub struct RefineOutcome {
    /// The refined alignment (row order may differ from the input; ids are
    /// preserved).
    pub msa: Msa,
    /// Full passes over the bipartition list that were executed.
    pub passes: usize,
    /// Number of accepted realignments.
    pub improvements: usize,
    /// Work performed.
    pub work: Work,
}

/// Refine `msa` along the bipartitions of `tree` for at most `max_passes`
/// passes (stopping early once a pass yields no improvement). Tree leaf
/// `i` corresponds to the row whose id equals `seq_ids[i]`.
///
/// # Panics
/// Panics if any `seq_ids[i]` has no matching row.
pub fn refine(
    msa: &Msa,
    tree: &Tree,
    seq_ids: &[String],
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    max_passes: usize,
) -> RefineOutcome {
    refine_with(
        msa,
        tree,
        seq_ids,
        matrix,
        gaps,
        max_passes,
        BandPolicy::Full,
        DpKernel::default(),
        &mut DpArena::new(),
    )
}

/// [`refine`] under an explicit [`BandPolicy`] and [`DpKernel`], reusing
/// the caller's [`DpArena`] across every bipartition realignment.
#[allow(clippy::too_many_arguments)]
pub fn refine_with(
    msa: &Msa,
    tree: &Tree,
    seq_ids: &[String],
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    max_passes: usize,
    band: BandPolicy,
    kernel: DpKernel,
    arena: &mut DpArena,
) -> RefineOutcome {
    let mut work = Work::ZERO;
    let mut current = msa.clone();
    let mut passes = 0;
    let mut improvements = 0;
    if max_passes == 0 || msa.num_rows() < 3 {
        return RefineOutcome { msa: current, passes, improvements, work };
    }
    let bipartitions = tree.bipartitions();
    for _ in 0..max_passes {
        passes += 1;
        let mut improved_this_pass = false;
        for (inside, outside) in &bipartitions {
            if inside.is_empty() || outside.is_empty() {
                continue;
            }
            let row_of: HashMap<&str, usize> =
                current.ids().iter().enumerate().map(|(r, id)| (id.as_str(), r)).collect();
            let rows_in: Vec<usize> = inside.iter().map(|&l| row_of[seq_ids[l].as_str()]).collect();
            let rows_out: Vec<usize> =
                outside.iter().map(|&l| row_of[seq_ids[l].as_str()]).collect();
            let before = cross_score(&current, &rows_in, &rows_out, matrix, gaps, &mut work);
            let sub_in = extract_rows(&current, &rows_in, &mut work);
            let sub_out = extract_rows(&current, &rows_out, &mut work);
            let merged = align_and_merge_with_kernel(
                &sub_in, &sub_out, matrix, gaps, band, kernel, arena, &mut work,
            );
            let merged_in: Vec<usize> = (0..rows_in.len()).collect();
            let merged_out: Vec<usize> = (rows_in.len()..merged.num_rows()).collect();
            let after = cross_score(&merged, &merged_in, &merged_out, matrix, gaps, &mut work);
            if after > before {
                current = merged;
                improvements += 1;
                improved_this_pass = true;
            }
        }
        if !improved_this_pass {
            break;
        }
    }
    RefineOutcome { msa: current, passes, improvements, work }
}

/// Leave-one-out refinement: every sequence in turn is pulled out of the
/// alignment and re-aligned against the profile of the rest; the move is
/// kept iff the sequence's summed pair score against the others improves.
///
/// This is the "sequential heuristic to improve the quality" the paper's
/// future-work section sketches; it needs no guide tree, so Sample-Align-D
/// can run it on the glued global alignment.
pub fn leave_one_out(
    msa: &Msa,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    max_passes: usize,
) -> RefineOutcome {
    leave_one_out_with(
        msa,
        matrix,
        gaps,
        max_passes,
        BandPolicy::Full,
        DpKernel::default(),
        &mut DpArena::new(),
    )
}

/// [`leave_one_out`] under an explicit [`BandPolicy`] and [`DpKernel`],
/// reusing the caller's [`DpArena`].
pub fn leave_one_out_with(
    msa: &Msa,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    max_passes: usize,
    band: BandPolicy,
    kernel: DpKernel,
    arena: &mut DpArena,
) -> RefineOutcome {
    let mut work = Work::ZERO;
    let mut current = msa.clone();
    let mut passes = 0;
    let mut improvements = 0;
    if max_passes == 0 || msa.num_rows() < 2 {
        return RefineOutcome { msa: current, passes, improvements, work };
    }
    let n = msa.num_rows();
    for _ in 0..max_passes {
        passes += 1;
        let mut improved_this_pass = false;
        for r in 0..n {
            // Score of row r against all others, before.
            let others: Vec<usize> = (0..n).filter(|&x| x != r).collect();
            let before = cross_score(&current, &[r], &others, matrix, gaps, &mut work);
            let single = extract_rows(&current, &[r], &mut work);
            let rest = extract_rows(&current, &others, &mut work);
            let merged = align_and_merge_with_kernel(
                &single, &rest, matrix, gaps, band, kernel, arena, &mut work,
            );
            let merged_rest: Vec<usize> = (1..merged.num_rows()).collect();
            let after = cross_score(&merged, &[0], &merged_rest, matrix, gaps, &mut work);
            if after > before {
                current = merged;
                improvements += 1;
                improved_this_pass = true;
                // Rows were permuted (r moved to the front); keep scanning
                // by id-independent index — correctness only needs every
                // row visited per pass, and the next pass rescans all.
            }
        }
        if !improved_this_pass {
            break;
        }
    }
    RefineOutcome { msa: current, passes, improvements, work }
}

/// Sum of pairwise scores across the partition (pairs with one row on each
/// side).
fn cross_score(
    msa: &Msa,
    rows_a: &[usize],
    rows_b: &[usize],
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    work: &mut Work,
) -> i64 {
    let mut total = 0i64;
    for &i in rows_a {
        for &j in rows_b {
            total += pairwise_row_score(msa.row(i), msa.row(j), matrix, gaps);
        }
    }
    work.col_ops += (rows_a.len() * rows_b.len() * msa.num_cols()) as u64;
    total
}

/// Extract a subset of rows as a standalone alignment, dropping columns
/// that became all-gap.
fn extract_rows(msa: &Msa, rows: &[usize], work: &mut Work) -> Msa {
    let ids = rows.iter().map(|&r| msa.ids()[r].clone()).collect();
    let data = rows.iter().map(|&r| msa.row(r).to_vec()).collect();
    let mut sub = Msa::from_rows(ids, data);
    sub.drop_all_gap_columns();
    work.col_ops += (rows.len() * msa.num_cols()) as u64;
    sub
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::kmer_distance_matrix;
    use crate::progressive::{progressive_align, ProgressiveConfig};
    use bioseq::{CompressedAlphabet, Sequence};
    use phylo::upgma;

    fn build(texts: &[&str]) -> (Vec<Sequence>, Tree, Msa) {
        let seqs: Vec<Sequence> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| Sequence::from_str(format!("s{i}"), t).unwrap())
            .collect();
        let mut w = Work::ZERO;
        let d = kmer_distance_matrix(&seqs, 2, CompressedAlphabet::Identity, &mut w);
        let tree = upgma(&d);
        let msa = progressive_align(&seqs, &tree, &ProgressiveConfig::default(), &mut w);
        (seqs, tree, msa)
    }

    fn ids(seqs: &[Sequence]) -> Vec<String> {
        seqs.iter().map(|s| s.id.clone()).collect()
    }

    #[test]
    fn never_decreases_sp_score() {
        let (seqs, tree, msa) =
            build(&["MKVLAWGKVLMM", "MKILAWKILM", "MKVLWGKVLM", "MKILAWGKILWW", "MKVAWGKVL"]);
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties::default();
        let before = msa.sp_score(&matrix, gaps);
        let out = refine(&msa, &tree, &ids(&seqs), &matrix, gaps, 4);
        out.msa.validate().unwrap();
        let after = out.msa.sp_score(&matrix, gaps);
        assert!(after >= before, "before {before} after {after}");
    }

    #[test]
    fn preserves_sequences() {
        let (seqs, tree, msa) = build(&["MKVLAWGKVL", "MKILAWKIL", "MKVLWGKVL", "WWPPGGCCWW"]);
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties::default();
        let out = refine(&msa, &tree, &ids(&seqs), &matrix, gaps, 3);
        // Same sequence content regardless of row permutation.
        let mut got: Vec<(String, String)> = (0..out.msa.num_rows())
            .map(|r| (out.msa.ids()[r].clone(), out.msa.ungapped(r).to_letters()))
            .collect();
        got.sort();
        let mut want: Vec<(String, String)> =
            seqs.iter().map(|s| (s.id.clone(), s.to_letters())).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn zero_passes_is_identity() {
        let (seqs, tree, msa) = build(&["MKVLAW", "MKILAW", "MKVLCW"]);
        let out =
            refine(&msa, &tree, &ids(&seqs), &SubstMatrix::blosum62(), GapPenalties::default(), 0);
        assert_eq!(out.msa, msa);
        assert_eq!(out.passes, 0);
        assert_eq!(out.improvements, 0);
    }

    #[test]
    fn small_inputs_skip_gracefully() {
        let (seqs, tree, msa) = build(&["MKVLAW", "MKILAW"]);
        let out =
            refine(&msa, &tree, &ids(&seqs), &SubstMatrix::blosum62(), GapPenalties::default(), 5);
        assert_eq!(out.msa, msa);
    }

    #[test]
    fn converges_and_stops_early() {
        let (seqs, tree, msa) = build(&["MKVLAW", "MKVLAW", "MKVLAW", "MKVLAW"]);
        // Identical sequences: nothing can improve, so exactly one pass.
        let out =
            refine(&msa, &tree, &ids(&seqs), &SubstMatrix::blosum62(), GapPenalties::default(), 10);
        assert_eq!(out.passes, 1);
        assert_eq!(out.improvements, 0);
    }

    #[test]
    fn leave_one_out_never_decreases_sp() {
        let (_, _, msa) = build(&["MKVLAWGKVLMM", "MKILAWKILM", "MKVLWGKVLM", "MKILAWGKILWW"]);
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties::default();
        let before = msa.sp_score(&matrix, gaps);
        let out = leave_one_out(&msa, &matrix, gaps, 3);
        out.msa.validate().unwrap();
        assert!(out.msa.sp_score(&matrix, gaps) >= before);
    }

    #[test]
    fn leave_one_out_repairs_a_bad_row() {
        // Start from a deliberately broken alignment: the last row shifted
        // far out of register.
        let good = bioseq::fasta::parse_alignment(">a\nMKVLAW\n>b\nMKVLAW\n").unwrap();
        let mut rows: Vec<Vec<u8>> = good.rows().to_vec();
        let mut bad = vec![bioseq::GAP_CODE; 6];
        bad.extend_from_slice(&rows[0]);
        for r in rows.iter_mut() {
            r.extend(std::iter::repeat_n(bioseq::GAP_CODE, 6));
        }
        rows.push(bad);
        let broken = Msa::from_rows(vec!["a".into(), "b".into(), "c".into()], rows);
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties::default();
        let out = leave_one_out(&broken, &matrix, gaps, 4);
        assert!(out.improvements > 0, "the shifted row must be repaired");
        assert!(out.msa.sp_score(&matrix, gaps) > broken.sp_score(&matrix, gaps));
        // After repair the three identical sequences align perfectly.
        assert!((out.msa.average_identity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leave_one_out_preserves_content() {
        let (seqs, _, msa) = build(&["MKVLAWGKVL", "MKILAWKIL", "WWPPGGCCWW"]);
        let out = leave_one_out(&msa, &SubstMatrix::blosum62(), GapPenalties::default(), 2);
        let mut got: Vec<String> =
            (0..out.msa.num_rows()).map(|r| out.msa.ungapped(r).to_letters()).collect();
        got.sort();
        let mut want: Vec<String> = seqs.iter().map(|s| s.to_letters()).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn work_is_counted() {
        let (seqs, tree, msa) = build(&["MKVLAWGKVL", "MKILAWKIL", "MKVLWGKVL"]);
        let out =
            refine(&msa, &tree, &ids(&seqs), &SubstMatrix::blosum62(), GapPenalties::default(), 2);
        assert!(out.work.col_ops > 0);
        assert!(out.work.dp_cells > 0);
    }
}
