//! Integration invariants of the vertical (length-wise) decomposition:
//! lossless block cutting, well-formed glue output, zero-anchor byte
//! parity, and the anchored read-bucket merge quality floor.

use proptest::prelude::*;
use sample_align_d::prelude::*;

/// A family of related sequences built from one random base row with
/// light per-row point substitutions — long conserved stretches, so the
/// anchor scan has something to find (rose families are too slow to
/// regenerate per proptest case). Each edit encodes `(position, code)` as
/// `position * 20 + code`.
fn related_family(base: &[u8], edit_sets: &[Vec<usize>]) -> Vec<Sequence> {
    edit_sets
        .iter()
        .enumerate()
        .map(|(i, edits)| {
            let mut codes = base.to_vec();
            for &e in edits {
                let at = (e / 20) % codes.len();
                codes[at] = (e % 20) as u8;
            }
            Sequence::from_codes(format!("s{i}"), codes)
        })
        .collect()
}

/// Strategy: arbitrary unrelated sequences (anchors unlikely but allowed).
fn arb_any_family() -> impl Strategy<Value = Vec<Sequence>> {
    prop::collection::vec(prop::collection::vec(0u8..20, 10..80), 2..8).prop_map(|codes| {
        codes
            .into_iter()
            .enumerate()
            .map(|(i, c)| Sequence::from_codes(format!("q{i}"), c))
            .collect()
    })
}

fn small_vcfg(max_block: usize, seam_window: usize) -> VerticalConfig {
    VerticalConfig {
        min_anchor_len: 6,
        min_anchor_spacing: 16,
        max_block_len: max_block,
        seam_window,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (a) Block cutting is lossless: concatenating each input's block
    /// slices reproduces the input byte-for-byte, for any input and any
    /// block-length cap.
    #[test]
    fn block_cutting_is_lossless(seqs in arb_any_family(), cap in 1usize..300) {
        let vcfg = small_vcfg(cap, 4);
        let mut work = bioseq::Work::ZERO;
        let plan = sad_core::decomp::plan_blocks(&seqs, &vcfg, &mut work);
        prop_assert!(!plan.blocks.is_empty());
        prop_assert_eq!(plan.anchors.len() + 1, plan.blocks.len());
        for (i, seq) in seqs.iter().enumerate() {
            let mut glued: Vec<u8> = Vec::new();
            for block in &plan.blocks {
                prop_assert_eq!(&block[i].id, &seq.id);
                glued.extend_from_slice(block[i].codes());
            }
            prop_assert_eq!(glued.as_slice(), seq.codes());
        }
    }

    /// (b) Glue output is a well-formed MSA: equal row lengths, rows
    /// ungapping to the inputs, and no all-gap columns surviving the seam
    /// refinement.
    #[test]
    fn glued_alignment_is_well_formed(
        base in prop::collection::vec(0u8..20, 120..260),
        edit_sets in prop::collection::vec(
            prop::collection::vec(0usize..20_000, 0..12), 2..6),
        seam in 0usize..12,
    ) {
        let seqs = related_family(&base, &edit_sets);
        let cfg = SadConfig::default().with_vertical(small_vcfg(60, seam));
        let report = Aligner::new(cfg).run(&seqs).expect("valid input");
        prop_assert!(report.msa.validate().is_ok());
        prop_assert_eq!(report.msa.num_rows(), seqs.len());
        for (i, seq) in seqs.iter().enumerate() {
            let ungapped = report.msa.ungapped(i);
            prop_assert_eq!(ungapped.codes(), seq.codes());
        }
        let gap = bioseq::alphabet::GAP_CODE;
        for c in 0..report.msa.num_cols() {
            prop_assert!(
                (0..report.msa.num_rows()).any(|r| report.msa.row(r)[c] != gap),
                "all-gap column {} in glued output", c
            );
        }
        let v = report.vertical.expect("vertical census recorded");
        prop_assert_eq!(v.anchors + 1, v.blocks());
    }

    /// (c) Vertical mode with zero anchors is byte-identical to vertical
    /// off, on both the sequential and the rayon backend.
    #[test]
    fn zero_anchors_mean_byte_parity(seqs in arb_any_family(), threads in 1usize..4) {
        // An anchor k-mer longer than every sequence can never match.
        let unanchorable =
            VerticalConfig { min_anchor_len: 512, ..VerticalConfig::default() };
        let plain_seq = Aligner::new(SadConfig::default()).run(&seqs).expect("valid input");
        let vert_seq = Aligner::new(SadConfig::default().with_vertical(unanchorable))
            .run(&seqs)
            .expect("valid input");
        prop_assert_eq!(&plain_seq.msa, &vert_seq.msa);
        let v = vert_seq.vertical.expect("census recorded even when degraded");
        prop_assert_eq!((v.anchors, v.blocks(), v.seam_windows), (0, 1, 0));

        let plain_ray = Aligner::new(SadConfig::default())
            .backend(Backend::Rayon { threads })
            .run(&seqs)
            .expect("valid input");
        let vert_ray = Aligner::new(SadConfig::default().with_vertical(unanchorable))
            .backend(Backend::Rayon { threads })
            .run(&seqs)
            .expect("valid input");
        prop_assert_eq!(&plain_ray.msa, &vert_ray.msa);
    }
}

/// The anchored read-bucket merge (seeding the fine-tune profile DP with
/// the decomp anchor scan) must not regress read-recovery quality at the
/// recorded cap-128 operating point.
#[test]
fn anchored_merge_does_not_regress_read_quality_at_cap_128() {
    let sources = Family::generate(&FamilyConfig {
        n_seqs: 4,
        avg_len: 300,
        relatedness: 800.0,
        seed: 7,
        ..Default::default()
    });
    let set = ReadSet::from_family(
        &sources,
        &ReadSimConfig { total_reads: Some(300), seed: 7, ..Default::default() },
    );
    let run = |anchored: bool| {
        let cfg = SadConfig::default().with_max_bucket(Some(128)).with_anchored_merge(anchored);
        let report = Aligner::new(cfg)
            .backend(Backend::Rayon { threads: 4 })
            .run(&set.reads)
            .expect("valid read set");
        mean_read_pair_q(&set, &report.msa, 200).expect("overlapping read pairs exist")
    };
    let q_off = run(false);
    let q_on = run(true);
    assert!(
        q_on >= q_off - 0.02,
        "anchored merge regressed mean pair Q: {q_on:.4} (on) vs {q_off:.4} (off)"
    );
}
