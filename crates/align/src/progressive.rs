//! Progressive alignment along a guide tree.
//!
//! Leaves start as single-row alignments; every internal tree node
//! profile-aligns its children's alignments. Sequence weighting is
//! pluggable (uniform, Henikoff position-based, or fixed per-sequence
//! weights such as CLUSTALW's tree weights).

use crate::dp::{BandPolicy, DpArena, DpKernel};
use crate::papro::{align_profiles_with_kernel, merge_msas};
use crate::profile::{henikoff_weights, Profile};
use bioseq::{GapPenalties, Msa, Sequence, SubstMatrix, Work};
use phylo::Tree;

/// How sequences are weighted when building profiles during progressive
/// merging.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum WeightScheme {
    /// All sequences weigh 1.
    #[default]
    Uniform,
    /// Henikoff position-based weights recomputed per sub-alignment.
    Henikoff,
    /// Fixed per-input-sequence weights (index-aligned with the input
    /// slice), e.g. CLUSTALW tree weights.
    Fixed(Vec<f64>),
}

/// Configuration for a progressive alignment pass.
#[derive(Debug, Clone)]
pub struct ProgressiveConfig {
    /// Substitution matrix.
    pub matrix: SubstMatrix,
    /// Affine gap penalties.
    pub gaps: GapPenalties,
    /// Sequence weighting scheme.
    pub weights: WeightScheme,
    /// Band policy for every profile–profile DP along the tree.
    pub band: BandPolicy,
    /// DP kernel for every profile–profile DP along the tree.
    pub kernel: DpKernel,
}

impl Default for ProgressiveConfig {
    fn default() -> Self {
        ProgressiveConfig {
            matrix: SubstMatrix::blosum62(),
            gaps: GapPenalties::default(),
            weights: WeightScheme::Uniform,
            band: BandPolicy::default(),
            kernel: DpKernel::default(),
        }
    }
}

/// Progressively align `seqs` guided by `tree` (leaf `i` of the tree is
/// `seqs[i]`). Returns the alignment with rows restored to input order.
///
/// # Panics
/// Panics if the tree's leaf count differs from `seqs.len()`, or if a
/// `Fixed` weight vector has the wrong arity.
pub fn progressive_align(
    seqs: &[Sequence],
    tree: &Tree,
    cfg: &ProgressiveConfig,
    work: &mut Work,
) -> Msa {
    progressive_align_with_arena(seqs, tree, cfg, &mut DpArena::new(), work)
}

/// [`progressive_align`] reusing the caller's [`DpArena`]: engines thread
/// one arena through every stage so the whole run allocates DP scratch
/// only while the arena grows to its high-water mark.
pub fn progressive_align_with_arena(
    seqs: &[Sequence],
    tree: &Tree,
    cfg: &ProgressiveConfig,
    arena: &mut DpArena,
    work: &mut Work,
) -> Msa {
    assert_eq!(tree.n_leaves(), seqs.len(), "tree must cover the input");
    if let WeightScheme::Fixed(w) = &cfg.weights {
        assert_eq!(w.len(), seqs.len(), "one fixed weight per sequence");
    }
    if seqs.len() == 1 {
        return Msa::from_sequence(&seqs[0]);
    }
    // Per tree node: the sub-alignment plus the input indices of its rows
    // (row r of the Msa is seqs[rows[r]]).
    let mut state: Vec<Option<(Msa, Vec<usize>)>> = vec![None; tree.n_nodes()];
    for id in tree.postorder() {
        let node = tree.node(id);
        match node.children {
            None => {
                let leaf = node.leaf.expect("leaf");
                state[id] = Some((Msa::from_sequence(&seqs[leaf]), vec![leaf]));
            }
            Some((a, b)) => {
                let (msa_a, rows_a) = state[a].take().expect("child aligned");
                let (msa_b, rows_b) = state[b].take().expect("child aligned");
                let wa = row_weights(&msa_a, &rows_a, cfg, work);
                let wb = row_weights(&msa_b, &rows_b, cfg, work);
                let pa = Profile::from_msa_weighted(&msa_a, &wa, work);
                let pb = Profile::from_msa_weighted(&msa_b, &wb, work);
                let aln = align_profiles_with_kernel(
                    &pa,
                    &pb,
                    &cfg.matrix,
                    cfg.gaps,
                    cfg.band,
                    cfg.kernel,
                    arena,
                );
                *work += aln.work;
                let merged = merge_msas(&msa_a, &msa_b, &aln.ops, work);
                let mut rows = rows_a;
                rows.extend(rows_b);
                state[id] = Some((merged, rows));
            }
        }
    }
    let (msa, rows) = state[tree.root()].take().expect("root aligned");
    restore_input_order(msa, &rows)
}

fn row_weights(msa: &Msa, rows: &[usize], cfg: &ProgressiveConfig, work: &mut Work) -> Vec<f64> {
    match &cfg.weights {
        WeightScheme::Uniform => vec![1.0; msa.num_rows()],
        WeightScheme::Henikoff => henikoff_weights(msa, work),
        WeightScheme::Fixed(w) => rows.iter().map(|&i| w[i]).collect(),
    }
}

/// Reorder an alignment's rows so that row `r` corresponds to input index
/// `r` (given the current row → input-index map).
fn restore_input_order(msa: Msa, rows: &[usize]) -> Msa {
    let n = msa.num_rows();
    debug_assert_eq!(rows.len(), n);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&r| rows[r]);
    let ids = order.iter().map(|&r| msa.ids()[r].clone()).collect();
    let out_rows = order.iter().map(|&r| msa.row(r).to_vec()).collect();
    Msa::from_rows(ids, out_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::kmer_distance_matrix;
    use bioseq::CompressedAlphabet;
    use phylo::upgma;

    fn seqs(texts: &[&str]) -> Vec<Sequence> {
        texts
            .iter()
            .enumerate()
            .map(|(i, t)| Sequence::from_str(format!("s{i}"), t).unwrap())
            .collect()
    }

    fn align(texts: &[&str], cfg: &ProgressiveConfig) -> Msa {
        let ss = seqs(texts);
        let mut w = Work::ZERO;
        let d = kmer_distance_matrix(&ss, 2, CompressedAlphabet::Identity, &mut w);
        let tree = upgma(&d);
        progressive_align(&ss, &tree, cfg, &mut w)
    }

    #[test]
    fn aligns_identical_sequences_trivially() {
        let m = align(&["MKVLAW", "MKVLAW", "MKVLAW"], &ProgressiveConfig::default());
        assert_eq!(m.num_cols(), 6);
        m.validate().unwrap();
        assert!((m.average_identity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn preserves_every_input_sequence() {
        let texts = ["MKVLAWGKVL", "MKILAWKIL", "MKVLWGKVL", "MKILAWGKIL"];
        let m = align(&texts, &ProgressiveConfig::default());
        m.validate().unwrap();
        assert_eq!(m.num_rows(), 4);
        for (i, t) in texts.iter().enumerate() {
            assert_eq!(m.ungapped(i).to_letters(), *t, "row {i}");
            assert_eq!(m.ids()[i], format!("s{i}"));
        }
    }

    #[test]
    fn rows_restored_to_input_order() {
        // Input order deliberately anti-correlated with similarity
        // clusters: 0 and 2 similar, 1 and 3 similar.
        let texts = ["MKVLAWGKVL", "PPPPGGPPWW", "MKVLAWGKIL", "PPPPGGPPWV"];
        let m = align(&texts, &ProgressiveConfig::default());
        for (i, _) in texts.iter().enumerate() {
            assert_eq!(m.ids()[i], format!("s{i}"));
        }
    }

    #[test]
    fn related_sequences_align_with_high_identity() {
        let texts = ["MKVLAWGKVLSS", "MKVLAWGKVLS", "MKVLAWGKVL", "MKVLAWGKV"];
        let m = align(&texts, &ProgressiveConfig::default());
        assert!(m.average_identity() > 0.9, "identity {}", m.average_identity());
    }

    #[test]
    fn single_and_pair_edge_cases() {
        let one = align(&["MKVL"], &ProgressiveConfig::default());
        assert_eq!(one.num_rows(), 1);
        let two = align(&["MKVLAW", "MKAW"], &ProgressiveConfig::default());
        assert_eq!(two.num_rows(), 2);
        two.validate().unwrap();
    }

    #[test]
    fn henikoff_scheme_produces_valid_alignment() {
        let cfg = ProgressiveConfig { weights: WeightScheme::Henikoff, ..Default::default() };
        let m = align(&["MKVLAWGKVL", "MKILAWKIL", "MKVLWGKVL", "WWPPGGCCWW"], &cfg);
        m.validate().unwrap();
        assert_eq!(m.num_rows(), 4);
    }

    #[test]
    fn fixed_weights_validated_and_used() {
        let texts = ["MKVLAW", "MKILAW", "MKVLCW"];
        let ss = seqs(&texts);
        let mut w = Work::ZERO;
        let d = kmer_distance_matrix(&ss, 2, CompressedAlphabet::Identity, &mut w);
        let tree = upgma(&d);
        let cfg = ProgressiveConfig {
            weights: WeightScheme::Fixed(vec![1.0, 2.0, 0.5]),
            ..Default::default()
        };
        let m = progressive_align(&ss, &tree, &cfg, &mut w);
        m.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "one fixed weight per sequence")]
    fn fixed_weight_arity_checked() {
        let ss = seqs(&["MKVL", "MKIL"]);
        let mut w = Work::ZERO;
        let d = kmer_distance_matrix(&ss, 2, CompressedAlphabet::Identity, &mut w);
        let tree = upgma(&d);
        let cfg =
            ProgressiveConfig { weights: WeightScheme::Fixed(vec![1.0]), ..Default::default() };
        progressive_align(&ss, &tree, &cfg, &mut w);
    }

    #[test]
    fn work_accumulates() {
        let ss = seqs(&["MKVLAW", "MKILAW", "MKVLCW"]);
        let mut w = Work::ZERO;
        let d = kmer_distance_matrix(&ss, 2, CompressedAlphabet::Identity, &mut w);
        let tree = upgma(&d);
        progressive_align(&ss, &tree, &ProgressiveConfig::default(), &mut w);
        assert!(w.dp_cells > 0);
        assert!(w.col_ops > 0);
    }
}
