//! Tiny statistics helpers for the evaluation harness (Table 1, Fig. 1,
//! Fig. 3 of the paper).

use serde::{Deserialize, Serialize};

/// Five-number-ish summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl Summary {
    /// Summarise a sample. Returns `None` for empty input.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let n = values.len();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        let mean = sum / n as f64;
        let variance = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        Some(Summary { n, min, max, mean, variance, stddev: variance.sqrt() })
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} min={:.5} max={:.5} mean={:.5} var={:.5} sd={:.5}",
            self.n, self.min, self.max, self.mean, self.variance, self.stddev
        )
    }
}

/// Mean squared difference of `a` relative to `b` (the paper's "variance
/// w.r.t. centralized") together with its square root.
///
/// Returns `None` when the slices differ in length or are empty.
pub fn variance_wrt(a: &[f64], b: &[f64]) -> Option<(f64, f64)> {
    if a.len() != b.len() || a.is_empty() {
        return None;
    }
    let var = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64;
    Some((var, var.sqrt()))
}

/// A fixed-width histogram over `[lo, hi)` with `bins` buckets; values
/// outside the range are clamped into the terminal buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive lower bound of the first bin.
    pub lo: f64,
    /// Exclusive upper bound of the last bin.
    pub hi: f64,
    /// Per-bin counts.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Build a histogram of `values`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn build(values: &[f64], lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "hi must exceed lo");
        let mut counts = vec![0u64; bins];
        let width = (hi - lo) / bins as f64;
        for &v in values {
            let idx = (((v - lo) / width).floor() as i64).clamp(0, bins as i64 - 1) as usize;
            counts[idx] += 1;
        }
        Histogram { lo, hi, counts }
    }

    /// Bin centre of bucket `i`.
    pub fn center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Render an ASCII bar chart (used by the figure benches to show the
    /// distribution shape in the terminal).
    pub fn ascii(&self, bar_width: usize) -> String {
        use std::fmt::Write;
        let max = self.counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat((c as usize * bar_width).div_ceil(max as usize));
            let _ = writeln!(out, "{:>8.3} | {:<bar_width$} {}", self.center(i), bar, c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert!((s.variance - 1.25).abs() < 1e-12);
        assert!((s.stddev - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_constant() {
        let s = Summary::of(&[7.0; 10]).unwrap();
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.min, s.max);
    }

    #[test]
    fn variance_wrt_basics() {
        let (v, sd) = variance_wrt(&[1.0, 2.0], &[0.0, 0.0]).unwrap();
        assert!((v - 2.5).abs() < 1e-12);
        assert!((sd - 2.5f64.sqrt()).abs() < 1e-12);
        assert!(variance_wrt(&[1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn histogram_counts_and_clamping() {
        let h = Histogram::build(&[0.1, 0.1, 0.9, -5.0, 5.0], 0.0, 1.0, 2);
        assert_eq!(h.counts, vec![3, 2]); // -5 clamps low, 5 clamps high
        assert_eq!(h.total(), 5);
        assert!((h.center(0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn histogram_ascii_renders_rows() {
        let h = Histogram::build(&[0.2, 0.7, 0.8], 0.0, 1.0, 4);
        let art = h.ascii(10);
        assert_eq!(art.lines().count(), 4);
    }
}
