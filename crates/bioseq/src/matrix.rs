//! Substitution matrices, gap penalties and background frequencies.
//!
//! Matrices are stored over the 21 sequence codes (20 amino acids + `X`) in
//! the canonical `ARNDCQEGHILKMFPSTWYV` order. Scores involving `X` are 0
//! (the BLAST convention of "no information").

use crate::alphabet::CODE_COUNT;
use serde::{Deserialize, Serialize};

/// A symmetric residue substitution matrix in integer half-bit style units.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubstMatrix {
    /// Human-readable name, e.g. `"BLOSUM62"`.
    pub name: &'static str,
    scores: [[i32; CODE_COUNT]; CODE_COUNT],
}

impl std::fmt::Debug for SubstMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SubstMatrix({})", self.name)
    }
}

/// Raw BLOSUM62 scores over the 20 canonical residues (Henikoff & Henikoff
/// 1992), `ARNDCQEGHILKMFPSTWYV` order.
#[rustfmt::skip]
const BLOSUM62_RAW: [[i32; 20]; 20] = [
    [ 4,-1,-2,-2, 0,-1,-1, 0,-2,-1,-1,-1,-1,-2,-1, 1, 0,-3,-2, 0],
    [-1, 5, 0,-2,-3, 1, 0,-2, 0,-3,-2, 2,-1,-3,-2,-1,-1,-3,-2,-3],
    [-2, 0, 6, 1,-3, 0, 0, 0, 1,-3,-3, 0,-2,-3,-2, 1, 0,-4,-2,-3],
    [-2,-2, 1, 6,-3, 0, 2,-1,-1,-3,-4,-1,-3,-3,-1, 0,-1,-4,-3,-3],
    [ 0,-3,-3,-3, 9,-3,-4,-3,-3,-1,-1,-3,-1,-2,-3,-1,-1,-2,-2,-1],
    [-1, 1, 0, 0,-3, 5, 2,-2, 0,-3,-2, 1, 0,-3,-1, 0,-1,-2,-1,-2],
    [-1, 0, 0, 2,-4, 2, 5,-2, 0,-3,-3, 1,-2,-3,-1, 0,-1,-3,-2,-2],
    [ 0,-2, 0,-1,-3,-2,-2, 6,-2,-4,-4,-2,-3,-3,-2, 0,-2,-2,-3,-3],
    [-2, 0, 1,-1,-3, 0, 0,-2, 8,-3,-3,-1,-2,-1,-2,-1,-2,-2, 2,-3],
    [-1,-3,-3,-3,-1,-3,-3,-4,-3, 4, 2,-3, 1, 0,-3,-2,-1,-3,-1, 3],
    [-1,-2,-3,-4,-1,-2,-3,-4,-3, 2, 4,-2, 2, 0,-3,-2,-1,-2,-1, 1],
    [-1, 2, 0,-1,-3, 1, 1,-2,-1,-3,-2, 5,-1,-3,-1, 0,-1,-3,-2,-2],
    [-1,-1,-2,-3,-1, 0,-2,-3,-2, 1, 2,-1, 5, 0,-2,-1,-1,-1,-1, 1],
    [-2,-3,-3,-3,-2,-3,-3,-3,-1, 0, 0,-3, 0, 6,-4,-2,-2, 1, 3,-1],
    [-1,-2,-2,-1,-3,-1,-1,-2,-2,-3,-3,-1,-2,-4, 7,-1,-1,-4,-3,-2],
    [ 1,-1, 1, 0,-1, 0, 0, 0,-1,-2,-2, 0,-1,-2,-1, 4, 1,-3,-2,-2],
    [ 0,-1, 0,-1,-1,-1,-1,-2,-2,-1,-1,-1,-1,-2,-1, 1, 5,-2,-2, 0],
    [-3,-3,-4,-4,-2,-2,-3,-2,-2,-3,-2,-3,-1, 1,-4,-3,-2,11, 2,-3],
    [-2,-2,-2,-3,-2,-1,-2,-3, 2,-1,-1,-2,-1, 3,-3,-2,-2, 2, 7,-1],
    [ 0,-3,-3,-3,-1,-2,-2,-3,-3, 3, 1,-2, 1,-1,-2,-2, 0,-3,-1, 4],
];

/// Raw PAM250 scores (Dayhoff et al. 1978), `ARNDCQEGHILKMFPSTWYV` order.
#[rustfmt::skip]
const PAM250_RAW: [[i32; 20]; 20] = [
    [ 2,-2, 0, 0,-2, 0, 0, 1,-1,-1,-2,-1,-1,-3, 1, 1, 1,-6,-3, 0],
    [-2, 6, 0,-1,-4, 1,-1,-3, 2,-2,-3, 3, 0,-4, 0, 0,-1, 2,-4,-2],
    [ 0, 0, 2, 2,-4, 1, 1, 0, 2,-2,-3, 1,-2,-3, 0, 1, 0,-4,-2,-2],
    [ 0,-1, 2, 4,-5, 2, 3, 1, 1,-2,-4, 0,-3,-6,-1, 0, 0,-7,-4,-2],
    [-2,-4,-4,-5,12,-5,-5,-3,-3,-2,-6,-5,-5,-4,-3, 0,-2,-8, 0,-2],
    [ 0, 1, 1, 2,-5, 4, 2,-1, 3,-2,-2, 1,-1,-5, 0,-1,-1,-5,-4,-2],
    [ 0,-1, 1, 3,-5, 2, 4, 0, 1,-2,-3, 0,-2,-5,-1, 0, 0,-7,-4,-2],
    [ 1,-3, 0, 1,-3,-1, 0, 5,-2,-3,-4,-2,-3,-5, 0, 1, 0,-7,-5,-1],
    [-1, 2, 2, 1,-3, 3, 1,-2, 6,-2,-2, 0,-2,-2, 0,-1,-1,-3, 0,-2],
    [-1,-2,-2,-2,-2,-2,-2,-3,-2, 5, 2,-2, 2, 1,-2,-1, 0,-5,-1, 4],
    [-2,-3,-3,-4,-6,-2,-3,-4,-2, 2, 6,-3, 4, 2,-3,-3,-2,-2,-1, 2],
    [-1, 3, 1, 0,-5, 1, 0,-2, 0,-2,-3, 5, 0,-5,-1, 0, 0,-3,-4,-2],
    [-1, 0,-2,-3,-5,-1,-2,-3,-2, 2, 4, 0, 6, 0,-2,-2,-1,-4,-2, 2],
    [-3,-4,-3,-6,-4,-5,-5,-5,-2, 1, 2,-5, 0, 9,-5,-3,-3, 0, 7,-1],
    [ 1, 0, 0,-1,-3, 0,-1, 0, 0,-2,-3,-1,-2,-5, 6, 1, 0,-6,-5,-1],
    [ 1, 0, 1, 0, 0,-1, 0, 1,-1,-1,-3, 0,-2,-3, 1, 2, 1,-2,-3,-1],
    [ 1,-1, 0, 0,-2,-1, 0, 0,-1, 0,-2, 0,-1,-3, 0, 1, 3,-5,-3, 0],
    [-6, 2,-4,-7,-8,-5,-7,-7,-3,-5,-2,-3,-4, 0,-6,-2,-5,17, 0,-6],
    [-3,-4,-2,-4, 0,-4,-4,-5, 0,-1,-1,-4,-2, 7,-5,-3,-3, 0,10,-2],
    [ 0,-2,-2,-2,-2,-2,-2,-1,-2, 4, 2,-2, 2,-1,-1,-1, 0,-6,-2, 4],
];

impl SubstMatrix {
    fn from_raw(name: &'static str, raw: &[[i32; 20]; 20]) -> Self {
        let mut scores = [[0i32; CODE_COUNT]; CODE_COUNT];
        for (i, row) in raw.iter().enumerate() {
            for (j, &s) in row.iter().enumerate() {
                scores[i][j] = s;
            }
        }
        // X rows/cols stay 0.
        SubstMatrix { name, scores }
    }

    /// The BLOSUM62 matrix (default for protein alignment).
    pub fn blosum62() -> Self {
        Self::from_raw("BLOSUM62", &BLOSUM62_RAW)
    }

    /// The PAM250 matrix.
    pub fn pam250() -> Self {
        Self::from_raw("PAM250", &PAM250_RAW)
    }

    /// Score of substituting residue code `a` for `b`.
    #[inline]
    pub fn score(&self, a: u8, b: u8) -> i32 {
        self.scores[a as usize][b as usize]
    }

    /// Row of scores for residue `a` against all codes.
    #[inline]
    pub fn row(&self, a: u8) -> &[i32; CODE_COUNT] {
        &self.scores[a as usize]
    }

    /// Verify symmetry (used by tests and on construction of custom
    /// matrices).
    pub fn is_symmetric(&self) -> bool {
        for i in 0..CODE_COUNT {
            for j in 0..i {
                if self.scores[i][j] != self.scores[j][i] {
                    return false;
                }
            }
        }
        true
    }

    /// Build a joint substitution probability model from the log-odds
    /// scores: `q(a,b) ∝ p(a)·p(b)·exp(s(a,b)·λ)`, normalised so that
    /// `Σ q = 1`. Used by the rose-like generator to mutate residues in a
    /// matrix-consistent way. `lambda` is the inverse scale of the matrix
    /// (≈ `ln(2)/2` for half-bit matrices such as BLOSUM62).
    pub fn joint_probabilities(&self, lambda: f64) -> [[f64; 20]; 20] {
        let bg = BACKGROUND_FREQS;
        let mut q = [[0f64; 20]; 20];
        let mut total = 0.0;
        for a in 0..20 {
            for b in 0..20 {
                let v = bg[a] * bg[b] * (self.scores[a][b] as f64 * lambda).exp();
                q[a][b] = v;
                total += v;
            }
        }
        for row in q.iter_mut() {
            for v in row.iter_mut() {
                *v /= total;
            }
        }
        q
    }
}

/// Background amino-acid frequencies (Robinson & Robinson 1991 style),
/// `ARNDCQEGHILKMFPSTWYV` order. Sums to 1 after normalisation.
pub const BACKGROUND_FREQS: [f64; 20] = [
    0.0780, 0.0512, 0.0448, 0.0536, 0.0192, 0.0426, 0.0629, 0.0738, 0.0219, 0.0514, 0.0901, 0.0574,
    0.0224, 0.0385, 0.0520, 0.0712, 0.0584, 0.0132, 0.0321, 0.0653,
];

/// Affine gap penalties, expressed as non-negative costs in the same units
/// as the substitution matrix. A gap of length `g` costs `open + extend·(g-1)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GapPenalties {
    /// Cost of opening a gap (first gap position).
    pub open: i32,
    /// Cost of each subsequent gap position.
    pub extend: i32,
}

impl GapPenalties {
    /// Sensible defaults for BLOSUM62 in half-bit units.
    pub const fn blosum62_default() -> Self {
        GapPenalties { open: 11, extend: 1 }
    }

    /// Cost of a gap of the given length.
    #[inline]
    pub fn cost(&self, len: usize) -> i64 {
        if len == 0 {
            0
        } else {
            self.open as i64 + self.extend as i64 * (len as i64 - 1)
        }
    }
}

impl Default for GapPenalties {
    fn default() -> Self {
        Self::blosum62_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::{char_to_code, X_CODE};

    fn c(ch: char) -> u8 {
        char_to_code(ch).unwrap()
    }

    #[test]
    fn blosum62_spot_checks() {
        let m = SubstMatrix::blosum62();
        assert_eq!(m.score(c('W'), c('W')), 11);
        assert_eq!(m.score(c('A'), c('A')), 4);
        assert_eq!(m.score(c('C'), c('C')), 9);
        assert_eq!(m.score(c('A'), c('W')), -3);
        assert_eq!(m.score(c('I'), c('V')), 3);
        assert_eq!(m.score(c('D'), c('E')), 2);
    }

    #[test]
    fn pam250_spot_checks() {
        let m = SubstMatrix::pam250();
        assert_eq!(m.score(c('W'), c('W')), 17);
        assert_eq!(m.score(c('C'), c('C')), 12);
        assert_eq!(m.score(c('F'), c('Y')), 7);
        assert_eq!(m.score(c('W'), c('C')), -8);
    }

    #[test]
    fn matrices_symmetric() {
        assert!(SubstMatrix::blosum62().is_symmetric());
        assert!(SubstMatrix::pam250().is_symmetric());
    }

    #[test]
    fn diagonal_dominates_row() {
        // For both matrices, the self-score is the maximum of each row over
        // the 20 canonical residues (a property alignment heuristics rely
        // on).
        for m in [SubstMatrix::blosum62(), SubstMatrix::pam250()] {
            for a in 0..20u8 {
                let diag = m.score(a, a);
                for b in 0..20u8 {
                    assert!(m.score(a, b) <= diag, "{}: row {a} col {b}", m.name);
                }
            }
        }
    }

    #[test]
    fn x_scores_zero() {
        let m = SubstMatrix::blosum62();
        for a in 0..=X_CODE {
            assert_eq!(m.score(a, X_CODE), 0);
            assert_eq!(m.score(X_CODE, a), 0);
        }
    }

    #[test]
    fn background_normalises() {
        let sum: f64 = BACKGROUND_FREQS.iter().sum();
        assert!((sum - 1.0).abs() < 0.01, "sum={sum}");
    }

    #[test]
    fn joint_probabilities_are_a_distribution() {
        let q = SubstMatrix::blosum62().joint_probabilities(std::f64::consts::LN_2 / 2.0);
        let total: f64 = q.iter().flatten().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Identical-residue mass should exceed the independent baseline.
        let diag: f64 = (0..20).map(|a| q[a][a]).sum();
        let indep: f64 = BACKGROUND_FREQS.iter().map(|p| p * p).sum();
        assert!(diag > indep, "diag={diag} indep={indep}");
    }

    #[test]
    fn gap_cost_affine() {
        let g = GapPenalties { open: 10, extend: 2 };
        assert_eq!(g.cost(0), 0);
        assert_eq!(g.cost(1), 10);
        assert_eq!(g.cost(2), 12);
        assert_eq!(g.cost(5), 18);
    }
}
