//! The daemon: accept loop, connection readers, worker pool, recovery.
//!
//! Lifecycle of a job:
//!
//! 1. A connection reader parses a `submit`, validates the FASTA, and —
//!    under the queue lock — journals `Accepted` and acknowledges the
//!    client *before* the job becomes visible to workers.
//! 2. A worker pops it (priority + per-client round-robin), journals
//!    `Started`, and runs it on the server's backend, forwarding
//!    `PhaseFinished` observer events to the submitting client.
//! 3. On success the worker writes `<out>/<job>.aligned.fa`, journals
//!    `Finished{digest}`, feeds the result cache, and streams the aligned
//!    FASTA back. On failure (including cancellation) it journals
//!    `Finished{ok:false}` — unless the server was [`ServerHandle::kill`]ed,
//!    which deliberately skips the terminal journal write to simulate a
//!    crash, leaving the journal owing the job.
//!
//! On [`Server::start`], the journal is replayed: finished jobs whose
//! output file still matches the journaled digest are skipped (and warm
//! the cache); everything else still owed is re-queued.

use crate::cache::{CachedResult, ResultCache};
use crate::digest;
use crate::journal::{Journal, JournalEntry, JournalError};
use crate::protocol::{event, parse_request, LineEvent, LineReader, Request};
use crate::queue::{JobQueue, PushError, PushResult, QueuedJob};
use sad_core::{Aligner, Backend, CancelToken, Event, SadConfig, SadError};
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vcluster::{CostModel, VirtualCluster};

/// Which execution substrate the server runs jobs on. A plain-data mirror
/// of [`Backend`] (the distributed arm names a cluster size rather than
/// holding a live cluster), so the config stays `Clone + Debug` and each
/// worker can build its own backend instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeBackend {
    /// Direct single-bucket runs.
    Sequential,
    /// Shared-memory pipeline with this many threads per job.
    Rayon {
        /// Threads per job.
        threads: usize,
    },
    /// Virtual-cluster pipeline with this many nodes per job.
    Distributed {
        /// Cluster nodes per job.
        nodes: usize,
    },
}

impl ServeBackend {
    /// Build a fresh backend instance (each worker gets its own).
    pub fn instantiate(&self) -> Backend {
        match self {
            ServeBackend::Sequential => Backend::Sequential,
            ServeBackend::Rayon { threads } => Backend::Rayon { threads: *threads },
            ServeBackend::Distributed { nodes } => {
                Backend::Distributed(VirtualCluster::new(*nodes, CostModel::beowulf_2008()))
            }
        }
    }

    /// Stable label for logs.
    pub fn label(&self) -> &'static str {
        match self {
            ServeBackend::Sequential => "sequential",
            ServeBackend::Rayon { .. } => "rayon",
            ServeBackend::Distributed { .. } => "distributed",
        }
    }
}

/// Deterministic mid-job breakpoint for tests: while engaged, every job
/// blocks right after journaling `Started` (and streaming its `started`
/// event) until [`JobHold::release`]. This lets a test pin a worker
/// *inside* a job — then kill the server or cancel the job — without any
/// timing race, no matter how fast the alignment itself is. A kill wakes
/// held workers immediately. Disengaged holds are free to pass through.
#[derive(Clone, Default)]
pub struct JobHold {
    gate: Arc<(Mutex<bool>, Condvar)>,
}

impl JobHold {
    /// A disengaged hold (jobs pass straight through).
    pub fn new() -> JobHold {
        JobHold::default()
    }

    /// Block every subsequent job right after its `started` event.
    pub fn engage(&self) {
        *self.gate.0.lock().unwrap() = true;
    }

    /// Let held (and future) jobs proceed.
    pub fn release(&self) {
        *self.gate.0.lock().unwrap() = false;
        self.gate.1.notify_all();
    }

    /// Park until released or `abort` turns true (polled, so a kill that
    /// never notifies still gets through).
    fn wait(&self, abort: impl Fn() -> bool) {
        let (lock, cv) = &*self.gate;
        let mut engaged = lock.lock().unwrap();
        while *engaged && !abort() {
            engaged = cv.wait_timeout(engaged, Duration::from_millis(20)).unwrap().0;
        }
    }
}

impl std::fmt::Debug for JobHold {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHold").field("engaged", &*self.gate.0.lock().unwrap()).finish()
    }
}

/// Everything a server needs to start.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Interface to bind.
    pub host: String,
    /// Port to bind; `0` asks the OS for an ephemeral port (tests).
    pub port: u16,
    /// Path of the write-ahead journal (created if missing).
    pub journal: PathBuf,
    /// Directory for `<job>.aligned.fa` outputs (created if missing).
    pub out_dir: PathBuf,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Bound on pending (queued, not yet started) jobs.
    pub queue_capacity: usize,
    /// Execution substrate for every job.
    pub backend: ServeBackend,
    /// Pipeline configuration for every job.
    pub sad: SadConfig,
    /// Byte budget of the in-memory result cache (`--cache-mb` on the
    /// CLI); least-recently-used results are evicted past it.
    pub cache_budget_bytes: usize,
    /// Start with workers paused (tests stage queues deterministically,
    /// then call [`ServerHandle::release_workers`]).
    pub paused: bool,
    /// Log lifecycle lines to stderr.
    pub log: bool,
    /// Optional mid-job breakpoint (tests only; `None` in production).
    pub hold: Option<JobHold>,
}

impl ServeConfig {
    /// A localhost config with the given journal path and output
    /// directory; everything else defaulted (1 worker, queue of 32,
    /// sequential backend, ephemeral port).
    pub fn new(journal: impl Into<PathBuf>, out_dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            host: "127.0.0.1".into(),
            port: 0,
            journal: journal.into(),
            out_dir: out_dir.into(),
            workers: 1,
            queue_capacity: 32,
            backend: ServeBackend::Sequential,
            sad: SadConfig::default(),
            cache_budget_bytes: crate::cache::DEFAULT_BUDGET_BYTES,
            paused: false,
            log: false,
            hold: None,
        }
    }
}

/// Why a server failed to start or operate.
#[derive(Debug)]
pub enum ServeError {
    /// Socket or filesystem failure.
    Io(std::io::Error),
    /// The journal could not be replayed or appended.
    Journal(JournalError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve I/O error: {e}"),
            ServeError::Journal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<JournalError> for ServeError {
    fn from(e: JournalError) -> Self {
        ServeError::Journal(e)
    }
}

/// What journal replay decided for each journaled job.
#[derive(Debug, Default, Clone)]
pub struct RecoveryReport {
    /// Jobs re-queued because they were accepted but never finished.
    pub requeued: Vec<String>,
    /// Finished jobs whose output file verified against the journaled
    /// digest — skipped, and their results warm the cache.
    pub skipped: Vec<String>,
    /// Finished jobs whose output file was missing or failed digest
    /// verification — re-queued to run again.
    pub reran: Vec<String>,
    /// Whether the journal's final line was torn and dropped.
    pub dropped_torn_tail: bool,
}

/// A snapshot of server counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Jobs admitted (including cache hits and recovery re-queues).
    pub accepted: usize,
    /// Jobs finished with an alignment (including cache hits).
    pub completed: usize,
    /// Submissions answered from the result cache with no worker.
    pub cache_hits: usize,
    /// Jobs that ended cancelled.
    pub cancelled: usize,
    /// Jobs that ended in a non-cancellation error.
    pub failed: usize,
    /// DP cells actually computed by workers since start — the "zero new
    /// work" assertion for cached resubmission reads this.
    pub dp_cells: u64,
}

/// One connected client's outgoing line stream, shared between the
/// connection's reader thread (acks) and whatever worker runs its jobs
/// (progress + results). Write failures are swallowed: a client that
/// disconnected mid-stream must not crash the job, which still completes
/// and journals normally.
#[derive(Clone)]
pub struct EventSink(Arc<Mutex<Option<TcpStream>>>);

impl EventSink {
    /// How long one event write may block before the peer is treated as
    /// gone. Bounds the time a worker (or the connection's reader thread,
    /// which shares the sink mutex) can be wedged by a client that
    /// submitted a job and then stopped reading.
    pub const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

    fn new(stream: TcpStream) -> EventSink {
        stream.set_write_timeout(Some(EventSink::WRITE_TIMEOUT)).ok();
        EventSink(Arc::new(Mutex::new(Some(stream))))
    }

    /// A sink that discards everything (recovered jobs have no client).
    pub fn null() -> EventSink {
        EventSink(Arc::new(Mutex::new(None)))
    }

    /// Send one event line (newline appended). Errors are ignored. A
    /// write that times out ([`EventSink::WRITE_TIMEOUT`]) is treated the
    /// same as a disconnect: the stream is dropped so no later send — and
    /// no worker — ever blocks on this peer again.
    pub fn send(&self, line: &str) {
        let mut guard = self.0.lock().unwrap();
        if let Some(stream) = guard.as_mut() {
            let mut bytes = line.as_bytes().to_vec();
            bytes.push(b'\n');
            if stream.write_all(&bytes).and_then(|()| stream.flush()).is_err() {
                // Peer gone (or not draining): stop trying for the rest
                // of the connection.
                *guard = None;
            }
        }
    }
}

struct Stats {
    accepted: AtomicUsize,
    completed: AtomicUsize,
    cache_hits: AtomicUsize,
    cancelled: AtomicUsize,
    failed: AtomicUsize,
    dp_cells: AtomicU64,
}

struct Shared {
    cfg: ServeConfig,
    fingerprint: String,
    queue: JobQueue,
    journal: Mutex<Journal>,
    cache: ResultCache,
    /// Per-job cancel tokens, registered at admission, removed at the
    /// job's terminal event. Covers both pending and running jobs.
    inflight: Mutex<HashMap<String, CancelToken>>,
    /// Submitting client's sink per job (absent for recovered jobs).
    sinks: Mutex<HashMap<String, EventSink>>,
    /// All job ids ever seen (journal + live), for collision handling.
    ids: Mutex<std::collections::HashSet<String>>,
    next_client: AtomicU64,
    next_job: AtomicU64,
    /// Abrupt-stop flag: workers stop journaling and exit ASAP.
    kill: AtomicBool,
    /// Graceful-stop flag: stop accepting, drain the queue, exit.
    drain: AtomicBool,
    /// Fused into every job's cancel token; [`ServerHandle::kill`] fires it.
    kill_token: CancelToken,
    /// Worker pause gate (`paused`, release via notify).
    gate: Mutex<bool>,
    gate_cv: Condvar,
    /// Jobs currently executing on a worker.
    active: AtomicUsize,
    stats: Stats,
}

/// Longest accepted client-proposed job id.
pub const MAX_JOB_ID_LEN: usize = 100;

/// Whether a client-proposed job id is safe to embed in an output path.
/// Ids become `<out_dir>/<id>.aligned.fa` via `Path::join`, so anything
/// resembling a path — separators, `..`, absolute paths (which `join`
/// substitutes wholesale) — must never get this far. Allowed: ASCII
/// alphanumerics plus `.`, `_`, `-`; no leading `.`; at most
/// [`MAX_JOB_ID_LEN`] bytes.
pub fn valid_job_id(id: &str) -> bool {
    id.len() <= MAX_JOB_ID_LEN && path_safe_id(id)
}

/// The safety half of [`valid_job_id`] (no length bound — server-side
/// collision suffixes may push a maximal id a few bytes past it).
fn path_safe_id(id: &str) -> bool {
    !id.is_empty()
        && !id.starts_with('.')
        && id.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

impl Shared {
    fn output_path(&self, job: &str) -> PathBuf {
        debug_assert!(path_safe_id(job), "unvalidated job id reached output_path: {job:?}");
        self.cfg.out_dir.join(format!("{job}.aligned.fa"))
    }

    fn log(&self, line: &str) {
        if self.cfg.log {
            eprintln!("[sad-serve] {line}");
        }
    }

    fn journal_append(&self, entry: &JournalEntry) -> Result<(), JournalError> {
        self.journal.lock().unwrap().append(entry)
    }

    /// Reserve a server-unique job id, unique-ifying collisions with a
    /// `-2`, `-3`… suffix (the batch runner's convention).
    fn reserve_id(&self, requested: Option<&str>) -> String {
        let base = match requested {
            Some(id) if !id.trim().is_empty() => id.trim().to_string(),
            _ => format!("job-{}", self.next_job.fetch_add(1, Ordering::Relaxed) + 1),
        };
        let mut ids = self.ids.lock().unwrap();
        if ids.insert(base.clone()) {
            return base;
        }
        let mut n = 2usize;
        loop {
            let candidate = format!("{base}-{n}");
            if ids.insert(candidate.clone()) {
                return candidate;
            }
            n += 1;
        }
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] or [`ServerHandle::kill`].
pub struct Server;

impl Server {
    /// Replay the journal, bind the socket, start workers and the accept
    /// loop.
    pub fn start(cfg: ServeConfig) -> Result<ServerHandle, ServeError> {
        std::fs::create_dir_all(&cfg.out_dir)?;
        let replay = crate::journal::replay(&cfg.journal)?;
        let backend_proto = cfg.backend.instantiate();
        let fingerprint = digest::config_fingerprint(&cfg.sad, &backend_proto);
        let workers = cfg.workers.max(1);
        let paused = cfg.paused;
        let shared = Arc::new(Shared {
            queue: JobQueue::new(cfg.queue_capacity.max(1)),
            journal: Mutex::new(Journal::open(&cfg.journal)?),
            cache: ResultCache::with_budget_bytes(cfg.cache_budget_bytes),
            inflight: Mutex::new(HashMap::new()),
            sinks: Mutex::new(HashMap::new()),
            ids: Mutex::new(std::collections::HashSet::new()),
            next_client: AtomicU64::new(0),
            next_job: AtomicU64::new(0),
            kill: AtomicBool::new(false),
            drain: AtomicBool::new(false),
            kill_token: CancelToken::new(),
            gate: Mutex::new(paused),
            gate_cv: Condvar::new(),
            active: AtomicUsize::new(0),
            stats: Stats {
                accepted: AtomicUsize::new(0),
                completed: AtomicUsize::new(0),
                cache_hits: AtomicUsize::new(0),
                cancelled: AtomicUsize::new(0),
                failed: AtomicUsize::new(0),
                dp_cells: AtomicU64::new(0),
            },
            fingerprint,
            cfg,
        });

        let recovery = recover(&shared, replay);
        shared.log(&format!(
            "recovery: {} requeued, {} skipped, {} reran",
            recovery.requeued.len(),
            recovery.skipped.len(),
            recovery.reran.len()
        ));

        let listener = TcpListener::bind((shared.cfg.host.as_str(), shared.cfg.port))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        shared.log(&format!("listening on {addr} ({})", shared.cfg.backend.label()));

        let worker_handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sad-serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sad-serve-accept".into())
                .spawn(move || accept_loop(&shared, &listener))
                .expect("spawn accept loop")
        };

        Ok(ServerHandle { shared, addr, accept: Some(accept), workers: worker_handles, recovery })
    }
}

/// Control handle for a started server.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// What journal replay decided at start.
    pub recovery: RecoveryReport,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Open the worker pause gate (no-op if not paused).
    pub fn release_workers(&self) {
        *self.shared.gate.lock().unwrap() = false;
        self.shared.gate_cv.notify_all();
    }

    /// Current counters.
    pub fn stats(&self) -> ServerStats {
        let s = &self.shared.stats;
        ServerStats {
            accepted: s.accepted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            cancelled: s.cancelled.load(Ordering::Relaxed),
            failed: s.failed.load(Ordering::Relaxed),
            dp_cells: s.dp_cells.load(Ordering::Relaxed),
        }
    }

    /// Number of journal-replay cache entries plus live results.
    pub fn cache_len(&self) -> usize {
        self.shared.cache.len()
    }

    /// Whether a graceful shutdown has been requested (by a client
    /// `SHUTDOWN` or by [`ServerHandle::shutdown`]).
    pub fn is_draining(&self) -> bool {
        self.shared.drain.load(Ordering::SeqCst)
    }

    /// Block until the queue is empty and no job is executing, or the
    /// timeout passes. Returns whether idle was reached.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.shared.queue.is_empty() && self.shared.active.load(Ordering::SeqCst) == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Graceful stop: stop accepting, let workers drain the queue, join
    /// everything. Running and queued jobs complete and journal normally.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop(false);
        self.stats()
    }

    /// Abrupt stop simulating a crash: fire the kill token, drop queued
    /// jobs, and make workers exit *without* journaling terminal entries
    /// for jobs the kill interrupted — the journal is left owing them,
    /// exactly as a SIGKILL would.
    pub fn kill(mut self) -> ServerStats {
        self.stop(true);
        self.stats()
    }

    fn stop(&mut self, kill: bool) {
        if kill {
            self.shared.kill.store(true, Ordering::SeqCst);
            self.shared.kill_token.cancel();
            self.shared.queue.clear();
        }
        self.shared.drain.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        // Wake paused workers so they can observe the flags and exit.
        self.release_workers();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.shared.log(if kill { "killed" } else { "drained and stopped" });
    }
}

/// Fold the replayed journal into queue + cache state.
fn recover(shared: &Arc<Shared>, replay: crate::journal::Replay) -> RecoveryReport {
    struct JobTrail {
        accepted: Option<JournalEntry>,
        finished: Option<(bool, Option<String>)>,
    }
    let mut order: Vec<String> = Vec::new();
    let mut trails: HashMap<String, JobTrail> = HashMap::new();
    for entry in &replay.entries {
        let job = entry.job().to_string();
        let trail = trails.entry(job.clone()).or_insert_with(|| {
            order.push(job.clone());
            JobTrail { accepted: None, finished: None }
        });
        match entry {
            JournalEntry::Accepted { .. } => trail.accepted = Some(entry.clone()),
            JournalEntry::Started { .. } => {}
            JournalEntry::Finished { ok, digest, .. } => {
                trail.finished = Some((*ok, digest.clone()));
            }
        }
    }
    let mut report =
        RecoveryReport { dropped_torn_tail: replay.dropped_torn_tail, ..Default::default() };
    for id in order {
        let trail = &trails[&id];
        shared.ids.lock().unwrap().insert(id.clone());
        let Some(JournalEntry::Accepted { priority, input, fingerprint, fasta, .. }) =
            trail.accepted.clone()
        else {
            continue;
        };
        let requeue = |report_bucket: &mut Vec<String>| {
            let job = QueuedJob {
                id: id.clone(),
                client: None,
                priority,
                input: input.clone(),
                fingerprint: shared.fingerprint.clone(),
                fasta: fasta.clone(),
            };
            if shared.queue.push_recovered(job).is_ok() {
                shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                report_bucket.push(id.clone());
            }
        };
        match &trail.finished {
            None => requeue(&mut report.requeued),
            Some((true, Some(digest))) => {
                let path = shared.output_path(&id);
                match std::fs::read_to_string(&path) {
                    Ok(text) if digest::payload(&text) == *digest => {
                        let rows = text.lines().filter(|l| l.starts_with('>')).count();
                        shared.cache.insert(
                            &input,
                            &fingerprint,
                            CachedResult { digest: digest.clone(), rows, fasta: text },
                        );
                        report.skipped.push(id.clone());
                    }
                    // Missing or corrupt output: the journaled claim fails
                    // verification, so the work is still owed.
                    _ => requeue(&mut report.reran),
                }
            }
            // `ok` with no digest never happens in well-formed journals;
            // treat it like a failed verification.
            Some((true, None)) => requeue(&mut report.reran),
            // Terminal failure (including explicit cancels): not re-run.
            Some((false, _)) => {}
        }
    }
    report
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        if shared.kill.load(Ordering::SeqCst) || shared.drain.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                // Events are small single lines; without NODELAY they sit
                // in Nagle's buffer and clients see them tens of ms late.
                stream.set_nodelay(true).ok();
                let client = shared.next_client.fetch_add(1, Ordering::Relaxed) + 1;
                shared.log(&format!("client {client} connected from {peer}"));
                let shared = Arc::clone(shared);
                // Detached: the thread exits on EOF, read error, or kill.
                let _ = std::thread::Builder::new()
                    .name(format!("sad-serve-conn-{client}"))
                    .spawn(move || connection_loop(&shared, stream, client));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn connection_loop(shared: &Arc<Shared>, stream: TcpStream, client: u64) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let sink = EventSink::new(stream);
    sink.send(&event::hello());
    let mut reader = LineReader::new(reader_stream);
    loop {
        match reader.next_line() {
            Ok(LineEvent::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                match parse_request(&line) {
                    Ok(Request::Submit { id, priority, fasta }) => {
                        handle_submit(shared, client, &sink, id.as_deref(), priority, &fasta);
                    }
                    Ok(Request::Cancel { job }) => handle_cancel(shared, &sink, &job),
                    Ok(Request::Shutdown) => {
                        shared.log(&format!("client {client} requested shutdown"));
                        sink.send(&event::bye());
                        shared.drain.store(true, Ordering::SeqCst);
                        shared.queue.close();
                        return;
                    }
                    Err(reason) => sink.send(&event::error(None, &reason)),
                }
            }
            Ok(LineEvent::TimedOut) => {
                if shared.kill.load(Ordering::SeqCst) {
                    return;
                }
            }
            Ok(LineEvent::Eof) | Err(_) => {
                shared.log(&format!("client {client} disconnected"));
                return;
            }
        }
    }
}

fn handle_submit(
    shared: &Arc<Shared>,
    client: u64,
    sink: &EventSink,
    requested: Option<&str>,
    priority: i64,
    fasta: &str,
) {
    let label = requested.unwrap_or("<unnamed>");
    // Validate before spending a job id or queue slot. The id check is
    // load-bearing: ids are interpolated into output paths, so a
    // traversal-shaped id ("../x", "/abs/path") must be refused here —
    // over TCP there is no auth between a submit and a filesystem write.
    if let Some(req) = requested {
        let req = req.trim();
        if !req.is_empty() && !valid_job_id(req) {
            sink.send(&event::rejected(
                label,
                &format!(
                    "invalid job id: use ASCII [A-Za-z0-9._-], no leading '.', \
                     at most {MAX_JOB_ID_LEN} bytes"
                ),
            ));
            return;
        }
    }
    let seqs = match bioseq::fasta::parse(fasta) {
        Ok(seqs) => seqs,
        Err(e) => {
            sink.send(&event::rejected(label, &format!("invalid FASTA: {e}")));
            return;
        }
    };
    if let Err(e) = shared.cfg.sad.validate_for(&seqs) {
        sink.send(&event::rejected(label, &e.to_string()));
        return;
    }
    let id = shared.reserve_id(requested);
    let input = digest::payload(fasta);

    // Cache hit: answer at accept time — no queue slot, no worker, no DP.
    if let Some(hit) = shared.cache.get(&input, &shared.fingerprint) {
        let journaled = {
            let mut journal = shared.journal.lock().unwrap();
            journal
                .append(&JournalEntry::Accepted {
                    job: id.clone(),
                    client: Some(client),
                    priority,
                    input: input.clone(),
                    fingerprint: shared.fingerprint.clone(),
                    fasta: fasta.to_string(),
                })
                .and_then(|()| {
                    std::fs::write(shared.output_path(&id), &hit.fasta)
                        .map_err(JournalError::Io)?;
                    journal.append(&JournalEntry::Finished {
                        job: id.clone(),
                        ok: true,
                        digest: Some(hit.digest.clone()),
                        error: None,
                    })
                })
        };
        if let Err(e) = journaled {
            sink.send(&event::rejected(label, &format!("journal write failed: {e}")));
            return;
        }
        shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
        shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        shared.stats.completed.fetch_add(1, Ordering::Relaxed);
        sink.send(&event::accepted(label, &id));
        sink.send(&event::result(&id, true, &hit.digest, hit.rows, 0.0, &hit.fasta));
        shared.log(&format!("job {id}: served from cache"));
        return;
    }

    let job = QueuedJob {
        id: id.clone(),
        client: Some(client),
        priority,
        input: input.clone(),
        fingerprint: shared.fingerprint.clone(),
        fasta: fasta.to_string(),
    };
    let entry = JournalEntry::Accepted {
        job: id.clone(),
        client: Some(client),
        priority,
        input,
        fingerprint: shared.fingerprint.clone(),
        fasta: fasta.to_string(),
    };
    // Registered before visibility so a worker that pops the job
    // immediately finds its token and sink.
    shared.inflight.lock().unwrap().insert(id.clone(), CancelToken::new());
    shared.sinks.lock().unwrap().insert(id.clone(), sink.clone());
    let pushed = shared.queue.push(job, || {
        shared.journal_append(&entry)?;
        // Acknowledge inside the admission critical section: the client
        // is guaranteed to see `accepted` before any event a worker
        // emits for this job.
        sink.send(&event::accepted(label, &id));
        Ok::<(), JournalError>(())
    });
    match pushed {
        Ok(()) => {
            shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
        }
        Err(refusal) => {
            shared.inflight.lock().unwrap().remove(&id);
            shared.sinks.lock().unwrap().remove(&id);
            let reason = match refusal {
                PushResult::Refused(PushError::Full) => "queue full".to_string(),
                PushResult::Refused(PushError::Closed) => "server shutting down".to_string(),
                PushResult::Action(e) => format!("journal write failed: {e}"),
            };
            sink.send(&event::rejected(label, &reason));
        }
    }
}

fn handle_cancel(shared: &Arc<Shared>, sink: &EventSink, job: &str) {
    // Still pending: remove it from the queue — the slot frees
    // immediately, no worker ever sees the job.
    if let Some(_cancelled) = shared.queue.cancel(job) {
        shared.inflight.lock().unwrap().remove(job);
        let submitter = shared.sinks.lock().unwrap().remove(job);
        let terminal = JournalEntry::Finished {
            job: job.to_string(),
            ok: false,
            digest: None,
            error: Some("cancelled before start".into()),
        };
        if !shared.kill.load(Ordering::SeqCst) {
            let _ = shared.journal_append(&terminal);
        }
        shared.stats.cancelled.fetch_add(1, Ordering::Relaxed);
        let line = event::cancelled(job, "cancelled before start");
        sink.send(&line);
        if let Some(submitter) = submitter {
            submitter.send(&line);
        }
        return;
    }
    // Running: fire its token; the worker observes it at the next phase
    // boundary and emits the terminal `cancelled` event.
    if let Some(token) = shared.inflight.lock().unwrap().get(job) {
        token.cancel();
        sink.send(&event::cancel_requested(job));
        return;
    }
    sink.send(&event::error(Some(job), "unknown or already finished job"));
}

fn worker_loop(shared: &Arc<Shared>) {
    let backend = shared.cfg.backend.instantiate();
    loop {
        // Pause gate (tests stage the queue, then release).
        {
            let mut paused = shared.gate.lock().unwrap();
            while *paused {
                if shared.kill.load(Ordering::SeqCst) {
                    return;
                }
                // A drain request releases the gate: graceful shutdown
                // still finishes what's queued.
                if shared.drain.load(Ordering::SeqCst) {
                    break;
                }
                let (guard, _) =
                    shared.gate_cv.wait_timeout(paused, Duration::from_millis(50)).unwrap();
                paused = guard;
            }
        }
        if shared.kill.load(Ordering::SeqCst) {
            return;
        }
        let Some(job) = shared.queue.pop(Duration::from_millis(50)) else {
            if shared.kill.load(Ordering::SeqCst)
                || (shared.drain.load(Ordering::SeqCst) && shared.queue.is_empty())
            {
                return;
            }
            continue;
        };
        shared.active.fetch_add(1, Ordering::SeqCst);
        run_one(shared, &backend, &job);
        shared.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn run_one(shared: &Arc<Shared>, backend: &Backend, job: &QueuedJob) {
    let killed = || shared.kill.load(Ordering::SeqCst);
    if killed() {
        return;
    }
    let sink = shared.sinks.lock().unwrap().get(&job.id).cloned().unwrap_or_else(EventSink::null);
    let token = shared.inflight.lock().unwrap().entry(job.id.clone()).or_default().clone();
    if !killed() && shared.journal_append(&JournalEntry::Started { job: job.id.clone() }).is_err() {
        shared.log(&format!("job {}: journal write failed, dropping", job.id));
        return;
    }
    sink.send(&event::started(&job.id));
    shared.log(&format!("job {}: started", job.id));
    if let Some(hold) = &shared.cfg.hold {
        hold.wait(killed);
        if killed() {
            return;
        }
    }

    let seqs = match bioseq::fasta::parse(&job.fasta) {
        Ok(seqs) => seqs,
        Err(e) => {
            finish_err(shared, &sink, job, &format!("invalid FASTA: {e}"), false);
            return;
        }
    };
    let forward_sink = sink.clone();
    let forward_id = job.id.clone();
    let observer = Arc::new(move |e: &Event| {
        if let Event::PhaseFinished { phase, seconds, .. } = e {
            forward_sink.send(&event::phase(&forward_id, phase.name(), *seconds));
        }
    });
    let started_at = Instant::now();
    let outcome = Aligner::new(shared.cfg.sad.clone())
        .backend(backend.clone())
        .cancel_token(CancelToken::fused([&shared.kill_token, &token]))
        .observer(observer)
        .run(&seqs);
    match outcome {
        Ok(report) => {
            let text = bioseq::fasta::write_alignment(&report.msa);
            let out_digest = digest::payload(&text);
            if killed() {
                // Crash simulation: no output, no terminal journal entry.
                shared.inflight.lock().unwrap().remove(&job.id);
                return;
            }
            if let Err(e) = std::fs::write(shared.output_path(&job.id), &text) {
                finish_err(shared, &sink, job, &format!("output write failed: {e}"), false);
                return;
            }
            shared.cache.insert(
                &job.input,
                &job.fingerprint,
                CachedResult {
                    digest: out_digest.clone(),
                    rows: report.msa.num_rows(),
                    fasta: text.clone(),
                },
            );
            let _ = shared.journal_append(&JournalEntry::Finished {
                job: job.id.clone(),
                ok: true,
                digest: Some(out_digest.clone()),
                error: None,
            });
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            shared.stats.dp_cells.fetch_add(report.work.dp_cells, Ordering::Relaxed);
            shared.inflight.lock().unwrap().remove(&job.id);
            shared.sinks.lock().unwrap().remove(&job.id);
            let seconds = started_at.elapsed().as_secs_f64();
            sink.send(&event::result(
                &job.id,
                false,
                &out_digest,
                report.msa.num_rows(),
                seconds,
                &text,
            ));
            shared.log(&format!("job {}: finished in {seconds:.3}s", job.id));
        }
        Err(e) => {
            if killed() {
                shared.inflight.lock().unwrap().remove(&job.id);
                return;
            }
            let cancelled = matches!(e, SadError::Cancelled { .. });
            finish_err(shared, &sink, job, &e.to_string(), cancelled);
        }
    }
}

fn finish_err(shared: &Arc<Shared>, sink: &EventSink, job: &QueuedJob, msg: &str, cancelled: bool) {
    let _ = shared.journal_append(&JournalEntry::Finished {
        job: job.id.clone(),
        ok: false,
        digest: None,
        error: Some(msg.to_string()),
    });
    if cancelled {
        shared.stats.cancelled.fetch_add(1, Ordering::Relaxed);
        sink.send(&event::cancelled(&job.id, msg));
    } else {
        shared.stats.failed.fetch_add(1, Ordering::Relaxed);
        sink.send(&event::error(Some(&job.id), msg));
    }
    shared.inflight.lock().unwrap().remove(&job.id);
    shared.sinks.lock().unwrap().remove(&job.id);
    shared.log(&format!("job {}: {msg}", job.id));
}

/// Convenience used by tests and the CLI: where a job's output lands.
pub fn output_path(out_dir: &Path, job: &str) -> PathBuf {
    out_dir.join(format!("{job}.aligned.fa"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_id_validation_refuses_path_shapes() {
        for ok in ["fam_a", "c0-j1", "Fam.2", "x", &"a".repeat(MAX_JOB_ID_LEN)] {
            assert!(valid_job_id(ok), "{ok:?} should be accepted");
        }
        for bad in [
            "",
            "../../etc/cron.d/evil",
            "/etc/passwd",
            "..",
            ".",
            ".hidden",
            "a/b",
            "a\\b",
            "fam a",
            "fam\n",
            "fam\u{e9}",
            &"a".repeat(MAX_JOB_ID_LEN + 1),
        ] {
            assert!(!valid_job_id(bad), "{bad:?} should be refused");
        }
        // Collision suffixes on a maximal id stay path-safe.
        assert!(path_safe_id(&format!("{}-2", "a".repeat(MAX_JOB_ID_LEN))));
    }
}
