//! Serve round-trip: the alignment daemon, in one process.
//!
//! Starts a `sad serve` server on an ephemeral port, submits a synthetic
//! family over TCP, streams the per-phase events back, resubmits the
//! same bytes to show the result cache answering instantly, then
//! restarts the server against the same journal to show crash recovery
//! verifying and skipping the finished job.
//!
//! ```text
//! cargo run --release --example serve_roundtrip
//! ```

use sample_align_d::prelude::*;
use sample_align_d::sad_serve::{Client, ServeConfig, Server, Submitted};
use std::time::Duration;

fn main() {
    let dir = std::env::temp_dir().join(format!("sad-serve-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create demo dir");
    let cfg = ServeConfig::new(dir.join("journal.jsonl"), dir.join("out"));

    // ── A server and a client ──────────────────────────────────────────
    let handle = Server::start(cfg.clone()).expect("start server");
    println!("server listening on {}", handle.addr());
    let mut client =
        Client::connect_with_retry(handle.addr(), Duration::from_secs(5)).expect("connect");

    let family = Family::generate(&FamilyConfig {
        n_seqs: 12,
        avg_len: 90,
        relatedness: 700.0,
        seed: 42,
        ..Default::default()
    });
    let fasta = sample_align_d::bioseq::fasta::write(&family.seqs);

    // Submit and stream: accepted → started → one line per phase → result.
    let job = match client.submit(Some("demo"), 0, &fasta).expect("submit") {
        Submitted::Accepted { job } => job,
        Submitted::Rejected { reason } => panic!("rejected: {reason}"),
    };
    println!("accepted as job {job}");
    let result = loop {
        let event = client.next_event(Duration::from_secs(60)).expect("event");
        match event.get("event").and_then(|e| e.as_str()) {
            Some("phase") => {
                println!("  phase {}", event.get("phase").and_then(|p| p.as_str()).unwrap_or("?"))
            }
            Some("result") => break event,
            _ => {}
        }
    };
    println!(
        "result: {} rows, digest {}",
        result.get("rows").and_then(|r| r.as_u64()).unwrap_or(0),
        result.get("digest").and_then(|d| d.as_str()).unwrap_or("?"),
    );

    // Resubmit the same bytes: answered from the cache, no DP work.
    let rerun = match client.submit(Some("demo"), 0, &fasta).expect("resubmit") {
        Submitted::Accepted { job } => job,
        Submitted::Rejected { reason } => panic!("rejected: {reason}"),
    };
    let cached = client.wait_result(&rerun, Duration::from_secs(60)).expect("cached result");
    println!(
        "resubmitted as {rerun}: cached = {}",
        cached.get("cached").and_then(|c| c.as_bool()).unwrap_or(false)
    );

    let stats = handle.shutdown();
    println!("server drained: {} completed, {} cache hits", stats.completed, stats.cache_hits);

    // ── Restart against the same journal: recovery skips verified work ─
    let handle = Server::start(cfg).expect("restart server");
    let recovery = &handle.recovery;
    println!(
        "after restart: {} skipped (output verified), {} requeued",
        recovery.skipped.len(),
        recovery.requeued.len()
    );
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
