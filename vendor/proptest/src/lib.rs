//! Offline stand-in for `proptest`: a miniature property-testing framework
//! covering the subset this workspace uses.
//!
//! Supported surface: the [`proptest!`] macro (optionally with
//! `#![proptest_config(...)]`), `prop_assert!`/`prop_assert_eq!`,
//! [`Strategy`] with `prop_map`, numeric ranges as strategies, and
//! [`collection::vec`]. Cases are generated from a seed derived
//! deterministically from the test name, so failures reproduce exactly on
//! re-run. Unlike real proptest there is **no shrinking**: a failing case
//! reports its inputs (via the case's RNG seed and `Debug` in assertion
//! messages) but is not minimised.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// Everything call sites need in scope, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Per-block configuration; only `cases` is modelled.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case (produced by `prop_assert!`-family macros).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SampleRange, StdRng, Strategy};

    /// `Vec` strategy: length drawn from `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The [`vec()`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n: usize = SampleRange::sample_from(self.size.clone(), rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Deterministic per-(test, case) RNG so failures replay exactly.
pub fn test_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Assert inside a property; on failure the current case errors out with
/// the formatted message (and the harness panics with case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Declare property tests: each `fn` with `arg in strategy` parameters is
/// expanded into a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg => $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default() => $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr => $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::test_rng(stringify!($name), case);
                $(let $pat = $crate::Strategy::new_value(&($strat), &mut __proptest_rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in -4i32..=4, f in 0.5f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.5..2.0).contains(&f), "f was {f}");
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u32..10, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn prop_map_applies(s in (1usize..5).prop_map(|n| "x".repeat(n)), mut k in 0u8..3) {
            k += 1;
            prop_assert!(k >= 1, "mut bindings work");
            prop_assert_eq!(s.len(), s.chars().count());
        }
    }

    #[test]
    fn deterministic_rng_per_name_and_case() {
        use crate::Strategy;
        let mut a = crate::test_rng("t", 3);
        let mut b = crate::test_rng("t", 3);
        assert_eq!((0u64..100).new_value(&mut a), (0u64..100).new_value(&mut b));
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed at case 0")]
    fn failures_panic_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(x in 0u8..1) {
                prop_assert!(x > 10, "x was {x}");
            }
        }
        always_fails();
    }
}
