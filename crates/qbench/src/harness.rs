//! The evaluation harness: run any alignment system over a benchmark and
//! report PREFAB-style mean `Q` (plus `TC` against the full reference).

use crate::refset::Benchmark;
use align::MsaEngine;
use bioseq::compare::{q_score_pair, tc_score};
use bioseq::{Msa, Sequence, Work};

/// Aggregate quality report for one system over one benchmark.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// System name.
    pub name: String,
    /// Mean Q over scorable cases (the paper's Table 2 number).
    pub mean_q: f64,
    /// Mean total-column score against the full references.
    pub mean_tc: f64,
    /// Per-case Q scores (`None` = unscorable reference, discarded like
    /// the paper's footnote describes).
    pub per_case_q: Vec<Option<f64>>,
    /// Total work performed across cases (0 when the system does not
    /// report work).
    pub total_work: Work,
}

impl EngineReport {
    /// Number of cases that produced a Q score.
    pub fn scored_cases(&self) -> usize {
        self.per_case_q.iter().flatten().count()
    }
}

/// Evaluate an arbitrary alignment function (used for Sample-Align-D,
/// whose distributed pipeline is not an [`MsaEngine`]).
pub fn evaluate_with(
    name: impl Into<String>,
    benchmark: &Benchmark,
    mut align: impl FnMut(&[Sequence]) -> (Msa, Work),
) -> EngineReport {
    let mut per_case_q = Vec::with_capacity(benchmark.cases.len());
    let mut tc_sum = 0.0;
    let mut tc_n = 0usize;
    let mut total_work = Work::ZERO;
    for case in &benchmark.cases {
        let (msa, work) = align(&case.seqs);
        total_work += work;
        debug_assert!(msa.validate().is_ok(), "invalid alignment for {}", case.id);
        // Locate the seed rows in the produced alignment.
        let find = |id: &str| msa.ids().iter().position(|x| x == id);
        let q = match (find(&case.seed_ids.0), find(&case.seed_ids.1)) {
            (Some(a), Some(b)) => q_score_pair(
                msa.row(a),
                msa.row(b),
                case.reference_pair.row(0),
                case.reference_pair.row(1),
            ),
            _ => None,
        };
        per_case_q.push(q);
        if let Some(tc) = tc_score(&msa, &case.full_reference) {
            tc_sum += tc;
            tc_n += 1;
        }
    }
    let qs: Vec<f64> = per_case_q.iter().flatten().copied().collect();
    EngineReport {
        name: name.into(),
        mean_q: if qs.is_empty() { 0.0 } else { qs.iter().sum::<f64>() / qs.len() as f64 },
        mean_tc: if tc_n == 0 { 0.0 } else { tc_sum / tc_n as f64 },
        per_case_q,
        total_work,
    }
}

/// Evaluate an [`MsaEngine`] over a benchmark.
pub fn evaluate_engine(engine: &dyn MsaEngine, benchmark: &Benchmark) -> EngineReport {
    evaluate_with(engine.name(), benchmark, |seqs| engine.align_with_work(seqs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refset::BenchmarkConfig;
    use align::{ClustalLite, MuscleLite};

    fn small_benchmark() -> Benchmark {
        Benchmark::generate(&BenchmarkConfig {
            n_cases: 4,
            seqs_per_case: 8,
            avg_len: 60,
            relatedness: (200.0, 700.0),
            seed: 9,
        })
    }

    #[test]
    fn perfect_aligner_scores_one() {
        let b = small_benchmark();
        // "Align" by returning the true reference.
        let mut case_iter = b.cases.iter();
        let report = evaluate_with("oracle", &b, |_seqs| {
            let case = case_iter.next().unwrap();
            (case.full_reference.clone(), Work::ZERO)
        });
        assert!((report.mean_q - 1.0).abs() < 1e-12, "Q = {}", report.mean_q);
        assert!((report.mean_tc - 1.0).abs() < 1e-12);
        assert_eq!(report.scored_cases(), 4);
    }

    #[test]
    fn real_engines_score_reasonably() {
        let b = small_benchmark();
        let muscle = evaluate_engine(&MuscleLite::standard(), &b);
        assert!(
            muscle.mean_q > 0.4,
            "muscle-lite Q={} too low on an easy benchmark",
            muscle.mean_q
        );
        assert!(muscle.mean_q <= 1.0);
        assert!(!muscle.total_work.is_zero());
        let clustal = evaluate_engine(&ClustalLite::default(), &b);
        assert!(clustal.mean_q > 0.3, "clustal-lite Q={}", clustal.mean_q);
    }

    #[test]
    fn q_in_unit_interval_for_any_valid_alignment() {
        let b = small_benchmark();
        // A deliberately bad aligner: concatenates sequences diagonally
        // (each sequence in its own column band).
        let report = evaluate_with("diagonal", &b, |seqs| {
            let total: usize = seqs.iter().map(|s| s.len()).sum();
            let mut rows = Vec::new();
            let mut offset = 0usize;
            for s in seqs {
                let mut row = vec![bioseq::GAP_CODE; total];
                for (i, &c) in s.codes().iter().enumerate() {
                    row[offset + i] = c;
                }
                offset += s.len();
                rows.push(row);
            }
            (Msa::from_rows(seqs.iter().map(|s| s.id.clone()).collect(), rows), Work::ZERO)
        });
        assert!((0.0..=1.0).contains(&report.mean_q));
        // The diagonal aligner aligns nothing: Q must be 0.
        assert_eq!(report.mean_q, 0.0);
    }

    #[test]
    fn better_engine_not_worse_than_draft() {
        let b = small_benchmark();
        let fast = evaluate_engine(&MuscleLite::fast(), &b);
        let std_ = evaluate_engine(&MuscleLite::standard(), &b);
        assert!(
            std_.mean_q >= fast.mean_q - 0.08,
            "standard {} should be in the vicinity of fast {} or better",
            std_.mean_q,
            fast.mean_q
        );
    }
}
