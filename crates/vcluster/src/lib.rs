//! # vcluster — a virtual message-passing cluster with deterministic time
//!
//! The paper evaluates Sample-Align-D on a 16-node Beowulf cluster over
//! MPI. This crate substitutes that hardware with a *virtual cluster*:
//!
//! * every rank runs as a real OS thread executing real code over real
//!   message passing (crossbeam channels), so algorithms are exercised
//!   end-to-end exactly as they would be over MPI;
//! * **time, however, is virtual**: each rank owns a local clock that
//!   advances deterministically — compute kernels report [`bioseq::Work`]
//!   units which a calibratable [`CostModel`] converts to seconds, and
//!   message envelopes carry departure timestamps so arrival times follow a
//!   LogGP-style postal model (`arrival = departure + latency`, with the
//!   per-byte serialisation charged to the sender).
//!
//! The result: per-rank timings, phase breakdowns, scaling curves and
//! speedups that are bit-for-bit reproducible on any host — including the
//! single-core container this reproduction runs in — while the *code paths*
//! (redistribution, collectives, gather/broadcast trees) remain the real
//! distributed ones.
//!
//! ## Collectives
//!
//! [`Node`] offers MPI-flavoured collectives built from point-to-point
//! sends: binomial-tree `broadcast`, linear `gather`/`scatter` (matching
//! the `O(p²·L)` sample-collection cost the paper's analysis assumes),
//! `all_gather`, pairwise-exchange `all_to_allv`, `reduce` and `barrier`.
//!
//! ## Example
//!
//! ```
//! use vcluster::{CostModel, VirtualCluster};
//!
//! let cluster = VirtualCluster::new(4, CostModel::beowulf_2008());
//! let run = cluster.run(|node| {
//!     let msg = node.rank() * 10;
//!     let all = node.all_gather(msg);
//!     all.into_iter().sum::<usize>()
//! });
//! assert_eq!(run.results, vec![60, 60, 60, 60]);
//! assert!(run.makespan > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod collective;
pub mod cost;
pub mod node;
pub mod trace;
pub mod wire;

pub use cluster::{ClusterRun, VirtualCluster};
pub use cost::CostModel;
pub use node::Node;
pub use trace::{PhaseRecord, RankTrace};
pub use wire::WireSize;
