//! Shared-memory SampleSort using rayon (the multithreaded counterpart of
//! the distributed protocol, used by Sample-Align-D's rayon backend).

use crate::sampling::{bucket_of, regular_samples, select_pivots, sort_work};
use bioseq::Work;
use rayon::prelude::*;

/// Partition `items` into `parts` buckets by `key` using regular sampling,
/// with each bucket sorted. Concatenating the buckets yields the globally
/// sorted order, and bucket sizes obey the PSRS balance bound for
/// distinct, well-spread keys.
pub fn sample_partition_by<T, F>(items: Vec<T>, parts: usize, key: F) -> Vec<Vec<T>>
where
    T: Send,
    F: Fn(&T) -> f64 + Sync + Send,
{
    sample_partition_by_with_work(items, parts, key).0
}

/// [`sample_partition_by`], also reporting the sorting [`Work`] performed
/// (accounted with the distributed protocol's formulas, so shared-memory
/// callers can attribute redistribution work the same way cluster ranks
/// do).
pub fn sample_partition_by_with_work<T, F>(
    items: Vec<T>,
    parts: usize,
    key: F,
) -> (Vec<Vec<T>>, Work)
where
    T: Send,
    F: Fn(&T) -> f64 + Sync + Send,
{
    assert!(parts >= 1, "need at least one partition");
    let mut work = Work::ZERO;
    if parts == 1 || items.len() <= parts {
        let mut all = items;
        all.sort_by(|a, b| key(a).total_cmp(&key(b)));
        work += sort_work(all.len());
        let mut out: Vec<Vec<T>> = (0..parts).map(|_| Vec::new()).collect();
        // Spread tiny inputs round-robin so no bucket invariant breaks.
        if parts == 1 {
            out[0] = all;
        } else {
            let n = all.len();
            let chunk = n.div_ceil(parts).max(1);
            for (i, item) in all.into_iter().enumerate() {
                out[(i / chunk).min(parts - 1)].push(item);
            }
        }
        return (out, work);
    }
    // Emulate p local sorts: chunk the data, sort chunks in parallel,
    // sample each chunk.
    let n = items.len();
    let chunk_size = n.div_ceil(parts);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(parts);
    let mut iter = items.into_iter();
    for _ in 0..parts {
        let chunk: Vec<T> = iter.by_ref().take(chunk_size).collect();
        chunks.push(chunk);
    }
    chunks.par_iter_mut().for_each(|c| c.sort_by(|a, b| key(a).total_cmp(&key(b))));
    work += chunks.iter().map(|c| sort_work(c.len())).sum::<Work>();
    let samples: Vec<f64> = chunks
        .iter()
        .flat_map(|c| {
            let keys: Vec<f64> = c.iter().map(&key).collect();
            regular_samples(&keys, parts - 1)
        })
        .collect();
    work += sort_work(samples.len());
    let pivots = select_pivots(samples, parts);
    let mut buckets: Vec<Vec<T>> = (0..parts).map(|_| Vec::new()).collect();
    for chunk in chunks {
        for item in chunk {
            buckets[bucket_of(key(&item), &pivots)].push(item);
        }
    }
    buckets.par_iter_mut().for_each(|b| b.sort_by(|a, b| key(a).total_cmp(&key(b))));
    work += buckets.iter().map(|b| sort_work(b.len())).sum::<Work>();
    (buckets, work)
}

/// Fully sort `items` by `key` via sample partitioning.
pub fn sample_sort_by<T, F>(items: Vec<T>, parts: usize, key: F) -> Vec<T>
where
    T: Send,
    F: Fn(&T) -> f64 + Sync + Send,
{
    sample_partition_by(items, parts, key).into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sorts_like_std() {
        let items: Vec<f64> = (0..1000).map(|i| ((i * 7919) % 1000) as f64).collect();
        let mut expect = items.clone();
        expect.sort_by(f64::total_cmp);
        assert_eq!(sample_sort_by(items, 8, |&x| x), expect);
    }

    #[test]
    fn partition_boundaries_ordered() {
        let items: Vec<f64> = (0..500).map(|i| ((i * 31) % 97) as f64).collect();
        let parts = sample_partition_by(items, 4, |&x| x);
        assert_eq!(parts.len(), 4);
        for w in parts.windows(2) {
            if let (Some(&a), Some(&b)) = (w[0].last(), w[1].first()) {
                assert!(a <= b);
            }
        }
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(sample_sort_by(Vec::<f64>::new(), 4, |&x| x), Vec::<f64>::new());
        assert_eq!(sample_sort_by(vec![3.0, 1.0], 4, |&x| x), vec![1.0, 3.0]);
        assert_eq!(sample_sort_by(vec![2.0], 1, |&x| x), vec![2.0]);
    }

    #[test]
    fn work_reported_for_both_paths() {
        let items: Vec<f64> = (0..200).map(|i| ((i * 31) % 97) as f64).collect();
        let (buckets, work) = sample_partition_by_with_work(items, 4, |&x| x);
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), 200);
        assert!(work.sort_ops > 0, "main path must report sort work");
        let (_, tiny) = sample_partition_by_with_work(vec![3.0, 1.0], 4, |&x| x);
        assert!(tiny.sort_ops > 0, "degenerate path must report sort work");
        let (_, empty) = sample_partition_by_with_work(Vec::<f64>::new(), 4, |&x| x);
        assert!(empty.is_zero());
    }

    #[test]
    fn keyed_structs() {
        #[derive(Debug, PartialEq)]
        struct Item(u32, f64);
        let items: Vec<Item> = (0..100).map(|i| Item(i, ((i * 13) % 50) as f64)).collect();
        let sorted = sample_sort_by(items, 3, |it| it.1);
        assert!(sorted.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(sorted.len(), 100);
    }

    proptest! {
        #[test]
        fn prop_matches_std_sort(mut keys in prop::collection::vec(-1e6f64..1e6, 0..400),
                                 parts in 1usize..9) {
            let sorted = sample_sort_by(keys.clone(), parts, |&x| x);
            keys.sort_by(f64::total_cmp);
            prop_assert_eq!(sorted, keys);
        }

        #[test]
        fn prop_partitions_preserve_multiset(keys in prop::collection::vec(0u32..1000, 0..300),
                                             parts in 1usize..7) {
            let items: Vec<f64> = keys.iter().map(|&k| k as f64).collect();
            let buckets = sample_partition_by(items, parts, |&x| x);
            prop_assert_eq!(buckets.len(), parts);
            let mut flat: Vec<f64> = buckets.into_iter().flatten().collect();
            flat.sort_by(f64::total_cmp);
            let mut expect: Vec<f64> = keys.iter().map(|&k| k as f64).collect();
            expect.sort_by(f64::total_cmp);
            prop_assert_eq!(flat, expect);
        }
    }
}
