//! The batch subsystem's contract: `run_batch` is nothing but N
//! independent `Aligner::run`s — byte-identical alignments on every
//! backend, in any job order — with per-job failure isolation and a
//! well-formed `JobStarted`/`JobFinished` event stream.

use proptest::prelude::*;
use sample_align_d::prelude::*;
use std::sync::{Arc, Mutex};

fn backends(p: usize) -> Vec<Backend> {
    vec![
        Backend::Sequential,
        Backend::Rayon { threads: p },
        Backend::Distributed(VirtualCluster::new(p, CostModel::beowulf_2008())),
    ]
}

fn family(n: usize, seed: u64) -> Vec<Sequence> {
    Family::generate(&FamilyConfig {
        n_seqs: n,
        avg_len: 50,
        relatedness: 700.0,
        seed,
        ..Default::default()
    })
    .seqs
}

/// Strategy: 1–5 jobs of 2–10 arbitrary protein sequences each, every
/// sequence long enough for the default k-mer length.
fn arb_jobs() -> impl Strategy<Value = Vec<BatchJob>> {
    prop::collection::vec(prop::collection::vec(prop::collection::vec(0u8..20, 8..40), 2..10), 1..5)
        .prop_map(|jobs| {
            jobs.into_iter()
                .enumerate()
                .map(|(j, fams)| {
                    let seqs: Vec<Sequence> = fams
                        .into_iter()
                        .enumerate()
                        .map(|(i, codes)| Sequence::from_codes(format!("j{j}s{i}"), codes))
                        .collect();
                    BatchJob::new(format!("job-{j}"), seqs)
                })
                .collect()
        })
}

/// Deterministic in-place shuffle (xorshift), so "under shuffled job
/// order" is reproducible from the proptest seed.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        items.swap(i, (seed % (i as u64 + 1)) as usize);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole parity property: for every backend, each job's MSA in
    /// a `run_batch` result is byte-identical to the corresponding single
    /// `Aligner::run` on the same family — including under shuffled job
    /// order and whatever worker count the pool uses.
    #[test]
    fn batch_equals_single_on_every_backend(
        jobs in arb_jobs(),
        shuffle_seed in 0u64..u64::MAX,
        workers in 1usize..4,
    ) {
        for backend in backends(3) {
            let name = backend.name();
            let aligner = Aligner::new(SadConfig::default()).backend(backend);
            // Reference: one independent run per job, keyed by id.
            let singles: Vec<(String, RunReport)> = jobs
                .iter()
                .map(|j| (j.id.clone(), aligner.run(&j.seqs).expect("valid input")))
                .collect();
            let mut shuffled = jobs.clone();
            shuffle(&mut shuffled, shuffle_seed | 1);
            let batch = aligner.run_batch_with(&shuffled, workers);
            prop_assert_eq!(batch.failed(), 0, "{}: no job may fail", name);
            for (submitted, got) in shuffled.iter().zip(&batch.jobs) {
                prop_assert_eq!(&got.id, &submitted.id, "{}: submission order kept", name);
                let single =
                    &singles.iter().find(|(id, _)| id == &got.id).expect("known id").1;
                let batched = got.outcome.as_ref().expect("succeeded");
                // Byte-identical: compare the serialized alignments, not
                // just the Msa values.
                prop_assert_eq!(
                    fasta::write_alignment(&batched.msa),
                    fasta::write_alignment(&single.msa),
                    "{}: {} diverged from its single run", name, got.id
                );
                prop_assert_eq!(batched.work, single.work, "{}: {} work", name, got.id);
                prop_assert_eq!(
                    batched.phase_sequence(),
                    single.phase_sequence(),
                    "{}: {} phases", name, got.id
                );
            }
        }
    }
}

/// An observer that records every event it sees.
#[derive(Default)]
struct Recorder {
    events: Mutex<Vec<Event>>,
}

impl Observer for Recorder {
    fn on_event(&self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

#[test]
fn failure_isolation_with_a_well_formed_event_stream() {
    // A batch mixing healthy jobs, a TooFewSequences job and a poisoned
    // (cancelled-mid-job) job must complete the healthy jobs, report the
    // others per job, and keep the event stream balanced.
    let poison = CancelToken::new();
    let jobs = vec![
        BatchJob::new("ok-a", family(8, 1)),
        BatchJob::new("too-few", family(1, 2)),
        BatchJob::new("poisoned", family(8, 3)).with_cancel(poison.clone()),
        BatchJob::new("ok-b", family(6, 4)),
    ];
    for backend in backends(2) {
        let name = backend.name();
        let rec = Arc::new(Recorder::default());
        // Poison job 2 the moment it starts — a mid-batch cancellation,
        // not a pre-failed input.
        let trigger = poison.clone();
        let sink = Arc::clone(&rec);
        let observer = move |e: &Event| {
            sink.on_event(e);
            if matches!(e, Event::JobStarted { job: 2, .. }) {
                trigger.cancel();
            }
        };
        let batch = Aligner::new(SadConfig::default())
            .backend(backend)
            .observer(Arc::new(observer))
            .run_batch_with(&jobs, 2);

        // The healthy jobs completed despite their neighbours.
        assert!(batch.job("ok-a").unwrap().outcome.is_ok(), "{name}");
        assert!(batch.job("ok-b").unwrap().outcome.is_ok(), "{name}");
        assert_eq!(
            batch.job("too-few").unwrap().outcome,
            Err(SadError::TooFewSequences { found: 1 }),
            "{name}"
        );
        assert!(
            matches!(batch.job("poisoned").unwrap().outcome, Err(SadError::Cancelled { .. })),
            "{name}: {:?}",
            batch.job("poisoned").unwrap().outcome
        );
        assert_eq!(batch.succeeded(), 2, "{name}");
        assert_eq!(batch.failed(), 2, "{name}");

        // Event stream well-formedness: every JobStarted has exactly one
        // matching JobFinished, with the right verdict, and never before
        // its start.
        let events = rec.events.lock().unwrap().clone();
        for (i, job) in jobs.iter().enumerate() {
            let starts: Vec<usize> = events
                .iter()
                .enumerate()
                .filter_map(|(k, e)| match e {
                    Event::JobStarted { job, id, n_seqs } if *job == i => {
                        assert_eq!(id, &jobs[i].id, "{name}");
                        assert_eq!(*n_seqs, jobs[i].seqs.len(), "{name}");
                        Some(k)
                    }
                    _ => None,
                })
                .collect();
            let finishes: Vec<(usize, bool)> = events
                .iter()
                .enumerate()
                .filter_map(|(k, e)| match e {
                    Event::JobFinished { job, ok, .. } if *job == i => Some((k, *ok)),
                    _ => None,
                })
                .collect();
            assert_eq!(starts.len(), 1, "{name}: job {i} started once");
            assert_eq!(finishes.len(), 1, "{name}: job {i} finished once");
            assert!(starts[0] < finishes[0].0, "{name}: job {i} finished before starting");
            let expect_ok = batch.jobs[i].outcome.is_ok();
            assert_eq!(finishes[0].1, expect_ok, "{name}: job {i} ({}) verdict", job.id);
        }
        poison.cancel(); // keep the token poisoned for the next backend
    }
}

#[test]
fn batch_wide_cancellation_reaches_every_remaining_job() {
    // Cancelling the aligner's own token mid-batch stops the running job
    // at its next phase boundary and every queued job before its first
    // phase — no job hangs, every job reports.
    let token = CancelToken::new();
    let trigger = token.clone();
    let observer = move |e: &Event| {
        if matches!(e, Event::JobStarted { job: 1, .. }) {
            trigger.cancel();
        }
    };
    let jobs: Vec<BatchJob> =
        (0..4).map(|i| BatchJob::new(format!("j{i}"), family(8, i as u64))).collect();
    let batch = Aligner::new(SadConfig::default())
        .cancel_token(token)
        .observer(Arc::new(observer))
        .run_batch_with(&jobs, 1);
    assert_eq!(batch.jobs.len(), 4, "every job reports");
    assert!(batch.jobs[0].outcome.is_ok(), "job 0 finished before the cancel");
    for job in &batch.jobs[1..] {
        assert!(
            matches!(job.outcome, Err(SadError::Cancelled { .. })),
            "{}: {:?}",
            job.id,
            job.outcome
        );
    }
}

#[test]
fn aggregate_work_is_the_componentwise_job_sum() {
    // The dp_cells / dp_cells_full satellite: the aggregate must be the
    // exact per-job sum — in particular the full-matrix reference counter
    // is never folded into the filled-cell counter.
    let jobs: Vec<BatchJob> =
        (0..3).map(|i| BatchJob::new(format!("j{i}"), family(8 + i, i as u64))).collect();
    let batch = Aligner::new(SadConfig::default())
        .backend(Backend::Rayon { threads: 2 })
        .run_batch_with(&jobs, 2);
    assert_eq!(batch.failed(), 0);
    let expected: bioseq::Work = batch.jobs.iter().map(|j| j.outcome.as_ref().unwrap().work).sum();
    assert_eq!(batch.work, expected);
    assert!(batch.work.dp_cells <= 3 * batch.work.dp_cells_full, "audit invariant on aggregate");
    assert!(batch.work.total_units() > 0);
}
