//! Quickstart: align a synthetic protein family with Sample-Align-D and
//! inspect quality against the known true alignment.
//!
//! Run with: `cargo run --release --example quickstart`

use sample_align_d::prelude::*;

fn main() {
    // 1. Generate a family of 24 homologous sequences with a known true
    //    alignment (the rose model the paper uses for its experiments).
    let family = Family::generate(&FamilyConfig {
        n_seqs: 24,
        avg_len: 120,
        relatedness: 600.0,
        seed: 42,
        ..Default::default()
    });
    println!(
        "generated {} sequences, avg length {:.0}, true avg identity {:.2}",
        family.seqs.len(),
        family.seqs.iter().map(|s| s.len() as f64).sum::<f64>() / family.seqs.len() as f64,
        family.reference.average_identity()
    );

    // 2. Align on a virtual 4-node Beowulf cluster.
    let cluster = VirtualCluster::new(4, CostModel::beowulf_2008());
    let cfg = SadConfig::default();
    let run = run_distributed(&cluster, &family.seqs, &cfg);

    println!("\nalignment snapshot (first rows/columns):");
    print!("{}", run.msa.snapshot(10, 72));

    // 3. Quality and performance.
    let matrix = SubstMatrix::blosum62();
    let gaps = GapPenalties::default();
    println!("SP score: {}", run.msa.sp_score(&matrix, gaps));
    if let Some(q) = bioseq::compare::q_score_msa(&run.msa, &family.reference) {
        println!("Q vs true alignment: {q:.3}");
    }
    println!("\nvirtual makespan: {:.3}s on {} ranks", run.makespan, cluster.p());
    println!("bucket sizes: {:?}", run.bucket_sizes);
    println!("\nper-phase timing (the paper's Section 3 steps):");
    print!("{}", run.phase_table());

    // 4. The same pipeline on the rayon shared-memory backend.
    let ray = run_rayon(&family.seqs, 4, &cfg);
    println!("\nrayon backend agrees with the cluster backend: {}", ray.msa == run.msa);

    // 5. Round-trip the result through FASTA.
    let fasta_text = fasta::write_alignment(&run.msa);
    let parsed = fasta::parse_alignment(&fasta_text).expect("roundtrip");
    assert_eq!(parsed.num_rows(), run.msa.num_rows());
    println!("FASTA round-trip OK ({} bytes)", fasta_text.len());
}
