//! Compact symmetric distance matrices.

use serde::{Deserialize, Serialize};

/// A symmetric `n × n` distance matrix storing only the strict lower
/// triangle (`d(i,i) = 0` implicitly).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistMatrix {
    n: usize,
    /// Lower-triangle entries: row i (i>0) holds `d(i,0..i)` at offset
    /// `i(i-1)/2`.
    tri: Vec<f64>,
}

impl DistMatrix {
    /// A zero matrix of side `n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn zeros(n: usize) -> Self {
        assert!(n > 0, "matrix must have at least one element");
        DistMatrix { n, tri: vec![0.0; n * (n - 1) / 2] }
    }

    /// Build from a function of index pairs (called once per unordered
    /// pair, `i > j`).
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(n);
        for i in 1..n {
            for j in 0..i {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i != j && i < self.n && j < self.n);
        let (hi, lo) = if i > j { (i, j) } else { (j, i) };
        hi * (hi - 1) / 2 + lo
    }

    /// Matrix side length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false (matrices have at least one element).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Distance between `i` and `j` (zero on the diagonal).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if i == j {
            0.0
        } else {
            self.tri[self.idx(i, j)]
        }
    }

    /// Set the distance between distinct indices `i` and `j`.
    ///
    /// # Panics
    /// Panics if `i == j`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i != j, "diagonal is fixed at zero");
        let at = self.idx(i, j);
        self.tri[at] = v;
    }

    /// Mean of all off-diagonal entries.
    pub fn mean(&self) -> f64 {
        if self.tri.is_empty() {
            0.0
        } else {
            self.tri.iter().sum::<f64>() / self.tri.len() as f64
        }
    }

    /// Maximum off-diagonal entry (0 for 1×1 matrices).
    pub fn max(&self) -> f64 {
        self.tri.iter().copied().fold(0.0, f64::max)
    }

    /// Number of stored (off-diagonal) entries.
    pub fn num_pairs(&self) -> usize {
        self.tri.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_access() {
        let mut m = DistMatrix::zeros(4);
        m.set(2, 1, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.get(2, 1), 5.0);
        assert_eq!(m.get(3, 3), 0.0);
    }

    #[test]
    fn from_fn_fills_all_pairs() {
        let m = DistMatrix::from_fn(3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.get(1, 0), 10.0);
        assert_eq!(m.get(2, 0), 20.0);
        assert_eq!(m.get(2, 1), 21.0);
        assert_eq!(m.num_pairs(), 3);
    }

    #[test]
    fn mean_and_max() {
        let m = DistMatrix::from_fn(3, |i, j| (i + j) as f64);
        // entries: d(1,0)=1, d(2,0)=2, d(2,1)=3
        assert!((m.mean() - 2.0).abs() < 1e-12);
        assert_eq!(m.max(), 3.0);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn setting_diagonal_panics() {
        DistMatrix::zeros(2).set(1, 1, 3.0);
    }

    #[test]
    fn single_element() {
        let m = DistMatrix::zeros(1);
        assert_eq!(m.len(), 1);
        assert_eq!(m.num_pairs(), 0);
        assert_eq!(m.mean(), 0.0);
    }
}
