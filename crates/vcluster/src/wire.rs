//! Wire-size accounting for messages.
//!
//! Messages between ranks never leave the process, so no serialisation is
//! performed — but the cost model still needs to know how many bytes a
//! payload *would* occupy on a real interconnect. [`WireSize`] reports that
//! figure; implementations should approximate a compact binary encoding
//! (fixed-width scalars, length-prefixed containers).

/// Number of bytes a value would occupy in a compact binary encoding.
pub trait WireSize {
    /// Payload bytes (excluding any envelope/tag overhead, which the cost
    /// model's latency/overhead terms cover).
    fn wire_bytes(&self) -> usize;
}

macro_rules! wire_fixed {
    ($($t:ty),*) => {
        $(impl WireSize for $t {
            fn wire_bytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

wire_fixed!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char);

impl WireSize for () {
    fn wire_bytes(&self) -> usize {
        0
    }
}

impl WireSize for String {
    fn wire_bytes(&self) -> usize {
        8 + self.len()
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_bytes(&self) -> usize {
        1 + self.as_ref().map_or(0, WireSize::wire_bytes)
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_bytes(&self) -> usize {
        8 + self.iter().map(WireSize::wire_bytes).sum::<usize>()
    }
}

impl<T: WireSize> WireSize for Box<T> {
    fn wire_bytes(&self) -> usize {
        self.as_ref().wire_bytes()
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_bytes(&self) -> usize {
        self.0.wire_bytes() + self.1.wire_bytes()
    }
}

impl<A: WireSize, B: WireSize, C: WireSize> WireSize for (A, B, C) {
    fn wire_bytes(&self) -> usize {
        self.0.wire_bytes() + self.1.wire_bytes() + self.2.wire_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(0u8.wire_bytes(), 1);
        assert_eq!(0u64.wire_bytes(), 8);
        assert_eq!(1.5f64.wire_bytes(), 8);
        assert_eq!(true.wire_bytes(), 1);
        assert_eq!(().wire_bytes(), 0);
    }

    #[test]
    fn containers() {
        assert_eq!(vec![1u32, 2, 3].wire_bytes(), 8 + 12);
        assert_eq!("abc".to_string().wire_bytes(), 11);
        assert_eq!(Some(7u16).wire_bytes(), 3);
        assert_eq!(None::<u16>.wire_bytes(), 1);
        assert_eq!((1u8, 2u32).wire_bytes(), 5);
    }

    #[test]
    fn nested_vectors() {
        let v: Vec<Vec<u8>> = vec![vec![0; 4], vec![0; 6]];
        assert_eq!(v.wire_bytes(), 8 + (8 + 4) + (8 + 6));
    }
}
