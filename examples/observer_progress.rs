//! Observing a run: a progress-bar observer over the typed pipeline
//! events, plus cancellation by token and by deadline.
//!
//! Run with: `cargo run --release --example observer_progress`

use sample_align_d::prelude::*;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A ten-slot progress bar over [`Phase::ALL`]: one `#` per finished
/// phase, printed on every `PhaseFinished` event.
struct ProgressBar {
    done: Mutex<Vec<Phase>>,
}

impl ProgressBar {
    fn new() -> Self {
        ProgressBar { done: Mutex::new(Vec::new()) }
    }
}

impl Observer for ProgressBar {
    fn on_event(&self, event: &Event) {
        match event {
            Event::RunStarted { backend, n_seqs, ranks } => {
                println!("aligning {n_seqs} sequences on {backend} ({ranks} ranks)");
            }
            Event::PhaseFinished { phase, seconds, .. } => {
                let mut done = self.done.lock().unwrap();
                done.push(*phase);
                let bar: String =
                    Phase::ALL.iter().map(|p| if done.contains(p) { '#' } else { '.' }).collect();
                println!("[{bar}] {phase:<20} {seconds:.4}s");
            }
            Event::BucketAligned { bucket, rows, seconds } => {
                println!("         bucket {bucket}: {rows} rows in {seconds:.4}s");
            }
            Event::RunFinished { seconds, cancelled } => {
                let status = if *cancelled { "cancelled" } else { "done" };
                println!("{status} in {seconds:.4}s");
            }
            _ => {}
        }
    }
}

fn main() {
    let family = Family::generate(&FamilyConfig {
        n_seqs: 32,
        avg_len: 100,
        relatedness: 700.0,
        seed: 7,
        ..Default::default()
    });

    // 1. Watch a full run phase by phase.
    println!("== observed run ==");
    let report = Aligner::new(SadConfig::default())
        .backend(Backend::Rayon { threads: 4 })
        .observer(Arc::new(ProgressBar::new()))
        .run(&family.seqs)
        .expect("valid input");
    println!("\nper-phase table (work, DP cells, wall seconds):");
    print!("{}", report.phase_table());
    assert!(report.phases.iter().all(|p| p.seconds.is_some()));

    // 2. Stop a run from the outside: an observer flips the shared token
    //    as soon as the buckets are aligned, and the pipeline returns a
    //    typed SadError::Cancelled at the next phase boundary.
    println!("\n== cancelled run ==");
    let token = CancelToken::new();
    let trigger = token.clone();
    let cancel_after_align = move |event: &Event| {
        if matches!(event, Event::PhaseFinished { phase: Phase::LocalAlign, .. }) {
            trigger.cancel();
        }
    };
    let err = Aligner::new(SadConfig::default())
        .backend(Backend::Rayon { threads: 4 })
        .cancel_token(token)
        .observer(Arc::new(cancel_after_align))
        .run(&family.seqs)
        .expect_err("the token cancels the run");
    println!("cancelled run returned: {err}");
    assert!(matches!(err, SadError::Cancelled { .. }));

    // 3. Or give the run a wall-clock budget instead.
    let err = Aligner::new(SadConfig::default())
        .deadline(Duration::ZERO)
        .run(&family.seqs)
        .expect_err("a zero budget cancels at the first boundary");
    println!("zero deadline returned:  {err}");

    println!("\nobserver example OK");
}
