//! The distributed Sample-Align-D pipeline over the virtual cluster.
//!
//! Phase names follow the numbered steps of the algorithm listing in
//! Section 2 of the paper, so the per-phase timing table lines up with the
//! cost analysis of Section 3.

use crate::ancestor::{anchor_to_ancestor, glue_anchored, glue_block_diagonal};
use crate::config::SadConfig;
use crate::error::SadError;
use crate::messages::{AnchoredBlockMsg, MaybeSeq, MsaBlockMsg, RankedSeq};
use crate::report::{BackendExtras, PhaseStat, RunReport};
use align::consensus::consensus_sequence;
use bioseq::kmer::{self, KmerProfile};
use bioseq::{Msa, Sequence, Work};
use std::collections::HashMap;
use vcluster::{Node, VirtualCluster};

/// A batch of sequences for the sample all-gather.
use crate::messages::SeqBatch;

/// Run Sample-Align-D on a virtual cluster.
///
/// Deprecated shim over the [`crate::Aligner`] builder. The name and
/// argument order match the 0.1 entry point, but the return type changed:
/// `SadRun` is gone, and degenerate input yields a typed [`SadError`]
/// instead of the old behaviour (panic on empty input, trivial one-row
/// alignment for a single sequence). See the README migration table.
#[deprecated(
    since = "0.2.0",
    note = "use `Aligner::new(cfg).backend(Backend::Distributed(cluster.clone())).run(seqs)`"
)]
pub fn run_distributed(
    cluster: &VirtualCluster,
    seqs: &[Sequence],
    cfg: &SadConfig,
) -> Result<RunReport, SadError> {
    crate::Aligner::new(cfg.clone()).backend(crate::Backend::Distributed(cluster.clone())).run(seqs)
}

/// The message-passing pipeline. `seqs` plays the role of the pre-staged
/// input files (the paper stages shards on each node's disk before timing
/// starts, so the initial slice is free here too). Input validation
/// happens in [`crate::Aligner::run`].
pub(crate) fn distributed_pipeline(
    cluster: &VirtualCluster,
    seqs: &[Sequence],
    cfg: &SadConfig,
) -> RunReport {
    debug_assert!(!seqs.is_empty(), "Aligner::run rejects empty input");
    debug_assert_eq!(
        seqs.iter().map(|s| s.id.as_str()).collect::<std::collections::HashSet<_>>().len(),
        seqs.len(),
        "sequence ids must be unique"
    );
    let run = cluster.run(|node| sad_node(node, seqs, cfg));
    let mut msa: Option<Msa> = None;
    let mut bucket_sizes = Vec::with_capacity(run.results.len());
    let mut work = Work::ZERO;
    let mut by_phase: HashMap<&'static str, Work> = HashMap::new();
    for outcome in run.results {
        if let Some(m) = outcome.msa {
            msa = Some(m);
        }
        bucket_sizes.push(outcome.bucket);
        for (name, w) in outcome.phase_work {
            *by_phase.entry(name).or_insert(Work::ZERO) += w;
            work += w;
        }
    }
    // Phase order and timings come from the traces; work from the nodes.
    let phases: Vec<PhaseStat> = vcluster::trace::phase_summary(&run.traces)
        .into_iter()
        .map(|(name, max, _mean)| PhaseStat {
            work: by_phase.get(name.as_str()).copied().unwrap_or(Work::ZERO),
            name,
            seconds: Some(max),
        })
        .collect();
    RunReport {
        msa: msa.expect("root assembled the alignment"),
        work,
        phases,
        bucket_sizes,
        ranks: cluster.p(),
        samples_per_rank: cfg.samples_for(cluster.p()),
        extras: BackendExtras::Distributed { makespan: run.makespan, traces: run.traces },
    }
}

/// Build a k-mer profile, degrading to k=1 for ultra-short sequences.
fn profile_of(seq: &Sequence, cfg: &SadConfig) -> KmerProfile {
    KmerProfile::build(seq, cfg.kmer_k, cfg.alphabet)
        .unwrap_or_else(|| KmerProfile::build(seq, 1, cfg.alphabet).expect("k=1 always works"))
}

/// What one rank hands back to the assembler.
struct NodeOutcome {
    /// The root's assembled alignment (`None` on non-root ranks).
    msa: Option<Msa>,
    /// This rank's post-redistribution bucket size.
    bucket: usize,
    /// Work performed, attributed to pipeline phases.
    phase_work: Vec<(&'static str, Work)>,
}

/// One rank's program.
fn sad_node(node: &Node, all_seqs: &[Sequence], cfg: &SadConfig) -> NodeOutcome {
    let p = node.size();
    let rank = node.rank();
    let n = all_seqs.len();
    let chunk = n.div_ceil(p);
    let lo = (rank * chunk).min(n);
    let hi = ((rank + 1) * chunk).min(n);
    let mut local: Vec<Sequence> = all_seqs[lo..hi].to_vec();
    let mut phase_work: Vec<(&'static str, Work)> = Vec::new();

    // Steps 1–2: local k-mer rank and local sort.
    node.phase_start("1-local-kmer-rank");
    let mut w = Work::ZERO;
    let mut profs: Vec<KmerProfile> = local.iter().map(|s| profile_of(s, cfg)).collect();
    w.seq_bytes += local.iter().map(|s| s.len() as u64).sum::<u64>();
    let local_ranks: Vec<f64> =
        profs.iter().map(|pr| kmer::kmer_rank(pr, &profs, cfg.rank_transform, &mut w)).collect();
    node.compute(w);
    phase_work.push(("1-local-kmer-rank", w));
    node.phase_end();

    node.phase_start("2-local-sort");
    let mut order: Vec<usize> = (0..local.len()).collect();
    order.sort_by(|&a, &b| local_ranks[a].total_cmp(&local_ranks[b]));
    local = order.iter().map(|&i| local[i].clone()).collect();
    profs = order.iter().map(|&i| profs[i].clone()).collect();
    let w = psrs::sort_work(local.len());
    node.compute(w);
    phase_work.push(("2-local-sort", w));
    node.phase_end();

    // Steps 3–4: regular sampling and sample exchange.
    node.phase_start("3-sample-exchange");
    let k = cfg.samples_for(p);
    let m = local.len();
    let kk = k.min(m);
    let samples: Vec<Sequence> =
        (0..kk).map(|s| local[(((s + 1) * m) / (kk + 1)).min(m - 1)].clone()).collect();
    let all_samples: Vec<Sequence> =
        node.all_gather(SeqBatch(samples)).into_iter().flat_map(|b| b.0).collect();
    node.phase_end();

    // Step 5: globalized rank against the pooled sample.
    node.phase_start("5-globalized-rank");
    let mut w = Work::ZERO;
    let sample_profiles: Vec<KmerProfile> =
        all_samples.iter().map(|s| profile_of(s, cfg)).collect();
    let granks: Vec<f64> = profs
        .iter()
        .map(|pr| kmer::kmer_rank(pr, &sample_profiles, cfg.rank_transform, &mut w))
        .collect();
    node.compute(w);
    phase_work.push(("5-globalized-rank", w));
    node.phase_end();

    // Steps 6–7: PSRS redistribution on the globalized rank.
    node.phase_start("6-redistribute");
    let items: Vec<RankedSeq> =
        local.into_iter().zip(granks).map(|(seq, rank)| RankedSeq { seq, rank }).collect();
    let out = psrs::psrs(node, items, |r| r.rank);
    phase_work.push(("6-redistribute", out.work));
    let bucket: Vec<Sequence> = out.items.into_iter().map(|r| r.seq).collect();
    let bucket_size = bucket.len();
    node.phase_end();

    // Step 8: sequential MSA on the local bucket.
    node.phase_start("8-local-align");
    let engine = cfg.engine.build_with_band(cfg.band_policy);
    let local_msa: Option<Msa> = if bucket.is_empty() {
        None
    } else {
        let (msa, work) = engine.align_with_work(&bucket);
        node.compute(work);
        phase_work.push(("8-local-align", work));
        Some(msa)
    };
    node.phase_end();

    // Degenerate paths: single rank, or fine-tuning disabled.
    if p == 1 {
        return NodeOutcome { msa: local_msa, bucket: bucket_size, phase_work };
    }
    if !cfg.fine_tune {
        node.phase_start("12-glue");
        let gathered = node.gather(0, MsaBlockMsg(local_msa));
        let result = gathered.map(|blocks| {
            let present: Vec<Msa> = blocks.into_iter().filter_map(|b| b.0).collect();
            let mut w = Work::ZERO;
            let glued = if present.len() == 1 {
                present.into_iter().next().expect("one block")
            } else {
                glue_block_diagonal(&present, &mut w)
            };
            node.compute(w);
            phase_work.push(("12-glue", w));
            glued
        });
        node.phase_end();
        return NodeOutcome { msa: result, bucket: bucket_size, phase_work };
    }

    // Step 9: local ancestor extraction.
    node.phase_start("9-local-ancestor");
    let mut w = Work::ZERO;
    let local_anc: Option<Sequence> =
        local_msa.as_ref().map(|msa| consensus_sequence(msa, format!("local-anc-{rank}"), &mut w));
    node.compute(w);
    phase_work.push(("9-local-ancestor", w));
    node.phase_end();

    // Step 10: global ancestor at the root, broadcast to everyone.
    node.phase_start("10-global-ancestor");
    let gathered = node.gather(0, MaybeSeq(local_anc));
    let mut ga_work = Work::ZERO;
    let ga_msg: MaybeSeq = node.broadcast(
        0,
        gathered.map(|list| {
            let ancestors: Vec<Sequence> = list.into_iter().filter_map(|m| m.0).collect();
            assert!(!ancestors.is_empty(), "at least one bucket is non-empty");
            let ga = if ancestors.len() == 1 {
                ancestors.into_iter().next().expect("one ancestor")
            } else {
                let (anc_msa, work) = engine.align_with_work(&ancestors);
                node.compute(work);
                ga_work += work;
                let mut w = Work::ZERO;
                let ga = consensus_sequence(&anc_msa, "global-ancestor", &mut w);
                node.compute(w);
                ga_work += w;
                ga
            };
            MaybeSeq(Some(ga))
        }),
    );
    let ga = ga_msg.0.expect("global ancestor broadcast");
    phase_work.push(("10-global-ancestor", ga_work));
    node.phase_end();

    // Step 11: constrained fine-tuning against the global ancestor.
    node.phase_start("11-fine-tune");
    let block: Option<AnchoredBlockMsg> = local_msa.as_ref().map(|msa| {
        let mut w = Work::ZERO;
        let b = anchor_to_ancestor(msa, &ga, &cfg.matrix, cfg.gaps, cfg.band_policy, &mut w);
        node.compute(w);
        phase_work.push(("11-fine-tune", w));
        b
    });
    node.phase_end();

    // Step 12: glue at the root.
    node.phase_start("12-glue");
    let gathered = node.gather(0, block);
    let result = gathered.map(|blocks| {
        let present: Vec<AnchoredBlockMsg> = blocks.into_iter().flatten().collect();
        let mut w = Work::ZERO;
        let glued = glue_anchored(ga.len(), &present, &mut w);
        node.compute(w);
        phase_work.push(("12-glue", w));
        glued
    });
    node.phase_end();
    NodeOutcome { msa: result, bucket: bucket_size, phase_work }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aligner, Backend};
    use rosegen::{Family, FamilyConfig};
    use std::collections::HashMap;
    use vcluster::CostModel;

    fn family(n: usize, len: usize, seed: u64) -> Vec<Sequence> {
        Family::generate(&FamilyConfig {
            n_seqs: n,
            avg_len: len,
            relatedness: 700.0,
            seed,
            ..Default::default()
        })
        .seqs
    }

    fn run(p: usize, seqs: &[Sequence], cfg: &SadConfig) -> RunReport {
        let cluster = VirtualCluster::new(p, CostModel::beowulf_2008());
        Aligner::new(cfg.clone()).backend(Backend::Distributed(cluster)).run(seqs).unwrap()
    }

    fn check_complete(result: &Msa, input: &[Sequence]) {
        result.validate().unwrap();
        assert_eq!(result.num_rows(), input.len());
        let by_id: HashMap<&str, &Sequence> = input.iter().map(|s| (s.id.as_str(), s)).collect();
        for r in 0..result.num_rows() {
            let id = &result.ids()[r];
            let want = by_id.get(id.as_str()).unwrap_or_else(|| panic!("alien row {id}"));
            assert_eq!(&result.ungapped(r), *want, "row {id} corrupted");
        }
    }

    #[test]
    fn end_to_end_small() {
        let seqs = family(24, 60, 1);
        let report = run(4, &seqs, &SadConfig::default());
        check_complete(&report.msa, &seqs);
        assert_eq!(report.bucket_sizes.iter().sum::<usize>(), 24);
        assert!(report.makespan().unwrap() > 0.0);
    }

    #[test]
    fn deterministic() {
        let seqs = family(16, 50, 2);
        let a = run(4, &seqs, &SadConfig::default());
        let b = run(4, &seqs, &SadConfig::default());
        assert_eq!(a.msa, b.msa);
        assert_eq!(a.makespan(), b.makespan());
        assert_eq!(a.bucket_sizes, b.bucket_sizes);
        assert_eq!(a.work, b.work);
    }

    #[test]
    fn p1_is_one_engine_run_over_everything() {
        // With one rank the pipeline degenerates to "sort by rank, then run
        // the engine once" — same sequences, one bucket, no glue artifacts.
        let seqs = family(10, 50, 3);
        let report = run(1, &seqs, &SadConfig::default());
        check_complete(&report.msa, &seqs);
        assert_eq!(report.bucket_sizes, vec![10]);
    }

    #[test]
    fn more_ranks_than_sequences() {
        let seqs = family(3, 40, 4);
        let report = run(8, &seqs, &SadConfig::default());
        check_complete(&report.msa, &seqs);
    }

    #[test]
    #[allow(deprecated)]
    fn shim_matches_aligner_and_rejects_degenerate_input() {
        let seqs = family(12, 50, 5);
        let cluster = VirtualCluster::new(4, CostModel::beowulf_2008());
        let cfg = SadConfig::default();
        let via_shim = run_distributed(&cluster, &seqs, &cfg).unwrap();
        let via_builder = run(4, &seqs, &cfg);
        assert_eq!(via_shim.msa, via_builder.msa);
        assert_eq!(via_shim.bucket_sizes, via_builder.bucket_sizes);
        // Degenerate inputs are now uniformly rejected: empty input used
        // to panic in the bucketing code, a single sequence used to yield
        // a trivial one-row alignment; both are TooFewSequences today.
        let one = family(1, 40, 5);
        assert_eq!(
            run_distributed(&cluster, &one, &cfg).unwrap_err(),
            SadError::TooFewSequences { found: 1 }
        );
        assert_eq!(
            run_distributed(&cluster, &[], &cfg).unwrap_err(),
            SadError::TooFewSequences { found: 0 }
        );
    }

    #[test]
    fn fine_tune_beats_block_diagonal() {
        let seqs = family(20, 60, 6);
        let cfg_on = SadConfig::default();
        let cfg_off = SadConfig::default().with_fine_tune(false);
        let on = run(4, &seqs, &cfg_on);
        let off = run(4, &seqs, &cfg_off);
        check_complete(&on.msa, &seqs);
        check_complete(&off.msa, &seqs);
        let m = &cfg_on.matrix;
        let g = cfg_on.gaps;
        assert!(
            on.msa.sp_score(m, g) > off.msa.sp_score(m, g),
            "ancestor fine-tuning must improve the glued SP score"
        );
    }

    #[test]
    fn scaling_reduces_makespan() {
        // Large enough that the w² distance term dominates.
        let seqs = family(96, 60, 7);
        let t1 = run(1, &seqs, &SadConfig::default()).makespan().unwrap();
        let t4 = run(4, &seqs, &SadConfig::default()).makespan().unwrap();
        assert!(t4 < t1, "4 ranks ({t4:.4}s) should beat 1 rank ({t1:.4}s)");
    }

    #[test]
    fn phases_present_in_report() {
        let seqs = family(12, 40, 8);
        let report = run(2, &seqs, &SadConfig::default());
        let table = report.phase_table();
        for phase in [
            "1-local-kmer-rank",
            "2-local-sort",
            "3-sample-exchange",
            "5-globalized-rank",
            "6-redistribute",
            "8-local-align",
            "9-local-ancestor",
            "10-global-ancestor",
            "11-fine-tune",
            "12-glue",
        ] {
            assert!(table.contains(phase), "missing phase {phase}:\n{table}");
        }
        // Compute-bearing phases carry their work in the unified report.
        let of = |name: &str| {
            report.phases.iter().find(|p| p.name == name).map(|p| p.work).unwrap_or(Work::ZERO)
        };
        assert!(of("1-local-kmer-rank").kmer_ops > 0);
        assert!(of("8-local-align").dp_cells > 0);
        assert_eq!(report.work, report.phases.iter().map(|p| p.work).sum::<Work>());
    }

    #[test]
    fn load_imbalance_reported() {
        let seqs = family(64, 50, 9);
        let report = run(4, &seqs, &SadConfig::default());
        let imb = report.load_imbalance();
        assert!(imb >= 1.0);
        // Regular sampling bound: max ≤ 2·N/p ⇒ imbalance ≤ 2 (+ slack for
        // duplicate ranks in small samples).
        assert!(imb <= 3.0, "imbalance {imb} suspiciously high");
    }

    #[test]
    fn clustal_engine_works_too() {
        let seqs = family(12, 40, 10);
        let cfg = SadConfig::default().with_engine(align::EngineChoice::Clustal);
        let report = run(3, &seqs, &cfg);
        check_complete(&report.msa, &seqs);
    }
}
