//! # bioseq — protein sequence substrate for Sample-Align-D
//!
//! This crate provides everything the alignment stack needs to talk about
//! protein sequences without depending on any external bioinformatics
//! tooling:
//!
//! * [`alphabet`] — the 20-letter amino-acid alphabet plus the *compressed*
//!   alphabets of Edgar (2004) / Murphy et al. (2000) used for fast k-mer
//!   counting;
//! * [`sequence`] — owned, validated sequences and FASTA-style identifiers;
//! * [`fasta`] — FASTA parsing and serialisation;
//! * [`matrix`] — substitution matrices (BLOSUM62, PAM250), gap penalties and
//!   background residue frequencies;
//! * [`kmer`] — k-mer profiles, the fractional-common-k-mer similarity, the
//!   average distance `D_i` and the **k-mer rank** `R_i = log(0.1 + D_i)`
//!   that Sample-Align-D buckets sequences by;
//! * [`msa`] — gapped alignments, column access, sum-of-pairs scoring;
//! * [`compare`] — the PREFAB `Q` score and the total-column `TC` score;
//! * [`stats`] — tiny statistics helpers used by the evaluation harness;
//! * [`work`] — abstract work accounting consumed by the virtual cluster's
//!   deterministic cost model.
//!
//! Everything here is deterministic and allocation-conscious: k-mer profiles
//! are sorted sparse vectors so pairwise similarity is a linear merge, and
//! alignments store residues as `u8` codes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alphabet;
pub mod compare;
pub mod fasta;
pub mod kmer;
pub mod matrix;
pub mod msa;
pub mod sequence;
pub mod stats;
pub mod work;

pub use alphabet::{Alphabet, CompressedAlphabet, AA_COUNT, GAP_CODE, X_CODE};
pub use kmer::{KmerProfile, RankTransform};
pub use matrix::{GapPenalties, SubstMatrix};
pub use msa::Msa;
pub use sequence::Sequence;
pub use work::Work;
