//! Cross-crate integration: the full Sample-Align-D pipeline from
//! generated sequences to a validated global alignment, through the
//! unified [`Aligner`] API.

use sample_align_d::prelude::*;
use std::collections::HashMap;

fn family(n: usize, len: usize, relatedness: f64, seed: u64) -> Family {
    Family::generate(&FamilyConfig {
        n_seqs: n,
        avg_len: len,
        relatedness,
        seed,
        ..Default::default()
    })
}

fn on_cluster(p: usize, seqs: &[Sequence], cfg: &SadConfig) -> RunReport {
    let cluster = VirtualCluster::new(p, CostModel::beowulf_2008());
    Aligner::new(cfg.clone()).backend(Backend::Distributed(cluster)).run(seqs).unwrap()
}

fn check_complete(result: &bioseq::Msa, input: &[Sequence]) {
    result.validate().unwrap();
    assert_eq!(result.num_rows(), input.len());
    let by_id: HashMap<&str, &Sequence> = input.iter().map(|s| (s.id.as_str(), s)).collect();
    for r in 0..result.num_rows() {
        let id = &result.ids()[r];
        let want = by_id[id.as_str()];
        assert_eq!(&result.ungapped(r), want, "row {id}");
    }
}

#[test]
fn distributed_pipeline_is_complete_and_deterministic() {
    let fam = family(40, 70, 700.0, 1);
    let cfg = SadConfig::default();
    let a = on_cluster(4, &fam.seqs, &cfg);
    let b = on_cluster(4, &fam.seqs, &cfg);
    check_complete(&a.msa, &fam.seqs);
    assert_eq!(a.msa, b.msa);
    assert_eq!(a.makespan(), b.makespan());
}

#[test]
fn rayon_and_distributed_backends_agree() {
    let fam = family(32, 60, 600.0, 2);
    let cfg = SadConfig::default();
    let dist = on_cluster(4, &fam.seqs, &cfg);
    let ray = Aligner::new(cfg).backend(Backend::Rayon { threads: 4 }).run(&fam.seqs).unwrap();
    assert_eq!(dist.msa, ray.msa, "step-identical pipelines must agree");
    assert_eq!(dist.bucket_sizes, ray.bucket_sizes);
}

#[test]
fn quality_tracks_the_sequential_engine() {
    // On a homologous family, decomposing over 4 ranks should stay within
    // a reasonable band of the engine run on everything at once.
    let fam = family(32, 80, 500.0, 3);
    let cfg = SadConfig::default();
    let sad = on_cluster(4, &fam.seqs, &cfg);
    let seq = Aligner::new(cfg).backend(Backend::Sequential).run(&fam.seqs).unwrap();
    let q_sad = bioseq::compare::q_score_msa(&sad.msa, &fam.reference).unwrap();
    let q_seq = bioseq::compare::q_score_msa(&seq.msa, &fam.reference).unwrap();
    assert!(q_sad > q_seq - 0.25, "SAD Q {q_sad:.3} too far below sequential Q {q_seq:.3}");
    assert!(q_sad > 0.3, "SAD Q {q_sad:.3} unreasonably low");
}

#[test]
fn every_engine_choice_runs_distributed() {
    let fam = family(18, 50, 600.0, 4);
    for engine in EngineChoice::ALL {
        let cfg = SadConfig::default().with_engine(engine);
        let report = on_cluster(3, &fam.seqs, &cfg);
        check_complete(&report.msa, &fam.seqs);
    }
}

#[test]
fn genome_mixture_aligns() {
    let genome = GenomeSample::generate(&GenomeConfig {
        n_seqs: 48,
        n_families: 6,
        avg_len: 90,
        seed: 5,
        ..Default::default()
    });
    let report = on_cluster(4, &genome.seqs, &SadConfig::default());
    check_complete(&report.msa, &genome.seqs);
    // Similar sequences should co-locate: for most families, members end
    // up in few buckets. Weak check: bucket sizes sum and are bounded.
    assert_eq!(report.bucket_sizes.iter().sum::<usize>(), 48);
}

#[test]
fn output_roundtrips_through_fasta() {
    let fam = family(12, 40, 500.0, 6);
    let report = on_cluster(2, &fam.seqs, &SadConfig::default());
    let text = fasta::write_alignment(&report.msa);
    let parsed = fasta::parse_alignment(&text).unwrap();
    assert_eq!(parsed.rows(), report.msa.rows());
    assert_eq!(parsed.ids(), report.msa.ids());
}

#[test]
fn free_network_ablation_only_speeds_things_up() {
    let fam = family(24, 50, 600.0, 7);
    let cfg = SadConfig::default();
    let real = Aligner::new(cfg.clone())
        .backend(Backend::Distributed(VirtualCluster::new(4, CostModel::beowulf_2008())))
        .run(&fam.seqs)
        .unwrap();
    let free = Aligner::new(cfg)
        .backend(Backend::Distributed(VirtualCluster::new(4, CostModel::free_network())))
        .run(&fam.seqs)
        .unwrap();
    assert_eq!(real.msa, free.msa, "cost model must not affect results");
    assert!(free.makespan().unwrap() < real.makespan().unwrap());
}
