//! Property-based integration tests: the pipeline's invariants must hold
//! for arbitrary (valid) inputs, not just rose families.

use proptest::prelude::*;
use sample_align_d::prelude::*;

/// Strategy: a set of 2..=12 random protein sequences with unique ids.
fn arb_sequences() -> impl Strategy<Value = Vec<Sequence>> {
    prop::collection::vec(prop::collection::vec(0u8..20, 8..40), 2..12).prop_map(|codes| {
        codes
            .into_iter()
            .enumerate()
            .map(|(i, c)| Sequence::from_codes(format!("p{i}"), c))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn distributed_preserves_every_sequence(seqs in arb_sequences(), p in 1usize..5) {
        let cluster = VirtualCluster::new(p, CostModel::beowulf_2008());
        let run = run_distributed(&cluster, &seqs, &SadConfig::default());
        prop_assert!(run.msa.validate().is_ok());
        prop_assert_eq!(run.msa.num_rows(), seqs.len());
        let mut got: Vec<(String, String)> = (0..run.msa.num_rows())
            .map(|r| (run.msa.ids()[r].clone(), run.msa.ungapped(r).to_letters()))
            .collect();
        got.sort();
        let mut want: Vec<(String, String)> =
            seqs.iter().map(|s| (s.id.clone(), s.to_letters())).collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bucket_sizes_conserve_input(seqs in arb_sequences(), p in 1usize..5) {
        let cluster = VirtualCluster::new(p, CostModel::beowulf_2008());
        let run = run_distributed(&cluster, &seqs, &SadConfig::default());
        prop_assert_eq!(run.bucket_sizes.iter().sum::<usize>(), seqs.len());
        prop_assert!(run.makespan.is_finite() && run.makespan >= 0.0);
    }

    #[test]
    fn sp_score_finite_and_q_bounded(seqs in arb_sequences()) {
        let cluster = VirtualCluster::new(2, CostModel::beowulf_2008());
        let run = run_distributed(&cluster, &seqs, &SadConfig::default());
        let matrix = SubstMatrix::blosum62();
        let sp = run.msa.sp_score(&matrix, GapPenalties::default());
        // SP of an n x c alignment is bounded by pairs x columns x max score.
        let n = run.msa.num_rows() as i64;
        let c = run.msa.num_cols() as i64;
        prop_assert!(sp.abs() <= n * n * c * 17, "sp={sp} n={n} c={c}");
    }

    #[test]
    fn fasta_roundtrip_of_pipeline_output(seqs in arb_sequences()) {
        let cluster = VirtualCluster::new(2, CostModel::beowulf_2008());
        let run = run_distributed(&cluster, &seqs, &SadConfig::default());
        let text = fasta::write_alignment(&run.msa);
        let parsed = fasta::parse_alignment(&text).unwrap();
        prop_assert_eq!(parsed.rows(), run.msa.rows());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn engines_are_total_on_arbitrary_inputs(seqs in arb_sequences()) {
        for engine in EngineChoice::ALL {
            let msa = engine.build().align(&seqs);
            prop_assert!(msa.validate().is_ok(), "{:?}", engine);
            prop_assert_eq!(msa.num_rows(), seqs.len());
        }
    }
}
