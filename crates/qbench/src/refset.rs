//! Reference case generation.

use bioseq::alphabet::GAP_CODE;
use bioseq::{Msa, Sequence};
use rosegen::{Family, FamilyConfig};

/// One benchmark case: a set of homologs containing two seed sequences
/// whose true pairwise alignment is the scoring reference.
#[derive(Debug, Clone)]
pub struct ReferenceCase {
    /// Case identifier (e.g. `"case017"`).
    pub id: String,
    /// All sequences of the case (seeds included), in generator order.
    pub seqs: Vec<Sequence>,
    /// Ids of the two seed sequences.
    pub seed_ids: (String, String),
    /// The reference alignment of the two seeds (2 rows).
    pub reference_pair: Msa,
    /// The full true alignment (for TC scoring / diagnostics).
    pub full_reference: Msa,
}

/// Benchmark parameters.
#[derive(Debug, Clone)]
pub struct BenchmarkConfig {
    /// Number of cases.
    pub n_cases: usize,
    /// Sequences per case (PREFAB sets hold ~20–50).
    pub seqs_per_case: usize,
    /// Mean sequence length.
    pub avg_len: usize,
    /// Relatedness range: case `i` interpolates between the two bounds, so
    /// the benchmark spans easy to hard cases like PREFAB's divergence
    /// spread.
    pub relatedness: (f64, f64),
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for BenchmarkConfig {
    fn default() -> Self {
        BenchmarkConfig {
            n_cases: 24,
            seqs_per_case: 24,
            avg_len: 120,
            relatedness: (300.0, 1100.0),
            seed: 0,
        }
    }
}

/// A set of reference cases.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// The cases.
    pub cases: Vec<ReferenceCase>,
}

impl Benchmark {
    /// Generate a benchmark.
    pub fn generate(cfg: &BenchmarkConfig) -> Benchmark {
        assert!(cfg.n_cases >= 1 && cfg.seqs_per_case >= 2);
        let cases = (0..cfg.n_cases)
            .map(|i| {
                let t = if cfg.n_cases == 1 { 0.0 } else { i as f64 / (cfg.n_cases - 1) as f64 };
                let relatedness = cfg.relatedness.0 + t * (cfg.relatedness.1 - cfg.relatedness.0);
                let fam = Family::generate(&FamilyConfig {
                    n_seqs: cfg.seqs_per_case,
                    avg_len: cfg.avg_len,
                    len_sd: cfg.avg_len as f64 * 0.05,
                    relatedness,
                    seed: cfg.seed.wrapping_mul(7919).wrapping_add(i as u64),
                    id_prefix: format!("c{i:03}s"),
                    ..Default::default()
                });
                case_from_family(format!("case{i:03}"), &fam)
            })
            .collect();
        Benchmark { cases }
    }
}

/// Build a case from a family: the two most divergent leaves become the
/// seed pair (PREFAB's structure pair analogue).
pub fn case_from_family(id: String, fam: &Family) -> ReferenceCase {
    let n = fam.seqs.len();
    // Most divergent pair by tree path length.
    let (mut best_i, mut best_j, mut best_d) = (0usize, 1.min(n - 1), -1.0f64);
    for i in 0..n {
        for j in (i + 1)..n {
            let (Some(ni), Some(nj)) = (fam.tree.leaf_node(i), fam.tree.leaf_node(j)) else {
                continue;
            };
            let d = fam.tree.path_length(ni, nj);
            if d > best_d {
                best_d = d;
                best_i = i;
                best_j = j;
            }
        }
    }
    let reference_pair = project_pair(&fam.reference, best_i, best_j);
    ReferenceCase {
        id,
        seqs: fam.seqs.clone(),
        seed_ids: (fam.seqs[best_i].id.clone(), fam.seqs[best_j].id.clone()),
        reference_pair,
        full_reference: fam.reference.clone(),
    }
}

/// Project a full alignment onto two rows, dropping columns where both are
/// gaps.
pub fn project_pair(msa: &Msa, i: usize, j: usize) -> Msa {
    let (mut ra, mut rb) = (Vec::new(), Vec::new());
    for c in 0..msa.num_cols() {
        let (x, y) = (msa.row(i)[c], msa.row(j)[c]);
        if x != GAP_CODE || y != GAP_CODE {
            ra.push(x);
            rb.push(y);
        }
    }
    Msa::from_rows(vec![msa.ids()[i].clone(), msa.ids()[j].clone()], vec![ra, rb])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_shape() {
        let b = Benchmark::generate(&BenchmarkConfig {
            n_cases: 4,
            seqs_per_case: 8,
            avg_len: 60,
            ..Default::default()
        });
        assert_eq!(b.cases.len(), 4);
        for case in &b.cases {
            assert_eq!(case.seqs.len(), 8);
            assert_eq!(case.reference_pair.num_rows(), 2);
            case.reference_pair.validate().unwrap();
            // Seeds are distinct members of the case.
            assert_ne!(case.seed_ids.0, case.seed_ids.1);
            assert!(case.seqs.iter().any(|s| s.id == case.seed_ids.0));
            assert!(case.seqs.iter().any(|s| s.id == case.seed_ids.1));
        }
    }

    #[test]
    fn reference_pair_ungaps_to_seed_sequences() {
        let b = Benchmark::generate(&BenchmarkConfig {
            n_cases: 2,
            seqs_per_case: 10,
            avg_len: 70,
            ..Default::default()
        });
        for case in &b.cases {
            let s0 = case.seqs.iter().find(|s| s.id == case.seed_ids.0).unwrap();
            let s1 = case.seqs.iter().find(|s| s.id == case.seed_ids.1).unwrap();
            assert_eq!(&case.reference_pair.ungapped(0), s0);
            assert_eq!(&case.reference_pair.ungapped(1), s1);
        }
    }

    #[test]
    fn divergence_spread_across_cases() {
        let b = Benchmark::generate(&BenchmarkConfig {
            n_cases: 6,
            seqs_per_case: 8,
            avg_len: 80,
            relatedness: (100.0, 1400.0),
            ..Default::default()
        });
        let first = b.cases.first().unwrap().full_reference.average_identity();
        let last = b.cases.last().unwrap().full_reference.average_identity();
        assert!(first > last, "easy case {first} should beat hard case {last}");
    }

    #[test]
    fn project_pair_drops_mutual_gaps() {
        let msa = bioseq::fasta::parse_alignment(">a\nM-KV\n>b\nM-K-\n>c\nMWKV\n").unwrap();
        let pair = project_pair(&msa, 0, 1);
        assert_eq!(pair.num_cols(), 3); // column 1 dropped
        assert_eq!(pair.ungapped(0).to_letters(), "MKV");
        assert_eq!(pair.ungapped(1).to_letters(), "MK");
    }

    #[test]
    fn deterministic() {
        let cfg =
            BenchmarkConfig { n_cases: 3, seqs_per_case: 6, avg_len: 50, ..Default::default() };
        let a = Benchmark::generate(&cfg);
        let b = Benchmark::generate(&cfg);
        for (x, y) in a.cases.iter().zip(&b.cases) {
            assert_eq!(x.seqs, y.seqs);
            assert_eq!(x.seed_ids, y.seed_ids);
        }
    }
}
