//! The wire protocol: line-delimited JSON over TCP.
//!
//! Each direction is a stream of `\n`-terminated lines. Clients send
//! requests; the server answers with event lines, interleaving progress
//! for every job the connection owns. Two requests also have a bare-word
//! form (`CANCEL <job-id>`, `SHUTDOWN`) so a human with `nc` can drive a
//! server; the JSON forms are what `sad submit` speaks.
//!
//! ## Requests
//!
//! ```text
//! {"cmd":"submit","id":"fam_a","priority":0,"fasta":">a\nMKVL\n..."}
//! {"cmd":"cancel","job":"fam_a"}        CANCEL fam_a
//! {"cmd":"shutdown"}                    SHUTDOWN
//! ```
//!
//! A proposed `id` names the output file, so it is restricted to ASCII
//! `[A-Za-z0-9._-]` with no leading `.` and at most
//! [`crate::server::MAX_JOB_ID_LEN`] bytes; anything else is `rejected`.
//! Request lines are bounded by [`MAX_LINE_BYTES`] and JSON nesting by
//! [`crate::json::MAX_DEPTH`] — the daemon listens on a plain TCP socket,
//! so every frame is treated as hostile until parsed.
//!
//! ## Events
//!
//! ```text
//! {"event":"hello","server":"sad-serve","proto":1}
//! {"event":"accepted","requested":"fam_a","job":"fam_a"}
//! {"event":"rejected","requested":"fam_a","reason":"..."}
//! {"event":"started","job":"fam_a"}
//! {"event":"phase","job":"fam_a","phase":"8-local-align","seconds":0.01}
//! {"event":"result","job":"fam_a","cached":false,"digest":"…","rows":4,"seconds":0.02,"fasta":"…"}
//! {"event":"cancelled","job":"fam_a","detail":"..."}
//! {"event":"error","job":"fam_a","message":"..."}
//! {"event":"cancel-requested","job":"fam_a"}
//! {"event":"bye"}
//! ```

use crate::json::Json;
use std::io::Read;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a FASTA payload as a new job.
    Submit {
        /// Client-proposed job id (the server unique-ifies collisions).
        id: Option<String>,
        /// Scheduling priority; higher runs first. Defaults to 0.
        priority: i64,
        /// The raw FASTA text.
        fasta: String,
    },
    /// Cancel a job by server-assigned id.
    Cancel {
        /// The job id.
        job: String,
    },
    /// Ask the server to drain and exit.
    Shutdown,
}

/// Parse one request line (JSON or bare-word form).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    if line.eq_ignore_ascii_case("shutdown") {
        return Ok(Request::Shutdown);
    }
    if let Some(rest) = line
        .strip_prefix("CANCEL ")
        .or_else(|| line.strip_prefix("cancel "))
        .filter(|_| !line.starts_with('{'))
    {
        let job = rest.trim();
        if job.is_empty() {
            return Err("CANCEL needs a job id".into());
        }
        return Ok(Request::Cancel { job: job.to_string() });
    }
    let value = Json::parse(line).map_err(|e| format!("bad request line: {e}"))?;
    match value.get("cmd").and_then(Json::as_str) {
        Some("submit") => {
            let fasta = value
                .get("fasta")
                .and_then(Json::as_str)
                .ok_or_else(|| "submit needs a \"fasta\" payload".to_string())?;
            Ok(Request::Submit {
                id: value.get("id").and_then(Json::as_str).map(str::to_string),
                priority: value.get("priority").and_then(Json::as_i64).unwrap_or(0),
                fasta: fasta.to_string(),
            })
        }
        Some("cancel") => {
            let job = value
                .get("job")
                .and_then(Json::as_str)
                .ok_or_else(|| "cancel needs a \"job\" id".to_string())?;
            Ok(Request::Cancel { job: job.to_string() })
        }
        Some("shutdown") => Ok(Request::Shutdown),
        Some(other) => Err(format!("unknown cmd {other:?}")),
        None => Err("missing \"cmd\"".into()),
    }
}

/// Server event line constructors. Each returns one line without the
/// trailing newline; the sink appends it.
pub mod event {
    use super::Json;

    /// Protocol version spoken by this build.
    pub const PROTO_VERSION: u64 = 1;

    /// Greeting sent on connect.
    pub fn hello() -> String {
        Json::obj([
            ("event", Json::str("hello")),
            ("server", Json::str("sad-serve")),
            ("proto", Json::Num(PROTO_VERSION as f64)),
        ])
        .encode()
    }

    /// Submission admitted; `job` is the server-assigned id (may differ
    /// from `requested` on collision).
    pub fn accepted(requested: &str, job: &str) -> String {
        Json::obj([
            ("event", Json::str("accepted")),
            ("requested", Json::str(requested)),
            ("job", Json::str(job)),
        ])
        .encode()
    }

    /// Submission refused.
    pub fn rejected(requested: &str, reason: &str) -> String {
        Json::obj([
            ("event", Json::str("rejected")),
            ("requested", Json::str(requested)),
            ("reason", Json::str(reason)),
        ])
        .encode()
    }

    /// A worker began the job.
    pub fn started(job: &str) -> String {
        Json::obj([("event", Json::str("started")), ("job", Json::str(job))]).encode()
    }

    /// A pipeline phase finished for the job.
    pub fn phase(job: &str, phase: &str, seconds: f64) -> String {
        Json::obj([
            ("event", Json::str("phase")),
            ("job", Json::str(job)),
            ("phase", Json::str(phase)),
            ("seconds", Json::Num(seconds)),
        ])
        .encode()
    }

    /// The job's aligned FASTA.
    pub fn result(
        job: &str,
        cached: bool,
        digest: &str,
        rows: usize,
        seconds: f64,
        fasta: &str,
    ) -> String {
        Json::obj([
            ("event", Json::str("result")),
            ("job", Json::str(job)),
            ("cached", Json::Bool(cached)),
            ("digest", Json::str(digest)),
            ("rows", Json::Num(rows as f64)),
            ("seconds", Json::Num(seconds)),
            ("fasta", Json::str(fasta)),
        ])
        .encode()
    }

    /// The job was cancelled (before or during execution).
    pub fn cancelled(job: &str, detail: &str) -> String {
        Json::obj([
            ("event", Json::str("cancelled")),
            ("job", Json::str(job)),
            ("detail", Json::str(detail)),
        ])
        .encode()
    }

    /// Something went wrong; `job` is absent for connection-level errors.
    pub fn error(job: Option<&str>, message: &str) -> String {
        Json::obj([
            ("event", Json::str("error")),
            ("job", job.map_or(Json::Null, Json::str)),
            ("message", Json::str(message)),
        ])
        .encode()
    }

    /// Acknowledgement that a cancel was delivered to a running job.
    pub fn cancel_requested(job: &str) -> String {
        Json::obj([("event", Json::str("cancel-requested")), ("job", Json::str(job))]).encode()
    }

    /// Connection closing (shutdown acknowledged).
    pub fn bye() -> String {
        Json::obj([("event", Json::str("bye"))]).encode()
    }
}

/// What [`LineReader::next_line`] observed.
#[derive(Debug, PartialEq, Eq)]
pub enum LineEvent {
    /// A complete line (without its `\n`).
    Line(String),
    /// The read timed out with no complete line; caller should check its
    /// stop flags and try again.
    TimedOut,
    /// The peer closed the connection.
    Eof,
}

/// The longest single line [`LineReader`] accepts. A peer that streams
/// bytes without ever sending `'\n'` would otherwise grow the buffer
/// without bound; past this the reader errors and the caller drops the
/// connection. Generous enough for any realistic FASTA submission.
pub const MAX_LINE_BYTES: usize = 16 * 1024 * 1024;

/// Incremental line framing over any [`Read`].
///
/// `BufReader::read_line` blocks until a full line or EOF; under a read
/// timeout it can also error with half a line already consumed. This
/// reader instead accumulates raw chunks and only surfaces complete
/// lines, turning timeouts into [`LineEvent::TimedOut`] ticks so the
/// caller can poll shutdown flags between reads without losing data.
/// Lines longer than [`MAX_LINE_BYTES`] are an [`std::io::Error`]
/// (`InvalidData`).
pub struct LineReader<R> {
    inner: R,
    buf: Vec<u8>,
    /// Prefix of `buf` already known to hold no `'\n'` (so each arriving
    /// chunk is scanned once, not the whole buffer again).
    scanned: usize,
}

impl<R: Read> LineReader<R> {
    /// Wrap a readable stream.
    pub fn new(inner: R) -> LineReader<R> {
        LineReader { inner, buf: Vec::new(), scanned: 0 }
    }

    /// Pull the next line, timeout tick, or EOF.
    pub fn next_line(&mut self) -> std::io::Result<LineEvent> {
        loop {
            if let Some(at) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
                let at = self.scanned + at;
                let rest = self.buf.split_off(at + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                self.scanned = 0;
                line.pop(); // the '\n'
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(LineEvent::Line(String::from_utf8_lossy(&line).into_owned()));
            }
            self.scanned = self.buf.len();
            if self.buf.len() > MAX_LINE_BYTES {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("line exceeds {MAX_LINE_BYTES} bytes without a newline"),
                ));
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    if self.buf.is_empty() {
                        return Ok(LineEvent::Eof);
                    }
                    // A final unterminated line: surface it, then EOF.
                    let line = String::from_utf8_lossy(&self.buf).into_owned();
                    self.buf.clear();
                    self.scanned = 0;
                    return Ok(LineEvent::Line(line));
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(LineEvent::TimedOut);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_request_forms() {
        let json = "{\"cmd\":\"submit\",\"id\":\"fam\",\"priority\":3,\"fasta\":\">a\\nMK\\n\"}";
        assert_eq!(
            parse_request(json).unwrap(),
            Request::Submit { id: Some("fam".into()), priority: 3, fasta: ">a\nMK\n".into() }
        );
        // id and priority are optional.
        let bare = parse_request("{\"cmd\":\"submit\",\"fasta\":\">a\\nMK\\n\"}").unwrap();
        assert_eq!(bare, Request::Submit { id: None, priority: 0, fasta: ">a\nMK\n".into() });
        assert_eq!(parse_request("CANCEL fam_a").unwrap(), Request::Cancel { job: "fam_a".into() });
        assert_eq!(
            parse_request("{\"cmd\":\"cancel\",\"job\":\"fam_a\"}").unwrap(),
            Request::Cancel { job: "fam_a".into() }
        );
        assert_eq!(parse_request("SHUTDOWN").unwrap(), Request::Shutdown);
        assert_eq!(parse_request("shutdown").unwrap(), Request::Shutdown);
        assert_eq!(parse_request("{\"cmd\":\"shutdown\"}").unwrap(), Request::Shutdown);
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "",
            "CANCEL ",
            "{\"cmd\":\"submit\"}",
            "{\"cmd\":\"cancel\"}",
            "{\"cmd\":\"explode\"}",
            "{\"fasta\":\"x\"}",
            "not even close",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn event_lines_are_single_line_json() {
        let lines = [
            event::hello(),
            event::accepted("fam", "fam-2"),
            event::rejected("fam", "queue full"),
            event::started("fam"),
            event::phase("fam", "8-local-align", 0.25),
            event::result("fam", true, "00ff", 4, 0.5, ">a\nMK-L\n"),
            event::cancelled("fam", "cancelled before start"),
            event::error(Some("fam"), "boom"),
            event::error(None, "bad line"),
            event::cancel_requested("fam"),
            event::bye(),
        ];
        for line in lines {
            assert!(!line.contains('\n'), "{line}");
            Json::parse(&line).expect(&line);
        }
    }

    #[test]
    fn line_reader_frames_chunks() {
        use std::collections::VecDeque;
        // A Read that returns scripted chunks, then WouldBlock, then EOF.
        struct Script(VecDeque<Result<Vec<u8>, std::io::ErrorKind>>);
        impl Read for Script {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                match self.0.pop_front() {
                    Some(Ok(bytes)) => {
                        out[..bytes.len()].copy_from_slice(&bytes);
                        Ok(bytes.len())
                    }
                    Some(Err(kind)) => Err(kind.into()),
                    None => Ok(0),
                }
            }
        }
        let script = Script(VecDeque::from(vec![
            Ok(b"{\"a\":1}\n{\"b\"".to_vec()),
            Err(std::io::ErrorKind::WouldBlock),
            Ok(b":2}\r\ntail".to_vec()),
        ]));
        let mut reader = LineReader::new(script);
        assert_eq!(reader.next_line().unwrap(), LineEvent::Line("{\"a\":1}".into()));
        assert_eq!(reader.next_line().unwrap(), LineEvent::TimedOut);
        assert_eq!(reader.next_line().unwrap(), LineEvent::Line("{\"b\":2}".into()));
        assert_eq!(reader.next_line().unwrap(), LineEvent::Line("tail".into()));
        assert_eq!(reader.next_line().unwrap(), LineEvent::Eof);
    }

    #[test]
    fn line_reader_caps_unterminated_lines() {
        // A peer that streams bytes and never sends '\n' must get an
        // error (the caller drops the connection), not unbounded memory.
        let endless = std::io::Read::take(std::io::repeat(b'x'), MAX_LINE_BYTES as u64 + 8192);
        let err = LineReader::new(endless).next_line().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // At exactly the cap with a newline, the line still goes through.
        let mut data = vec![b'y'; MAX_LINE_BYTES];
        data.push(b'\n');
        let mut reader = LineReader::new(std::io::Cursor::new(data));
        match reader.next_line().unwrap() {
            LineEvent::Line(line) => assert_eq!(line.len(), MAX_LINE_BYTES),
            other => panic!("expected a line, got {other:?}"),
        }
        assert_eq!(reader.next_line().unwrap(), LineEvent::Eof);
    }
}
