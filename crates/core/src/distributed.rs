//! The distributed Sample-Align-D pipeline over the virtual cluster.
//!
//! Phase names follow the numbered steps of the algorithm listing in
//! Section 2 of the paper, so the per-phase timing table lines up with the
//! cost analysis of Section 3. Every rank brackets its phases on the shared
//! [`PipelineCtx`], which stamps each phase's real wall-clock footprint
//! (first rank in → last rank out) next to the virtual per-rank timings the
//! traces carry.
//!
//! Cancellation is cooperative *and collective*: an SPMD program cannot
//! have one rank bail while its peers block on a collective, so at every
//! phase boundary the root polls the [`crate::CancelToken`]/deadline and
//! broadcasts the verdict — all ranks stop at the same boundary, keeping
//! the virtual clocks deterministic.

use crate::ancestor::{anchor_to_ancestor, glue_anchored, glue_block_diagonal};
use crate::config::SadConfig;
use crate::error::SadError;
use crate::messages::{AnchoredBlockMsg, MaybeSeq, MsaBlockMsg, RankedSeq};
use crate::pipeline::{Phase, PipelineCtx};
use crate::report::{BackendExtras, RunReport};
use align::consensus::consensus_sequence;
use bioseq::kmer::{self, KmerProfile};
use bioseq::{Msa, Sequence, Work};
use std::time::Instant;
use vcluster::{Node, VirtualCluster};

/// A batch of sequences for the sample all-gather.
use crate::messages::SeqBatch;

/// The message-passing pipeline. `seqs` plays the role of the pre-staged
/// input files (the paper stages shards on each node's disk before timing
/// starts, so the initial slice is free here too). Input validation
/// happens in [`crate::Aligner::run`].
pub(crate) fn distributed_pipeline(
    cluster: &VirtualCluster,
    seqs: &[Sequence],
    cfg: &SadConfig,
    ctx: &PipelineCtx,
) -> Result<RunReport, SadError> {
    debug_assert!(!seqs.is_empty(), "Aligner::run rejects empty input");
    debug_assert_eq!(
        seqs.iter().map(|s| s.id.as_str()).collect::<std::collections::HashSet<_>>().len(),
        seqs.len(),
        "sequence ids must be unique"
    );
    let run = cluster.run(|node| sad_node(node, seqs, cfg, ctx));
    if let Some(phase) = run.results.iter().find_map(|o| o.cancelled) {
        // Every rank stopped at the same boundary, so no phase is still
        // open; drop whatever completed before the cut.
        let _ = ctx.drain();
        return Err(SadError::Cancelled { phase });
    }
    let mut msa: Option<Msa> = None;
    let mut bucket_sizes = Vec::with_capacity(run.results.len());
    for outcome in run.results {
        if let Some(m) = outcome.msa {
            msa = Some(m);
        }
        bucket_sizes.push(outcome.bucket);
    }
    // Wall-clock timing and work come from the shared recorder; the
    // virtual per-phase maxima from the rank traces.
    let (mut phases, work) = ctx.drain();
    for (name, max, _mean) in vcluster::trace::phase_summary(&run.traces) {
        if let Some(stat) = phases.iter_mut().find(|s| s.name() == name) {
            stat.virtual_seconds = Some(max);
        }
    }
    Ok(RunReport {
        msa: msa.expect("root assembled the alignment"),
        work,
        phases,
        bucket_sizes,
        ranks: cluster.p(),
        samples_per_rank: cfg.samples_for(cluster.p()),
        decomposition_depth: 0,
        kernel: cfg.dp_kernel.label(),
        vertical: None,
        trim: None,
        extras: BackendExtras::Distributed { makespan: run.makespan, traces: run.traces },
    })
}

/// Build a k-mer profile, degrading to k=1 for ultra-short sequences.
fn profile_of(seq: &Sequence, cfg: &SadConfig) -> KmerProfile {
    KmerProfile::build(seq, cfg.kmer_k, cfg.alphabet)
        .unwrap_or_else(|| KmerProfile::build(seq, 1, cfg.alphabet).expect("k=1 always works"))
}

/// What one rank hands back to the assembler.
struct NodeOutcome {
    /// The root's assembled alignment (`None` on non-root ranks).
    msa: Option<Msa>,
    /// This rank's post-redistribution bucket size.
    bucket: usize,
    /// Set when the run stopped at a phase boundary: the phase that never
    /// started. All ranks agree on it (the verdict is broadcast).
    cancelled: Option<Phase>,
}

impl NodeOutcome {
    fn cancelled(phase: Phase) -> Self {
        NodeOutcome { msa: None, bucket: 0, cancelled: Some(phase) }
    }
}

/// The collective phase boundary: the root polls the cancel token and the
/// deadline, and broadcasts the verdict so every rank stops (or proceeds)
/// together. The broadcast is a 1-byte deterministic-cost collective, so
/// virtual clocks stay reproducible.
fn boundary(node: &Node, ctx: &PipelineCtx) -> bool {
    let verdict = if node.rank() == 0 { Some(ctx.cancel_requested()) } else { None };
    node.broadcast(0, verdict)
}

/// One rank's program.
fn sad_node(node: &Node, all_seqs: &[Sequence], cfg: &SadConfig, ctx: &PipelineCtx) -> NodeOutcome {
    let p = node.size();
    let rank = node.rank();
    let n = all_seqs.len();
    let chunk = n.div_ceil(p);
    let lo = (rank * chunk).min(n);
    let hi = ((rank + 1) * chunk).min(n);
    let mut local: Vec<Sequence> = all_seqs[lo..hi].to_vec();

    // Steps 1–2: local k-mer rank and local sort.
    if boundary(node, ctx) {
        return NodeOutcome::cancelled(Phase::LocalKmerRank);
    }
    ctx.rank_enter(Phase::LocalKmerRank);
    node.phase_start(Phase::LocalKmerRank.name());
    let mut w = Work::ZERO;
    let mut profs: Vec<KmerProfile> = local.iter().map(|s| profile_of(s, cfg)).collect();
    w.seq_bytes += local.iter().map(|s| s.len() as u64).sum::<u64>();
    let local_ranks: Vec<f64> =
        profs.iter().map(|pr| kmer::kmer_rank(pr, &profs, cfg.rank_transform, &mut w)).collect();
    node.compute(w);
    node.phase_end();
    ctx.rank_exit(Phase::LocalKmerRank, w);

    if boundary(node, ctx) {
        return NodeOutcome::cancelled(Phase::LocalSort);
    }
    ctx.rank_enter(Phase::LocalSort);
    node.phase_start(Phase::LocalSort.name());
    let mut order: Vec<usize> = (0..local.len()).collect();
    order.sort_by(|&a, &b| local_ranks[a].total_cmp(&local_ranks[b]));
    local = order.iter().map(|&i| local[i].clone()).collect();
    profs = order.iter().map(|&i| profs[i].clone()).collect();
    let w = psrs::sort_work(local.len());
    node.compute(w);
    node.phase_end();
    ctx.rank_exit(Phase::LocalSort, w);

    // Steps 3–4: regular sampling and sample exchange.
    if boundary(node, ctx) {
        return NodeOutcome::cancelled(Phase::SampleExchange);
    }
    ctx.rank_enter(Phase::SampleExchange);
    node.phase_start(Phase::SampleExchange.name());
    let k = cfg.samples_for(p);
    let m = local.len();
    let kk = k.min(m);
    let samples: Vec<Sequence> =
        (0..kk).map(|s| local[(((s + 1) * m) / (kk + 1)).min(m - 1)].clone()).collect();
    let all_samples: Vec<Sequence> =
        node.all_gather(SeqBatch(samples)).into_iter().flat_map(|b| b.0).collect();
    node.phase_end();
    ctx.rank_exit(Phase::SampleExchange, Work::ZERO);

    // Step 5: globalized rank against the pooled sample.
    if boundary(node, ctx) {
        return NodeOutcome::cancelled(Phase::GlobalizedRank);
    }
    ctx.rank_enter(Phase::GlobalizedRank);
    node.phase_start(Phase::GlobalizedRank.name());
    let mut w = Work::ZERO;
    let sample_profiles: Vec<KmerProfile> =
        all_samples.iter().map(|s| profile_of(s, cfg)).collect();
    let granks: Vec<f64> = profs
        .iter()
        .map(|pr| kmer::kmer_rank(pr, &sample_profiles, cfg.rank_transform, &mut w))
        .collect();
    node.compute(w);
    node.phase_end();
    ctx.rank_exit(Phase::GlobalizedRank, w);

    // Steps 6–7: PSRS redistribution on the globalized rank.
    if boundary(node, ctx) {
        return NodeOutcome::cancelled(Phase::Redistribute);
    }
    ctx.rank_enter(Phase::Redistribute);
    node.phase_start(Phase::Redistribute.name());
    let items: Vec<RankedSeq> =
        local.into_iter().zip(granks).map(|(seq, rank)| RankedSeq { seq, rank }).collect();
    let out = psrs::psrs(node, items, |r| r.rank);
    let bucket: Vec<Sequence> = out.items.into_iter().map(|r| r.seq).collect();
    let bucket_size = bucket.len();
    node.phase_end();
    ctx.rank_exit(Phase::Redistribute, out.work);

    // Step 8: sequential MSA on the local bucket.
    if boundary(node, ctx) {
        return NodeOutcome::cancelled(Phase::LocalAlign);
    }
    ctx.rank_enter(Phase::LocalAlign);
    node.phase_start(Phase::LocalAlign.name());
    let engine = cfg.engine.build_with(cfg.band_policy, cfg.dp_kernel);
    let mut align_w = Work::ZERO;
    let local_msa: Option<Msa> = if bucket.is_empty() {
        None
    } else {
        let t0 = Instant::now();
        let (msa, work) = engine.align_with_work(&bucket);
        node.compute(work);
        align_w = work;
        ctx.bucket_aligned(rank, msa.num_rows(), t0.elapsed().as_secs_f64());
        Some(msa)
    };
    node.phase_end();
    ctx.rank_exit(Phase::LocalAlign, align_w);

    // Degenerate paths: single rank, or fine-tuning disabled.
    if p == 1 {
        return NodeOutcome { msa: local_msa, bucket: bucket_size, cancelled: None };
    }
    if !cfg.fine_tune {
        if boundary(node, ctx) {
            return NodeOutcome::cancelled(Phase::Glue);
        }
        ctx.rank_enter(Phase::Glue);
        node.phase_start(Phase::Glue.name());
        let gathered = node.gather(0, MsaBlockMsg(local_msa));
        let mut glue_w = Work::ZERO;
        let result = gathered.map(|blocks| {
            let present: Vec<Msa> = blocks.into_iter().filter_map(|b| b.0).collect();
            let glued = if present.len() == 1 {
                present.into_iter().next().expect("one block")
            } else {
                glue_block_diagonal(&present, &mut glue_w)
            };
            node.compute(glue_w);
            glued
        });
        node.phase_end();
        ctx.rank_exit(Phase::Glue, glue_w);
        return NodeOutcome { msa: result, bucket: bucket_size, cancelled: None };
    }

    // Step 9: local ancestor extraction.
    if boundary(node, ctx) {
        return NodeOutcome::cancelled(Phase::LocalAncestor);
    }
    ctx.rank_enter(Phase::LocalAncestor);
    node.phase_start(Phase::LocalAncestor.name());
    let mut w = Work::ZERO;
    let local_anc: Option<Sequence> =
        local_msa.as_ref().map(|msa| consensus_sequence(msa, format!("local-anc-{rank}"), &mut w));
    node.compute(w);
    node.phase_end();
    ctx.rank_exit(Phase::LocalAncestor, w);

    // Step 10: global ancestor at the root, broadcast to everyone.
    if boundary(node, ctx) {
        return NodeOutcome::cancelled(Phase::GlobalAncestor);
    }
    ctx.rank_enter(Phase::GlobalAncestor);
    node.phase_start(Phase::GlobalAncestor.name());
    let gathered = node.gather(0, MaybeSeq(local_anc));
    let mut ga_work = Work::ZERO;
    let ga_msg: MaybeSeq = node.broadcast(
        0,
        gathered.map(|list| {
            let ancestors: Vec<Sequence> = list.into_iter().filter_map(|m| m.0).collect();
            assert!(!ancestors.is_empty(), "at least one bucket is non-empty");
            let ga = if ancestors.len() == 1 {
                ancestors.into_iter().next().expect("one ancestor")
            } else {
                let (anc_msa, work) = engine.align_with_work(&ancestors);
                node.compute(work);
                ga_work += work;
                let mut w = Work::ZERO;
                let ga = consensus_sequence(&anc_msa, "global-ancestor", &mut w);
                node.compute(w);
                ga_work += w;
                ga
            };
            MaybeSeq(Some(ga))
        }),
    );
    let ga = ga_msg.0.expect("global ancestor broadcast");
    node.phase_end();
    ctx.rank_exit(Phase::GlobalAncestor, ga_work);

    // Step 11: constrained fine-tuning against the global ancestor.
    if boundary(node, ctx) {
        return NodeOutcome::cancelled(Phase::FineTune);
    }
    ctx.rank_enter(Phase::FineTune);
    node.phase_start(Phase::FineTune.name());
    let mut tune_w = Work::ZERO;
    let block: Option<AnchoredBlockMsg> = local_msa.as_ref().map(|msa| {
        let b = anchor_to_ancestor(
            msa,
            &ga,
            &cfg.matrix,
            cfg.gaps,
            cfg.band_policy,
            cfg.dp_kernel,
            &mut tune_w,
        );
        node.compute(tune_w);
        b
    });
    node.phase_end();
    ctx.rank_exit(Phase::FineTune, tune_w);

    // Step 12: glue at the root.
    if boundary(node, ctx) {
        return NodeOutcome::cancelled(Phase::Glue);
    }
    ctx.rank_enter(Phase::Glue);
    node.phase_start(Phase::Glue.name());
    let gathered = node.gather(0, block);
    let mut glue_w = Work::ZERO;
    let result = gathered.map(|blocks| {
        let present: Vec<AnchoredBlockMsg> = blocks.into_iter().flatten().collect();
        let glued = glue_anchored(ga.len(), &present, &mut glue_w);
        node.compute(glue_w);
        glued
    });
    node.phase_end();
    ctx.rank_exit(Phase::Glue, glue_w);
    NodeOutcome { msa: result, bucket: bucket_size, cancelled: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aligner, Backend};
    use rosegen::{Family, FamilyConfig};
    use std::collections::HashMap;
    use vcluster::CostModel;

    fn family(n: usize, len: usize, seed: u64) -> Vec<Sequence> {
        Family::generate(&FamilyConfig {
            n_seqs: n,
            avg_len: len,
            relatedness: 700.0,
            seed,
            ..Default::default()
        })
        .seqs
    }

    fn run(p: usize, seqs: &[Sequence], cfg: &SadConfig) -> RunReport {
        let cluster = VirtualCluster::new(p, CostModel::beowulf_2008());
        Aligner::new(cfg.clone()).backend(Backend::Distributed(cluster)).run(seqs).unwrap()
    }

    fn check_complete(result: &Msa, input: &[Sequence]) {
        result.validate().unwrap();
        assert_eq!(result.num_rows(), input.len());
        let by_id: HashMap<&str, &Sequence> = input.iter().map(|s| (s.id.as_str(), s)).collect();
        for r in 0..result.num_rows() {
            let id = &result.ids()[r];
            let want = by_id.get(id.as_str()).unwrap_or_else(|| panic!("alien row {id}"));
            assert_eq!(&result.ungapped(r), *want, "row {id} corrupted");
        }
    }

    #[test]
    fn end_to_end_small() {
        let seqs = family(24, 60, 1);
        let report = run(4, &seqs, &SadConfig::default());
        check_complete(&report.msa, &seqs);
        assert_eq!(report.bucket_sizes.iter().sum::<usize>(), 24);
        assert!(report.makespan().unwrap() > 0.0);
    }

    #[test]
    fn deterministic() {
        let seqs = family(16, 50, 2);
        let a = run(4, &seqs, &SadConfig::default());
        let b = run(4, &seqs, &SadConfig::default());
        assert_eq!(a.msa, b.msa);
        assert_eq!(a.makespan(), b.makespan());
        assert_eq!(a.bucket_sizes, b.bucket_sizes);
        assert_eq!(a.work, b.work);
    }

    #[test]
    fn p1_is_one_engine_run_over_everything() {
        // With one rank the pipeline degenerates to "sort by rank, then run
        // the engine once" — same sequences, one bucket, no glue artifacts.
        let seqs = family(10, 50, 3);
        let report = run(1, &seqs, &SadConfig::default());
        check_complete(&report.msa, &seqs);
        assert_eq!(report.bucket_sizes, vec![10]);
    }

    #[test]
    fn more_ranks_than_sequences() {
        let seqs = family(3, 40, 4);
        let report = run(8, &seqs, &SadConfig::default());
        check_complete(&report.msa, &seqs);
    }

    #[test]
    fn fine_tune_beats_block_diagonal() {
        let seqs = family(20, 60, 6);
        let cfg_on = SadConfig::default();
        let cfg_off = SadConfig::default().with_fine_tune(false);
        let on = run(4, &seqs, &cfg_on);
        let off = run(4, &seqs, &cfg_off);
        check_complete(&on.msa, &seqs);
        check_complete(&off.msa, &seqs);
        let m = &cfg_on.matrix;
        let g = cfg_on.gaps;
        assert!(
            on.msa.sp_score(m, g) > off.msa.sp_score(m, g),
            "ancestor fine-tuning must improve the glued SP score"
        );
    }

    #[test]
    fn scaling_reduces_makespan() {
        // Large enough that the w² distance term dominates.
        let seqs = family(96, 60, 7);
        let t1 = run(1, &seqs, &SadConfig::default()).makespan().unwrap();
        let t4 = run(4, &seqs, &SadConfig::default()).makespan().unwrap();
        assert!(t4 < t1, "4 ranks ({t4:.4}s) should beat 1 rank ({t1:.4}s)");
    }

    #[test]
    fn phases_present_in_report() {
        let seqs = family(12, 40, 8);
        let report = run(2, &seqs, &SadConfig::default());
        assert_eq!(
            report.phase_sequence(),
            vec![
                Phase::LocalKmerRank,
                Phase::LocalSort,
                Phase::SampleExchange,
                Phase::GlobalizedRank,
                Phase::Redistribute,
                Phase::LocalAlign,
                Phase::LocalAncestor,
                Phase::GlobalAncestor,
                Phase::FineTune,
                Phase::Glue,
            ]
        );
        let table = report.phase_table();
        // SubPartition (max_bucket), the vertical phases (AnchorScan,
        // BlockAlign) and Trim are opt-in; every other phase must show up
        // in a default run's table.
        for phase in Phase::ALL.into_iter().filter(|&p| {
            !matches!(p, Phase::SubPartition | Phase::AnchorScan | Phase::BlockAlign | Phase::Trim)
        }) {
            assert!(table.contains(phase.name()), "missing phase {phase}:\n{table}");
        }
        // Compute-bearing phases carry their work in the unified report.
        let of = |phase: Phase| report.phase(phase).map(|p| p.work).unwrap_or(Work::ZERO);
        assert!(of(Phase::LocalKmerRank).kmer_ops > 0);
        assert!(of(Phase::LocalAlign).dp_cells > 0);
        assert_eq!(report.work, report.phases.iter().map(|p| p.work).sum::<Work>());
        // Every phase carries real wall time AND the virtual max across
        // ranks (the distributed backend models both clocks).
        for p in &report.phases {
            assert!(p.seconds.is_some(), "{} lost its wall clock", p.name());
            assert!(p.virtual_seconds.is_some(), "{} lost its virtual clock", p.name());
        }
    }

    #[test]
    fn load_imbalance_reported() {
        let seqs = family(64, 50, 9);
        let report = run(4, &seqs, &SadConfig::default());
        let imb = report.load_imbalance();
        assert!(imb >= 1.0);
        // Regular sampling bound: max ≤ 2·N/p ⇒ imbalance ≤ 2 (+ slack for
        // duplicate ranks in small samples).
        assert!(imb <= 3.0, "imbalance {imb} suspiciously high");
    }

    #[test]
    fn clustal_engine_works_too() {
        let seqs = family(12, 40, 10);
        let cfg = SadConfig::default().with_engine(align::EngineChoice::Clustal);
        let report = run(3, &seqs, &cfg);
        check_complete(&report.msa, &seqs);
    }
}
