//! MuscleLite — a faithful skeleton of MUSCLE 3.x (Edgar 2004).
//!
//! Stage 1 (draft): k-mer distances over a compressed alphabet → UPGMA
//! guide tree → progressive alignment.
//! Stage 2 (improved, optional): Kimura-corrected identity distances from
//! the draft alignment → new tree → progressive re-alignment.
//! Stage 3 (refinement, optional): tree-bipartition iterative refinement.
//!
//! Complexities match the original: stage 1 is `O(N²·L + N·L²)` (the
//! `N²` distance term is what makes Sample-Align-D's bucketing pay off),
//! stage 3 adds `O(N²·L)` per bipartition pass.

use crate::distance::{kimura_from_msa, kmer_distance_matrix};
use crate::dp::{BandPolicy, DpArena, DpKernel};
use crate::engine::MsaEngine;
use crate::progressive::{progressive_align_with_arena, ProgressiveConfig, WeightScheme};
use crate::refine::refine_with;
use bioseq::{CompressedAlphabet, GapPenalties, Msa, Sequence, SubstMatrix, Work};
use phylo::upgma;

/// Configuration of the MUSCLE-like engine.
#[derive(Debug, Clone)]
pub struct MuscleLite {
    /// k-mer length for stage-1 distances (MUSCLE default 6).
    pub kmer_k: usize,
    /// Compressed alphabet for k-mer counting (MUSCLE's `kmer6_6` uses the
    /// Dayhoff-6 groups).
    pub alphabet: CompressedAlphabet,
    /// Substitution matrix for profile alignment.
    pub matrix: SubstMatrix,
    /// Affine gap penalties.
    pub gaps: GapPenalties,
    /// Run stage 2 (tree re-estimation from Kimura distances).
    pub reestimate: bool,
    /// Maximum stage-3 refinement passes (0 disables refinement).
    pub refine_passes: usize,
    /// Use Henikoff position-based weights during progressive merging.
    pub henikoff: bool,
    /// Band policy for every DP kernel instance the engine runs.
    pub band: BandPolicy,
    /// DP kernel selection (scalar, striped, or adaptive auto).
    pub kernel: DpKernel,
}

impl MuscleLite {
    /// `MUSCLE -maxiters 1`-style fast mode: stage 1 only.
    pub fn fast() -> Self {
        MuscleLite {
            kmer_k: 6,
            alphabet: CompressedAlphabet::Dayhoff6,
            matrix: SubstMatrix::blosum62(),
            gaps: GapPenalties::default(),
            reestimate: false,
            refine_passes: 0,
            henikoff: false,
            band: BandPolicy::default(),
            kernel: DpKernel::default(),
        }
    }

    /// Standard mode: stages 1 + 2 + two refinement passes.
    pub fn standard() -> Self {
        MuscleLite { reestimate: true, refine_passes: 2, henikoff: true, ..Self::fast() }
    }

    /// Select the DP kernel band policy.
    pub fn with_band(mut self, band: BandPolicy) -> Self {
        self.band = band;
        self
    }

    /// Select the DP kernel variant.
    pub fn with_kernel(mut self, kernel: DpKernel) -> Self {
        self.kernel = kernel;
        self
    }
}

impl Default for MuscleLite {
    fn default() -> Self {
        Self::fast()
    }
}

impl MuscleLite {
    fn progressive_cfg(&self) -> ProgressiveConfig {
        ProgressiveConfig {
            matrix: self.matrix.clone(),
            gaps: self.gaps,
            weights: if self.henikoff { WeightScheme::Henikoff } else { WeightScheme::Uniform },
            band: self.band,
            kernel: self.kernel,
        }
    }
}

impl MsaEngine for MuscleLite {
    fn name(&self) -> String {
        let base = match (self.reestimate, self.refine_passes) {
            (false, 0) => "muscle-lite-fast".to_string(),
            _ => format!("muscle-lite(r{},p{})", u8::from(self.reestimate), self.refine_passes),
        };
        // The default (adaptive) band and kernel keep the historical
        // names; any other choice is called out so reports show the exact
        // DP configuration used.
        let base = if self.band == BandPolicy::default() {
            base
        } else {
            format!("{base}+{}", self.band.label())
        };
        if self.kernel == DpKernel::default() {
            base
        } else {
            format!("{base}+{}", self.kernel.label())
        }
    }

    fn align_with_work(&self, seqs: &[Sequence]) -> (Msa, Work) {
        self.align_with_work_in(seqs, &mut DpArena::new())
    }

    fn align_with_work_in(&self, seqs: &[Sequence], arena: &mut DpArena) -> (Msa, Work) {
        assert!(!seqs.is_empty(), "cannot align an empty set");
        let mut work = Work::ZERO;
        if seqs.len() == 1 {
            return (Msa::from_sequence(&seqs[0]), work);
        }
        // One DP arena serves every stage of the run (and, when the caller
        // hands one in, every run of a batch worker).
        // Stage 1: draft.
        let d1 = kmer_distance_matrix(seqs, self.kmer_k, self.alphabet, &mut work);
        work.tree_ops += (seqs.len() * seqs.len()) as u64;
        let tree1 = upgma(&d1);
        let cfg = self.progressive_cfg();
        let mut msa = progressive_align_with_arena(seqs, &tree1, &cfg, arena, &mut work);
        let mut tree = tree1;
        // Stage 2: improved tree from the draft alignment.
        if self.reestimate && seqs.len() > 2 {
            let d2 = kimura_from_msa(&msa, &mut work);
            work.tree_ops += (seqs.len() * seqs.len()) as u64;
            let tree2 = upgma(&d2);
            msa = progressive_align_with_arena(seqs, &tree2, &cfg, arena, &mut work);
            tree = tree2;
        }
        // Stage 3: refinement.
        if self.refine_passes > 0 && seqs.len() > 2 {
            let ids: Vec<String> = seqs.iter().map(|s| s.id.clone()).collect();
            let out = refine_with(
                &msa,
                &tree,
                &ids,
                &self.matrix,
                self.gaps,
                self.refine_passes,
                self.band,
                self.kernel,
                arena,
            );
            work += out.work;
            msa = out.msa;
        }
        (msa, work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(texts: &[&str]) -> Vec<Sequence> {
        texts
            .iter()
            .enumerate()
            .map(|(i, t)| Sequence::from_str(format!("s{i}"), t).unwrap())
            .collect()
    }

    #[test]
    fn fast_mode_aligns_family() {
        let ss = seqs(&[
            "MKVLAWGKVLSSDD",
            "MKVLAWGKVLSSD",
            "MKILAWGKILSSDD",
            "MKVLWGKVLSSDD",
            "MKVLAWGKVSSDD",
        ]);
        let (msa, work) = MuscleLite::fast().align_with_work(&ss);
        msa.validate().unwrap();
        assert_eq!(msa.num_rows(), 5);
        assert!(msa.average_identity() > 0.8);
        assert!(work.kmer_ops > 0 && work.dp_cells > 0);
    }

    #[test]
    fn standard_mode_not_worse_than_fast() {
        let ss = seqs(&[
            "MKVLAWGKVLMMPQRS",
            "MKILAWKILMMPQR",
            "MKVLWGKVLMMPQS",
            "MKILAWGKILWWPQRS",
            "MKVAWGKVLMPQRS",
            "MKVLAWGVLMMPRS",
        ]);
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties::default();
        let (fast, _) = MuscleLite::fast().align_with_work(&ss);
        let (std_, _) = MuscleLite::standard().align_with_work(&ss);
        assert!(
            std_.sp_score(&matrix, gaps) >= fast.sp_score(&matrix, gaps),
            "standard should not lose to fast on SP"
        );
    }

    #[test]
    fn rows_in_input_order_with_original_sequences() {
        let texts = ["MKVLAWGKVL", "PPWPPGGPPW", "MKILAWGKIL"];
        let ss = seqs(&texts);
        let (msa, _) = MuscleLite::standard().align_with_work(&ss);
        for (i, t) in texts.iter().enumerate() {
            assert_eq!(msa.ids()[i], format!("s{i}"));
            assert_eq!(msa.ungapped(i).to_letters(), *t);
        }
    }

    #[test]
    fn handles_one_and_two_sequences() {
        let one = seqs(&["MKVL"]);
        let (m1, _) = MuscleLite::fast().align_with_work(&one);
        assert_eq!(m1.num_rows(), 1);
        let two = seqs(&["MKVLAW", "MKAW"]);
        let (m2, _) = MuscleLite::standard().align_with_work(&two);
        assert_eq!(m2.num_rows(), 2);
        m2.validate().unwrap();
    }

    #[test]
    fn deterministic() {
        let ss = seqs(&["MKVLAWGKVL", "MKILAWKIL", "MKVLWGKVL", "MKILAWGKIL"]);
        let (a, wa) = MuscleLite::standard().align_with_work(&ss);
        let (b, wb) = MuscleLite::standard().align_with_work(&ss);
        assert_eq!(a, b);
        assert_eq!(wa, wb);
    }

    #[test]
    fn name_reflects_configuration() {
        assert_eq!(MuscleLite::fast().name(), "muscle-lite-fast");
        assert_eq!(MuscleLite::standard().name(), "muscle-lite(r1,p2)");
        // Non-default band policies show up in the name.
        assert_eq!(MuscleLite::fast().with_band(BandPolicy::Full).name(), "muscle-lite-fast+full");
        assert_eq!(
            MuscleLite::standard().with_band(BandPolicy::Fixed(16)).name(),
            "muscle-lite(r1,p2)+band16"
        );
        // Non-default kernels show up too, after the band suffix.
        assert_eq!(
            MuscleLite::fast().with_kernel(DpKernel::Scalar).name(),
            "muscle-lite-fast+scalar"
        );
        assert_eq!(
            MuscleLite::fast().with_band(BandPolicy::Full).with_kernel(DpKernel::Striped).name(),
            "muscle-lite-fast+full+striped"
        );
    }

    #[test]
    fn full_band_engine_matches_default_on_small_families() {
        // Families under the minimum auto band are full fills either way.
        let ss = seqs(&["MKVLAWGKVL", "MKILAWKIL", "MKVLWGKVL", "MKILAWGKIL"]);
        let (auto, wa) = MuscleLite::standard().align_with_work(&ss);
        let (full, wf) = MuscleLite::standard().with_band(BandPolicy::Full).align_with_work(&ss);
        assert_eq!(auto, full);
        assert_eq!(wa.dp_cells, wf.dp_cells);
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn empty_input_panics() {
        let _ = MuscleLite::fast().align_with_work(&[]);
    }
}
