//! The sequential baseline: the configured engine run on the whole set
//! (what "MUSCLE on a single cluster node" is to the paper's Fig. 6).

use crate::config::SadConfig;
use crate::error::SadError;
use crate::report::{BackendExtras, PhaseStat, RunReport};
use bioseq::{Msa, Sequence};

/// Align everything with the configured sequential engine.
///
/// Deprecated shim over the [`crate::Aligner`] builder. The name and
/// argument order match the 0.1 entry point, but the return type changed
/// from `(Msa, Work)` to `Result<RunReport, SadError>`: the alignment and
/// work now live in [`RunReport::msa`] and [`RunReport::work`]. See the
/// README migration table.
#[deprecated(since = "0.2.0", note = "use `Aligner::new(cfg).run(seqs)`")]
pub fn run_sequential(seqs: &[Sequence], cfg: &SadConfig) -> Result<RunReport, SadError> {
    crate::Aligner::new(cfg.clone()).run(seqs)
}

/// The whole-set engine run. Input validation happens in
/// [`crate::Aligner::run`].
pub(crate) fn sequential_pipeline(seqs: &[Sequence], cfg: &SadConfig) -> RunReport {
    debug_assert!(!seqs.is_empty(), "Aligner::run rejects empty input");
    let (msa, work) = cfg.engine.build_with_band(cfg.band_policy).align_with_work(seqs);
    RunReport {
        msa,
        work,
        phases: vec![PhaseStat { name: "8-local-align".into(), work, seconds: None }],
        bucket_sizes: vec![seqs.len()],
        ranks: 1,
        samples_per_rank: cfg.samples_for(1),
        extras: BackendExtras::Sequential,
    }
}

/// Virtual seconds the sequential baseline would take on the given cost
/// model (the denominator of every speedup in the paper).
pub fn sequential_seconds(
    seqs: &[Sequence],
    cfg: &SadConfig,
    cost: &vcluster::CostModel,
) -> (Msa, f64) {
    let report = sequential_pipeline(seqs, cfg);
    let secs = cost.work_seconds(&report.work);
    (report.msa, secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aligner, SadError};
    use rosegen::{Family, FamilyConfig};

    fn family(n: usize, len: usize, seed: u64) -> Vec<Sequence> {
        Family::generate(&FamilyConfig { n_seqs: n, avg_len: len, seed, ..Default::default() }).seqs
    }

    #[test]
    fn baseline_aligns_and_costs_time() {
        let seqs = family(10, 50, 1);
        let cfg = SadConfig::default();
        let (msa, secs) = sequential_seconds(&seqs, &cfg, &vcluster::CostModel::beowulf_2008());
        msa.validate().unwrap();
        assert_eq!(msa.num_rows(), 10);
        assert!(secs > 0.0);
    }

    #[test]
    fn matches_engine_directly() {
        let seqs = family(6, 40, 2);
        let cfg = SadConfig::default();
        let report = Aligner::new(cfg.clone()).run(&seqs).unwrap();
        assert_eq!(report.msa, cfg.engine.build_with_band(cfg.band_policy).align(&seqs));
        assert_eq!(report.bucket_sizes, vec![6]);
        assert_eq!(report.ranks, 1);
        assert_eq!(report.work, report.phases.iter().map(|p| p.work).sum());
    }

    #[test]
    #[allow(deprecated)]
    fn shim_matches_aligner_and_rejects_degenerate_input() {
        let seqs = family(6, 40, 3);
        let cfg = SadConfig::default();
        let via_shim = run_sequential(&seqs, &cfg).unwrap();
        let via_builder = Aligner::new(cfg.clone()).run(&seqs).unwrap();
        assert_eq!(via_shim.msa, via_builder.msa);
        assert_eq!(run_sequential(&[], &cfg).unwrap_err(), SadError::TooFewSequences { found: 0 });
    }
}
