//! Integration suite for the `sad serve` daemon: end-to-end submission
//! on every backend, the BiG-SCAPE-style kill/restart resume path, the
//! journal's torn-tail/corrupt-interior contract, output verification,
//! the result cache's zero-new-work guarantee, immediate queue-slot
//! release on cancellation, and client-disconnect tolerance — all driven
//! through the in-process [`ServeHarness`] fixture with fault injection.

use proptest::prelude::*;
use rosegen::{Family, FamilyConfig};
use sad_core::{Aligner, SadConfig};
use sad_serve::harness::ServeHarness;
use sad_serve::journal::JournalEntry;
use sad_serve::json::Json;
use sad_serve::server::{ServeBackend, Server};
use sad_serve::Submitted;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(60);

/// A deterministic synthetic family rendered as FASTA.
fn family_fasta(n: usize, len: usize, seed: u64) -> String {
    let family = Family::generate(&FamilyConfig {
        n_seqs: n,
        avg_len: len,
        relatedness: 700.0,
        seed,
        ..Default::default()
    });
    bioseq::fasta::write(&family.seqs)
}

/// The aligned FASTA a direct (serverless) run of the same pipeline
/// produces for this input — the byte-identity reference.
fn direct_alignment(fasta: &str, backend: &ServeBackend) -> String {
    let seqs = bioseq::fasta::parse(fasta).expect("fixture parses");
    let report = Aligner::new(SadConfig::default())
        .backend(backend.instantiate())
        .run(&seqs)
        .expect("direct run succeeds");
    bioseq::fasta::write_alignment(&report.msa)
}

fn submit_ok(client: &mut sad_serve::Client, id: &str, fasta: &str) -> String {
    match client.submit(Some(id), 0, fasta).expect("submit") {
        Submitted::Accepted { job } => job,
        Submitted::Rejected { reason } => panic!("{id} rejected: {reason}"),
    }
}

fn event_kind(e: &Json) -> &str {
    e.get("event").and_then(Json::as_str).unwrap_or("?")
}

#[test]
fn submit_stream_result_on_every_backend() {
    for backend in [
        ServeBackend::Sequential,
        ServeBackend::Rayon { threads: 2 },
        ServeBackend::Distributed { nodes: 2 },
    ] {
        let label = backend.label();
        let mut h = ServeHarness::new(&format!("e2e-{label}")).backend(backend.clone()).start();
        let mut client = h.client();
        let fasta = family_fasta(8, 50, 7);
        let job = submit_ok(&mut client, "fam", &fasta);

        // The stream carries started, at least one phase event, then the
        // result — in that order for a single job.
        let started =
            client.wait_event(WAIT, |e| event_kind(e) == "started").expect("started event");
        assert_eq!(started.get("job").and_then(Json::as_str), Some(job.as_str()), "{label}");
        let result = client.wait_result(&job, WAIT).expect("result event");
        let phase = client
            .wait_event(Duration::from_secs(1), |e| event_kind(e) == "phase")
            .unwrap_or_else(|_| panic!("{label}: no phase events streamed"));
        assert!(phase.get("phase").and_then(Json::as_str).is_some(), "{label}");

        assert_eq!(result.get("cached").and_then(Json::as_bool), Some(false), "{label}");
        let aligned = result.get("fasta").and_then(Json::as_str).expect("result fasta");
        assert_eq!(aligned, direct_alignment(&fasta, &backend), "{label}: parity with direct run");
        assert_eq!(result.get("rows").and_then(Json::as_u64), Some(8), "{label}: all rows aligned");
        // The output file on disk is the same bytes the stream carried.
        let on_disk = std::fs::read_to_string(h.output_path(&job)).expect("output file");
        assert_eq!(on_disk, aligned, "{label}");
        h.shutdown();
    }
}

#[test]
fn kill_mid_batch_then_restart_resumes_unfinished_and_skips_finished() {
    let hold = sad_serve::JobHold::new();
    let mut h = ServeHarness::new("kill-restart").workers(1).hold(hold.clone()).start();
    let mut client = h.client();
    let inputs = [
        ("fam_a", family_fasta(6, 40, 1)),
        ("fam_b", family_fasta(6, 40, 2)),
        ("fam_c", family_fasta(8, 50, 3)),
        ("fam_d", family_fasta(8, 50, 4)),
    ];
    // A and B run to completion with the hold disengaged.
    for (id, fasta) in &inputs[..2] {
        submit_ok(&mut client, id, fasta);
        client.wait_result(id, WAIT).expect("pre-crash result");
    }
    // Pin the worker inside fam_c: with the hold engaged it journals
    // `Started`, streams its started event, and parks. fam_d stays
    // queued behind it (one worker). Then crash the server.
    hold.engage();
    submit_ok(&mut client, "fam_c", &inputs[2].1);
    submit_ok(&mut client, "fam_d", &inputs[3].1);
    client
        .wait_event(WAIT, |e| {
            event_kind(e) == "started" && e.get("job").and_then(Json::as_str) == Some("fam_c")
        })
        .expect("fam_c pinned mid-run");
    h.kill();

    let entries = h.journal_entries();
    let finished_ok = |job: &str| {
        entries
            .iter()
            .any(|e| matches!(e, JournalEntry::Finished { job: j, ok: true, .. } if j == job))
    };
    let started = |job: &str| {
        entries.iter().any(|e| matches!(e, JournalEntry::Started { job: j } if j == job))
    };
    assert!(finished_ok("fam_a") && finished_ok("fam_b"));
    assert!(started("fam_c") && !finished_ok("fam_c"), "fam_c died mid-run, un-journaled");
    assert!(!started("fam_d") && !finished_ok("fam_d"), "fam_d was still queued at the crash");

    // Restart against the same journal and output directory.
    hold.release();
    h.restart();
    let recovery = h.recovery().clone();
    assert!(recovery.skipped.contains(&"fam_a".to_string()), "{recovery:?}");
    assert!(recovery.skipped.contains(&"fam_b".to_string()), "{recovery:?}");
    assert!(recovery.requeued.contains(&"fam_c".to_string()), "{recovery:?}");
    assert!(recovery.requeued.contains(&"fam_d".to_string()), "{recovery:?}");
    assert!(h.server().wait_idle(WAIT), "recovered jobs drain: {:?}", h.server().stats());
    h.shutdown();

    // Every journaled job ends Finished{ok} exactly once across the whole
    // journal, and the finished-before-kill jobs were started exactly
    // once (skipped on restart, not re-run).
    let entries = h.journal_entries();
    for (id, fasta) in &inputs {
        let ok_count = entries
            .iter()
            .filter(|e| matches!(e, JournalEntry::Finished { job, ok: true, .. } if job == id))
            .count();
        assert_eq!(ok_count, 1, "{id}: exactly one successful Finished entry");
        let on_disk = std::fs::read_to_string(h.output_path(id)).expect("output exists");
        assert_eq!(
            on_disk,
            direct_alignment(fasta, &ServeBackend::Sequential),
            "{id}: byte-identical to an uninterrupted run"
        );
    }
    for id in ["fam_a", "fam_b"] {
        let starts = entries
            .iter()
            .filter(|e| matches!(e, JournalEntry::Started { job } if job == id))
            .count();
        assert_eq!(starts, 1, "{id} was verified-skipped on restart, not re-run");
    }
}

#[test]
fn torn_final_journal_line_is_tolerated() {
    let mut h = ServeHarness::new("torn-tail").start();
    let mut client = h.client();
    let fasta = family_fasta(6, 40, 11);
    let job = submit_ok(&mut client, "fam", &fasta);
    client.wait_result(&job, WAIT).expect("result");
    h.shutdown();

    // Both torn-write shapes: a half-line with no newline, and a newline
    // that made it out around garbage.
    h.append_torn_line();
    h.restart();
    assert!(h.recovery().dropped_torn_tail, "torn tail reported");
    assert!(h.recovery().skipped.contains(&"fam".to_string()), "verified job still skipped");
    assert!(h.recovery().requeued.is_empty());
    h.shutdown();
}

#[test]
fn corrupt_interior_journal_line_is_a_hard_error() {
    let mut h = ServeHarness::new("corrupt-interior").start();
    let mut client = h.client();
    let fasta = family_fasta(6, 40, 12);
    let job = submit_ok(&mut client, "fam", &fasta);
    client.wait_result(&job, WAIT).expect("result");
    h.shutdown();

    // Corrupt the FIRST line: now followed by valid lines, so replay must
    // refuse rather than silently dropping journaled work.
    h.corrupt_journal_line(0);
    let err = match Server::start(h.config()) {
        Ok(_) => panic!("corrupt interior must refuse to start"),
        Err(e) => e,
    };
    let rendered = err.to_string();
    assert!(rendered.contains("corrupt journal line 1"), "{rendered}");
}

#[test]
fn missing_or_corrupt_output_file_is_rerun_on_restart() {
    let mut h = ServeHarness::new("verify-output").start();
    let mut client = h.client();
    let fasta_a = family_fasta(6, 40, 21);
    let fasta_b = family_fasta(6, 40, 22);
    let job_a = submit_ok(&mut client, "fam_a", &fasta_a);
    let job_b = submit_ok(&mut client, "fam_b", &fasta_b);
    client.wait_result(&job_a, WAIT).expect("fam_a result");
    client.wait_result(&job_b, WAIT).expect("fam_b result");
    h.shutdown();

    // fam_a's output vanishes; fam_b's is tampered with. Neither passes
    // the journaled-digest check, so both must re-run.
    h.remove_output("fam_a");
    h.corrupt_output("fam_b");
    h.restart();
    let recovery = h.recovery().clone();
    assert!(recovery.reran.contains(&"fam_a".to_string()), "{recovery:?}");
    assert!(recovery.reran.contains(&"fam_b".to_string()), "{recovery:?}");
    assert!(h.server().wait_idle(WAIT));
    h.shutdown();
    for (id, fasta) in [("fam_a", &fasta_a), ("fam_b", &fasta_b)] {
        let on_disk = std::fs::read_to_string(h.output_path(id)).expect("regenerated output");
        assert_eq!(on_disk, direct_alignment(fasta, &ServeBackend::Sequential), "{id}");
    }
}

#[test]
fn restart_rewarm_respects_the_cache_budget() {
    // Three results fit comfortably in the default 64 MiB cache, but not
    // in a 1 KiB one: journal replay re-warms in completion order, so the
    // LRU budget must keep the newest results and evict the oldest.
    let mut h = ServeHarness::new("rewarm-budget").cache_budget_bytes(1024).start();
    let mut client = h.client();
    let fastas: Vec<String> = (0..3).map(|i| family_fasta(6, 60, 40 + i as u64)).collect();
    for (i, fasta) in fastas.iter().enumerate() {
        let id = submit_ok(&mut client, &format!("fam_{i}"), fasta);
        client.wait_result(&id, WAIT).expect("result");
    }
    h.shutdown();

    h.restart();
    assert!(h.server().wait_idle(WAIT));
    let warmed = h.server().cache_len();
    assert!((1..3).contains(&warmed), "replay re-warmed {warmed} entries under a 2 KiB budget");

    // The newest result survived replay; the oldest was evicted, so
    // resubmitting it is a cold run again.
    let mut client = h.client();
    let hot = submit_ok(&mut client, "hot", &fastas[2]);
    let hot_result = client.wait_result(&hot, WAIT).expect("hot result");
    assert_eq!(hot_result.get("cached").and_then(Json::as_bool), Some(true));
    let cold = submit_ok(&mut client, "cold", &fastas[0]);
    let cold_result = client.wait_result(&cold, WAIT).expect("cold result");
    assert_eq!(cold_result.get("cached").and_then(Json::as_bool), Some(false));
    h.shutdown();
}

#[test]
fn cached_resubmission_does_zero_new_dp_work() {
    let mut h = ServeHarness::new("cache").start();
    let mut client = h.client();
    let fasta = family_fasta(8, 50, 31);
    let job = submit_ok(&mut client, "fam", &fasta);
    let cold = client.wait_result(&job, WAIT).expect("cold result");
    assert_eq!(cold.get("cached").and_then(Json::as_bool), Some(false));
    let cells_after_cold = h.server().stats().dp_cells;
    assert!(cells_after_cold > 0, "the cold run did real DP work");

    // Same bytes, new id: answered from the cache at accept time.
    let resubmit = submit_ok(&mut client, "fam", &fasta);
    assert_eq!(resubmit, "fam-2", "duplicate id is unique-ified");
    let warm = client.wait_result(&resubmit, WAIT).expect("warm result");
    assert_eq!(warm.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        warm.get("fasta").and_then(Json::as_str),
        cold.get("fasta").and_then(Json::as_str),
        "cache returns byte-identical FASTA"
    );
    assert_eq!(
        h.server().stats().dp_cells,
        cells_after_cold,
        "cached resubmission computed zero DP cells"
    );
    // The cached job still writes its own verified output file.
    let on_disk = std::fs::read_to_string(h.output_path(&resubmit)).expect("cached output");
    assert_eq!(Some(on_disk.as_str()), cold.get("fasta").and_then(Json::as_str));
    h.shutdown();
}

#[test]
fn cancelling_a_queued_job_releases_its_slot_immediately() {
    // Queue of 2 with paused workers: the bound is reached, a cancel
    // must free the slot with no worker involvement at all.
    let mut h =
        ServeHarness::new("cancel-queued").workers(1).paused(true).queue_capacity(2).start();
    let mut client = h.client();
    let job_a = submit_ok(&mut client, "fam_a", &family_fasta(6, 40, 41));
    let job_b = submit_ok(&mut client, "fam_b", &family_fasta(6, 40, 42));
    match client.submit(Some("fam_c"), 0, &family_fasta(6, 40, 43)).expect("submit") {
        Submitted::Rejected { reason } => assert!(reason.contains("queue full"), "{reason}"),
        Submitted::Accepted { job } => panic!("queue bound ignored, accepted {job}"),
    }

    client.cancel(&job_b).expect("cancel");
    let cancelled =
        client.wait_event(WAIT, |e| event_kind(e) == "cancelled").expect("cancelled event");
    assert_eq!(cancelled.get("job").and_then(Json::as_str), Some(job_b.as_str()));
    // Workers are still paused: the freed slot is usable right now.
    let job_c = submit_ok(&mut client, "fam_c", &family_fasta(6, 40, 43));

    h.release_workers();
    client.wait_result(&job_a, WAIT).expect("fam_a result");
    client.wait_result(&job_c, WAIT).expect("fam_c result");
    let stats = h.shutdown();
    assert_eq!(stats.cancelled, 1);
    // The cancelled job has exactly one terminal entry and was never
    // started by any worker.
    let entries = h.journal_entries();
    let b_terms: Vec<&JournalEntry> = entries
        .iter()
        .filter(|e| e.job() == job_b && !matches!(e, JournalEntry::Accepted { .. }))
        .collect();
    assert_eq!(b_terms.len(), 1, "{b_terms:?}");
    assert!(
        matches!(b_terms[0], JournalEntry::Finished { ok: false, .. }),
        "cancelled before start, never Started: {:?}",
        b_terms[0]
    );
}

#[test]
fn cancelling_a_running_job_stops_it_at_a_phase_boundary() {
    let hold = sad_serve::JobHold::new();
    let mut h = ServeHarness::new("cancel-running").hold(hold.clone()).start();
    hold.engage();
    let mut client = h.client();
    // The hold pins the job right after its started event, so the cancel
    // provably lands while it is running — at any alignment speed.
    let job = submit_ok(&mut client, "big", &family_fasta(8, 50, 51));
    client.wait_event(WAIT, |e| event_kind(e) == "started").expect("started");
    client.cancel(&job).expect("cancel");
    client.wait_event(WAIT, |e| event_kind(e) == "cancel-requested").expect("cancel acknowledged");
    hold.release();
    let terminal = client.wait_terminal(&job, WAIT).expect("terminal event");
    assert_eq!(event_kind(&terminal), "cancelled", "{}", terminal.encode());

    // The worker is free again: a fresh job completes normally.
    let next = submit_ok(&mut client, "after", &family_fasta(6, 40, 52));
    client.wait_result(&next, WAIT).expect("post-cancel job runs");
    let stats = h.shutdown();
    assert_eq!(stats.cancelled, 1);
    assert!(!h.output_path(&job).exists(), "cancelled job leaves no output file");
}

#[test]
fn traversal_shaped_job_ids_are_rejected_before_any_write() {
    let mut h = ServeHarness::new("hostile-ids").start();
    let mut client = h.client();
    let fasta = family_fasta(6, 40, 71);
    // Ids are interpolated into output paths; every path-shaped or
    // otherwise unsafe id must be refused at submit time.
    for hostile in
        ["../../escape", "/tmp/abs-path", "..", ".hidden", "a/b", "fam a", &"x".repeat(200)]
    {
        match client.submit(Some(hostile), 0, &fasta).expect("submit") {
            Submitted::Rejected { reason } => {
                assert!(reason.contains("invalid job id"), "{hostile:?}: {reason}")
            }
            Submitted::Accepted { job } => panic!("{hostile:?} accepted as {job}"),
        }
    }
    // Nothing was journaled or written for the refused submissions, and a
    // well-formed id still goes through on the same connection.
    assert!(h.journal_entries().is_empty(), "rejected ids leave no journal trail");
    let job = submit_ok(&mut client, "fam_ok.1-x", &fasta);
    client.wait_result(&job, WAIT).expect("valid id still accepted");
    let escape = h.out_dir().parent().expect("out dir has a parent").join("escape.aligned.fa");
    assert!(!escape.exists(), "no output escaped the output directory");
    h.shutdown();
}

#[test]
fn client_disconnect_mid_stream_does_not_lose_the_job() {
    let mut h = ServeHarness::new("disconnect").workers(1).paused(true).start();
    let mut client = h.client();
    let job = submit_ok(&mut client, "fam", &family_fasta(8, 50, 61));
    drop(client); // disconnect before the job even starts
    h.release_workers();
    assert!(h.server().wait_idle(WAIT));
    let stats = h.shutdown();
    assert_eq!(stats.completed, 1, "the job completed with nobody listening");
    let entries = h.journal_entries();
    assert!(
        entries
            .iter()
            .any(|e| matches!(e, JournalEntry::Finished { job: j, ok: true, .. } if *j == job)),
        "journaled Finished despite the disconnect"
    );
    assert!(h.output_path(&job).exists(), "output written despite the disconnect");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Cache hits return byte-identical FASTA to the cold run — and both
    /// equal a direct serverless run — for arbitrary rosegen families.
    #[test]
    fn prop_cache_hit_is_byte_identical_to_cold_run(
        n in 4usize..9,
        len in 30usize..60,
        seed in 0u64..1000,
    ) {
        let fasta = family_fasta(n, len, seed);
        let mut h = ServeHarness::new("prop-cache").start();
        let mut client = h.client();
        let cold_job = submit_ok(&mut client, "cold", &fasta);
        let cold = client.wait_result(&cold_job, WAIT).expect("cold result");
        let warm_job = submit_ok(&mut client, "warm", &fasta);
        let warm = client.wait_result(&warm_job, WAIT).expect("warm result");
        prop_assert_eq!(warm.get("cached").and_then(Json::as_bool), Some(true));
        let cold_fasta = cold.get("fasta").and_then(Json::as_str).expect("cold fasta");
        let warm_fasta = warm.get("fasta").and_then(Json::as_str).expect("warm fasta");
        prop_assert_eq!(cold_fasta, warm_fasta);
        let direct = direct_alignment(&fasta, &ServeBackend::Sequential);
        prop_assert_eq!(cold_fasta, direct.as_str());
        h.shutdown();
    }

    /// N clients submitting bursts of jobs all see balanced streams
    /// (every accepted job starts and finishes exactly once) and
    /// round-robin fairness: no client's i-th job waits behind more than
    /// one job from each other client.
    #[test]
    fn prop_concurrent_clients_get_balanced_fair_streams(
        n_clients in 2usize..4,
        jobs_each in 2usize..4,
    ) {
        let mut h = ServeHarness::new("prop-fair").workers(1).paused(true).start();
        let mut clients: Vec<_> = (0..n_clients).map(|_| h.client()).collect();
        // Submission order: all of client 0's jobs, then all of client
        // 1's, … — the worst case for fairness.
        let mut expected: Vec<Vec<String>> = vec![Vec::new(); n_clients];
        for (c, client) in clients.iter_mut().enumerate() {
            for j in 0..jobs_each {
                let id = format!("c{c}-j{j}");
                let fasta = family_fasta(5, 35, (c * 10 + j) as u64);
                let job = submit_ok(client, &id, &fasta);
                expected[c].push(job);
            }
        }
        h.release_workers();
        for (c, client) in clients.iter_mut().enumerate() {
            for job in &expected[c] {
                client.wait_result(job, WAIT).expect("every job completes");
            }
        }
        h.shutdown();

        let entries = h.journal_entries();
        let started_order: Vec<String> = entries.iter().filter_map(|e| match e {
            JournalEntry::Started { job } => Some(job.clone()),
            _ => None,
        }).collect();
        prop_assert_eq!(started_order.len(), n_clients * jobs_each);
        for (c, jobs) in expected.iter().enumerate() {
            for (j, job) in jobs.iter().enumerate() {
                let pos = started_order.iter().position(|s| s == job)
                    .expect("every accepted job started");
                // Round-robin bound: before this client's j-th job, each
                // client contributes at most j+1 starts.
                prop_assert!(
                    pos < (j + 1) * n_clients,
                    "client {}'s job {} started at position {} (bound {}): {:?}",
                    c, j, pos, (j + 1) * n_clients, started_order
                );
                let finishes = entries.iter().filter(|e| matches!(
                    e, JournalEntry::Finished { job: f, ok: true, .. } if f == job
                )).count();
                prop_assert_eq!(finishes, 1);
            }
        }
    }
}
