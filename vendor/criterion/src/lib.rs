//! Offline stand-in for `criterion`: real wall-clock measurement with the
//! API subset the bench harness uses (`Criterion::bench_function`,
//! `Bencher::iter`, `criterion_group!`/`criterion_main!`, `black_box`).
//!
//! Measurement is deliberately simple — warmup iterations followed by
//! `sample_size` timed iterations, reporting min/mean/max — with none of
//! criterion's statistical machinery (outlier analysis, regression
//! detection, HTML reports). Good enough to keep `cargo bench` meaningful
//! until the real crate can be pulled from a registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set how many timed iterations each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least two samples");
        self.sample_size = n;
        self
    }

    /// Measure `f` and print a one-line summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { sample_size: self.sample_size, samples: Vec::new() };
        f(&mut b);
        let n = b.samples.len().max(1) as u32;
        let total: Duration = b.samples.iter().sum();
        let mean = total / n;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        let max = b.samples.iter().max().copied().unwrap_or_default();
        println!("bench {id:<44} min {min:>12?}  mean {mean:>12?}  max {max:>12?}  ({n} samples)");
        self
    }
}

/// Times one benchmark routine.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Run `routine` for warmup plus `sample_size` timed iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..2 {
            black_box(routine());
        }
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Group benchmark functions, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut runs = 0u32;
        c.bench_function("smoke/add", |b| b.iter(|| black_box(2u64 + 2)));
        c.bench_function("smoke/count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs >= 2, "routine must actually execute");
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = target
    }

    #[test]
    fn group_runs_targets() {
        benches();
    }
}
