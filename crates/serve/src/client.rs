//! A blocking protocol client: what `sad submit` and the tests speak.

use crate::json::Json;
use crate::protocol::{LineEvent, LineReader};
use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A connected client. Reads are pull-based: [`Client::next_event`]
/// surfaces server lines in arrival order; the `wait_*` helpers buffer
/// unrelated events so interleaved job streams don't get lost.
pub struct Client {
    stream: TcpStream,
    reader: LineReader<TcpStream>,
    buffered: VecDeque<Json>,
    /// The server greeting, captured at connect.
    pub hello: Json,
}

/// A client-side protocol failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket failure.
    Io(std::io::Error),
    /// The server sent something unparseable.
    Protocol(String),
    /// A `wait_*` deadline passed.
    TimedOut,
    /// The server closed the connection.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::TimedOut => write!(f, "timed out waiting for a server event"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The server's answer to a submission.
#[derive(Debug, Clone, PartialEq)]
pub enum Submitted {
    /// Admitted under this server-assigned job id.
    Accepted {
        /// The job id to watch for in subsequent events.
        job: String,
    },
    /// Refused with this reason.
    Rejected {
        /// Why.
        reason: String,
    },
}

impl Client {
    /// Connect and read the server greeting.
    pub fn connect(addr: SocketAddr) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
        stream.set_nodelay(true).ok();
        let reader_stream = stream.try_clone()?;
        let mut client = Client {
            stream,
            reader: LineReader::new(reader_stream),
            buffered: VecDeque::new(),
            hello: Json::Null,
        };
        let hello = client.next_event(Duration::from_secs(5))?;
        match hello.get("event").and_then(Json::as_str) {
            Some("hello") => client.hello = hello,
            _ => {
                return Err(ClientError::Protocol(format!(
                    "expected hello, got {}",
                    hello.encode()
                )))
            }
        }
        Ok(client)
    }

    /// Connect, retrying for up to `patience` (covers server start-up
    /// races in the CLI and CI smoke steps).
    pub fn connect_with_retry(addr: SocketAddr, patience: Duration) -> Result<Client, ClientError> {
        let deadline = Instant::now() + patience;
        loop {
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    fn send_line(&mut self, line: &str) -> Result<(), ClientError> {
        let mut bytes = line.as_bytes().to_vec();
        bytes.push(b'\n');
        self.stream.write_all(&bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Submit a FASTA payload; block until the server accepts or rejects.
    pub fn submit(
        &mut self,
        id: Option<&str>,
        priority: i64,
        fasta: &str,
    ) -> Result<Submitted, ClientError> {
        let mut fields = vec![("cmd", Json::str("submit"))];
        if let Some(id) = id {
            fields.push(("id", Json::str(id)));
        }
        fields.push(("priority", Json::Num(priority as f64)));
        fields.push(("fasta", Json::str(fasta)));
        let line =
            Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect::<Vec<_>>())
                .encode();
        self.send_line(&line)?;
        // The ack names the requested id (or is the connection's next
        // accepted/rejected when no id was proposed).
        let ack = self.wait_event(Duration::from_secs(30), |e| {
            let kind = e.get("event").and_then(Json::as_str);
            if !matches!(kind, Some("accepted") | Some("rejected")) {
                return false;
            }
            match id {
                Some(id) => e.get("requested").and_then(Json::as_str) == Some(id),
                None => true,
            }
        })?;
        match ack.get("event").and_then(Json::as_str) {
            Some("accepted") => {
                let job = ack
                    .get("job")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ClientError::Protocol("accepted without job id".into()))?;
                Ok(Submitted::Accepted { job: job.to_string() })
            }
            _ => {
                let reason =
                    ack.get("reason").and_then(Json::as_str).unwrap_or("unknown").to_string();
                Ok(Submitted::Rejected { reason })
            }
        }
    }

    /// Send `CANCEL <job>`.
    pub fn cancel(&mut self, job: &str) -> Result<(), ClientError> {
        self.send_line(&format!("CANCEL {job}"))
    }

    /// Send `SHUTDOWN` (drain-and-stop); the server answers `bye`.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send_line("SHUTDOWN")
    }

    /// One event straight off the wire, ignoring the buffer.
    fn read_fresh(&mut self, timeout: Duration) -> Result<Json, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.reader.next_line()? {
                LineEvent::Line(line) => {
                    return Json::parse(&line)
                        .map_err(|e| ClientError::Protocol(format!("bad event line: {e}")));
                }
                LineEvent::TimedOut => {
                    if Instant::now() >= deadline {
                        return Err(ClientError::TimedOut);
                    }
                }
                LineEvent::Eof => return Err(ClientError::Disconnected),
            }
        }
    }

    /// Next server event (buffered first), or [`ClientError::TimedOut`].
    pub fn next_event(&mut self, timeout: Duration) -> Result<Json, ClientError> {
        if let Some(event) = self.buffered.pop_front() {
            return Ok(event);
        }
        self.read_fresh(timeout)
    }

    /// Pull events until one matches `pred`, buffering the rest in order.
    pub fn wait_event(
        &mut self,
        timeout: Duration,
        pred: impl Fn(&Json) -> bool,
    ) -> Result<Json, ClientError> {
        // The match may already be sitting in the buffer.
        if let Some(at) = self.buffered.iter().position(&pred) {
            return Ok(self.buffered.remove(at).expect("index in range"));
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ClientError::TimedOut);
            }
            let event = self.read_fresh(remaining)?;
            if pred(&event) {
                return Ok(event);
            }
            self.buffered.push_back(event);
        }
    }

    /// Wait for the terminal event of `job`: `result`, `cancelled`, or
    /// `error`.
    pub fn wait_terminal(&mut self, job: &str, timeout: Duration) -> Result<Json, ClientError> {
        self.wait_event(timeout, |e| {
            e.get("job").and_then(Json::as_str) == Some(job)
                && matches!(
                    e.get("event").and_then(Json::as_str),
                    Some("result") | Some("cancelled") | Some("error")
                )
        })
    }

    /// Wait specifically for a `result` event of `job`.
    pub fn wait_result(&mut self, job: &str, timeout: Duration) -> Result<Json, ClientError> {
        let terminal = self.wait_terminal(job, timeout)?;
        match terminal.get("event").and_then(Json::as_str) {
            Some("result") => Ok(terminal),
            _ => Err(ClientError::Protocol(format!(
                "job {job} did not produce a result: {}",
                terminal.encode()
            ))),
        }
    }
}
