//! Per-rank execution traces: clocks, byte counts and named phases.

use serde::{Deserialize, Serialize};

/// One named phase on one rank: `[start, end)` in virtual seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Phase label (e.g. `"step7-local-align"`).
    pub name: String,
    /// Virtual clock at phase entry.
    pub start: f64,
    /// Virtual clock at phase exit.
    pub end: f64,
}

impl PhaseRecord {
    /// Phase duration.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Everything a rank recorded during a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RankTrace {
    /// The rank this trace belongs to.
    pub rank: usize,
    /// Virtual seconds spent in modelled computation.
    pub compute_s: f64,
    /// Virtual seconds spent in communication (send/recv overheads plus
    /// waiting for message arrival).
    pub comm_s: f64,
    /// Total payload bytes sent.
    pub bytes_sent: u64,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Messages received.
    pub msgs_received: u64,
    /// Named phases in entry order.
    pub phases: Vec<PhaseRecord>,
    /// Final virtual clock.
    pub final_clock: f64,
}

/// Aggregate per-phase timing across ranks: for each phase name (in first
/// appearance order) the maximum and mean duration over the ranks that
/// recorded it. The maximum is the quantity scaling plots report (the
/// phase's contribution to the critical path, assuming phase-aligned
/// ranks).
pub fn phase_summary(traces: &[RankTrace]) -> Vec<(String, f64, f64)> {
    let mut order: Vec<String> = Vec::new();
    let mut acc: std::collections::HashMap<String, Vec<f64>> = std::collections::HashMap::new();
    for t in traces {
        for p in &t.phases {
            if !acc.contains_key(&p.name) {
                order.push(p.name.clone());
            }
            acc.entry(p.name.clone()).or_default().push(p.duration());
        }
    }
    order
        .into_iter()
        .map(|name| {
            let ds = &acc[&name];
            let max = ds.iter().copied().fold(0.0, f64::max);
            let mean = ds.iter().sum::<f64>() / ds.len() as f64;
            (name, max, mean)
        })
        .collect()
}

/// Render a phase table like the evaluation section prints.
pub fn phase_table(traces: &[RankTrace]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{:<28} {:>12} {:>12}", "phase", "max (s)", "mean (s)");
    for (name, max, mean) in phase_summary(traces) {
        let _ = writeln!(out, "{name:<28} {max:>12.4} {mean:>12.4}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(rank: usize, phases: &[(&str, f64, f64)]) -> RankTrace {
        RankTrace {
            rank,
            phases: phases
                .iter()
                .map(|&(name, start, end)| PhaseRecord { name: name.into(), start, end })
                .collect(),
            ..Default::default()
        }
    }

    #[test]
    fn duration() {
        let p = PhaseRecord { name: "x".into(), start: 1.0, end: 3.5 };
        assert!((p.duration() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_takes_max_and_mean() {
        let traces = vec![
            trace(0, &[("a", 0.0, 1.0), ("b", 1.0, 2.0)]),
            trace(1, &[("a", 0.0, 3.0), ("b", 3.0, 3.5)]),
        ];
        let s = phase_summary(&traces);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].0, "a");
        assert!((s[0].1 - 3.0).abs() < 1e-12);
        assert!((s[0].2 - 2.0).abs() < 1e-12);
        assert!((s[1].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders_all_phases() {
        let traces = vec![trace(0, &[("alpha", 0.0, 1.0)])];
        let t = phase_table(&traces);
        assert!(t.contains("alpha"));
        assert!(t.contains("max"));
    }

    #[test]
    fn order_is_first_appearance() {
        let traces = vec![
            trace(0, &[("z", 0.0, 1.0), ("a", 1.0, 2.0)]),
            trace(1, &[("a", 0.0, 1.0), ("z", 1.0, 2.0)]),
        ];
        let s = phase_summary(&traces);
        assert_eq!(s[0].0, "z");
        assert_eq!(s[1].0, "a");
    }
}
