//! The cluster runner: spawns one thread per rank and collects results and
//! traces.

use crate::cost::CostModel;
use crate::node::{Envelope, Node};
use crate::trace::{phase_table, RankTrace};
use crossbeam::channel::unbounded;

/// A virtual cluster of `p` ranks sharing a [`CostModel`].
#[derive(Debug, Clone)]
pub struct VirtualCluster {
    p: usize,
    cost: CostModel,
}

/// The outcome of a cluster run.
#[derive(Debug)]
pub struct ClusterRun<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank execution traces, indexed by rank.
    pub traces: Vec<RankTrace>,
    /// Virtual wall-clock of the run: the maximum final clock over ranks.
    pub makespan: f64,
}

impl VirtualCluster {
    /// Create a cluster of `p ≥ 1` ranks.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn new(p: usize, cost: CostModel) -> Self {
        assert!(p >= 1, "cluster needs at least one rank");
        VirtualCluster { p, cost }
    }

    /// Number of ranks.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Run the SPMD program `f` on every rank and wait for completion.
    ///
    /// Each rank executes on its own OS thread with real (FIFO, typed)
    /// channels to every other rank; clocks are virtual (see crate docs).
    /// Panics in any rank propagate (the run aborts with that panic).
    pub fn run<R, F>(&self, f: F) -> ClusterRun<R>
    where
        R: Send,
        F: Fn(&Node) -> R + Send + Sync,
    {
        let p = self.p;
        // channel matrix: senders[src][dst] pairs with receivers[dst][src].
        let mut senders: Vec<Vec<crossbeam::channel::Sender<Envelope>>> =
            (0..p).map(|_| Vec::with_capacity(p)).collect();
        let mut receivers: Vec<Vec<Option<crossbeam::channel::Receiver<Envelope>>>> =
            (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
        for (src, sender_row) in senders.iter_mut().enumerate() {
            for (dst, _) in (0..p).enumerate() {
                let (tx, rx) = unbounded();
                sender_row.push(tx);
                receivers[dst][src] = Some(rx);
            }
            let _ = src;
        }

        let mut outcomes: Vec<Option<(R, RankTrace)>> = (0..p).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, (sender_row, receiver_row)) in senders.into_iter().zip(receivers).enumerate()
            {
                let cost = self.cost;
                let fref = &f;
                let receiver_row: Vec<_> =
                    receiver_row.into_iter().map(|r| r.expect("wired")).collect();
                handles.push(scope.spawn(move || {
                    let node = Node::new(rank, p, cost, sender_row, receiver_row);
                    let result = fref(&node);
                    (result, node.finish())
                }));
            }
            for (rank, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(pair) => outcomes[rank] = Some(pair),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });

        let mut results = Vec::with_capacity(p);
        let mut traces = Vec::with_capacity(p);
        for o in outcomes {
            let (r, t) = o.expect("every rank completed");
            results.push(r);
            traces.push(t);
        }
        let makespan = traces.iter().map(|t| t.final_clock).fold(0.0, f64::max);
        ClusterRun { results, traces, makespan }
    }
}

impl<R> ClusterRun<R> {
    /// Human-readable per-phase timing table (max/mean across ranks).
    pub fn phase_table(&self) -> String {
        phase_table(&self.traces)
    }

    /// Total bytes sent by all ranks.
    pub fn total_bytes(&self) -> u64 {
        self.traces.iter().map(|t| t.bytes_sent).sum()
    }

    /// Total messages sent by all ranks.
    pub fn total_messages(&self) -> u64 {
        self.traces.iter().map(|t| t.msgs_sent).sum()
    }

    /// Aggregate compute seconds over all ranks (the "work" in
    /// work/critical-path analyses).
    pub fn total_compute(&self) -> f64 {
        self.traces.iter().map(|t| t.compute_s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioseq::Work;

    #[test]
    fn single_rank_runs() {
        let c = VirtualCluster::new(1, CostModel::beowulf_2008());
        let run = c.run(|node| {
            node.compute(Work::dp(1_000_000));
            node.rank()
        });
        assert_eq!(run.results, vec![0]);
        assert!((run.makespan - 0.1).abs() < 1e-9); // 1e6 cells at 1e-7 s
    }

    #[test]
    fn ping_pong_advances_clocks() {
        let c = VirtualCluster::new(2, CostModel::beowulf_2008());
        let run = c.run(|node| {
            if node.rank() == 0 {
                node.send(1, 7, vec![0u8; 1000]);
                let _: Vec<u8> = node.recv(1, 8);
            } else {
                let v: Vec<u8> = node.recv(0, 7);
                node.send(0, 8, v);
            }
            node.clock()
        });
        let m = CostModel::beowulf_2008();
        // Round trip: 2 sends (overhead + 1008 bytes each) + 2 latencies +
        // 2 recv overheads.
        let expected = 2.0 * m.send_seconds(1008) + 2.0 * m.latency + 2.0 * m.recv_overhead;
        assert!((run.results[0] - expected).abs() < 1e-9, "got {} want {expected}", run.results[0]);
        assert!(run.makespan >= run.results[1]);
    }

    #[test]
    fn determinism_across_runs() {
        let c = VirtualCluster::new(5, CostModel::beowulf_2008());
        let go = || {
            c.run(|node| {
                node.compute(Work::dp((node.rank() as u64 + 1) * 1000));
                let all = node.all_gather(node.rank() as u64);
                node.barrier();
                (all, node.clock())
            })
        };
        let a = go();
        let b = go();
        assert_eq!(a.results, b.results);
        assert_eq!(a.makespan, b.makespan);
        for (ta, tb) in a.traces.iter().zip(&b.traces) {
            assert_eq!(ta.final_clock, tb.final_clock);
            assert_eq!(ta.bytes_sent, tb.bytes_sent);
        }
    }

    #[test]
    fn clocks_never_negative_and_monotone() {
        let c = VirtualCluster::new(3, CostModel::modern());
        let run = c.run(|node| {
            let t0 = node.clock();
            node.barrier();
            let t1 = node.clock();
            node.compute(Work::kmer(500));
            let t2 = node.clock();
            assert!(t0 <= t1 && t1 <= t2);
            t2
        });
        assert!(run.results.iter().all(|&t| t >= 0.0));
    }

    #[test]
    fn phases_recorded() {
        let c = VirtualCluster::new(2, CostModel::beowulf_2008());
        let run = c.run(|node| {
            node.phase("compute", || node.compute(Work::dp(10_000)));
            node.phase("sync", || node.barrier());
        });
        let table = run.phase_table();
        assert!(table.contains("compute"));
        assert!(table.contains("sync"));
        assert_eq!(run.traces[0].phases.len(), 2);
        assert!(run.traces[0].phases[0].duration() > 0.0);
    }

    #[test]
    fn byte_accounting() {
        let c = VirtualCluster::new(2, CostModel::beowulf_2008());
        let run = c.run(|node| {
            if node.rank() == 0 {
                node.send(1, 1, vec![0u8; 100]);
            } else {
                let _: Vec<u8> = node.recv(0, 1);
            }
        });
        assert_eq!(run.traces[0].bytes_sent, 108);
        assert_eq!(run.traces[0].msgs_sent, 1);
        assert_eq!(run.traces[1].msgs_received, 1);
        assert_eq!(run.total_bytes(), 108);
    }

    #[test]
    #[should_panic(expected = "tag mismatch")]
    fn tag_mismatch_panics() {
        let c = VirtualCluster::new(2, CostModel::beowulf_2008());
        c.run(|node| {
            if node.rank() == 0 {
                node.send(1, 1, 42u32);
            } else {
                let _: u32 = node.recv(0, 2);
            }
        });
    }

    #[test]
    fn free_network_makes_comm_free() {
        let c = VirtualCluster::new(4, CostModel::free_network());
        let run = c.run(|node| {
            node.barrier();
            let _ = node.all_gather(vec![0u8; 10_000]);
            node.clock()
        });
        for t in run.results {
            assert_eq!(t, 0.0);
        }
    }

    #[test]
    fn compute_seconds_attributed() {
        let c = VirtualCluster::new(1, CostModel::beowulf_2008());
        let run = c.run(|node| node.compute(Work::sort(1000)));
        assert!(run.traces[0].compute_s > 0.0);
        assert_eq!(run.traces[0].comm_s, 0.0);
        assert!((run.total_compute() - run.traces[0].compute_s).abs() < 1e-15);
    }
}
