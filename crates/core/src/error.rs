//! Typed errors for the Sample-Align-D public API.
//!
//! Before the [`crate::Aligner`] redesign, bad input produced ad-hoc
//! behaviour: empty sets panicked (`assert!(!seqs.is_empty())` in the
//! bucketing code), zero-sized configs asserted or were silently
//! clamped, and a single sequence took a degenerate path. Every
//! condition a caller can trip is now a uniform [`SadError`] variant.

/// Everything that can go wrong before the pipeline starts.
///
/// Returned by [`crate::Aligner::run`] and [`crate::SadConfig::validate`].
/// Marked `#[non_exhaustive]`: downstream matches need a wildcard arm so
/// future validations are not breaking changes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SadError {
    /// Fewer than two input sequences (0 or 1). A multiple alignment
    /// needs at least a pair: empty input used to panic deep in the
    /// bucketing code, and a single sequence used to yield a trivial
    /// one-row "alignment"; both are rejected uniformly now.
    TooFewSequences {
        /// How many sequences were supplied.
        found: usize,
    },
    /// `SadConfig::kmer_k` is zero — a 0-mer profile is undefined.
    ZeroKmerLen,
    /// `SadConfig::samples_per_rank` is `Some(0)` — regular sampling
    /// needs at least one sample per rank.
    ZeroSampleCount,
    /// `SadConfig::kmer_k` is not shorter than the shortest input
    /// sequence, so that sequence has no k-mer of the configured length.
    /// (The pipeline itself degrades such sequences to k = 1 profiles;
    /// this strict check is opt-in via [`crate::SadConfig::validate_for`].)
    KmerExceedsShortest {
        /// The configured k-mer length.
        k: usize,
        /// Length of the shortest input sequence.
        shortest: usize,
    },
    /// The rank count requested via [`crate::Aligner::ranks`] disagrees
    /// with the selected backend's actual width — the size of the
    /// supplied [`vcluster::VirtualCluster`], the rayon `threads` count,
    /// or 1 for the sequential backend.
    ClusterSizeMismatch {
        /// The backend's actual width in ranks.
        actual: usize,
        /// Ranks requested via [`crate::Aligner::ranks`].
        requested: usize,
    },
    /// The rayon backend was configured with zero threads/buckets.
    ZeroParallelism,
    /// `SadConfig::band_policy` is `BandPolicy::Fixed(0)` — a zero-width
    /// band admits no alignment path.
    ZeroBandWidth,
    /// `SadConfig::max_bucket` is `Some(0)` — a bucket must hold at least
    /// one sequence, so a zero cap can never be satisfied.
    ZeroMaxBucket,
    /// `SadConfig::max_bucket` was set on a backend without hierarchical
    /// bucketing support. The virtual cluster's SPMD protocol has no
    /// recursive redistribution collective yet, so only the rayon backend
    /// honours the cap (the sequential backend has no buckets and ignores
    /// it).
    MaxBucketUnsupported {
        /// Stable name of the rejecting backend.
        backend: &'static str,
    },
    /// A [`crate::VerticalConfig`] field is out of range — e.g. a zero
    /// `min_anchor_len` (a 0-mer anchor is undefined) or a zero
    /// `max_block_len` (a block must hold at least one column).
    InvalidVertical {
        /// The offending field, by name.
        what: &'static str,
    },
    /// `SadConfig::vertical` was set on a backend without vertical
    /// (length-wise) decomposition support. The virtual cluster's SPMD
    /// protocol has no block-scheduling collective yet, so only the
    /// sequential and rayon backends run vertical mode.
    VerticalUnsupported {
        /// Stable name of the rejecting backend.
        backend: &'static str,
    },
    /// The run was stopped at a phase boundary — the
    /// [`crate::CancelToken`] supplied via [`crate::Aligner::cancel_token`]
    /// was cancelled, or the [`crate::Aligner::deadline`] budget ran out.
    Cancelled {
        /// The phase that was about to start when cancellation was
        /// observed.
        phase: crate::pipeline::Phase,
    },
}

impl std::fmt::Display for SadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SadError::TooFewSequences { found } => {
                write!(f, "need at least 2 sequences to align, got {found}")
            }
            SadError::ZeroKmerLen => write!(f, "kmer_k must be at least 1"),
            SadError::ZeroSampleCount => {
                write!(f, "samples_per_rank must be at least 1 when set explicitly")
            }
            SadError::KmerExceedsShortest { k, shortest } => {
                write!(f, "kmer_k = {k} is not shorter than the shortest sequence ({shortest})")
            }
            SadError::ClusterSizeMismatch { actual, requested } => {
                write!(f, "backend is {actual} ranks wide but {requested} were requested")
            }
            SadError::ZeroParallelism => write!(f, "rayon backend needs at least one thread"),
            SadError::ZeroBandWidth => {
                write!(f, "band_policy: a fixed band must be at least 1 column wide")
            }
            SadError::ZeroMaxBucket => {
                write!(f, "max_bucket must be at least 1 when set explicitly")
            }
            SadError::MaxBucketUnsupported { backend } => {
                write!(f, "max_bucket: hierarchical bucketing is not supported on the {backend} backend (use rayon)")
            }
            SadError::InvalidVertical { what } => {
                write!(f, "vertical: {what} must be at least 1")
            }
            SadError::VerticalUnsupported { backend } => {
                write!(f, "vertical: length-wise decomposition is not supported on the {backend} backend (use sequential or rayon)")
            }
            SadError::Cancelled { phase } => {
                write!(f, "run cancelled before phase {phase}")
            }
        }
    }
}

impl std::error::Error for SadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        let cases: Vec<(SadError, &str)> = vec![
            (SadError::TooFewSequences { found: 1 }, "got 1"),
            (SadError::ZeroKmerLen, "kmer_k"),
            (SadError::ZeroSampleCount, "samples_per_rank"),
            (SadError::KmerExceedsShortest { k: 6, shortest: 4 }, "shortest"),
            (SadError::ClusterSizeMismatch { actual: 4, requested: 8 }, "4 ranks"),
            (SadError::ZeroParallelism, "thread"),
            (SadError::ZeroMaxBucket, "max_bucket"),
            (SadError::MaxBucketUnsupported { backend: "distributed" }, "distributed backend"),
            (SadError::InvalidVertical { what: "min_anchor_len" }, "min_anchor_len"),
            (SadError::VerticalUnsupported { backend: "distributed" }, "distributed backend"),
            (
                SadError::Cancelled { phase: crate::pipeline::Phase::LocalAlign },
                "cancelled before phase 8-local-align",
            ),
        ];
        for (err, needle) in cases {
            assert!(format!("{err}").contains(needle), "{err:?}");
        }
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&SadError::ZeroKmerLen);
    }
}
