//! Hand-rolled argument parsing (keeps the dependency set to the approved
//! crates).

use align::{BandPolicy, DpKernel, EngineChoice};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// The selected subcommand with its options.
    pub command: Command,
}

/// One subcommand.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `sad align <in.fasta> [--backend B] [--p N] [--threads N] [--nodes N]
    /// [--engine E] [--no-fine-tune] [--kernel K] [--progress]
    /// [--vertical [--max-block N] [--seam-window W]]`
    Align(AlignArgs),
    /// `sad batch <dir-or-manifest> [--out DIR] [--jobs N] [--backend B]
    /// [--p N] [--threads N] [--nodes N] [--engine E] [--no-fine-tune]
    /// [--kmer K] [--band B] [--kernel K] [--progress]`
    Batch(BatchArgs),
    /// `sad reads [in.fasta] [--reads N] [--coverage C] [--read-len L]
    /// [--error-rate E] [--sources N] [--source-len L] [--seed S]
    /// [--max-bucket N|none] [--min-q Q] [--out FILE] [--backend B]
    /// [--p N] [--threads N] [--nodes N] [--engine E] [--kmer K]
    /// [--band B] [--kernel K] [--no-fine-tune] [--progress]`
    Reads(ReadsArgs),
    /// `sad trim <aligned.fa> [--out FILE] [--max-dropped N]
    /// [--branch-bound]`
    Trim(TrimArgs),
    /// `sad generate [--n N] [--len L] [--relatedness R] [--seed S] [--reference PATH]`
    Generate(GenerateArgs),
    /// `sad scaling [--n N] [--procs 1,4,8,16]`
    Scaling(ScalingArgs),
    /// `sad eval [--cases C] [--p N]`
    Eval(EvalArgs),
    /// `sad rank <in.fasta> [--p N]`
    Rank(RankArgs),
    /// `sad serve [--host H] [--port N] [--journal FILE] [--out DIR]
    /// [--workers N] [--queue N] [--backend B] [--p N] [--threads N]
    /// [--nodes N] [--engine E] [--kmer K] [--band B] [--kernel K]
    /// [--no-fine-tune]`
    Serve(ServeArgs),
    /// `sad submit <files...> [--host H] [--port N] [--out DIR]
    /// [--priority N] [--cancel ID] [--shutdown]`
    Submit(SubmitArgs),
}

/// Options of `sad align`.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignArgs {
    /// Input FASTA path.
    pub input: String,
    /// Generic parallelism (`--p`): ranks/buckets when no backend-specific
    /// flag is given.
    pub p: usize,
    /// Rayon bucket count (`--threads`), overriding `--p`.
    pub threads: Option<usize>,
    /// Virtual cluster size (`--nodes`), overriding `--p`.
    pub nodes: Option<usize>,
    /// Engine selection.
    pub engine: EngineChoice,
    /// Execution backend.
    pub backend: Backend,
    /// Disable the ancestor fine-tuning step.
    pub no_fine_tune: bool,
    /// k-mer length override (`--kmer`); `None` keeps the paper default.
    /// Inputs with sequences shorter than the k-mer length are rejected,
    /// so short-read files need a smaller `k`.
    pub kmer: Option<usize>,
    /// DP kernel band policy (`--band auto|full|<width>`).
    pub band: BandPolicy,
    /// DP kernel variant (`--kernel scalar|striped|auto`).
    pub kernel: DpKernel,
    /// Stream a live per-phase progress display to stderr (`--progress`),
    /// built on the pipeline observer API.
    pub progress: bool,
    /// Vertical (length-wise) decomposition (`--vertical`): cut the
    /// family at conserved anchors, align the blocks in parallel, glue
    /// and seam-polish. Sequential and rayon backends only.
    pub vertical: bool,
    /// Vertical block-length cap (`--max-block N`; requires `--vertical`).
    pub max_block: Option<usize>,
    /// Seam-polish half-window (`--seam-window W`; requires `--vertical`;
    /// `0` disables seam refinement).
    pub seam_window: Option<usize>,
    /// Run the MaxAlign-style area-maximizing trim stage on the finished
    /// alignment (`--trim`).
    pub trim: bool,
}

impl AlignArgs {
    /// Effective decomposition width for the selected backend.
    pub fn parallelism(&self) -> usize {
        match self.backend {
            Backend::Sequential => 1,
            Backend::Rayon => self.threads.unwrap_or(self.p),
            Backend::Distributed => self.nodes.unwrap_or(self.p),
        }
    }
}

/// Options of `sad batch`.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchArgs {
    /// A directory of FASTA files (`.fa`/`.fasta`, one job per file,
    /// sorted by name) or a manifest file listing one FASTA path per line
    /// (`#` comments allowed; relative paths resolve against the
    /// manifest's directory).
    pub input: String,
    /// Output directory (`--out`, default `.`): one `<job>.aligned.fa`
    /// per successful job; created if missing.
    pub out_dir: String,
    /// Concurrent jobs in flight (`--jobs`); defaults to the host's
    /// available parallelism.
    pub jobs: Option<usize>,
    /// Generic per-job parallelism (`--p`), as in `sad align`.
    pub p: usize,
    /// Rayon bucket count (`--threads`), overriding `--p`.
    pub threads: Option<usize>,
    /// Virtual cluster size (`--nodes`), overriding `--p`.
    pub nodes: Option<usize>,
    /// Engine selection.
    pub engine: EngineChoice,
    /// Per-job execution backend. Unlike `sad align` this defaults to
    /// `sequential`: batch throughput comes from running jobs
    /// concurrently (`--jobs`), not from decomposing each job.
    pub backend: Backend,
    /// Disable the ancestor fine-tuning step.
    pub no_fine_tune: bool,
    /// k-mer length override (`--kmer`).
    pub kmer: Option<usize>,
    /// DP kernel band policy (`--band auto|full|<width>`).
    pub band: BandPolicy,
    /// DP kernel variant (`--kernel scalar|striped|auto`).
    pub kernel: DpKernel,
    /// Stream job/phase progress to stderr (`--progress`).
    pub progress: bool,
    /// Run the area-maximizing trim stage on every job's alignment
    /// (`--trim`).
    pub trim: bool,
}

impl BatchArgs {
    /// Effective per-job decomposition width for the selected backend.
    pub fn parallelism(&self) -> usize {
        match self.backend {
            Backend::Sequential => 1,
            Backend::Rayon => self.threads.unwrap_or(self.p),
            Backend::Distributed => self.nodes.unwrap_or(self.p),
        }
    }
}

/// Options of `sad reads` — the Pyro-Align-style large-N read mode.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadsArgs {
    /// Optional input FASTA of reads (streamed, never slurped). Without
    /// it a read set is simulated from a synthetic family, which also
    /// enables the quality gate (`--min-q`) against the known truth.
    pub input: Option<String>,
    /// Bucket size cap (`--max-bucket`, default 512): first-pass buckets
    /// larger than this are recursively re-sampled and re-partitioned.
    /// `--max-bucket none` disables the hierarchical pass.
    pub max_bucket: Option<usize>,
    /// Exact number of simulated reads (`--reads`); overrides coverage.
    pub reads: Option<usize>,
    /// Simulated sequencing depth (`--coverage`, default 8).
    pub coverage: f64,
    /// Mean simulated read length (`--read-len`, default 90).
    pub read_len: usize,
    /// Homopolymer error rate (`--error-rate`, default 0.01).
    pub error_rate: f64,
    /// Source sequences in the simulated family (`--sources`, default 4).
    pub sources: usize,
    /// Average source sequence length (`--source-len`, default 400).
    pub source_len: usize,
    /// RNG seed for the simulation (`--seed`).
    pub seed: u64,
    /// Quality gate (`--min-q`): fail unless the mean pairwise Q of the
    /// recovered alignment against the simulated truth reaches this.
    /// Simulated input only — real read files carry no truth.
    pub min_q: Option<f64>,
    /// Write the aligned reads as gapped FASTA here (`--out`); stdout
    /// carries only the run summary either way.
    pub out: Option<String>,
    /// Generic parallelism (`--p`): lower bound on the bucket count.
    pub p: usize,
    /// Rayon bucket count (`--threads`), overriding `--p`.
    pub threads: Option<usize>,
    /// Virtual cluster size (`--nodes`), overriding `--p`.
    pub nodes: Option<usize>,
    /// Engine selection.
    pub engine: EngineChoice,
    /// Execution backend; defaults to `rayon`, the only backend that
    /// supports the hierarchical cap.
    pub backend: Backend,
    /// Disable the ancestor fine-tuning step.
    pub no_fine_tune: bool,
    /// k-mer length override (`--kmer`); reads shorter than `k` are
    /// rejected, so very short reads need a smaller `k`.
    pub kmer: Option<usize>,
    /// DP kernel band policy (`--band auto|full|<width>`).
    pub band: BandPolicy,
    /// DP kernel variant (`--kernel scalar|striped|auto`).
    pub kernel: DpKernel,
    /// Stream a live per-phase progress display to stderr (`--progress`).
    pub progress: bool,
    /// Run the area-maximizing trim stage on the finished alignment
    /// (`--trim`).
    pub trim: bool,
}

impl ReadsArgs {
    /// User-requested decomposition width for the selected backend (the
    /// command widens this to `reads / max_bucket` so first-pass blocks
    /// already approach the cap).
    pub fn parallelism(&self) -> usize {
        match self.backend {
            Backend::Sequential => 1,
            Backend::Rayon => self.threads.unwrap_or(self.p),
            Backend::Distributed => self.nodes.unwrap_or(self.p),
        }
    }
}

/// Options of `sad trim` — MaxAlign-style area optimization over an
/// already-aligned FASTA file.
#[derive(Debug, Clone, PartialEq)]
pub struct TrimArgs {
    /// Input aligned (gapped) FASTA path.
    pub input: String,
    /// Write the trimmed alignment here (`--out`); stdout otherwise.
    pub out: Option<String>,
    /// Cap on dropped sequences (`--max-dropped N`).
    pub max_dropped: Option<usize>,
    /// Refine the greedy result with bounded branch-and-bound
    /// (`--branch-bound`).
    pub branch_bound: bool,
}

/// Execution backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The engine run directly on the whole set.
    Sequential,
    /// Shared-memory rayon pipeline.
    Rayon,
    /// Virtual message-passing cluster (prints virtual timings).
    Distributed,
}

/// Options of `sad generate`.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateArgs {
    /// Number of sequences.
    pub n: usize,
    /// Average length.
    pub len: usize,
    /// Rose relatedness.
    pub relatedness: f64,
    /// RNG seed.
    pub seed: u64,
    /// Optional path to also write the true reference alignment.
    pub reference: Option<String>,
}

/// Options of `sad scaling`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingArgs {
    /// Number of sequences.
    pub n: usize,
    /// Processor counts to sweep.
    pub procs: Vec<usize>,
}

/// Options of `sad eval`.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalArgs {
    /// Number of benchmark cases.
    pub cases: usize,
    /// Cluster size for the Sample-Align-D row.
    pub p: usize,
}

/// Options of `sad rank`.
#[derive(Debug, Clone, PartialEq)]
pub struct RankArgs {
    /// Input FASTA path.
    pub input: String,
    /// Emulated processor count for the globalized rank.
    pub p: usize,
}

/// Options of `sad serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Interface to bind (`--host`, default `127.0.0.1`).
    pub host: String,
    /// Port to bind (`--port`, default 7401; `0` = OS-assigned).
    pub port: u16,
    /// Write-ahead journal path (`--journal`, default
    /// `sad-serve.journal.jsonl`). Restarting against the same journal
    /// resumes unfinished jobs and skips verified-finished ones.
    pub journal: String,
    /// Output directory for `<job>.aligned.fa` files (`--out`, default `.`).
    pub out_dir: String,
    /// Worker threads draining the queue (`--workers`); defaults to the
    /// host's available parallelism.
    pub workers: Option<usize>,
    /// Pending-job queue bound (`--queue`, default 32).
    pub queue: usize,
    /// Result-cache budget in MiB (`--cache-mb`, default 64); the
    /// in-memory result cache evicts least-recently-used entries past it.
    pub cache_mb: usize,
    /// Per-job execution backend; defaults to `sequential` like `sad
    /// batch` (throughput comes from `--workers`, not per-job width).
    pub backend: Backend,
    /// Generic per-job parallelism (`--p`), as in `sad align`.
    pub p: usize,
    /// Rayon bucket count (`--threads`), overriding `--p`.
    pub threads: Option<usize>,
    /// Virtual cluster size (`--nodes`), overriding `--p`.
    pub nodes: Option<usize>,
    /// Engine selection.
    pub engine: EngineChoice,
    /// k-mer length override (`--kmer`).
    pub kmer: Option<usize>,
    /// DP kernel band policy (`--band auto|full|<width>`).
    pub band: BandPolicy,
    /// DP kernel variant (`--kernel scalar|striped|auto`).
    pub kernel: DpKernel,
    /// Disable the ancestor fine-tuning step.
    pub no_fine_tune: bool,
}

impl ServeArgs {
    /// Effective per-job decomposition width for the selected backend.
    pub fn parallelism(&self) -> usize {
        match self.backend {
            Backend::Sequential => 1,
            Backend::Rayon => self.threads.unwrap_or(self.p),
            Backend::Distributed => self.nodes.unwrap_or(self.p),
        }
    }
}

/// Options of `sad submit`.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitArgs {
    /// FASTA files to submit, one job per file (job id = file stem).
    /// May be empty when only `--cancel`/`--shutdown` is requested.
    pub files: Vec<String>,
    /// Server host (`--host`, default `127.0.0.1`).
    pub host: String,
    /// Server port (`--port`, default 7401).
    pub port: u16,
    /// Directory to also write returned alignments into (`--out`);
    /// without it results are printed to stdout only as event summaries.
    pub out_dir: Option<String>,
    /// Scheduling priority for every submitted job (`--priority`).
    pub priority: i64,
    /// Send `CANCEL <id>` instead of/alongside submissions (`--cancel`).
    pub cancel: Option<String>,
    /// Send `SHUTDOWN` after everything else (`--shutdown`).
    pub shutdown: bool,
}

/// Parse failure with a usage hint.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.0)?;
        write!(f, "{USAGE}")
    }
}

/// Usage text.
pub const USAGE: &str = "\
usage: sad <command> [options]
  align <in.fasta> [--backend sequential|rayon|distributed] [--p N]
                   [--threads N] [--nodes N] [--no-fine-tune] [--kmer K]
                   [--engine muscle-fast|muscle|clustalw]
                   [--band auto|full|<width>]
                   [--kernel scalar|striped|auto] [--progress] [--trim]
                   [--vertical [--max-block N] [--seam-window W]]
                   (--vertical needs sequential or rayon; defaults to rayon)
  batch <dir|manifest> [--out DIR] [--jobs N]
                   [--backend sequential|rayon|distributed] [--p N]
                   [--threads N] [--nodes N] [--no-fine-tune] [--kmer K]
                   [--engine muscle-fast|muscle|clustalw]
                   [--band auto|full|<width>]
                   [--kernel scalar|striped|auto] [--progress] [--trim]
  reads [in.fasta] [--reads N] [--coverage C] [--read-len L] [--error-rate E]
                   [--sources N] [--source-len L] [--seed S]
                   [--max-bucket N|none] [--min-q Q] [--out FILE]
                   [--backend sequential|rayon|distributed] [--p N]
                   [--threads N] [--nodes N] [--no-fine-tune] [--kmer K]
                   [--engine muscle-fast|muscle|clustalw]
                   [--band auto|full|<width>]
                   [--kernel scalar|striped|auto] [--progress] [--trim]
                   (an explicit --max-bucket needs the rayon backend)
  trim <aligned.fa> [--out FILE] [--max-dropped N] [--branch-bound]
  generate [--n N] [--len L] [--relatedness R] [--seed S] [--reference PATH]
  scaling  [--n N] [--procs 1,4,8,16]
  eval     [--cases C] [--p N]
  rank <in.fasta> [--p N]
  serve    [--host H] [--port N] [--journal FILE] [--out DIR] [--workers N]
                   [--queue N] [--cache-mb N]
                   [--backend sequential|rayon|distributed]
                   [--p N] [--threads N] [--nodes N] [--no-fine-tune]
                   [--kmer K] [--engine muscle-fast|muscle|clustalw]
                   [--band auto|full|<width>]
                   [--kernel scalar|striped|auto]
  submit <files...> [--host H] [--port N] [--out DIR] [--priority N]
                   [--cancel ID] [--shutdown]
";

fn take_value<'a, I: Iterator<Item = &'a str>>(
    flag: &str,
    it: &mut I,
) -> Result<&'a str, ParseError> {
    it.next().ok_or_else(|| ParseError(format!("{flag} needs a value")))
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, ParseError> {
    v.parse().map_err(|_| ParseError(format!("{flag}: cannot parse {v:?}")))
}

fn parse_engine(v: &str) -> Result<EngineChoice, ParseError> {
    EngineChoice::from_label(v).ok_or_else(|| ParseError(format!("unknown engine {v:?}")))
}

fn parse_kernel(v: &str) -> Result<DpKernel, ParseError> {
    DpKernel::parse(v)
        .ok_or_else(|| ParseError(format!("--kernel takes scalar, striped or auto, not {v:?}")))
}

/// Parse a full argument vector (without the binary name).
pub fn parse<'a>(argv: impl IntoIterator<Item = &'a str>) -> Result<Args, ParseError> {
    let mut it = argv.into_iter();
    let cmd = it.next().ok_or_else(|| ParseError("missing command".into()))?;
    match cmd {
        "align" => {
            let mut input = None;
            let mut a = AlignArgs {
                input: String::new(),
                p: 4,
                threads: None,
                nodes: None,
                engine: EngineChoice::MuscleFast,
                backend: Backend::Distributed,
                no_fine_tune: false,
                kmer: None,
                band: BandPolicy::default(),
                kernel: DpKernel::default(),
                progress: false,
                vertical: false,
                max_block: None,
                seam_window: None,
                trim: false,
            };
            let mut backend_set = false;
            while let Some(tok) = it.next() {
                match tok {
                    "--p" => a.p = parse_num("--p", take_value("--p", &mut it)?)?,
                    "--vertical" => a.vertical = true,
                    "--max-block" => {
                        a.max_block =
                            Some(parse_num("--max-block", take_value("--max-block", &mut it)?)?)
                    }
                    "--seam-window" => {
                        a.seam_window =
                            Some(parse_num("--seam-window", take_value("--seam-window", &mut it)?)?)
                    }
                    "--kmer" => a.kmer = Some(parse_num("--kmer", take_value("--kmer", &mut it)?)?),
                    "--band" => {
                        let v = take_value("--band", &mut it)?;
                        a.band = BandPolicy::parse(v).ok_or_else(|| {
                            ParseError(format!(
                                "--band takes auto, full or a positive width, not {v:?}"
                            ))
                        })?;
                    }
                    "--kernel" => a.kernel = parse_kernel(take_value("--kernel", &mut it)?)?,
                    "--threads" => {
                        a.threads = Some(parse_num("--threads", take_value("--threads", &mut it)?)?)
                    }
                    "--nodes" => {
                        a.nodes = Some(parse_num("--nodes", take_value("--nodes", &mut it)?)?)
                    }
                    "--engine" => a.engine = parse_engine(take_value("--engine", &mut it)?)?,
                    "--backend" => {
                        backend_set = true;
                        a.backend = match take_value("--backend", &mut it)? {
                            "sequential" => Backend::Sequential,
                            "rayon" => Backend::Rayon,
                            // "cluster" kept as a pre-0.2 alias.
                            "distributed" | "cluster" => Backend::Distributed,
                            other => return Err(ParseError(format!("unknown backend {other:?}"))),
                        }
                    }
                    "--no-fine-tune" => a.no_fine_tune = true,
                    "--progress" => a.progress = true,
                    "--trim" => a.trim = true,
                    other if !other.starts_with("--") && input.is_none() => {
                        input = Some(other.to_string())
                    }
                    other => return Err(ParseError(format!("unexpected argument {other:?}"))),
                }
            }
            a.input = input.ok_or_else(|| ParseError("align needs an input file".into()))?;
            if a.p == 0 || a.threads == Some(0) || a.nodes == Some(0) {
                return Err(ParseError("--p/--threads/--nodes must be at least 1".into()));
            }
            if a.kmer == Some(0) {
                return Err(ParseError("--kmer must be at least 1".into()));
            }
            if a.threads.is_some() && a.backend != Backend::Rayon {
                return Err(ParseError("--threads only applies to --backend rayon".into()));
            }
            if a.nodes.is_some() && a.backend != Backend::Distributed {
                return Err(ParseError("--nodes only applies to --backend distributed".into()));
            }
            if !a.vertical && (a.max_block.is_some() || a.seam_window.is_some()) {
                return Err(ParseError("--max-block/--seam-window require --vertical".into()));
            }
            if a.max_block == Some(0) {
                return Err(ParseError("--max-block must be at least 1".into()));
            }
            if a.vertical {
                if a.backend == Backend::Distributed && backend_set {
                    return Err(ParseError(
                        "--vertical is not supported on the distributed backend \
                         (use --backend sequential or rayon)"
                            .into(),
                    ));
                }
                if !backend_set {
                    // The distributed default rejects vertical mode; run the
                    // blocks on the shared-memory pool instead.
                    a.backend = Backend::Rayon;
                }
            }
            Ok(Args { command: Command::Align(a) })
        }
        "batch" => {
            let mut input = None;
            let mut b = BatchArgs {
                input: String::new(),
                out_dir: ".".into(),
                jobs: None,
                p: 4,
                threads: None,
                nodes: None,
                engine: EngineChoice::MuscleFast,
                backend: Backend::Sequential,
                no_fine_tune: false,
                kmer: None,
                band: BandPolicy::default(),
                kernel: DpKernel::default(),
                progress: false,
                trim: false,
            };
            while let Some(tok) = it.next() {
                match tok {
                    "--out" => b.out_dir = take_value("--out", &mut it)?.to_string(),
                    "--jobs" => b.jobs = Some(parse_num("--jobs", take_value("--jobs", &mut it)?)?),
                    "--p" => b.p = parse_num("--p", take_value("--p", &mut it)?)?,
                    "--kmer" => b.kmer = Some(parse_num("--kmer", take_value("--kmer", &mut it)?)?),
                    "--band" => {
                        let v = take_value("--band", &mut it)?;
                        b.band = BandPolicy::parse(v).ok_or_else(|| {
                            ParseError(format!(
                                "--band takes auto, full or a positive width, not {v:?}"
                            ))
                        })?;
                    }
                    "--kernel" => b.kernel = parse_kernel(take_value("--kernel", &mut it)?)?,
                    "--threads" => {
                        b.threads = Some(parse_num("--threads", take_value("--threads", &mut it)?)?)
                    }
                    "--nodes" => {
                        b.nodes = Some(parse_num("--nodes", take_value("--nodes", &mut it)?)?)
                    }
                    "--engine" => b.engine = parse_engine(take_value("--engine", &mut it)?)?,
                    "--backend" => {
                        b.backend = match take_value("--backend", &mut it)? {
                            "sequential" => Backend::Sequential,
                            "rayon" => Backend::Rayon,
                            "distributed" | "cluster" => Backend::Distributed,
                            other => return Err(ParseError(format!("unknown backend {other:?}"))),
                        }
                    }
                    "--no-fine-tune" => b.no_fine_tune = true,
                    "--progress" => b.progress = true,
                    "--trim" => b.trim = true,
                    other if !other.starts_with("--") && input.is_none() => {
                        input = Some(other.to_string())
                    }
                    other => return Err(ParseError(format!("unexpected argument {other:?}"))),
                }
            }
            b.input =
                input.ok_or_else(|| ParseError("batch needs a directory or manifest".into()))?;
            if b.p == 0 || b.threads == Some(0) || b.nodes == Some(0) {
                return Err(ParseError("--p/--threads/--nodes must be at least 1".into()));
            }
            if b.jobs == Some(0) {
                return Err(ParseError("--jobs must be at least 1".into()));
            }
            if b.kmer == Some(0) {
                return Err(ParseError("--kmer must be at least 1".into()));
            }
            if b.threads.is_some() && b.backend != Backend::Rayon {
                return Err(ParseError("--threads only applies to --backend rayon".into()));
            }
            if b.nodes.is_some() && b.backend != Backend::Distributed {
                return Err(ParseError("--nodes only applies to --backend distributed".into()));
            }
            Ok(Args { command: Command::Batch(b) })
        }
        "reads" => {
            let mut input = None;
            let mut r = ReadsArgs {
                input: None,
                max_bucket: Some(512),
                reads: None,
                coverage: 8.0,
                read_len: 90,
                error_rate: 0.01,
                sources: 4,
                source_len: 400,
                seed: 0,
                min_q: None,
                out: None,
                p: 4,
                threads: None,
                nodes: None,
                engine: EngineChoice::MuscleFast,
                backend: Backend::Rayon,
                no_fine_tune: false,
                kmer: None,
                band: BandPolicy::default(),
                kernel: DpKernel::default(),
                progress: false,
                trim: false,
            };
            let mut cap_set = false;
            while let Some(tok) = it.next() {
                match tok {
                    "--max-bucket" => {
                        cap_set = true;
                        r.max_bucket = match take_value("--max-bucket", &mut it)? {
                            "none" => None,
                            v => Some(parse_num("--max-bucket", v)?),
                        }
                    }
                    "--reads" => {
                        r.reads = Some(parse_num("--reads", take_value("--reads", &mut it)?)?)
                    }
                    "--coverage" => {
                        r.coverage = parse_num("--coverage", take_value("--coverage", &mut it)?)?
                    }
                    "--read-len" => {
                        r.read_len = parse_num("--read-len", take_value("--read-len", &mut it)?)?
                    }
                    "--error-rate" => {
                        r.error_rate =
                            parse_num("--error-rate", take_value("--error-rate", &mut it)?)?
                    }
                    "--sources" => {
                        r.sources = parse_num("--sources", take_value("--sources", &mut it)?)?
                    }
                    "--source-len" => {
                        r.source_len =
                            parse_num("--source-len", take_value("--source-len", &mut it)?)?
                    }
                    "--seed" => r.seed = parse_num("--seed", take_value("--seed", &mut it)?)?,
                    "--min-q" => {
                        r.min_q = Some(parse_num("--min-q", take_value("--min-q", &mut it)?)?)
                    }
                    "--out" => r.out = Some(take_value("--out", &mut it)?.to_string()),
                    "--p" => r.p = parse_num("--p", take_value("--p", &mut it)?)?,
                    "--kmer" => r.kmer = Some(parse_num("--kmer", take_value("--kmer", &mut it)?)?),
                    "--band" => {
                        let v = take_value("--band", &mut it)?;
                        r.band = BandPolicy::parse(v).ok_or_else(|| {
                            ParseError(format!(
                                "--band takes auto, full or a positive width, not {v:?}"
                            ))
                        })?;
                    }
                    "--kernel" => r.kernel = parse_kernel(take_value("--kernel", &mut it)?)?,
                    "--threads" => {
                        r.threads = Some(parse_num("--threads", take_value("--threads", &mut it)?)?)
                    }
                    "--nodes" => {
                        r.nodes = Some(parse_num("--nodes", take_value("--nodes", &mut it)?)?)
                    }
                    "--engine" => r.engine = parse_engine(take_value("--engine", &mut it)?)?,
                    "--backend" => {
                        r.backend = match take_value("--backend", &mut it)? {
                            "sequential" => Backend::Sequential,
                            "rayon" => Backend::Rayon,
                            "distributed" | "cluster" => Backend::Distributed,
                            other => return Err(ParseError(format!("unknown backend {other:?}"))),
                        }
                    }
                    "--no-fine-tune" => r.no_fine_tune = true,
                    "--progress" => r.progress = true,
                    "--trim" => r.trim = true,
                    other if !other.starts_with("--") && input.is_none() => {
                        input = Some(other.to_string())
                    }
                    other => return Err(ParseError(format!("unexpected argument {other:?}"))),
                }
            }
            r.input = input;
            if r.p == 0 || r.threads == Some(0) || r.nodes == Some(0) {
                return Err(ParseError("--p/--threads/--nodes must be at least 1".into()));
            }
            if r.max_bucket == Some(0) {
                return Err(ParseError("--max-bucket must be at least 1 (or none)".into()));
            }
            if r.reads == Some(0) {
                return Err(ParseError("--reads must be at least 1".into()));
            }
            if r.kmer == Some(0) {
                return Err(ParseError("--kmer must be at least 1".into()));
            }
            if r.read_len == 0 || r.sources == 0 || r.source_len == 0 {
                return Err(ParseError(
                    "--read-len/--sources/--source-len must be at least 1".into(),
                ));
            }
            if !(0.0..1.0).contains(&r.error_rate) {
                return Err(ParseError("--error-rate must be in [0, 1)".into()));
            }
            if r.coverage <= 0.0 {
                return Err(ParseError("--coverage must be positive".into()));
            }
            if let Some(q) = r.min_q {
                if !(0.0..=1.0).contains(&q) {
                    return Err(ParseError("--min-q must be in [0, 1]".into()));
                }
                if r.input.is_some() {
                    return Err(ParseError(
                        "--min-q needs the simulated truth; it cannot gate a read file".into(),
                    ));
                }
            }
            if r.threads.is_some() && r.backend != Backend::Rayon {
                return Err(ParseError("--threads only applies to --backend rayon".into()));
            }
            if r.nodes.is_some() && r.backend != Backend::Distributed {
                return Err(ParseError("--nodes only applies to --backend distributed".into()));
            }
            // The hierarchical cap only runs on the rayon backend. An
            // explicit cap elsewhere is a contradiction worth a parse
            // error (mirroring --vertical); the mere *default* is not —
            // drop it so `--backend distributed` works out of the box.
            if r.backend == Backend::Distributed && r.max_bucket.is_some() {
                if cap_set {
                    return Err(ParseError(
                        "--max-bucket is not supported on the distributed backend \
                         (use --backend rayon or --max-bucket none)"
                            .into(),
                    ));
                }
                r.max_bucket = None;
            }
            Ok(Args { command: Command::Reads(r) })
        }
        "trim" => {
            let mut input = None;
            let mut t = TrimArgs {
                input: String::new(),
                out: None,
                max_dropped: None,
                branch_bound: false,
            };
            while let Some(tok) = it.next() {
                match tok {
                    "--out" => t.out = Some(take_value("--out", &mut it)?.to_string()),
                    "--max-dropped" => {
                        t.max_dropped =
                            Some(parse_num("--max-dropped", take_value("--max-dropped", &mut it)?)?)
                    }
                    "--branch-bound" => t.branch_bound = true,
                    other if !other.starts_with("--") && input.is_none() => {
                        input = Some(other.to_string())
                    }
                    other => return Err(ParseError(format!("unexpected argument {other:?}"))),
                }
            }
            t.input = input.ok_or_else(|| ParseError("trim needs an aligned FASTA file".into()))?;
            Ok(Args { command: Command::Trim(t) })
        }
        "generate" => {
            let mut g =
                GenerateArgs { n: 100, len: 300, relatedness: 800.0, seed: 0, reference: None };
            while let Some(tok) = it.next() {
                match tok {
                    "--n" => g.n = parse_num("--n", take_value("--n", &mut it)?)?,
                    "--len" => g.len = parse_num("--len", take_value("--len", &mut it)?)?,
                    "--relatedness" => {
                        g.relatedness =
                            parse_num("--relatedness", take_value("--relatedness", &mut it)?)?
                    }
                    "--seed" => g.seed = parse_num("--seed", take_value("--seed", &mut it)?)?,
                    "--reference" => {
                        g.reference = Some(take_value("--reference", &mut it)?.to_string())
                    }
                    other => return Err(ParseError(format!("unexpected argument {other:?}"))),
                }
            }
            Ok(Args { command: Command::Generate(g) })
        }
        "scaling" => {
            let mut s = ScalingArgs { n: 400, procs: vec![1, 4, 8, 12, 16] };
            while let Some(tok) = it.next() {
                match tok {
                    "--n" => s.n = parse_num("--n", take_value("--n", &mut it)?)?,
                    "--procs" => {
                        let v = take_value("--procs", &mut it)?;
                        s.procs = v
                            .split(',')
                            .map(|x| parse_num::<usize>("--procs", x))
                            .collect::<Result<_, _>>()?;
                        if s.procs.is_empty() || s.procs.contains(&0) {
                            return Err(ParseError("--procs must be positive".into()));
                        }
                    }
                    other => return Err(ParseError(format!("unexpected argument {other:?}"))),
                }
            }
            Ok(Args { command: Command::Scaling(s) })
        }
        "eval" => {
            let mut e = EvalArgs { cases: 8, p: 4 };
            while let Some(tok) = it.next() {
                match tok {
                    "--cases" => e.cases = parse_num("--cases", take_value("--cases", &mut it)?)?,
                    "--p" => e.p = parse_num("--p", take_value("--p", &mut it)?)?,
                    other => return Err(ParseError(format!("unexpected argument {other:?}"))),
                }
            }
            Ok(Args { command: Command::Eval(e) })
        }
        "rank" => {
            let mut input = None;
            let mut r = RankArgs { input: String::new(), p: 8 };
            while let Some(tok) = it.next() {
                match tok {
                    "--p" => r.p = parse_num("--p", take_value("--p", &mut it)?)?,
                    other if !other.starts_with("--") && input.is_none() => {
                        input = Some(other.to_string())
                    }
                    other => return Err(ParseError(format!("unexpected argument {other:?}"))),
                }
            }
            r.input = input.ok_or_else(|| ParseError("rank needs an input file".into()))?;
            Ok(Args { command: Command::Rank(r) })
        }
        "serve" => {
            let mut s = ServeArgs {
                host: "127.0.0.1".into(),
                port: 7401,
                journal: "sad-serve.journal.jsonl".into(),
                out_dir: ".".into(),
                workers: None,
                queue: 32,
                cache_mb: 64,
                backend: Backend::Sequential,
                p: 4,
                threads: None,
                nodes: None,
                engine: EngineChoice::MuscleFast,
                kmer: None,
                band: BandPolicy::default(),
                kernel: DpKernel::default(),
                no_fine_tune: false,
            };
            while let Some(tok) = it.next() {
                match tok {
                    "--host" => s.host = take_value("--host", &mut it)?.to_string(),
                    "--port" => s.port = parse_num("--port", take_value("--port", &mut it)?)?,
                    "--journal" => s.journal = take_value("--journal", &mut it)?.to_string(),
                    "--out" => s.out_dir = take_value("--out", &mut it)?.to_string(),
                    "--workers" => {
                        s.workers = Some(parse_num("--workers", take_value("--workers", &mut it)?)?)
                    }
                    "--queue" => s.queue = parse_num("--queue", take_value("--queue", &mut it)?)?,
                    "--cache-mb" => {
                        s.cache_mb = parse_num("--cache-mb", take_value("--cache-mb", &mut it)?)?
                    }
                    "--p" => s.p = parse_num("--p", take_value("--p", &mut it)?)?,
                    "--kmer" => s.kmer = Some(parse_num("--kmer", take_value("--kmer", &mut it)?)?),
                    "--band" => {
                        let v = take_value("--band", &mut it)?;
                        s.band = BandPolicy::parse(v).ok_or_else(|| {
                            ParseError(format!(
                                "--band takes auto, full or a positive width, not {v:?}"
                            ))
                        })?;
                    }
                    "--kernel" => s.kernel = parse_kernel(take_value("--kernel", &mut it)?)?,
                    "--threads" => {
                        s.threads = Some(parse_num("--threads", take_value("--threads", &mut it)?)?)
                    }
                    "--nodes" => {
                        s.nodes = Some(parse_num("--nodes", take_value("--nodes", &mut it)?)?)
                    }
                    "--engine" => s.engine = parse_engine(take_value("--engine", &mut it)?)?,
                    "--backend" => {
                        s.backend = match take_value("--backend", &mut it)? {
                            "sequential" => Backend::Sequential,
                            "rayon" => Backend::Rayon,
                            "distributed" | "cluster" => Backend::Distributed,
                            other => return Err(ParseError(format!("unknown backend {other:?}"))),
                        }
                    }
                    "--no-fine-tune" => s.no_fine_tune = true,
                    other => return Err(ParseError(format!("unexpected argument {other:?}"))),
                }
            }
            if s.p == 0 || s.threads == Some(0) || s.nodes == Some(0) {
                return Err(ParseError("--p/--threads/--nodes must be at least 1".into()));
            }
            if s.workers == Some(0) {
                return Err(ParseError("--workers must be at least 1".into()));
            }
            if s.queue == 0 {
                return Err(ParseError("--queue must be at least 1".into()));
            }
            if s.kmer == Some(0) {
                return Err(ParseError("--kmer must be at least 1".into()));
            }
            if s.threads.is_some() && s.backend != Backend::Rayon {
                return Err(ParseError("--threads only applies to --backend rayon".into()));
            }
            if s.nodes.is_some() && s.backend != Backend::Distributed {
                return Err(ParseError("--nodes only applies to --backend distributed".into()));
            }
            Ok(Args { command: Command::Serve(s) })
        }
        "submit" => {
            let mut s = SubmitArgs {
                files: Vec::new(),
                host: "127.0.0.1".into(),
                port: 7401,
                out_dir: None,
                priority: 0,
                cancel: None,
                shutdown: false,
            };
            while let Some(tok) = it.next() {
                match tok {
                    "--host" => s.host = take_value("--host", &mut it)?.to_string(),
                    "--port" => s.port = parse_num("--port", take_value("--port", &mut it)?)?,
                    "--out" => s.out_dir = Some(take_value("--out", &mut it)?.to_string()),
                    "--priority" => {
                        s.priority = parse_num("--priority", take_value("--priority", &mut it)?)?
                    }
                    "--cancel" => s.cancel = Some(take_value("--cancel", &mut it)?.to_string()),
                    "--shutdown" => s.shutdown = true,
                    other if !other.starts_with("--") => s.files.push(other.to_string()),
                    other => return Err(ParseError(format!("unexpected argument {other:?}"))),
                }
            }
            if s.files.is_empty() && s.cancel.is_none() && !s.shutdown {
                return Err(ParseError(
                    "submit needs at least one FASTA file, --cancel or --shutdown".into(),
                ));
            }
            Ok(Args { command: Command::Submit(s) })
        }
        "--help" | "-h" | "help" => Err(ParseError("".into())),
        other => Err(ParseError(format!("unknown command {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_defaults_and_flags() {
        let a = parse(["align", "in.fa"]).unwrap();
        match a.command {
            Command::Align(a) => {
                assert_eq!(a.input, "in.fa");
                assert_eq!(a.p, 4);
                assert_eq!(a.engine, EngineChoice::MuscleFast);
                assert_eq!(a.backend, Backend::Distributed);
                assert_eq!(a.parallelism(), 4);
                assert!(!a.no_fine_tune);
            }
            _ => panic!("wrong command"),
        }
        let a = parse([
            "align",
            "x.fa",
            "--p",
            "16",
            "--engine",
            "clustalw",
            "--backend",
            "rayon",
            "--no-fine-tune",
        ])
        .unwrap();
        match a.command {
            Command::Align(a) => {
                assert_eq!(a.p, 16);
                assert_eq!(a.engine, EngineChoice::Clustal);
                assert_eq!(a.backend, Backend::Rayon);
                assert!(a.no_fine_tune);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn align_requires_input() {
        assert!(parse(["align"]).is_err());
        assert!(parse(["align", "--p", "4"]).is_err());
    }

    #[test]
    fn backend_selection_and_width_flags() {
        let a = parse(["align", "x.fa", "--backend", "sequential"]).unwrap();
        match a.command {
            Command::Align(a) => {
                assert_eq!(a.backend, Backend::Sequential);
                assert_eq!(a.parallelism(), 1);
            }
            _ => panic!("wrong command"),
        }
        let a = parse(["align", "x.fa", "--backend", "rayon", "--threads", "6"]).unwrap();
        match a.command {
            Command::Align(a) => {
                assert_eq!(a.threads, Some(6));
                assert_eq!(a.parallelism(), 6);
            }
            _ => panic!("wrong command"),
        }
        let a = parse(["align", "x.fa", "--backend", "distributed", "--nodes", "8"]).unwrap();
        match a.command {
            Command::Align(a) => {
                assert_eq!(a.nodes, Some(8));
                assert_eq!(a.parallelism(), 8);
            }
            _ => panic!("wrong command"),
        }
        // "cluster" stays as a pre-0.2 alias for distributed.
        let a = parse(["align", "x.fa", "--backend", "cluster"]).unwrap();
        match a.command {
            Command::Align(a) => assert_eq!(a.backend, Backend::Distributed),
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn band_flag_parses_and_rejects_nonsense() {
        // Default is the adaptive kernel.
        match parse(["align", "x.fa"]).unwrap().command {
            Command::Align(a) => assert_eq!(a.band, BandPolicy::Auto),
            _ => panic!("wrong command"),
        }
        for (text, want) in
            [("auto", BandPolicy::Auto), ("full", BandPolicy::Full), ("64", BandPolicy::Fixed(64))]
        {
            match parse(["align", "x.fa", "--band", text]).unwrap().command {
                Command::Align(a) => assert_eq!(a.band, want, "{text}"),
                _ => panic!("wrong command"),
            }
        }
        assert!(parse(["align", "x.fa", "--band", "0"]).is_err());
        assert!(parse(["align", "x.fa", "--band", "wavefront"]).is_err());
        assert!(parse(["align", "x.fa", "--band"]).is_err());
    }

    #[test]
    fn kernel_flag_parses_and_rejects_nonsense() {
        // Default is the adaptive (exactness-audited) kernel.
        match parse(["align", "x.fa"]).unwrap().command {
            Command::Align(a) => assert_eq!(a.kernel, DpKernel::Auto),
            _ => panic!("wrong command"),
        }
        for (text, want) in
            [("scalar", DpKernel::Scalar), ("striped", DpKernel::Striped), ("auto", DpKernel::Auto)]
        {
            match parse(["align", "x.fa", "--kernel", text]).unwrap().command {
                Command::Align(a) => assert_eq!(a.kernel, want, "{text}"),
                _ => panic!("wrong command"),
            }
        }
        // Every DP-running subcommand takes the flag.
        match parse(["batch", "d/", "--kernel", "scalar"]).unwrap().command {
            Command::Batch(b) => assert_eq!(b.kernel, DpKernel::Scalar),
            _ => panic!("wrong command"),
        }
        match parse(["reads", "--kernel", "striped"]).unwrap().command {
            Command::Reads(r) => assert_eq!(r.kernel, DpKernel::Striped),
            _ => panic!("wrong command"),
        }
        match parse(["serve", "--kernel", "scalar"]).unwrap().command {
            Command::Serve(s) => assert_eq!(s.kernel, DpKernel::Scalar),
            _ => panic!("wrong command"),
        }
        assert!(parse(["align", "x.fa", "--kernel", "avx"]).is_err());
        assert!(parse(["align", "x.fa", "--kernel"]).is_err());
    }

    #[test]
    fn progress_flag_parses() {
        match parse(["align", "x.fa"]).unwrap().command {
            Command::Align(a) => assert!(!a.progress, "progress is opt-in"),
            _ => panic!("wrong command"),
        }
        match parse(["align", "x.fa", "--progress"]).unwrap().command {
            Command::Align(a) => assert!(a.progress),
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn vertical_flags_parse_and_validate() {
        match parse(["align", "x.fa"]).unwrap().command {
            Command::Align(a) => {
                assert!(!a.vertical, "vertical is opt-in");
                assert_eq!((a.max_block, a.seam_window), (None, None));
            }
            _ => panic!("wrong command"),
        }
        match parse(["align", "x.fa", "--vertical", "--max-block", "256", "--seam-window", "8"])
            .unwrap()
            .command
        {
            Command::Align(a) => {
                assert!(a.vertical);
                assert_eq!(a.max_block, Some(256));
                assert_eq!(a.seam_window, Some(8));
                assert_eq!(a.backend, Backend::Rayon, "vertical defaults to rayon");
            }
            _ => panic!("wrong command"),
        }
        match parse(["align", "x.fa", "--vertical", "--backend", "sequential"]).unwrap().command {
            Command::Align(a) => assert_eq!(a.backend, Backend::Sequential),
            _ => panic!("wrong command"),
        }
        // A zero half-window disables seam refinement but still parses.
        match parse(["align", "x.fa", "--vertical", "--seam-window", "0"]).unwrap().command {
            Command::Align(a) => assert_eq!(a.seam_window, Some(0)),
            _ => panic!("wrong command"),
        }
        assert!(parse(["align", "x.fa", "--max-block", "256"]).is_err(), "needs --vertical");
        assert!(parse(["align", "x.fa", "--seam-window", "4"]).is_err(), "needs --vertical");
        assert!(parse(["align", "x.fa", "--vertical", "--max-block", "0"]).is_err());
        assert!(
            parse(["align", "x.fa", "--vertical", "--backend", "distributed"]).is_err(),
            "vertical is rejected on the virtual cluster"
        );
    }

    #[test]
    fn kmer_override_parses_and_rejects_zero() {
        let a = parse(["align", "x.fa", "--kmer", "2"]).unwrap();
        match a.command {
            Command::Align(a) => assert_eq!(a.kmer, Some(2)),
            _ => panic!("wrong command"),
        }
        assert!(parse(["align", "x.fa", "--kmer", "0"]).is_err());
    }

    #[test]
    fn width_flags_must_match_backend() {
        assert!(parse(["align", "x.fa", "--threads", "4"]).is_err());
        assert!(parse(["align", "x.fa", "--backend", "rayon", "--nodes", "4"]).is_err());
        assert!(parse(["align", "x.fa", "--backend", "rayon", "--threads", "0"]).is_err());
        assert!(parse(["align", "x.fa", "--nodes", "0"]).is_err());
    }

    #[test]
    fn batch_defaults_and_flags() {
        let a = parse(["batch", "families/"]).unwrap();
        match a.command {
            Command::Batch(b) => {
                assert_eq!(b.input, "families/");
                assert_eq!(b.out_dir, ".");
                assert_eq!(b.jobs, None);
                assert_eq!(b.backend, Backend::Sequential, "batch defaults to sequential jobs");
                assert_eq!(b.parallelism(), 1);
                assert!(!b.progress);
            }
            _ => panic!("wrong command"),
        }
        let a = parse([
            "batch",
            "list.manifest",
            "--out",
            "aligned/",
            "--jobs",
            "8",
            "--backend",
            "rayon",
            "--threads",
            "2",
            "--engine",
            "clustalw",
            "--band",
            "32",
            "--progress",
        ])
        .unwrap();
        match a.command {
            Command::Batch(b) => {
                assert_eq!(b.input, "list.manifest");
                assert_eq!(b.out_dir, "aligned/");
                assert_eq!(b.jobs, Some(8));
                assert_eq!(b.backend, Backend::Rayon);
                assert_eq!(b.parallelism(), 2);
                assert_eq!(b.engine, EngineChoice::Clustal);
                assert_eq!(b.band, BandPolicy::Fixed(32));
                assert!(b.progress);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn batch_rejects_bad_flags() {
        assert!(parse(["batch"]).is_err(), "input is required");
        assert!(parse(["batch", "d/", "--jobs", "0"]).is_err());
        assert!(parse(["batch", "d/", "--threads", "4"]).is_err(), "threads need rayon");
        assert!(parse(["batch", "d/", "--backend", "rayon", "--nodes", "4"]).is_err());
        assert!(parse(["batch", "d/", "--p", "0"]).is_err());
        assert!(parse(["batch", "d/", "--kmer", "0"]).is_err());
        assert!(parse(["batch", "d/", "--band", "zig"]).is_err());
    }

    #[test]
    fn generate_parses_all_options() {
        let g = parse([
            "generate",
            "--n",
            "50",
            "--len",
            "120",
            "--relatedness",
            "650.5",
            "--seed",
            "9",
            "--reference",
            "ref.fa",
        ])
        .unwrap();
        match g.command {
            Command::Generate(g) => {
                assert_eq!(g.n, 50);
                assert_eq!(g.len, 120);
                assert_eq!(g.relatedness, 650.5);
                assert_eq!(g.seed, 9);
                assert_eq!(g.reference.as_deref(), Some("ref.fa"));
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn scaling_proc_list() {
        let s = parse(["scaling", "--n", "128", "--procs", "1,2,4"]).unwrap();
        match s.command {
            Command::Scaling(s) => {
                assert_eq!(s.n, 128);
                assert_eq!(s.procs, vec![1, 2, 4]);
            }
            _ => panic!("wrong command"),
        }
        assert!(parse(["scaling", "--procs", "1,0"]).is_err());
        assert!(parse(["scaling", "--procs", "a,b"]).is_err());
    }

    #[test]
    fn errors_carry_usage() {
        let err = parse(["bogus"]).unwrap_err();
        assert!(format!("{err}").contains("usage: sad"));
    }

    #[test]
    fn zero_p_rejected() {
        assert!(parse(["align", "x.fa", "--p", "0"]).is_err());
    }

    #[test]
    fn serve_defaults_and_flags() {
        match parse(["serve"]).unwrap().command {
            Command::Serve(s) => {
                assert_eq!(s.host, "127.0.0.1");
                assert_eq!(s.port, 7401);
                assert_eq!(s.journal, "sad-serve.journal.jsonl");
                assert_eq!(s.out_dir, ".");
                assert_eq!(s.workers, None);
                assert_eq!(s.queue, 32);
                assert_eq!(s.backend, Backend::Sequential);
                assert_eq!(s.parallelism(), 1);
            }
            _ => panic!("wrong command"),
        }
        let parsed = parse([
            "serve",
            "--port",
            "0",
            "--journal",
            "j.jsonl",
            "--out",
            "outdir/",
            "--workers",
            "4",
            "--queue",
            "8",
            "--backend",
            "rayon",
            "--threads",
            "2",
        ])
        .unwrap();
        match parsed.command {
            Command::Serve(s) => {
                assert_eq!(s.port, 0);
                assert_eq!(s.journal, "j.jsonl");
                assert_eq!(s.out_dir, "outdir/");
                assert_eq!(s.workers, Some(4));
                assert_eq!(s.queue, 8);
                assert_eq!(s.backend, Backend::Rayon);
                assert_eq!(s.parallelism(), 2);
            }
            _ => panic!("wrong command"),
        }
        assert!(parse(["serve", "--workers", "0"]).is_err());
        assert!(parse(["serve", "--queue", "0"]).is_err());
        assert!(parse(["serve", "--threads", "4"]).is_err(), "threads need rayon");
        assert!(parse(["serve", "extra.fa"]).is_err(), "serve takes no positional args");
    }

    #[test]
    fn submit_files_and_control_flags() {
        match parse(["submit", "a.fa", "b.fa", "--priority", "2", "--out", "res/"]).unwrap().command
        {
            Command::Submit(s) => {
                assert_eq!(s.files, vec!["a.fa", "b.fa"]);
                assert_eq!(s.priority, 2);
                assert_eq!(s.out_dir.as_deref(), Some("res/"));
                assert_eq!(s.port, 7401);
                assert!(!s.shutdown);
            }
            _ => panic!("wrong command"),
        }
        match parse(["submit", "--cancel", "fam_a"]).unwrap().command {
            Command::Submit(s) => {
                assert!(s.files.is_empty());
                assert_eq!(s.cancel.as_deref(), Some("fam_a"));
            }
            _ => panic!("wrong command"),
        }
        match parse(["submit", "--shutdown", "--port", "9000"]).unwrap().command {
            Command::Submit(s) => {
                assert!(s.shutdown);
                assert_eq!(s.port, 9000);
            }
            _ => panic!("wrong command"),
        }
        assert!(parse(["submit"]).is_err(), "needs files, --cancel or --shutdown");
    }

    #[test]
    fn reads_defaults_and_flags() {
        match parse(["reads"]).unwrap().command {
            Command::Reads(r) => {
                assert_eq!(r.input, None, "no file means simulated input");
                assert_eq!(r.max_bucket, Some(512));
                assert_eq!(r.backend, Backend::Rayon, "reads defaults to rayon");
                assert_eq!(r.coverage, 8.0);
                assert_eq!(r.read_len, 90);
                assert_eq!(r.parallelism(), 4);
                assert!(!r.progress);
            }
            _ => panic!("wrong command"),
        }
        let parsed = parse([
            "reads",
            "reads.fa",
            "--max-bucket",
            "64",
            "--backend",
            "rayon",
            "--threads",
            "8",
            "--kmer",
            "3",
            "--band",
            "16",
            "--out",
            "aligned.fa",
        ])
        .unwrap();
        match parsed.command {
            Command::Reads(r) => {
                assert_eq!(r.input.as_deref(), Some("reads.fa"));
                assert_eq!(r.max_bucket, Some(64));
                assert_eq!(r.parallelism(), 8);
                assert_eq!(r.kmer, Some(3));
                assert_eq!(r.band, BandPolicy::Fixed(16));
                assert_eq!(r.out.as_deref(), Some("aligned.fa"));
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn reads_simulation_and_gate_flags() {
        let parsed = parse([
            "reads",
            "--reads",
            "500",
            "--coverage",
            "12",
            "--error-rate",
            "0.05",
            "--sources",
            "2",
            "--source-len",
            "300",
            "--seed",
            "7",
            "--min-q",
            "0.8",
            "--max-bucket",
            "none",
        ])
        .unwrap();
        match parsed.command {
            Command::Reads(r) => {
                assert_eq!(r.reads, Some(500));
                assert_eq!(r.coverage, 12.0);
                assert_eq!(r.error_rate, 0.05);
                assert_eq!(r.sources, 2);
                assert_eq!(r.source_len, 300);
                assert_eq!(r.seed, 7);
                assert_eq!(r.min_q, Some(0.8));
                assert_eq!(r.max_bucket, None);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn reads_rejects_bad_flags() {
        assert!(parse(["reads", "--max-bucket", "0"]).is_err());
        assert!(parse(["reads", "--reads", "0"]).is_err());
        assert!(parse(["reads", "--error-rate", "1.5"]).is_err());
        assert!(parse(["reads", "--coverage", "0"]).is_err());
        assert!(parse(["reads", "--read-len", "0"]).is_err());
        assert!(parse(["reads", "--min-q", "2"]).is_err());
        assert!(parse(["reads", "in.fa", "--min-q", "0.9"]).is_err(), "gate needs the truth");
        assert!(parse(["reads", "--threads", "4", "--backend", "sequential"]).is_err());
        assert!(parse(["reads", "--nodes", "4"]).is_err(), "nodes need distributed");
    }

    #[test]
    fn reads_default_cap_yields_to_distributed_but_explicit_cap_errors() {
        // The default cap silently steps aside: distributed runs work out
        // of the box, no `--max-bucket none` incantation required.
        match parse(["reads", "--backend", "distributed"]).unwrap().command {
            Command::Reads(r) => {
                assert_eq!(r.backend, Backend::Distributed);
                assert_eq!(r.max_bucket, None, "default cap dropped for distributed");
            }
            _ => panic!("wrong command"),
        }
        // An explicit cap on distributed is a contradiction: parse error,
        // like --vertical on distributed.
        let err = parse(["reads", "--max-bucket", "64", "--backend", "distributed"]).unwrap_err();
        assert!(err.0.contains("not supported on the distributed backend"), "{}", err.0);
        // Flag order must not matter.
        assert!(parse(["reads", "--backend", "distributed", "--max-bucket", "64"]).is_err());
        // An explicit `none` on distributed is fine — it asks for exactly
        // what the backend does anyway.
        match parse(["reads", "--backend", "distributed", "--max-bucket", "none"]).unwrap().command
        {
            Command::Reads(r) => assert_eq!(r.max_bucket, None),
            _ => panic!("wrong command"),
        }
        // Rayon keeps the default and explicit caps untouched.
        match parse(["reads"]).unwrap().command {
            Command::Reads(r) => assert_eq!(r.max_bucket, Some(512)),
            _ => panic!("wrong command"),
        }
        match parse(["reads", "--max-bucket", "64"]).unwrap().command {
            Command::Reads(r) => assert_eq!(r.max_bucket, Some(64)),
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn trim_defaults_and_flags() {
        match parse(["trim", "aligned.fa"]).unwrap().command {
            Command::Trim(t) => {
                assert_eq!(t.input, "aligned.fa");
                assert_eq!(t.out, None);
                assert_eq!(t.max_dropped, None);
                assert!(!t.branch_bound);
            }
            _ => panic!("wrong command"),
        }
        match parse(["trim", "a.fa", "--out", "b.fa", "--max-dropped", "3", "--branch-bound"])
            .unwrap()
            .command
        {
            Command::Trim(t) => {
                assert_eq!(t.out.as_deref(), Some("b.fa"));
                assert_eq!(t.max_dropped, Some(3));
                assert!(t.branch_bound);
            }
            _ => panic!("wrong command"),
        }
        assert!(parse(["trim"]).is_err(), "input is required");
        assert!(parse(["trim", "a.fa", "--max-dropped"]).is_err(), "flag needs a value");
        assert!(parse(["trim", "a.fa", "--bogus"]).is_err());
    }

    #[test]
    fn trim_flag_parses_on_every_aligning_command() {
        match parse(["align", "x.fa"]).unwrap().command {
            Command::Align(a) => assert!(!a.trim, "trim is opt-in"),
            _ => panic!("wrong command"),
        }
        match parse(["align", "x.fa", "--trim"]).unwrap().command {
            Command::Align(a) => assert!(a.trim),
            _ => panic!("wrong command"),
        }
        match parse(["batch", "d/", "--trim"]).unwrap().command {
            Command::Batch(b) => assert!(b.trim),
            _ => panic!("wrong command"),
        }
        match parse(["reads", "--trim"]).unwrap().command {
            Command::Reads(r) => assert!(r.trim),
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn serve_cache_budget_flag() {
        match parse(["serve"]).unwrap().command {
            Command::Serve(s) => assert_eq!(s.cache_mb, 64),
            _ => panic!("wrong command"),
        }
        match parse(["serve", "--cache-mb", "8"]).unwrap().command {
            Command::Serve(s) => assert_eq!(s.cache_mb, 8),
            _ => panic!("wrong command"),
        }
        assert!(parse(["serve", "--cache-mb", "x"]).is_err());
    }

    #[test]
    fn rank_and_eval() {
        assert!(matches!(
            parse(["rank", "in.fa", "--p", "3"]).unwrap().command,
            Command::Rank(RankArgs { p: 3, .. })
        ));
        assert!(matches!(
            parse(["eval", "--cases", "4", "--p", "2"]).unwrap().command,
            Command::Eval(EvalArgs { cases: 4, p: 2 })
        ));
    }
}
