//! Conserved-anchor detection by colinear k-mer chaining.
//!
//! The vertical (length-wise) decomposition of `sad_core::decomp` needs
//! columns that are *certainly* homologous across every sequence before any
//! alignment exists: positions where all rows share an exact k-mer that is
//! unique within each row. Chaining those occurrences colinearly — strictly
//! increasing in every row, with a minimum spacing — yields cut points at
//! which the sequence set can be sliced into independently alignable blocks.
//!
//! The same scan seeds profile–profile merges: [`anchored_profile_ops`]
//! pins conserved consensus columns of two alignments as [`ColOp::Both`]
//! runs and runs the affine-gap DP only on the stretches in between.

use crate::dp::{BandPolicy, DpArena, DpKernel};
use crate::papro::{align_profiles_with_kernel, ColOp};
use crate::profile::Profile;
use bioseq::alphabet::GAP_CODE;
use bioseq::{GapPenalties, Msa, SubstMatrix, Work};
use std::collections::HashMap;

/// Parameters of the anchor scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnchorSpec {
    /// Exact-match k-mer length; anchors span exactly `k` residues.
    pub k: usize,
    /// Minimum distance (in residues, per sequence) between the start of
    /// one chained anchor and the start of the next. Clamped up to `k` so
    /// anchors never overlap.
    pub min_spacing: usize,
    /// Minimum positional-agreement confidence in `[0, 1]`; candidates
    /// whose relative positions disagree more than `1 - min_confidence`
    /// across sequences are rejected.
    pub min_confidence: f64,
}

impl Default for AnchorSpec {
    fn default() -> Self {
        AnchorSpec { k: 8, min_spacing: 32, min_confidence: 0.5 }
    }
}

/// One conserved anchor: the k-mer's start position in every row, plus a
/// confidence score.
#[derive(Debug, Clone, PartialEq)]
pub struct Anchor {
    /// Start position of the shared k-mer in each input row (same order as
    /// the rows passed to [`scan_anchors`]).
    pub positions: Vec<usize>,
    /// `1 - (max - min)` spread of the anchor's relative position across
    /// rows; `1.0` means the k-mer sits at the same fractional offset in
    /// every sequence.
    pub confidence: f64,
}

/// Find conserved anchors across `rows` (raw residue codes, no gaps).
///
/// An anchor is a k-mer that occurs **exactly once in every row**, never at
/// position 0 (so the block before it is non-empty), with relative-position
/// spread within `spec.min_confidence`. Candidates are chained greedily and
/// colinearly: each kept anchor starts at least `max(k, min_spacing)`
/// residues after the previous one *in every row*, so anchors never overlap
/// and cut points are strictly increasing everywhere.
///
/// Returns anchors ordered by position in `rows[0]`; `positions` has one
/// entry per input row. Scanning cost is charged to `work.kmer_ops`.
pub fn scan_anchors(rows: &[&[u8]], spec: &AnchorSpec, work: &mut Work) -> Vec<Anchor> {
    let k = spec.k.max(1);
    if rows.is_empty() || rows.iter().any(|r| r.len() < k + 1) {
        return Vec::new();
    }
    // Occurrence maps for rows 1.. : k-mer -> (count, first position).
    let mut maps: Vec<HashMap<&[u8], (u32, usize)>> = Vec::with_capacity(rows.len() - 1);
    for row in &rows[1..] {
        let mut map: HashMap<&[u8], (u32, usize)> = HashMap::new();
        for start in 0..=row.len() - k {
            let entry = map.entry(&row[start..start + k]).or_insert((0, start));
            entry.0 += 1;
        }
        work.kmer_ops += (row.len() - k + 1) as u64;
        maps.push(map);
    }
    // Multiplicity of every k-mer in row 0.
    let row0 = rows[0];
    let mut counts0: HashMap<&[u8], u32> = HashMap::new();
    for start in 0..=row0.len() - k {
        *counts0.entry(&row0[start..start + k]).or_insert(0) += 1;
    }
    work.kmer_ops += (row0.len() - k + 1) as u64;

    // Candidates in row-0 order, then a greedy colinear chain.
    let spacing = spec.min_spacing.max(k);
    let mut anchors: Vec<Anchor> = Vec::new();
    'candidates: for start in 1..=row0.len() - k {
        let word = &row0[start..start + k];
        if counts0[word] != 1 {
            continue;
        }
        let mut positions = Vec::with_capacity(rows.len());
        positions.push(start);
        for map in &maps {
            match map.get(word) {
                Some(&(1, pos)) if pos >= 1 => positions.push(pos),
                _ => continue 'candidates,
            }
        }
        // Colinearity + spacing against the previously kept anchor.
        if let Some(last) = anchors.last() {
            let ok =
                positions.iter().zip(&last.positions).all(|(&pos, &prev)| pos >= prev + spacing);
            if !ok {
                continue;
            }
        }
        // Positional agreement across rows, on a 0..1 relative scale.
        let rel: Vec<f64> = positions
            .iter()
            .zip(rows)
            .map(|(&pos, row)| pos as f64 / (row.len() - k) as f64)
            .collect();
        let spread = rel.iter().cloned().fold(f64::MIN, f64::max)
            - rel.iter().cloned().fold(f64::MAX, f64::min);
        let confidence = (1.0 - spread).clamp(0.0, 1.0);
        if confidence < spec.min_confidence {
            continue;
        }
        anchors.push(Anchor { positions, confidence });
    }
    anchors
}

/// Per-column majority consensus of an alignment: the most frequent
/// non-gap code in each column (smallest code on ties), [`GAP_CODE`] for
/// all-gap columns. Cost is charged to `work.col_ops`.
pub fn column_consensus(msa: &Msa, work: &mut Work) -> Vec<u8> {
    let cols = msa.num_cols();
    let mut out = Vec::with_capacity(cols);
    let mut counts = [0u32; 22];
    for c in 0..cols {
        counts.fill(0);
        for row in msa.rows() {
            let code = row[c];
            if code != GAP_CODE {
                counts[code as usize] += 1;
            }
        }
        let (best, n) =
            counts.iter().enumerate().max_by_key(|&(i, &n)| (n, usize::MAX - i)).expect("counts");
        out.push(if *n == 0 { GAP_CODE } else { best as u8 });
    }
    work.col_ops += (cols * msa.num_rows()) as u64;
    out
}

/// Column slice `lo..hi` of an alignment, keeping only rows with at least
/// one residue in the window (gappy fragment stacks routinely have rows
/// that are entirely gaps inside a segment, which a well-formed [`Msa`]
/// cannot carry — and an absent fragment shouldn't weight the segment's
/// profile anyway). At least one row always survives because no parent
/// column is all-gap.
fn slice_columns(msa: &Msa, lo: usize, hi: usize) -> Msa {
    let mut ids = Vec::new();
    let mut rows = Vec::new();
    for (id, row) in msa.ids().iter().zip(msa.rows()) {
        if row[lo..hi].iter().any(|&c| c != GAP_CODE) {
            ids.push(id.clone());
            rows.push(row[lo..hi].to_vec());
        }
    }
    Msa::from_rows(ids, rows)
}

/// Anchor-seeded profile merge script for two alignments.
///
/// Scans the column consensus of `a` against the column consensus of `b`
/// for conserved anchors, pins each anchor's `k` columns as
/// [`ColOp::Both`], and aligns the inter-anchor stretches independently
/// with the usual affine-gap profile DP. With zero anchors this reduces
/// exactly to one whole-width profile alignment.
///
/// The returned script consumes every column of `a` and of `b` exactly
/// once, so it can be fed straight to [`crate::papro::merge_msas`].
#[allow(clippy::too_many_arguments)]
pub fn anchored_profile_ops(
    a: &Msa,
    b: &Msa,
    spec: &AnchorSpec,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    band: BandPolicy,
    kernel: DpKernel,
    arena: &mut DpArena,
    work: &mut Work,
) -> Vec<ColOp> {
    let ca = column_consensus(a, work);
    let cb = column_consensus(b, work);
    let anchors = scan_anchors(&[&ca, &cb], spec, work);
    let k = spec.k.max(1);

    let mut ops: Vec<ColOp> = Vec::with_capacity(ca.len().max(cb.len()));
    let mut segment = |ops: &mut Vec<ColOp>,
                       a_lo: usize,
                       a_hi: usize,
                       b_lo: usize,
                       b_hi: usize,
                       work: &mut Work| {
        match (a_hi > a_lo, b_hi > b_lo) {
            (false, false) => {}
            (true, false) => ops.extend(std::iter::repeat_n(ColOp::FromA, a_hi - a_lo)),
            (false, true) => ops.extend(std::iter::repeat_n(ColOp::FromB, b_hi - b_lo)),
            (true, true) => {
                let pa = Profile::from_msa(&slice_columns(a, a_lo, a_hi), work);
                let pb = Profile::from_msa(&slice_columns(b, b_lo, b_hi), work);
                let aln = align_profiles_with_kernel(&pa, &pb, matrix, gaps, band, kernel, arena);
                *work += aln.work;
                ops.extend(aln.ops);
            }
        }
    };

    let (mut ia, mut ib) = (0usize, 0usize);
    for anchor in &anchors {
        let (pa, pb) = (anchor.positions[0], anchor.positions[1]);
        segment(&mut ops, ia, pa, ib, pb, work);
        ops.extend(std::iter::repeat_n(ColOp::Both, k));
        ia = pa + k;
        ib = pb + k;
    }
    segment(&mut ops, ia, a.num_cols(), ib, b.num_cols(), work);
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::papro::merge_msas;

    fn seq(codes: &[u8]) -> Vec<u8> {
        codes.to_vec()
    }

    #[test]
    fn identical_rows_yield_spaced_colinear_anchors() {
        // 0..20 repeated gives unique k-mers everywhere except the period.
        let row: Vec<u8> = (0..200u32).map(|i| ((i * 7 + i / 20) % 20) as u8).collect();
        let rows: Vec<&[u8]> = vec![&row, &row, &row];
        let spec = AnchorSpec { k: 6, min_spacing: 20, min_confidence: 0.5 };
        let mut work = Work::ZERO;
        let anchors = scan_anchors(&rows, &spec, &mut work);
        assert!(!anchors.is_empty(), "identical rows must anchor");
        assert!(work.kmer_ops > 0);
        let mut prev: Option<&Anchor> = None;
        for a in &anchors {
            assert_eq!(a.positions.len(), 3);
            assert!(a.positions.iter().all(|&p| a.positions[0] == p));
            assert!(a.positions[0] >= 1);
            assert!((0.0..=1.0).contains(&a.confidence));
            assert!(a.confidence >= spec.min_confidence);
            if let Some(p) = prev {
                assert!(a.positions[0] >= p.positions[0] + spec.min_spacing.max(spec.k));
            }
            prev = Some(a);
        }
    }

    #[test]
    fn disjoint_alphabets_yield_no_anchors() {
        let a: Vec<u8> = (0..80).map(|i| (i % 5) as u8).collect();
        let b: Vec<u8> = (0..80).map(|i| (5 + i % 5) as u8).collect();
        let mut work = Work::ZERO;
        let anchors = scan_anchors(&[&a, &b], &AnchorSpec::default(), &mut work);
        assert!(anchors.is_empty());
    }

    #[test]
    fn short_rows_degrade_to_no_anchors() {
        let a = seq(&[1, 2, 3]);
        let mut work = Work::ZERO;
        let anchors =
            scan_anchors(&[&a, &a], &AnchorSpec { k: 8, ..Default::default() }, &mut work);
        assert!(anchors.is_empty());
    }

    #[test]
    fn consensus_picks_majority_and_marks_all_gap() {
        let msa = Msa::from_rows(
            vec!["a".into(), "b".into(), "c".into()],
            vec![vec![1, GAP_CODE, 4], vec![1, GAP_CODE, 5], vec![2, GAP_CODE, 5]],
        );
        let mut work = Work::ZERO;
        assert_eq!(column_consensus(&msa, &mut work), vec![1, GAP_CODE, 5]);
        assert!(work.col_ops > 0);
    }

    #[test]
    fn anchored_ops_consume_both_alignments_exactly() {
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties::default();
        let core: Vec<u8> = (0..120u32).map(|i| ((i * 11 + i / 13) % 20) as u8).collect();
        let mut r1 = seq(&[3, 3, 3]);
        r1.extend_from_slice(&core);
        let mut r2 = core.clone();
        r2.extend_from_slice(&[4, 4]);
        let a = Msa::from_rows(vec!["a".into()], vec![r1]);
        let b = Msa::from_rows(vec!["b".into()], vec![r2]);
        let spec = AnchorSpec { k: 6, min_spacing: 16, min_confidence: 0.2 };
        let mut work = Work::ZERO;
        let ops = anchored_profile_ops(
            &a,
            &b,
            &spec,
            &matrix,
            gaps,
            BandPolicy::Full,
            DpKernel::Auto,
            &mut DpArena::new(),
            &mut work,
        );
        assert!(ops.iter().filter(|&&op| op == ColOp::Both).count() >= spec.k);
        // merge_msas panics unless the script consumes a and b exactly.
        let merged = merge_msas(&a, &b, &ops, &mut work);
        assert_eq!(merged.num_rows(), 2);
    }
}
