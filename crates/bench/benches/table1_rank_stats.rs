//! Table 1 — statistical comparison of globalized vs centralized k-mer
//! rank for 5000 sequences.
//!
//! Paper's values (for its unspecified rank constants):
//! (max,min) central (1.44827, 0.0); avg central 0.722962;
//! (max,min) globalized (1.46207, 0.0); avg globalized 1.11302;
//! variance w.r.t. centralized 0.33190; stddev 0.576377.
//! What must reproduce: globalized average above centralized, similar
//! max/min ranges, and a modest but non-zero stddev of the difference.

use criterion::{criterion_group, criterion_main, Criterion};
use sad_bench::{banner, rose_workload, scaled, table};
use sad_core::{rank_experiment, SadConfig};

fn experiment() {
    let n = scaled(5000);
    banner("Table 1", &format!("rank statistics, N={n}"));
    let seqs = rose_workload(n, 0x7AB1E1);
    let cfg = SadConfig::default();
    let exp = rank_experiment(&seqs, 16, &cfg);
    let sc = bioseq::stats::Summary::of(&exp.centralized).unwrap();
    let sg = bioseq::stats::Summary::of(&exp.globalized).unwrap();
    let (var, sd) = bioseq::stats::variance_wrt(&exp.globalized, &exp.centralized).unwrap();

    table(
        &["statistic", "ours", "paper"],
        &[
            vec![
                "(max,min) central".into(),
                format!("({:.5},{:.5})", sc.max, sc.min),
                "(1.44827,0.0)".into(),
            ],
            vec!["avg central".into(), format!("{:.6}", sc.mean), "0.722962".into()],
            vec![
                "(max,min) globalized".into(),
                format!("({:.5},{:.5})", sg.max, sg.min),
                "(1.46207,0.0)".into(),
            ],
            vec!["avg globalized".into(), format!("{:.6}", sg.mean), "1.11302".into()],
            vec!["variance w.r.t. central".into(), format!("{:.5}", var), "0.33190".into()],
            vec!["stddev w.r.t. central".into(), format!("{:.6}", sd), "0.576377".into()],
        ],
    );
    println!(
        "\npaper check — avg(globalized) > avg(centralized): {}",
        if sg.mean > sc.mean { "REPRODUCED" } else { "NOT reproduced" }
    );
    println!(
        "paper check — ranges overlap (|max_g - max_c| small vs spread): {}",
        if (sg.max - sc.max).abs() < 4.0 * sc.stddev.max(1e-9) {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}

fn bench(c: &mut Criterion) {
    experiment();
    let seqs = rose_workload(128, 0x7AB1E2);
    let cfg = SadConfig::default();
    c.bench_function("table1/rank_experiment_n128_p16", |b| {
        b.iter(|| rank_experiment(std::hint::black_box(&seqs), 16, &cfg))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
