//! The sequential baseline: the configured engine run on the whole set
//! (what "MUSCLE on a single cluster node" is to the paper's Fig. 6).

use crate::config::SadConfig;
use crate::error::SadError;
use crate::pipeline::{Phase, PipelineCtx};
use crate::report::{BackendExtras, RunReport};
use align::DpArena;
use bioseq::{Msa, Sequence};
use std::time::Instant;

/// The whole-set engine run: a one-phase pipeline through the shared
/// recorder. Input validation happens in [`crate::Aligner::run`].
///
/// `arena` is the engine's DP scratch: single runs pass a fresh one, the
/// batch runner threads each worker's long-lived arena through so
/// consecutive jobs reuse its buffers (results are identical either way).
pub(crate) fn sequential_pipeline(
    seqs: &[Sequence],
    cfg: &SadConfig,
    ctx: &PipelineCtx,
    arena: &mut DpArena,
) -> Result<RunReport, SadError> {
    debug_assert!(!seqs.is_empty(), "Aligner::run rejects empty input");
    let msa = ctx.phase(Phase::LocalAlign, || {
        let t0 = Instant::now();
        let (msa, work) =
            cfg.engine.build_with(cfg.band_policy, cfg.dp_kernel).align_with_work_in(seqs, arena);
        ctx.bucket_aligned(0, msa.num_rows(), t0.elapsed().as_secs_f64());
        (msa, work)
    })?;
    let (phases, work) = ctx.drain();
    Ok(RunReport {
        msa,
        work,
        phases,
        bucket_sizes: vec![seqs.len()],
        ranks: 1,
        samples_per_rank: cfg.samples_for(1),
        decomposition_depth: 0,
        kernel: cfg.dp_kernel.label(),
        vertical: None,
        trim: None,
        extras: BackendExtras::Sequential,
    })
}

/// Virtual seconds the sequential baseline would take on the given cost
/// model (the denominator of every speedup in the paper).
///
/// Accepts anything the engine accepts (including a single sequence) —
/// this is the raw baseline, not the validated [`crate::Aligner`] surface.
pub fn sequential_seconds(
    seqs: &[Sequence],
    cfg: &SadConfig,
    cost: &vcluster::CostModel,
) -> (Msa, f64) {
    let ctx = PipelineCtx::new("sequential", 1, None, None, None);
    let report = sequential_pipeline(seqs, cfg, &ctx, &mut DpArena::new())
        .expect("no cancellation source attached to the baseline run");
    let secs = cost.work_seconds(&report.work);
    (report.msa, secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aligner, Phase};
    use rosegen::{Family, FamilyConfig};

    fn family(n: usize, len: usize, seed: u64) -> Vec<Sequence> {
        Family::generate(&FamilyConfig { n_seqs: n, avg_len: len, seed, ..Default::default() }).seqs
    }

    #[test]
    fn baseline_aligns_and_costs_time() {
        let seqs = family(10, 50, 1);
        let cfg = SadConfig::default();
        let (msa, secs) = sequential_seconds(&seqs, &cfg, &vcluster::CostModel::beowulf_2008());
        msa.validate().unwrap();
        assert_eq!(msa.num_rows(), 10);
        assert!(secs > 0.0);
    }

    #[test]
    fn matches_engine_directly() {
        let seqs = family(6, 40, 2);
        let cfg = SadConfig::default();
        let report = Aligner::new(cfg.clone()).run(&seqs).unwrap();
        assert_eq!(report.msa, cfg.engine.build_with(cfg.band_policy, cfg.dp_kernel).align(&seqs));
        assert_eq!(report.bucket_sizes, vec![6]);
        assert_eq!(report.ranks, 1);
        assert_eq!(report.work, report.phases.iter().map(|p| p.work).sum());
    }

    #[test]
    fn baseline_accepts_a_single_sequence() {
        // The raw baseline bypasses Aligner's 2-sequence floor: a single
        // sequence yields its trivial one-row alignment, as it always has.
        let seqs = family(1, 40, 4);
        let (msa, secs) =
            sequential_seconds(&seqs, &SadConfig::default(), &vcluster::CostModel::beowulf_2008());
        assert_eq!(msa.num_rows(), 1);
        assert!(secs >= 0.0);
    }

    #[test]
    fn one_typed_phase_with_wall_time() {
        let seqs = family(6, 40, 3);
        let report = Aligner::new(SadConfig::default()).run(&seqs).unwrap();
        assert_eq!(report.phase_sequence(), vec![Phase::LocalAlign]);
        let stat = report.phase(Phase::LocalAlign).unwrap();
        assert!(stat.seconds.is_some(), "sequential phases carry wall-clock time");
        assert_eq!(stat.virtual_seconds, None, "no virtual clock off-cluster");
    }
}
