//! Integration checks on the performance model: scaling shape, load
//! balance, and the phase structure the paper's cost analysis assumes.

use sample_align_d::prelude::*;

fn workload(n: usize, seed: u64) -> Vec<Sequence> {
    Family::generate(&FamilyConfig {
        n_seqs: n,
        avg_len: 80,
        relatedness: 800.0,
        seed,
        ..Default::default()
    })
    .seqs
}

fn on_cluster(p: usize, cost: CostModel, seqs: &[Sequence], cfg: &SadConfig) -> RunReport {
    Aligner::new(cfg.clone())
        .backend(Backend::Distributed(VirtualCluster::new(p, cost)))
        .run(seqs)
        .unwrap()
}

#[test]
fn makespan_strictly_improves_with_ranks() {
    let seqs = workload(96, 1);
    let cfg = SadConfig::default();
    let mut prev = f64::INFINITY;
    for p in [1usize, 2, 4, 8] {
        let t = on_cluster(p, CostModel::beowulf_2008(), &seqs, &cfg).makespan().unwrap();
        assert!(t < prev, "p={p}: {t:.4} did not improve on {prev:.4}");
        prev = t;
    }
}

#[test]
fn speedup_beats_half_linear() {
    let seqs = workload(128, 2);
    let cfg = SadConfig::default();
    let t1 = on_cluster(1, CostModel::beowulf_2008(), &seqs, &cfg).makespan().unwrap();
    let t8 = on_cluster(8, CostModel::beowulf_2008(), &seqs, &cfg).makespan().unwrap();
    let speedup = t1 / t8;
    assert!(speedup > 4.0, "speedup at p=8 was only {speedup:.2}");
}

#[test]
fn load_balance_bound_holds() {
    let seqs = workload(192, 3);
    let report = on_cluster(6, CostModel::beowulf_2008(), &seqs, &SadConfig::default());
    let bound = psrs::max_partition_bound(192, 6);
    for (rank, &size) in report.bucket_sizes.iter().enumerate() {
        assert!(size <= bound + 6, "rank {rank} got {size} sequences (bound {bound})");
    }
}

#[test]
fn communication_is_minor_versus_compute() {
    // The paper's premise: communication cost is much less than alignment
    // cost for large-enough buckets.
    let seqs = workload(96, 4);
    let report = on_cluster(4, CostModel::beowulf_2008(), &seqs, &SadConfig::default());
    for t in report.traces().expect("distributed runs carry traces") {
        assert!(
            t.comm_s < t.compute_s,
            "rank {}: comm {:.4}s should stay below compute {:.4}s",
            t.rank,
            t.comm_s,
            t.compute_s
        );
    }
}

#[test]
fn local_align_dominates_the_phase_table() {
    // Section 3: the O((N/p)^2 L) + O((N/p) L^2) alignment term dominates
    // every other phase — visible straight from the unified report now,
    // in the virtual clock the paper's cost analysis is stated in.
    let seqs = workload(96, 5);
    let report = on_cluster(4, CostModel::beowulf_2008(), &seqs, &SadConfig::default());
    let of = |phase: Phase| report.phase(phase).and_then(|p| p.virtual_seconds).unwrap_or(0.0);
    let align = of(Phase::LocalAlign);
    for other in [Phase::LocalSort, Phase::SampleExchange, Phase::Redistribute, Phase::Glue] {
        assert!(
            align > of(other),
            "{other} ({:.4}s) outweighed local alignment ({align:.4}s)",
            of(other)
        );
    }
    // Real wall-clock seconds ride along for every phase.
    assert!(report.phases.iter().all(|p| p.seconds.is_some()));
}

#[test]
fn modern_cost_model_preserves_shape() {
    // Constants change; the scaling shape must not.
    let seqs = workload(96, 6);
    let cfg = SadConfig::default();
    let t1 = on_cluster(1, CostModel::modern(), &seqs, &cfg).makespan().unwrap();
    let t4 = on_cluster(4, CostModel::modern(), &seqs, &cfg).makespan().unwrap();
    assert!(t4 < t1, "modern model lost the scaling: {t4} vs {t1}");
}
