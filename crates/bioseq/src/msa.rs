//! Gapped multiple sequence alignments and sum-of-pairs scoring.

use crate::alphabet::{code_to_char, GAP_CODE};
use crate::matrix::{GapPenalties, SubstMatrix};
use crate::sequence::Sequence;
use serde::{Deserialize, Serialize};

/// A multiple sequence alignment: a rectangular matrix of residue/gap codes.
///
/// Invariants (enforced by constructors, checked by [`Msa::validate`]):
/// * all rows have the same number of columns;
/// * no row is entirely gaps;
/// * there is at least one row.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Msa {
    ids: Vec<String>,
    rows: Vec<Vec<u8>>,
}

impl std::fmt::Debug for Msa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Msa({} rows x {} cols)", self.num_rows(), self.num_cols())
    }
}

impl Msa {
    /// Build from parallel id/row vectors.
    ///
    /// # Panics
    /// Panics if the invariants above are violated.
    pub fn from_rows(ids: Vec<String>, rows: Vec<Vec<u8>>) -> Self {
        assert_eq!(ids.len(), rows.len(), "ids and rows must be parallel");
        assert!(!rows.is_empty(), "alignment must have at least one row");
        let width = rows[0].len();
        assert!(width > 0, "alignment must have at least one column");
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), width, "row {i} has wrong width");
            assert!(row.iter().any(|&c| c != GAP_CODE), "row {i} is entirely gaps");
        }
        Msa { ids, rows }
    }

    /// A single ungapped sequence viewed as a 1-row alignment.
    pub fn from_sequence(seq: &Sequence) -> Self {
        Msa { ids: vec![seq.id.clone()], rows: vec![seq.codes().to_vec()] }
    }

    /// Row identifiers.
    #[inline]
    pub fn ids(&self) -> &[String] {
        &self.ids
    }

    /// Raw rows.
    #[inline]
    pub fn rows(&self) -> &[Vec<u8>] {
        &self.rows
    }

    /// A single row.
    #[inline]
    pub fn row(&self, i: usize) -> &[u8] {
        &self.rows[i]
    }

    /// Number of sequences.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of alignment columns.
    #[inline]
    pub fn num_cols(&self) -> usize {
        self.rows[0].len()
    }

    /// Extract column `c` into the provided buffer (cleared first).
    pub fn column_into(&self, c: usize, buf: &mut Vec<u8>) {
        buf.clear();
        buf.extend(self.rows.iter().map(|r| r[c]));
    }

    /// Recover the ungapped sequence of row `i`.
    pub fn ungapped(&self, i: usize) -> Sequence {
        let codes: Vec<u8> = self.rows[i].iter().copied().filter(|&c| c != GAP_CODE).collect();
        Sequence::from_codes(self.ids[i].clone(), codes)
    }

    /// Recover all ungapped sequences in row order.
    pub fn ungapped_all(&self) -> Vec<Sequence> {
        (0..self.num_rows()).map(|i| self.ungapped(i)).collect()
    }

    /// Check the structural invariants; returns a description of the first
    /// violation, if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.rows.is_empty() {
            return Err("no rows".into());
        }
        let width = self.rows[0].len();
        if width == 0 {
            return Err("zero columns".into());
        }
        for (i, row) in self.rows.iter().enumerate() {
            if row.len() != width {
                return Err(format!("row {i}: width {} != {width}", row.len()));
            }
            if row.iter().all(|&c| c == GAP_CODE) {
                return Err(format!("row {i} is all gaps"));
            }
            if let Some(&bad) = row.iter().find(|&&c| c > GAP_CODE) {
                return Err(format!("row {i} contains invalid code {bad}"));
            }
        }
        Ok(())
    }

    /// Remove columns that are gaps in *every* row (can appear after gluing
    /// sub-alignments).
    pub fn drop_all_gap_columns(&mut self) {
        let ncols = self.num_cols();
        let keep: Vec<bool> =
            (0..ncols).map(|c| self.rows.iter().any(|r| r[c] != GAP_CODE)).collect();
        if keep.iter().all(|&k| k) {
            return;
        }
        for row in self.rows.iter_mut() {
            let mut w = 0;
            for c in 0..ncols {
                if keep[c] {
                    row[w] = row[c];
                    w += 1;
                }
            }
            row.truncate(w);
        }
    }

    /// Append the rows of `other` (which must have the same width).
    ///
    /// # Panics
    /// Panics if widths differ.
    pub fn stack(&mut self, other: Msa) {
        assert_eq!(self.num_cols(), other.num_cols(), "stacked alignments must have equal widths");
        self.ids.extend(other.ids);
        self.rows.extend(other.rows);
    }

    /// Sum-of-pairs score under a substitution matrix with affine gap
    /// penalties. Terminal gaps are penalised like internal ones (the
    /// simplest convention; quality comparisons all use the same scorer so
    /// the convention cancels out). Pairs where both positions are gaps
    /// contribute nothing.
    pub fn sp_score(&self, matrix: &SubstMatrix, gaps: GapPenalties) -> i64 {
        let n = self.num_rows();
        let mut total = 0i64;
        for i in 0..n {
            for j in (i + 1)..n {
                total += pairwise_row_score(&self.rows[i], &self.rows[j], matrix, gaps);
            }
        }
        total
    }

    /// Average pairwise fractional identity over aligned (non-gap) pairs.
    pub fn average_identity(&self) -> f64 {
        let n = self.num_rows();
        if n < 2 {
            return 1.0;
        }
        let mut total = 0.0;
        let mut pairs = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                total += row_identity(&self.rows[i], &self.rows[j]);
                pairs += 1;
            }
        }
        total / pairs as f64
    }

    /// Pretty-print a window of the alignment (for snapshots like the
    /// paper's Fig. 7).
    pub fn snapshot(&self, max_rows: usize, max_cols: usize) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let rows = self.num_rows().min(max_rows);
        let cols = self.num_cols().min(max_cols);
        let id_w = self.ids.iter().take(rows).map(|s| s.len()).max().unwrap_or(4).min(16);
        for i in 0..rows {
            let id: String = self.ids[i].chars().take(id_w).collect();
            let seq: String = self.rows[i][..cols].iter().map(|&c| code_to_char(c)).collect();
            let _ = writeln!(out, "{id:<id_w$} {seq}");
        }
        if self.num_rows() > rows {
            let _ = writeln!(out, "… ({} more rows)", self.num_rows() - rows);
        }
        out
    }
}

/// Score one aligned row pair with affine gaps. Shared by [`Msa::sp_score`]
/// and the refinement objective in the `align` crate.
pub fn pairwise_row_score(a: &[u8], b: &[u8], matrix: &SubstMatrix, gaps: GapPenalties) -> i64 {
    debug_assert_eq!(a.len(), b.len());
    let mut score = 0i64;
    // Track gap state for affine penalties in each direction.
    let mut in_gap_a = false; // gap in `a` against residue in `b`
    let mut in_gap_b = false;
    for (&x, &y) in a.iter().zip(b) {
        let xg = x == GAP_CODE;
        let yg = y == GAP_CODE;
        match (xg, yg) {
            (true, true) => {
                // Both gaps: no contribution; does not break gap runs
                // (columns induced by other sequences).
            }
            (true, false) => {
                score -= if in_gap_a { gaps.extend } else { gaps.open } as i64;
                in_gap_a = true;
                in_gap_b = false;
            }
            (false, true) => {
                score -= if in_gap_b { gaps.extend } else { gaps.open } as i64;
                in_gap_b = true;
                in_gap_a = false;
            }
            (false, false) => {
                score += matrix.score(x, y) as i64;
                in_gap_a = false;
                in_gap_b = false;
            }
        }
    }
    score
}

/// Fractional identity between two aligned rows, counted over columns where
/// both have residues.
pub fn row_identity(a: &[u8], b: &[u8]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut same = 0usize;
    let mut aligned = 0usize;
    for (&x, &y) in a.iter().zip(b) {
        if x != GAP_CODE && y != GAP_CODE {
            aligned += 1;
            if x == y {
                same += 1;
            }
        }
    }
    if aligned == 0 {
        0.0
    } else {
        same as f64 / aligned as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasta;

    fn msa(text: &str) -> Msa {
        fasta::parse_alignment(text).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let m = msa(">a\nMK-VL\n>b\nMKI-L\n");
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.num_cols(), 5);
        assert_eq!(m.ungapped(0).to_letters(), "MKVL");
        assert_eq!(m.ungapped(1).to_letters(), "MKIL");
        let mut col = Vec::new();
        m.column_into(2, &mut col);
        assert_eq!(col, vec![GAP_CODE, crate::alphabet::char_to_code('I').unwrap()]);
    }

    #[test]
    fn validate_accepts_good() {
        assert!(msa(">a\nMK-VL\n>b\nMKI-L\n").validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "entirely gaps")]
    fn all_gap_row_panics() {
        Msa::from_rows(vec!["a".into(), "b".into()], vec![vec![0, 1], vec![GAP_CODE, GAP_CODE]]);
    }

    #[test]
    fn drop_all_gap_columns_works() {
        let mut m = Msa::from_rows(
            vec!["a".into(), "b".into()],
            vec![vec![0, GAP_CODE, 1], vec![2, GAP_CODE, GAP_CODE]],
        );
        m.drop_all_gap_columns();
        assert_eq!(m.num_cols(), 2);
        assert_eq!(m.row(0), &[0, 1]);
        assert_eq!(m.row(1), &[2, GAP_CODE]);
    }

    #[test]
    fn sp_score_identity_alignment() {
        let m = msa(">a\nAAA\n>b\nAAA\n");
        let matrix = SubstMatrix::blosum62();
        // Three columns of A/A pairs: 3 * 4 = 12
        assert_eq!(m.sp_score(&matrix, GapPenalties::default()), 12);
    }

    #[test]
    fn sp_score_affine_gap_run() {
        let m = msa(">a\nAAAA\n>b\nA--A\n");
        let matrix = SubstMatrix::blosum62();
        let g = GapPenalties { open: 10, extend: 2 };
        // A/A + open + extend + A/A = 4 - 10 - 2 + 4
        assert_eq!(m.sp_score(&matrix, g), 4 - 10 - 2 + 4);
    }

    #[test]
    fn sp_score_double_gap_free() {
        let a = msa(">a\nA-A\n>b\nA-A\n");
        let matrix = SubstMatrix::blosum62();
        assert_eq!(a.sp_score(&matrix, GapPenalties::default()), 8);
    }

    #[test]
    fn sp_score_three_rows_pairs() {
        let m = msa(">a\nA\n>b\nA\n>c\nA\n");
        let matrix = SubstMatrix::blosum62();
        // Three pairs of A/A = 3 * 4
        assert_eq!(m.sp_score(&matrix, GapPenalties::default()), 12);
    }

    #[test]
    fn identity_measures() {
        let m = msa(">a\nMKVL\n>b\nMKIL\n");
        assert!((m.average_identity() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn stack_widths_must_match() {
        let mut a = msa(">a\nMKVL\n");
        let b = msa(">b\nMKIL\n");
        a.stack(b);
        assert_eq!(a.num_rows(), 2);
    }

    #[test]
    fn snapshot_contains_ids() {
        let m = msa(">alpha\nMKVL\n>beta\nMKIL\n");
        let s = m.snapshot(10, 10);
        assert!(s.contains("alpha"));
        assert!(s.contains("MKVL"));
    }

    #[test]
    fn ungapped_roundtrip_through_from_sequence() {
        let s = Sequence::from_str("x", "MKVLAW").unwrap();
        let m = Msa::from_sequence(&s);
        assert_eq!(m.ungapped(0), s);
    }
}
