//! Micro-benchmarks of the `align::dp` Gotoh kernel: banded vs full on
//! short and long sequence pairs, plus the banded profile–profile path.
//!
//! Beyond wall-clock timings, the bench prints (and asserts) the
//! banded-vs-full `dp_cells` counts: on length-500+ pairs the adaptive
//! band must fill strictly fewer cells than the full matrix.
//!
//! It also writes `BENCH_dp_kernel.json` at the workspace root —
//! cells/sec and wall time per (length, band) — the committed baseline
//! future kernel work (ROADMAP item 2) has to beat.

use align::dp::{BandPolicy, DpArena};
use align::pairwise::global_align_with;
use align::{MsaEngine, MuscleLite, Profile};
use bioseq::{GapPenalties, Sequence, SubstMatrix, Work};
use criterion::{criterion_group, criterion_main, Criterion};
use rosegen::{Family, FamilyConfig};

fn pair(avg_len: usize, seed: u64) -> (Sequence, Sequence) {
    let mut seqs = Family::generate(&FamilyConfig {
        n_seqs: 2,
        avg_len,
        relatedness: 800.0,
        seed,
        ..Default::default()
    })
    .seqs;
    let b = seqs.pop().expect("two sequences");
    let a = seqs.pop().expect("two sequences");
    (a, b)
}

fn bench(c: &mut Criterion) {
    let matrix = SubstMatrix::blosum62();
    let gaps = GapPenalties::default();
    let (short_a, short_b) = pair(100, 0x51);
    let (long_a, long_b) = pair(600, 0x52);
    let mut arena = DpArena::new();

    // Cell accounting: the acceptance bar for the banded kernel.
    let full = global_align_with(&long_a, &long_b, &matrix, gaps, BandPolicy::Full, &mut arena);
    let auto = global_align_with(&long_a, &long_b, &matrix, gaps, BandPolicy::Auto, &mut arena);
    println!(
        "dp_cells on L≈600 pair: banded {} vs full {} ({:.1}x fewer), scores {} == {}",
        auto.work.dp_cells,
        full.work.dp_cells,
        full.work.dp_cells as f64 / auto.work.dp_cells as f64,
        auto.score,
        full.score
    );
    assert!(
        auto.work.dp_cells < full.work.dp_cells,
        "banded must fill strictly fewer cells than full on length-500+ pairs"
    );
    assert_eq!(auto.score, full.score, "adaptive banding must stay exact");

    let mut baseline = Vec::new();
    for (label, a, b) in [("short_100", &short_a, &short_b), ("long_600", &long_a, &long_b)] {
        for (policy_label, policy) in [("full", BandPolicy::Full), ("auto", BandPolicy::Auto)] {
            c.bench_function(&format!("dp_kernel/global_{label}_{policy_label}"), |bch| {
                bch.iter(|| {
                    global_align_with(std::hint::black_box(a), b, &matrix, gaps, policy, &mut arena)
                })
            });
            // The JSON baseline: cells filled per second at this
            // (length, band), median of a few timed repeats.
            let cells = global_align_with(a, b, &matrix, gaps, policy, &mut arena).work.dp_cells;
            let mut times: Vec<f64> = (0..9)
                .map(|_| {
                    let start = std::time::Instant::now();
                    std::hint::black_box(global_align_with(
                        std::hint::black_box(a),
                        b,
                        &matrix,
                        gaps,
                        policy,
                        &mut arena,
                    ));
                    start.elapsed().as_secs_f64()
                })
                .collect();
            times.sort_by(f64::total_cmp);
            let seconds = times[times.len() / 2];
            baseline.push(format!(
                "    {{\"kernel\": \"global_{label}_{policy_label}\", \"dp_cells\": {cells}, \
                 \"seconds_median\": {seconds:.9}, \"cells_per_sec\": {:.0}}}",
                cells as f64 / seconds
            ));
        }
    }
    let json = format!(
        "{{\n  \"bench\": \"dp_kernel\",\n  \"kernels\": [\n{}\n  ]\n}}\n",
        baseline.join(",\n")
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_dp_kernel.json");
    std::fs::write(&path, json).expect("write BENCH_dp_kernel.json");
    println!("wrote {}", path.display());

    // Profile–profile DP, the progressive-alignment hot path.
    let fam = Family::generate(&FamilyConfig {
        n_seqs: 16,
        avg_len: 300,
        relatedness: 800.0,
        seed: 0x53,
        ..Default::default()
    })
    .seqs;
    let engine = MuscleLite::fast();
    let msa_a = engine.align(&fam[..8]);
    let msa_b = engine.align(&fam[8..]);
    let mut w = Work::ZERO;
    let pa = Profile::from_msa(&msa_a, &mut w);
    let pb = Profile::from_msa(&msa_b, &mut w);
    for (policy_label, policy) in [("full", BandPolicy::Full), ("auto", BandPolicy::Auto)] {
        c.bench_function(&format!("dp_kernel/profile_8x8_L300_{policy_label}"), |bch| {
            bch.iter(|| {
                align::papro::align_profiles_with(
                    std::hint::black_box(&pa),
                    &pb,
                    &matrix,
                    gaps,
                    policy,
                    &mut arena,
                )
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
