//! The [`Aligner`] builder — one entry point, three backends.
//!
//! The paper's pitch is one pipeline on many substrates: the same
//! sample-sort decomposition runs sequentially, on shared memory, or on a
//! message-passing cluster. The builder makes that literal:
//!
//! ```
//! use sad_core::{Aligner, Backend, SadConfig};
//! use vcluster::{CostModel, VirtualCluster};
//! # let seqs = rosegen::Family::generate(&rosegen::FamilyConfig {
//! #     n_seqs: 8, avg_len: 40, relatedness: 600.0, ..Default::default()
//! # }).seqs;
//!
//! let cluster = VirtualCluster::new(4, CostModel::beowulf_2008());
//! let report = Aligner::new(SadConfig::default())
//!     .backend(Backend::Distributed(cluster))
//!     .run(&seqs)
//!     .expect("valid input");
//! assert_eq!(report.msa.num_rows(), seqs.len());
//! assert!(report.makespan().unwrap() > 0.0);
//! ```
//!
//! Swapping `Backend::Distributed(..)` for `Backend::Rayon { threads: 4 }`
//! or `Backend::Sequential` changes the substrate, not the caller: every
//! backend returns the same [`RunReport`].

use crate::config::SadConfig;
use crate::error::SadError;
use crate::report::RunReport;
use bioseq::Sequence;
use vcluster::VirtualCluster;

/// The execution substrate for one run.
#[derive(Debug, Clone, Default)]
pub enum Backend {
    /// The configured engine run directly on the whole set (the paper's
    /// speedup baseline).
    #[default]
    Sequential,
    /// Shared-memory pipeline on the rayon pool.
    Rayon {
        /// Logical buckets (the `p` of the decomposition).
        threads: usize,
    },
    /// Message-passing pipeline on a virtual cluster.
    Distributed(VirtualCluster),
}

impl Backend {
    /// Stable name for tables and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Sequential => "sequential",
            Backend::Rayon { .. } => "rayon",
            Backend::Distributed(_) => "distributed",
        }
    }
}

/// Builder for a Sample-Align-D run: configuration plus backend choice.
#[derive(Debug, Clone, Default)]
pub struct Aligner {
    cfg: SadConfig,
    backend: Backend,
    ranks: Option<usize>,
}

impl Aligner {
    /// Start building a run with the given configuration. The default
    /// backend is [`Backend::Sequential`].
    pub fn new(cfg: SadConfig) -> Self {
        Aligner { cfg, backend: Backend::Sequential, ranks: None }
    }

    /// Select the execution backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Assert the decomposition width. Optional: the distributed backend
    /// takes its width from the cluster and the rayon backend from
    /// `threads`; setting `ranks` to a disagreeing value turns a silent
    /// misconfiguration into [`SadError::ClusterSizeMismatch`].
    pub fn ranks(mut self, ranks: usize) -> Self {
        self.ranks = Some(ranks);
        self
    }

    /// The configuration this aligner will run with.
    pub fn config(&self) -> &SadConfig {
        &self.cfg
    }

    /// Validate configuration and input, then run the pipeline on the
    /// selected backend.
    pub fn run(&self, seqs: &[Sequence]) -> Result<RunReport, SadError> {
        self.cfg.validate()?;
        if seqs.len() < 2 {
            return Err(SadError::TooFewSequences { found: seqs.len() });
        }
        match &self.backend {
            Backend::Sequential => {
                if let Some(requested) = self.ranks {
                    if requested != 1 {
                        return Err(SadError::ClusterSizeMismatch { actual: 1, requested });
                    }
                }
                Ok(crate::sequential::sequential_pipeline(seqs, &self.cfg))
            }
            Backend::Rayon { threads } => {
                if *threads == 0 {
                    return Err(SadError::ZeroParallelism);
                }
                if let Some(requested) = self.ranks {
                    if requested != *threads {
                        return Err(SadError::ClusterSizeMismatch { actual: *threads, requested });
                    }
                }
                Ok(crate::rayon_impl::rayon_pipeline(seqs, *threads, &self.cfg))
            }
            Backend::Distributed(cluster) => {
                if let Some(requested) = self.ranks {
                    if requested != cluster.p() {
                        return Err(SadError::ClusterSizeMismatch {
                            actual: cluster.p(),
                            requested,
                        });
                    }
                }
                Ok(crate::distributed::distributed_pipeline(cluster, seqs, &self.cfg))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rosegen::{Family, FamilyConfig};
    use vcluster::CostModel;

    fn family(n: usize, seed: u64) -> Vec<Sequence> {
        Family::generate(&FamilyConfig {
            n_seqs: n,
            avg_len: 50,
            relatedness: 700.0,
            seed,
            ..Default::default()
        })
        .seqs
    }

    #[test]
    fn all_backends_return_the_same_report_shape() {
        let seqs = family(16, 1);
        let cfg = SadConfig::default();
        let cluster = VirtualCluster::new(4, CostModel::beowulf_2008());
        let seq = Aligner::new(cfg.clone()).run(&seqs).unwrap();
        let ray =
            Aligner::new(cfg.clone()).backend(Backend::Rayon { threads: 4 }).run(&seqs).unwrap();
        let dist = Aligner::new(cfg).backend(Backend::Distributed(cluster)).run(&seqs).unwrap();
        for report in [&seq, &ray, &dist] {
            assert_eq!(report.msa.num_rows(), 16);
            assert_eq!(report.bucket_sizes.iter().sum::<usize>(), 16);
            assert!(!report.work.is_zero());
            assert!(!report.phases.is_empty());
        }
        // Decomposed backends are step-identical; sequential differs in
        // columns but carries the same rows (checked in tests/).
        assert_eq!(ray.msa, dist.msa);
        assert_eq!(seq.ranks, 1);
        assert_eq!(ray.ranks, 4);
        assert_eq!(dist.ranks, 4);
        assert!(dist.makespan().is_some() && ray.makespan().is_none());
    }

    #[test]
    fn too_few_sequences_is_a_typed_error_not_a_panic() {
        let one = family(1, 2);
        for backend in [
            Backend::Sequential,
            Backend::Rayon { threads: 4 },
            Backend::Distributed(VirtualCluster::new(4, CostModel::beowulf_2008())),
        ] {
            let aligner = Aligner::new(SadConfig::default()).backend(backend);
            assert_eq!(aligner.run(&[]), Err(SadError::TooFewSequences { found: 0 }));
            assert_eq!(aligner.run(&one), Err(SadError::TooFewSequences { found: 1 }));
        }
    }

    #[test]
    fn invalid_config_is_rejected_before_running() {
        let seqs = family(8, 3);
        let zero_k = Aligner::new(SadConfig::default().with_kmer_k(0)).run(&seqs);
        assert_eq!(zero_k, Err(SadError::ZeroKmerLen));
        let zero_samples =
            Aligner::new(SadConfig::default().with_samples_per_rank(Some(0))).run(&seqs);
        assert_eq!(zero_samples, Err(SadError::ZeroSampleCount));
    }

    #[test]
    fn rank_mismatch_is_caught() {
        let seqs = family(8, 4);
        let cluster = VirtualCluster::new(4, CostModel::beowulf_2008());
        let err = Aligner::new(SadConfig::default())
            .backend(Backend::Distributed(cluster))
            .ranks(8)
            .run(&seqs);
        assert_eq!(err, Err(SadError::ClusterSizeMismatch { actual: 4, requested: 8 }));
        let err = Aligner::new(SadConfig::default())
            .backend(Backend::Rayon { threads: 2 })
            .ranks(3)
            .run(&seqs);
        assert_eq!(err, Err(SadError::ClusterSizeMismatch { actual: 2, requested: 3 }));
    }

    #[test]
    fn matching_ranks_pass() {
        let seqs = family(8, 5);
        let cluster = VirtualCluster::new(2, CostModel::beowulf_2008());
        let report = Aligner::new(SadConfig::default())
            .backend(Backend::Distributed(cluster))
            .ranks(2)
            .run(&seqs)
            .unwrap();
        assert_eq!(report.ranks, 2);
    }

    #[test]
    fn zero_threads_rejected() {
        let seqs = family(4, 6);
        let err =
            Aligner::new(SadConfig::default()).backend(Backend::Rayon { threads: 0 }).run(&seqs);
        assert_eq!(err, Err(SadError::ZeroParallelism));
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(Backend::Sequential.name(), "sequential");
        assert_eq!(Backend::Rayon { threads: 2 }.name(), "rayon");
        let c = VirtualCluster::new(1, CostModel::beowulf_2008());
        assert_eq!(Backend::Distributed(c).name(), "distributed");
    }
}
