//! K-mer profiles, the fractional-common-k-mer similarity and the k-mer
//! rank of Sample-Align-D.
//!
//! The paper (following Edgar 2004) measures the relatedness of two
//! sequences `x_i`, `x_j` by the fraction of k-mers they share:
//!
//! ```text
//! F(x_i, x_j) = Σ_τ min(n_{x_i}(τ), n_{x_j}(τ)) / (min(|x_i|, |x_j|) − k + 1)
//! ```
//!
//! where `τ` ranges over k-mers in a (possibly compressed) alphabet and
//! `n_x(τ)` counts occurrences. The paper calls this quantity the *k-mer
//! distance* even though it is a similarity; we expose it as
//! [`KmerProfile::similarity`] and provide `1 − F` as
//! [`KmerProfile::distance`] (the form MUSCLE uses for clustering).
//!
//! The **k-mer rank** of a sequence against a set is
//! `R_i = log(0.1 + D_i)` with `D_i` the average of the pairwise measure
//! over the set. [`RankTransform`] selects the exact transform; the paper's
//! printed constants are ambiguous (see `EXPERIMENTS.md`), so the transform
//! is pluggable and defaults to the formula as printed.

use crate::alphabet::{Alphabet, CompressedAlphabet};
use crate::sequence::Sequence;
use crate::work::Work;
use serde::{Deserialize, Serialize};

/// A sparse, sorted k-mer count profile for one sequence.
///
/// Entries are `(packed_kmer, count)` sorted by `packed_kmer`, so pairwise
/// similarity is a linear merge of two sorted lists.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KmerProfile {
    k: usize,
    alphabet: CompressedAlphabet,
    entries: Vec<(u32, u16)>,
    /// Total number of k-mers in the sequence (`len − k + 1`).
    total: u32,
}

impl KmerProfile {
    /// Build a profile. Returns `None` when the sequence is shorter than
    /// `k`.
    ///
    /// # Panics
    /// Panics if the packed k-mer space `alphabet.size()^k` does not fit in
    /// `u32` (choose a smaller `k` or a more compressed alphabet).
    pub fn build(seq: &Sequence, k: usize, alphabet: CompressedAlphabet) -> Option<Self> {
        assert!(k >= 1, "k must be at least 1");
        let s = alphabet.size() as u64;
        let space = s.checked_pow(k as u32).expect("alphabet^k overflows u64");
        assert!(space <= u32::MAX as u64 + 1, "alphabet^k must fit in u32");
        let codes = seq.codes();
        if codes.len() < k {
            return None;
        }
        let table = alphabet.table();
        let mut packed: Vec<u32> = Vec::with_capacity(codes.len() - k + 1);
        // Rolling pack: kmer = kmer*s + sym (mod s^k).
        let mut roll: u64 = 0;
        for (i, &code) in codes.iter().enumerate() {
            let sym = table[code as usize] as u64;
            roll = (roll * s + sym) % space;
            if i + 1 >= k {
                packed.push(roll as u32);
            }
        }
        packed.sort_unstable();
        let mut entries: Vec<(u32, u16)> = Vec::with_capacity(packed.len());
        for &p in &packed {
            match entries.last_mut() {
                Some((last, count)) if *last == p => *count = count.saturating_add(1),
                _ => entries.push((p, 1)),
            }
        }
        Some(KmerProfile { k, alphabet, entries, total: packed.len() as u32 })
    }

    /// The `k` this profile was built with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The alphabet this profile was built with.
    pub fn alphabet(&self) -> CompressedAlphabet {
        self.alphabet
    }

    /// Number of distinct k-mers.
    pub fn distinct(&self) -> usize {
        self.entries.len()
    }

    /// Total number of k-mers (`len − k + 1`).
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Fractional common k-mer count `F` (see module docs), in `[0, 1]`.
    ///
    /// # Panics
    /// Panics (debug) if the profiles use different `k`/alphabets.
    pub fn similarity(&self, other: &KmerProfile) -> f64 {
        let mut scratch = Work::ZERO;
        self.similarity_counting(other, &mut scratch)
    }

    /// [`Self::similarity`] with work accounting: one `kmer_op` per sparse
    /// entry visited in the merge.
    pub fn similarity_counting(&self, other: &KmerProfile, work: &mut Work) -> f64 {
        debug_assert_eq!(self.k, other.k, "profiles must share k");
        debug_assert_eq!(self.alphabet, other.alphabet, "profiles must share alphabet");
        let mut shared: u64 = 0;
        let (a, b) = (&self.entries, &other.entries);
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    shared += a[i].1.min(b[j].1) as u64;
                    i += 1;
                    j += 1;
                }
            }
        }
        work.kmer_ops += (a.len() + b.len()) as u64;
        let denom = self.total.min(other.total) as f64;
        shared as f64 / denom
    }

    /// `1 − F`, a proper dissimilarity in `[0, 1]` (MUSCLE's k-mer
    /// clustering distance).
    pub fn distance(&self, other: &KmerProfile) -> f64 {
        1.0 - self.similarity(other)
    }
}

/// The transform applied to the average pairwise measure `D` to obtain the
/// scalar rank `R`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum RankTransform {
    /// The formula exactly as printed in the paper: `R = ln(0.1 + D)`.
    #[default]
    PaperLog,
    /// `R = −ln(0.1 + D)`; monotone-decreasing variant that yields positive
    /// values on `D ∈ [0, 1]` with a spread resembling the paper's Table 1.
    NegLog,
    /// No transform: `R = D`.
    Linear,
}

impl RankTransform {
    /// Apply the transform to an average measure `D ∈ [0, 1]`.
    #[inline]
    pub fn apply(self, d: f64) -> f64 {
        match self {
            RankTransform::PaperLog => (0.1 + d).ln(),
            RankTransform::NegLog => -(0.1 + d).ln(),
            RankTransform::Linear => d,
        }
    }
}

/// Average pairwise similarity of `profile` against `others` (the paper's
/// `D_i`). Profiles equal to `profile` itself (self-comparison) are
/// included, matching the paper's `D_i = (1/N) Σ_j r_{i,j}` which sums over
/// all `j`.
pub fn average_measure(profile: &KmerProfile, others: &[KmerProfile], work: &mut Work) -> f64 {
    if others.is_empty() {
        return 0.0;
    }
    let sum: f64 = others.iter().map(|o| profile.similarity_counting(o, work)).sum();
    sum / others.len() as f64
}

/// The k-mer rank of `profile` against `others`: `transform(D_i)`.
pub fn kmer_rank(
    profile: &KmerProfile,
    others: &[KmerProfile],
    transform: RankTransform,
    work: &mut Work,
) -> f64 {
    transform.apply(average_measure(profile, others, work))
}

/// Compute the rank of every profile against the full set (the paper's
/// *centralized* rank). `O(N² · L)` — this is exactly the cost the
/// globalized scheme avoids.
pub fn centralized_ranks(
    profiles: &[KmerProfile],
    transform: RankTransform,
    work: &mut Work,
) -> Vec<f64> {
    profiles.iter().map(|p| kmer_rank(p, profiles, transform, work)).collect()
}

/// Compute the rank of every profile against a sample (the paper's
/// *globalized* rank). `O(N · |sample| · L)`.
pub fn globalized_ranks(
    profiles: &[KmerProfile],
    sample: &[KmerProfile],
    transform: RankTransform,
    work: &mut Work,
) -> Vec<f64> {
    profiles.iter().map(|p| kmer_rank(p, sample, transform, work)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(text: &str) -> Sequence {
        Sequence::from_str("t", text).unwrap()
    }

    fn prof(text: &str, k: usize) -> KmerProfile {
        KmerProfile::build(&seq(text), k, CompressedAlphabet::Identity).unwrap()
    }

    #[test]
    fn identical_sequences_have_similarity_one() {
        let a = prof("MKVLAWGKVL", 3);
        assert!((a.similarity(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_sequences_have_similarity_zero() {
        let a = prof("AAAAAA", 3);
        let b = prof("WWWWWW", 3);
        assert_eq!(a.similarity(&b), 0.0);
    }

    #[test]
    fn similarity_is_symmetric() {
        let a = prof("MKVLAWGKVLMM", 3);
        let b = prof("MKILAWGKIL", 3);
        assert!((a.similarity(&b) - b.similarity(&a)).abs() < 1e-12);
    }

    #[test]
    fn similarity_bounded() {
        let a = prof("MKVLAW", 2);
        let b = prof("MKVLAWMKVLAW", 2);
        let f = a.similarity(&b);
        assert!((0.0..=1.0).contains(&f), "f={f}");
    }

    #[test]
    fn counts_respected() {
        // "AAAA" has 3 overlapping "AA" 2-mers; "AA" has 1.
        let a = prof("AAAA", 2);
        let b = prof("AAKK", 2);
        // shared AA kmers = min(3,1)=1; denom = min(3,3)=3
        assert!((a.similarity(&b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn too_short_returns_none() {
        assert!(KmerProfile::build(&seq("MK"), 3, CompressedAlphabet::Identity).is_none());
    }

    #[test]
    fn compressed_alphabet_merges_groups() {
        // I and V are in the same Dayhoff-6 group, so swapping them is
        // invisible to the compressed profile.
        let a = KmerProfile::build(&seq("MKVLAW"), 3, CompressedAlphabet::Dayhoff6).unwrap();
        let b = KmerProfile::build(&seq("MKILAW"), 3, CompressedAlphabet::Dayhoff6).unwrap();
        assert!((a.similarity(&b) - 1.0).abs() < 1e-12);
        // But not to the identity profile.
        let a20 = prof("MKVLAW", 3);
        let b20 = prof("MKILAW", 3);
        assert!(a20.similarity(&b20) < 1.0);
    }

    #[test]
    fn x_does_not_match_anything() {
        let a = KmerProfile::build(&seq("XXXXXX"), 3, CompressedAlphabet::Dayhoff6).unwrap();
        let b = KmerProfile::build(&seq("AAAAAA"), 3, CompressedAlphabet::Dayhoff6).unwrap();
        assert_eq!(a.similarity(&b), 0.0);
        // X matches X though (same unknown symbol).
        assert_eq!(a.similarity(&a), 1.0);
    }

    #[test]
    fn distance_complements_similarity() {
        let a = prof("MKVLAWGKVL", 3);
        let b = prof("MKILAWGKIL", 3);
        assert!((a.distance(&b) + a.similarity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_transforms() {
        assert!((RankTransform::PaperLog.apply(0.9) - 1.0f64.ln()).abs() < 1e-12);
        assert!((RankTransform::NegLog.apply(0.0) - (-(0.1f64).ln())).abs() < 1e-12);
        assert_eq!(RankTransform::Linear.apply(0.42), 0.42);
    }

    #[test]
    fn rank_orders_by_similarity_to_set() {
        // Sequence close to the set should have higher D (and higher
        // PaperLog rank) than an outlier.
        let set: Vec<KmerProfile> =
            ["MKVLAWGKVL", "MKVLAWGKIL", "MKVLCWGKVL"].iter().map(|t| prof(t, 3)).collect();
        let insider = prof("MKVLAWGKVL", 3);
        let outsider = prof("PPPPPPPPPP", 3);
        let mut w = Work::ZERO;
        let ri = kmer_rank(&insider, &set, RankTransform::PaperLog, &mut w);
        let ro = kmer_rank(&outsider, &set, RankTransform::PaperLog, &mut w);
        assert!(ri > ro, "insider {ri} should outrank outsider {ro}");
        assert!(w.kmer_ops > 0);
    }

    #[test]
    fn centralized_vs_globalized_consistency() {
        // When the sample *is* the full set, globalized == centralized.
        let profiles: Vec<KmerProfile> =
            ["MKVLAWGKVL", "MKILAWGKIL", "PPWPPWPPWW"].iter().map(|t| prof(t, 2)).collect();
        let mut w = Work::ZERO;
        let c = centralized_ranks(&profiles, RankTransform::PaperLog, &mut w);
        let g = globalized_ranks(&profiles, &profiles, RankTransform::PaperLog, &mut w);
        for (a, b) in c.iter().zip(&g) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn rolling_pack_matches_naive() {
        // Cross-check the rolling packing against a naive recomputation.
        let s = seq("MKVLAWGKVLMKIL");
        let k = 3;
        let alpha = CompressedAlphabet::Murphy10;
        let prof_fast = KmerProfile::build(&s, k, alpha).unwrap();
        // Naive: pack each window independently.
        let table = alpha.table();
        let size = alpha.size() as u32;
        let codes = s.codes();
        let mut packed: Vec<u32> = Vec::new();
        for w in codes.windows(k) {
            let mut v: u32 = 0;
            for &c in w {
                v = v * size + table[c as usize] as u32;
            }
            packed.push(v);
        }
        packed.sort_unstable();
        let mut entries: Vec<(u32, u16)> = Vec::new();
        for p in packed {
            match entries.last_mut() {
                Some((last, n)) if *last == p => *n += 1,
                _ => entries.push((p, 1)),
            }
        }
        assert_eq!(prof_fast.entries, entries);
    }
}
