//! Pairwise sequence alignment: Needleman–Wunsch/Gotoh global alignment
//! with affine gaps (full or banded), semiglobal overlap alignment, and
//! Smith–Waterman local alignment.
//!
//! Every entry point is a thin wrapper over the shared [`crate::dp`]
//! kernel — this module owns no DP recurrence of its own.

use crate::dp::{self, BandPolicy, ColOp, DpArena, DpKernel, SubstScorer};
use bioseq::alphabet::GAP_CODE;
use bioseq::{GapPenalties, Msa, Sequence, SubstMatrix, Work};

/// The outcome of a pairwise alignment.
#[derive(Debug, Clone, PartialEq)]
pub struct PairAlignment {
    /// Gapped row for the first sequence.
    pub row_a: Vec<u8>,
    /// Gapped row for the second sequence.
    pub row_b: Vec<u8>,
    /// Alignment score in matrix units.
    pub score: i64,
    /// Work performed (DP cells filled).
    pub work: Work,
}

impl PairAlignment {
    /// Package the rows as a two-row [`Msa`].
    pub fn into_msa(self, id_a: impl Into<String>, id_b: impl Into<String>) -> Msa {
        Msa::from_rows(vec![id_a.into(), id_b.into()], vec![self.row_a, self.row_b])
    }

    /// Fractional identity over aligned residue pairs.
    pub fn identity(&self) -> f64 {
        bioseq::msa::row_identity(&self.row_a, &self.row_b)
    }
}

/// Expand a kernel merge script into gapped code rows.
fn rows_from_ops(ac: &[u8], bc: &[u8], ops: &[ColOp]) -> (Vec<u8>, Vec<u8>) {
    let mut row_a = Vec::with_capacity(ops.len());
    let mut row_b = Vec::with_capacity(ops.len());
    let (mut i, mut j) = (0usize, 0usize);
    for op in ops {
        match op {
            ColOp::Both => {
                row_a.push(ac[i]);
                row_b.push(bc[j]);
                i += 1;
                j += 1;
            }
            ColOp::FromA => {
                row_a.push(ac[i]);
                row_b.push(GAP_CODE);
                i += 1;
            }
            ColOp::FromB => {
                row_a.push(GAP_CODE);
                row_b.push(bc[j]);
                j += 1;
            }
        }
    }
    debug_assert_eq!(i, ac.len());
    debug_assert_eq!(j, bc.len());
    (row_a, row_b)
}

/// Gotoh global alignment with affine gap penalties (full DP).
///
/// Terminal gaps are charged like internal ones, matching
/// [`bioseq::Msa::sp_score`]'s convention so that a pairwise alignment's
/// score equals its SP score. Equivalent to
/// [`global_align_with`]`(…, BandPolicy::Full, …)` with a private arena.
pub fn global_align(
    a: &Sequence,
    b: &Sequence,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
) -> PairAlignment {
    global_align_with(a, b, matrix, gaps, BandPolicy::Full, &mut DpArena::new())
}

/// Gotoh global alignment under an explicit [`BandPolicy`], reusing the
/// caller's [`DpArena`] scratch so repeated alignments allocate nothing.
///
/// Under [`BandPolicy::Auto`] the band is widened until the score is
/// stable and the optimum clears the band edges, so the score matches the
/// full DP (see [`crate::dp::gotoh_global`] for the acceptance rule);
/// under [`BandPolicy::Fixed`] it may be band-constrained (see
/// [`banded_global_align`]).
pub fn global_align_with(
    a: &Sequence,
    b: &Sequence,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    policy: BandPolicy,
    arena: &mut DpArena,
) -> PairAlignment {
    global_align_with_kernel(a, b, matrix, gaps, policy, DpKernel::Auto, arena)
}

/// [`global_align_with`] with an explicit [`DpKernel`] choice (the
/// default `Auto` picks the striped fill whenever it is provably exact).
pub fn global_align_with_kernel(
    a: &Sequence,
    b: &Sequence,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    policy: BandPolicy,
    kernel: DpKernel,
    arena: &mut DpArena,
) -> PairAlignment {
    let (ac, bc) = (a.codes(), b.codes());
    let scorer = SubstScorer::new(ac, bc, matrix, gaps);
    let out = dp::gotoh_global_with(&scorer, policy, kernel, arena);
    let (row_a, row_b) = rows_from_ops(ac, bc, &out.ops);
    // Integer matrix + integer gaps keep every intermediate exact in f64
    // (and in f32 lanes whenever Auto selects the striped kernel).
    PairAlignment { row_a, row_b, score: out.score as i64, work: out.work() }
}

/// Result of a local alignment: the aligned segment plus its coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalAlignment {
    /// Gapped row for the aligned segment of the first sequence.
    pub row_a: Vec<u8>,
    /// Gapped row for the aligned segment of the second sequence.
    pub row_b: Vec<u8>,
    /// Start offset (0-based residue index) of the segment in `a`.
    pub start_a: usize,
    /// Start offset of the segment in `b`.
    pub start_b: usize,
    /// Smith–Waterman score (≥ 0).
    pub score: i64,
    /// Work performed.
    pub work: Work,
}

/// Smith–Waterman local alignment with affine gaps.
pub fn local_align(
    a: &Sequence,
    b: &Sequence,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
) -> LocalAlignment {
    local_align_with(a, b, matrix, gaps, &mut DpArena::new())
}

/// Smith–Waterman local alignment reusing the caller's [`DpArena`].
pub fn local_align_with(
    a: &Sequence,
    b: &Sequence,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    arena: &mut DpArena,
) -> LocalAlignment {
    let (ac, bc) = (a.codes(), b.codes());
    let scorer = SubstScorer::new(ac, bc, matrix, gaps);
    let out = dp::gotoh_local(&scorer, arena);
    let (row_a, row_b) =
        rows_from_ops(&ac[out.start_a..out.end_a], &bc[out.start_b..out.end_b], &out.ops);
    LocalAlignment {
        row_a,
        row_b,
        start_a: out.start_a,
        start_b: out.start_b,
        score: out.score as i64,
        work: out.work(),
    }
}

/// Semiglobal (overlap) alignment: terminal gaps on either sequence are
/// free, so the score rewards the best dovetail overlap — the natural
/// mode for stitching adjacent domains. Rows cover both inputs fully,
/// terminal gaps included.
pub fn semiglobal_align(
    a: &Sequence,
    b: &Sequence,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
) -> PairAlignment {
    semiglobal_align_with(a, b, matrix, gaps, &mut DpArena::new())
}

/// Semiglobal (overlap) alignment reusing the caller's [`DpArena`].
pub fn semiglobal_align_with(
    a: &Sequence,
    b: &Sequence,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    arena: &mut DpArena,
) -> PairAlignment {
    let (ac, bc) = (a.codes(), b.codes());
    let scorer = SubstScorer::new(ac, bc, matrix, gaps);
    let out = dp::gotoh_semiglobal(&scorer, arena);
    let (row_a, row_b) = rows_from_ops(ac, bc, &out.ops);
    PairAlignment { row_a, row_b, score: out.score as i64, work: out.work() }
}

/// Banded Gotoh global alignment with a **fixed** half-width band and no
/// adaptive retry: the classic speed/optimality trade-off for
/// near-homologous sequences (MUSCLE's `-diags` spirit). With
/// `band ≥ max(n, m)` the result equals [`global_align`]; narrow bands can
/// miss alignments requiring large shifts. Prefer
/// [`global_align_with`]`(…, BandPolicy::Auto, …)` when exactness matters.
///
/// # Panics
/// Panics if `band == 0`.
pub fn banded_global_align(
    a: &Sequence,
    b: &Sequence,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    band: usize,
) -> PairAlignment {
    assert!(band >= 1, "band must be at least 1");
    global_align_with(a, b, matrix, gaps, BandPolicy::Fixed(band), &mut DpArena::new())
}

/// Percent identity after a global alignment — the CLUSTALW initial
/// distance (`1 − identity`).
pub fn alignment_distance(
    a: &Sequence,
    b: &Sequence,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    work: &mut Work,
) -> f64 {
    alignment_distance_with(a, b, matrix, gaps, BandPolicy::Full, &mut DpArena::new(), work)
}

/// [`alignment_distance`] under an explicit band policy, reusing the
/// caller's [`DpArena`].
pub fn alignment_distance_with(
    a: &Sequence,
    b: &Sequence,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    policy: BandPolicy,
    arena: &mut DpArena,
    work: &mut Work,
) -> f64 {
    alignment_distance_with_kernel(a, b, matrix, gaps, policy, DpKernel::Auto, arena, work)
}

/// [`alignment_distance_with`] with an explicit [`DpKernel`] choice.
#[allow(clippy::too_many_arguments)]
pub fn alignment_distance_with_kernel(
    a: &Sequence,
    b: &Sequence,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    policy: BandPolicy,
    kernel: DpKernel,
    arena: &mut DpArena,
    work: &mut Work,
) -> f64 {
    let aln = global_align_with_kernel(a, b, matrix, gaps, policy, kernel, arena);
    *work += aln.work;
    1.0 - aln.identity()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(id: &str, t: &str) -> Sequence {
        Sequence::from_str(id, t).unwrap()
    }

    fn setup() -> (SubstMatrix, GapPenalties) {
        (SubstMatrix::blosum62(), GapPenalties::default())
    }

    #[test]
    fn identical_sequences_align_without_gaps() {
        let (m, g) = setup();
        let a = seq("a", "MKVLAWGKVL");
        let aln = global_align(&a, &a, &m, g);
        assert_eq!(aln.row_a, aln.row_b);
        assert!(!aln.row_a.contains(&GAP_CODE));
        let expected: i64 = a.codes().iter().map(|&c| m.score(c, c) as i64).sum();
        assert_eq!(aln.score, expected);
        assert_eq!(aln.identity(), 1.0);
    }

    #[test]
    fn rows_reconstruct_inputs() {
        let (m, g) = setup();
        let a = seq("a", "MKVLAW");
        let b = seq("b", "MKAW");
        let aln = global_align(&a, &b, &m, g);
        let ung_a: Vec<u8> = aln.row_a.iter().copied().filter(|&c| c != GAP_CODE).collect();
        let ung_b: Vec<u8> = aln.row_b.iter().copied().filter(|&c| c != GAP_CODE).collect();
        assert_eq!(ung_a, a.codes());
        assert_eq!(ung_b, b.codes());
        assert_eq!(aln.row_a.len(), aln.row_b.len());
    }

    #[test]
    fn score_matches_sp_rescoring() {
        // The DP score must agree with re-scoring the emitted alignment.
        let (m, g) = setup();
        let cases = [
            ("MKVLAWGKVL", "MKILAWKVL"),
            ("AAAA", "WWWW"),
            ("MKVL", "M"),
            ("ACDEFGHIKLMNPQRSTVWY", "ACDEFGHIKLMNPQRSTVWY"),
            ("WLKMMKAW", "WKAW"),
        ];
        for (ta, tb) in cases {
            let a = seq("a", ta);
            let b = seq("b", tb);
            let aln = global_align(&a, &b, &m, g);
            let rescored = bioseq::msa::pairwise_row_score(&aln.row_a, &aln.row_b, &m, g);
            assert_eq!(aln.score, rescored, "case {ta} vs {tb}");
        }
    }

    #[test]
    fn symmetric_scores() {
        let (m, g) = setup();
        let a = seq("a", "MKVLAWGKVLMM");
        let b = seq("b", "MKILWGKIL");
        let s1 = global_align(&a, &b, &m, g).score;
        let s2 = global_align(&b, &a, &m, g).score;
        assert_eq!(s1, s2);
    }

    #[test]
    fn gap_is_preferred_when_cheaper() {
        let (m, _) = setup();
        // Cheap gaps: alignment should drop the unmatched region.
        let g = GapPenalties { open: 1, extend: 1 };
        let a = seq("a", "MKVLWWWWAW");
        let b = seq("b", "MKVLAW");
        let aln = global_align(&a, &b, &m, g);
        assert!(aln.row_b.contains(&GAP_CODE));
        assert!(aln.identity() > 0.9);
    }

    #[test]
    fn affine_prefers_one_long_gap() {
        let m = SubstMatrix::blosum62();
        let g = GapPenalties { open: 10, extend: 1 };
        let a = seq("a", "MKVVVVKW");
        let b = seq("b", "MKKW");
        let aln = global_align(&a, &b, &m, g);
        // Count gap runs in row_b; affine should produce exactly one.
        let mut runs = 0;
        let mut in_run = false;
        for &c in &aln.row_b {
            if c == GAP_CODE && !in_run {
                runs += 1;
                in_run = true;
            } else if c != GAP_CODE {
                in_run = false;
            }
        }
        assert_eq!(runs, 1, "rows: {:?} / {:?}", aln.row_a, aln.row_b);
    }

    #[test]
    fn single_residue_edge_cases() {
        let (m, g) = setup();
        let a = seq("a", "M");
        let b = seq("b", "M");
        let aln = global_align(&a, &b, &m, g);
        assert_eq!(aln.score, m.score(12, 12) as i64);
        let c = seq("c", "W");
        let aln2 = global_align(&a, &c, &m, g);
        assert_eq!(aln2.row_a.len(), aln2.row_b.len());
    }

    #[test]
    fn work_counts_cells() {
        let (m, g) = setup();
        let a = seq("a", "MKVL");
        let b = seq("b", "MKV");
        let aln = global_align(&a, &b, &m, g);
        assert_eq!(aln.work.dp_cells, 4 * 3 * 3);
        assert_eq!(aln.work.dp_cells_full, 4 * 3 * 3, "full DP fills everything");
    }

    #[test]
    fn auto_band_matches_full_scores() {
        let (m, g) = setup();
        let cases = [
            ("MKVLAWGKVL", "MKILAWKVL"),
            ("AAAA", "WWWW"),
            ("MKVL", "M"),
            ("WLKMMKAW", "WKAW"),
            ("MKVLAWWWWWWGKVL", "GKVLMKVLAW"),
        ];
        let mut arena = DpArena::new();
        for (ta, tb) in cases {
            let a = seq("a", ta);
            let b = seq("b", tb);
            let full = global_align(&a, &b, &m, g);
            let auto = global_align_with(&a, &b, &m, g, BandPolicy::Auto, &mut arena);
            assert_eq!(auto.score, full.score, "{ta} vs {tb}");
            assert_eq!(auto.row_a, full.row_a, "{ta} vs {tb}");
            assert_eq!(auto.row_b, full.row_b, "{ta} vs {tb}");
        }
    }

    #[test]
    fn auto_band_saves_cells_on_long_related_pairs() {
        let (m, g) = setup();
        let long = "MKVLAWGKVL".repeat(60);
        let mut other = long.clone();
        other.replace_range(40..44, "WWWW");
        let a = seq("a", &long);
        let b = seq("b", &other);
        let full = global_align(&a, &b, &m, g);
        let auto = global_align_with(&a, &b, &m, g, BandPolicy::Auto, &mut DpArena::new());
        assert_eq!(auto.score, full.score);
        assert!(
            auto.work.dp_cells < full.work.dp_cells / 2,
            "banded {} vs full {}",
            auto.work.dp_cells,
            full.work.dp_cells
        );
        assert_eq!(auto.work.dp_cells_full, full.work.dp_cells);
    }

    #[test]
    fn local_alignment_finds_embedded_motif() {
        let (m, g) = setup();
        let a = seq("a", "PPPPPMKVLAWPPPPP");
        let b = seq("b", "GGMKVLAWGG");
        let loc = local_align(&a, &b, &m, g);
        assert!(loc.score > 0);
        let seg: String = loc.row_a.iter().map(|&c| bioseq::alphabet::code_to_char(c)).collect();
        assert!(seg.contains("MKVLAW"), "segment {seg}");
        assert_eq!(loc.start_a, 5);
        assert_eq!(loc.start_b, 2);
    }

    #[test]
    fn local_score_nonnegative_even_for_unrelated() {
        let (m, g) = setup();
        let a = seq("a", "AAAA");
        let b = seq("b", "WWWW");
        let loc = local_align(&a, &b, &m, g);
        assert!(loc.score >= 0);
    }

    #[test]
    fn local_score_matches_segment_rescoring() {
        let (m, g) = setup();
        let a = seq("a", "PPPPPMKVLAWGKPPPP");
        let b = seq("b", "GGMKVLAWGKGG");
        let loc = local_align(&a, &b, &m, g);
        let rescored = bioseq::msa::pairwise_row_score(&loc.row_a, &loc.row_b, &m, g);
        assert_eq!(loc.score, rescored);
    }

    #[test]
    fn semiglobal_overlap_is_free_at_ends() {
        let (m, g) = setup();
        // a's suffix overlaps b's prefix.
        let a = seq("a", "PPPPMKVLAWGK");
        let b = seq("b", "MKVLAWGKDDDD");
        let aln = semiglobal_align(&a, &b, &m, g);
        // Rows reconstruct both inputs completely.
        let ung_a: Vec<u8> = aln.row_a.iter().copied().filter(|&c| c != GAP_CODE).collect();
        let ung_b: Vec<u8> = aln.row_b.iter().copied().filter(|&c| c != GAP_CODE).collect();
        assert_eq!(ung_a, a.codes());
        assert_eq!(ung_b, b.codes());
        // The overlap scores at least the motif; global alignment would
        // have to pay for the unmatched flanks.
        let motif_score: i64 =
            seq("m", "MKVLAWGK").codes().iter().map(|&c| m.score(c, c) as i64).sum();
        assert!(aln.score >= motif_score);
        assert!(aln.score > global_align(&a, &b, &m, g).score);
    }

    #[test]
    fn banded_with_wide_band_matches_full_dp() {
        let (m, g) = setup();
        let cases = [
            ("MKVLAWGKVL", "MKILAWKVL"),
            ("ACDEFGHIKLMNPQRSTVWY", "ACDEFGHIKLMNPQRSTVWY"),
            ("WLKMMKAW", "WKAW"),
            ("MKVL", "M"),
        ];
        for (ta, tb) in cases {
            let a = seq("a", ta);
            let b = seq("b", tb);
            let full = global_align(&a, &b, &m, g);
            let banded = banded_global_align(&a, &b, &m, g, 64);
            assert_eq!(banded.score, full.score, "{ta} vs {tb}");
            let rescored = bioseq::msa::pairwise_row_score(&banded.row_a, &banded.row_b, &m, g);
            assert_eq!(banded.score, rescored, "{ta} vs {tb} rescoring");
        }
    }

    #[test]
    fn banded_saves_cells() {
        let (m, g) = setup();
        let long = "MKVLAWGKVL".repeat(10);
        let a = seq("a", &long);
        let b = seq("b", &long);
        let full = global_align(&a, &b, &m, g);
        let banded = banded_global_align(&a, &b, &m, g, 5);
        assert!(banded.work.dp_cells < full.work.dp_cells / 3);
        // Identical sequences stay on the main diagonal: score preserved.
        assert_eq!(banded.score, full.score);
    }

    #[test]
    fn banded_rows_reconstruct_inputs() {
        let (m, g) = setup();
        let a = seq("a", "MKVLAWGKVLMMKK");
        let b = seq("b", "MKVLWGKVLMM");
        let aln = banded_global_align(&a, &b, &m, g, 4);
        let ung_a: Vec<u8> = aln.row_a.iter().copied().filter(|&c| c != GAP_CODE).collect();
        let ung_b: Vec<u8> = aln.row_b.iter().copied().filter(|&c| c != GAP_CODE).collect();
        assert_eq!(ung_a, a.codes());
        assert_eq!(ung_b, b.codes());
    }

    #[test]
    fn banded_score_never_exceeds_full() {
        let (m, g) = setup();
        let a = seq("a", "MKVLAWWWWWWGKVL");
        let b = seq("b", "GKVLMKVLAW");
        let full = global_align(&a, &b, &m, g);
        for band in [1usize, 2, 4, 8, 32] {
            let banded = banded_global_align(&a, &b, &m, g, band);
            assert!(banded.score <= full.score, "band {band}");
        }
    }

    #[test]
    fn alignment_distance_zero_for_identical() {
        let (m, g) = setup();
        let a = seq("a", "MKVLAW");
        let mut w = Work::ZERO;
        let d = alignment_distance(&a, &a, &m, g, &mut w);
        assert_eq!(d, 0.0);
        assert!(w.dp_cells > 0);
    }
}
