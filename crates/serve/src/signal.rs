//! Minimal SIGTERM/SIGINT observation for the CLI's serve loop.
//!
//! The workspace has no `libc` crate, but `std` already links the C
//! runtime, so declaring `signal(2)` ourselves costs nothing and keeps
//! the dependency surface at zero. The handler only flips an atomic —
//! the async-signal-safe minimum — and the serve loop polls the flag to
//! begin a drain-and-stop.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `signal` is installed with a handler that only touches
        // an atomic (async-signal-safe); the function pointer outlives
        // the process.
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Install the SIGTERM/SIGINT handler (idempotent; no-op off unix).
pub fn install_shutdown_handler() {
    imp::install();
}

/// Whether a shutdown signal has arrived since
/// [`install_shutdown_handler`].
pub fn shutdown_requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// Reset the flag (tests only; real servers exit instead).
pub fn reset_shutdown_flag() {
    REQUESTED.store(false, Ordering::SeqCst);
}
