//! ClustalLite — the CLUSTALW shape (Thompson, Higgins & Gibson 1994):
//! pairwise distances → neighbor-joining guide tree → tree-derived sequence
//! weights → weighted progressive alignment.

use crate::distance::{alignment_distance_matrix_with_kernel, kmer_distance_matrix};
use crate::dp::{BandPolicy, DpArena, DpKernel};
use crate::engine::MsaEngine;
use crate::progressive::{progressive_align_with_arena, ProgressiveConfig, WeightScheme};
use bioseq::{CompressedAlphabet, GapPenalties, Msa, Sequence, SubstMatrix, Work};
use phylo::{neighbor_joining, Tree};

/// Configuration of the CLUSTALW-like engine.
#[derive(Debug, Clone)]
pub struct ClustalLite {
    /// Substitution matrix (CLUSTALW uses a matrix series; we fix one).
    pub matrix: SubstMatrix,
    /// Affine gap penalties.
    pub gaps: GapPenalties,
    /// Use accurate `O(n²L²)` pairwise-alignment distances when the input
    /// has at most this many sequences; fall back to k-mer distances above
    /// it (CLUSTALW's own fast/accurate switch).
    pub full_pairwise_threshold: usize,
    /// k-mer length for the fast distance fallback.
    pub kmer_k: usize,
    /// Compressed alphabet for the fast distance fallback.
    pub alphabet: CompressedAlphabet,
    /// Band policy for every DP kernel instance (pairwise distances and
    /// progressive merging).
    pub band: BandPolicy,
    /// DP kernel selection (scalar, striped, or adaptive auto).
    pub kernel: DpKernel,
}

impl Default for ClustalLite {
    fn default() -> Self {
        ClustalLite {
            matrix: SubstMatrix::blosum62(),
            gaps: GapPenalties::default(),
            full_pairwise_threshold: 60,
            kmer_k: 3,
            alphabet: CompressedAlphabet::Identity,
            band: BandPolicy::default(),
            kernel: DpKernel::default(),
        }
    }
}

impl ClustalLite {
    /// Select the DP kernel band policy.
    pub fn with_band(mut self, band: BandPolicy) -> Self {
        self.band = band;
        self
    }

    /// Select the DP kernel variant.
    pub fn with_kernel(mut self, kernel: DpKernel) -> Self {
        self.kernel = kernel;
        self
    }
}

/// CLUSTALW guide-tree weights: each leaf's weight is the sum over the
/// edges on its root path of `branch_length / #leaves sharing that edge`.
/// Normalised to mean 1; degenerate all-zero trees get uniform weights.
pub fn clustal_tree_weights(tree: &Tree) -> Vec<f64> {
    let n = tree.n_leaves();
    if n == 1 {
        return vec![1.0];
    }
    // leaves_below[node]
    let mut below = vec![0usize; tree.n_nodes()];
    for id in tree.postorder() {
        below[id] = match tree.node(id).children {
            None => 1,
            Some((a, b)) => below[a] + below[b],
        };
    }
    let mut weights = vec![0.0f64; n];
    for (leaf, weight) in weights.iter_mut().enumerate() {
        let mut id = tree.leaf_node(leaf).expect("leaf exists");
        loop {
            let node = tree.node(id);
            match node.parent {
                Some(p) => {
                    *weight += node.branch_len / below[id] as f64;
                    id = p;
                }
                None => break,
            }
        }
    }
    // Identical sequences can make entire root paths zero-length; floor
    // the weights so profiles stay well-defined.
    let mean = weights.iter().sum::<f64>() / n as f64;
    if mean > 1e-12 {
        weights.iter_mut().for_each(|w| *w = (*w / mean).max(1e-3));
    } else {
        weights.iter_mut().for_each(|w| *w = 1.0);
    }
    weights
}

impl MsaEngine for ClustalLite {
    fn name(&self) -> String {
        let base = if self.band == BandPolicy::default() {
            "clustal-lite".to_string()
        } else {
            format!("clustal-lite+{}", self.band.label())
        };
        if self.kernel == DpKernel::default() {
            base
        } else {
            format!("{base}+{}", self.kernel.label())
        }
    }

    fn align_with_work(&self, seqs: &[Sequence]) -> (Msa, Work) {
        self.align_with_work_in(seqs, &mut DpArena::new())
    }

    fn align_with_work_in(&self, seqs: &[Sequence], arena: &mut DpArena) -> (Msa, Work) {
        assert!(!seqs.is_empty(), "cannot align an empty set");
        let mut work = Work::ZERO;
        if seqs.len() == 1 {
            return (Msa::from_sequence(&seqs[0]), work);
        }
        let dist = if seqs.len() <= self.full_pairwise_threshold {
            alignment_distance_matrix_with_kernel(
                seqs,
                &self.matrix,
                self.gaps,
                self.band,
                self.kernel,
                &mut work,
            )
        } else {
            kmer_distance_matrix(seqs, self.kmer_k, self.alphabet, &mut work)
        };
        work.tree_ops += (seqs.len() as u64).pow(3).min(1 << 40);
        let tree = neighbor_joining(&dist);
        let weights = clustal_tree_weights(&tree);
        let cfg = ProgressiveConfig {
            matrix: self.matrix.clone(),
            gaps: self.gaps,
            weights: WeightScheme::Fixed(weights),
            band: self.band,
            kernel: self.kernel,
        };
        let msa = progressive_align_with_arena(seqs, &tree, &cfg, arena, &mut work);
        (msa, work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::DistMatrix;

    fn seqs(texts: &[&str]) -> Vec<Sequence> {
        texts
            .iter()
            .enumerate()
            .map(|(i, t)| Sequence::from_str(format!("s{i}"), t).unwrap())
            .collect()
    }

    #[test]
    fn aligns_small_family_with_accurate_distances() {
        let ss = seqs(&["MKVLAWGKVLSS", "MKVLAWGKVLS", "MKILAWGKILSS", "MKVLWGKVLSS"]);
        let (msa, work) = ClustalLite::default().align_with_work(&ss);
        msa.validate().unwrap();
        assert_eq!(msa.num_rows(), 4);
        assert!(msa.average_identity() > 0.8);
        // Accurate path: pairwise DP dominates.
        assert!(work.dp_cells > 0);
    }

    #[test]
    fn falls_back_to_kmer_distances_for_large_sets() {
        let texts: Vec<String> =
            (0..65).map(|i| format!("MKVLAWGKVL{}", ["SS", "SD", "DD", "SE"][i % 4])).collect();
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let ss = seqs(&refs);
        let engine = ClustalLite { full_pairwise_threshold: 10, ..Default::default() };
        let (msa, work) = engine.align_with_work(&ss);
        msa.validate().unwrap();
        assert!(work.kmer_ops > 0, "kmer path must be used");
    }

    #[test]
    fn tree_weights_balanced_tree_uniform() {
        // Perfectly balanced ultrametric tree → equal weights.
        let m = DistMatrix::from_fn(4, |i, j| if (i < 2) == (j < 2) { 1.0 } else { 4.0 });
        let tree = phylo::upgma(&m);
        let w = clustal_tree_weights(&tree);
        for v in &w {
            assert!((v - 1.0).abs() < 1e-9, "weights {w:?}");
        }
    }

    #[test]
    fn tree_weights_downweight_duplicates() {
        // Two near-identical leaves (0,1) and two distant singletons.
        let m = DistMatrix::from_fn(4, |i, j| match (i.max(j), i.min(j)) {
            (1, 0) => 0.01,
            (2, _) => 3.0,
            (3, 2) => 4.0,
            (3, _) => 4.0,
            _ => unreachable!(),
        });
        let tree = phylo::upgma(&m);
        let w = clustal_tree_weights(&tree);
        // The duplicated pair shares most of its root path: each weighs
        // less than the singletons.
        assert!(w[0] < w[2], "weights {w:?}");
        assert!(w[1] < w[3], "weights {w:?}");
    }

    #[test]
    fn tree_weights_single_leaf() {
        assert_eq!(clustal_tree_weights(&Tree::singleton()), vec![1.0]);
    }

    #[test]
    fn preserves_sequences_and_order() {
        let texts = ["MKVLAWGKVL", "WWPPGGCCWW", "MKILAWGKIL"];
        let ss = seqs(&texts);
        let (msa, _) = ClustalLite::default().align_with_work(&ss);
        for (i, t) in texts.iter().enumerate() {
            assert_eq!(msa.ungapped(i).to_letters(), *t);
        }
    }

    #[test]
    fn deterministic() {
        let ss = seqs(&["MKVLAWGKVL", "MKILAWKIL", "MKVLWGKVL"]);
        let (a, _) = ClustalLite::default().align_with_work(&ss);
        let (b, _) = ClustalLite::default().align_with_work(&ss);
        assert_eq!(a, b);
    }
}
