//! Minimal FASTA parsing and serialisation.
//!
//! Supports the subset of FASTA the pipeline needs: `>` headers (first
//! whitespace-delimited token is the id), wrapped sequence lines, and both
//! gapped (alignment) and ungapped records.

use crate::alphabet::{char_to_code, code_to_char, GAP_CODE};
use crate::msa::Msa;
use crate::sequence::{Sequence, SequenceError};
use std::fmt::Write as _;

/// Error while parsing FASTA text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FastaError {
    /// Sequence data appeared before the first `>` header.
    DataBeforeHeader {
        /// 1-based line number.
        line: usize,
    },
    /// A record contained an invalid residue.
    BadSequence {
        /// Record identifier.
        id: String,
        /// Underlying sequence error.
        source: SequenceError,
    },
    /// A record contained no residues at all.
    EmptyRecord {
        /// Record identifier.
        id: String,
    },
    /// Gapped records had inconsistent lengths (for alignment parsing).
    RaggedAlignment {
        /// Expected number of columns.
        expected: usize,
        /// Actual number of columns in the offending record.
        got: usize,
        /// Record identifier.
        id: String,
    },
}

impl std::fmt::Display for FastaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FastaError::DataBeforeHeader { line } => {
                write!(f, "sequence data before first header at line {line}")
            }
            FastaError::BadSequence { id, source } => {
                write!(f, "record {id}: {source}")
            }
            FastaError::EmptyRecord { id } => write!(f, "record {id} is empty"),
            FastaError::RaggedAlignment { expected, got, id } => {
                write!(f, "record {id} has {got} columns, expected {expected} (ragged alignment)")
            }
        }
    }
}

impl std::error::Error for FastaError {}

/// Parse ungapped FASTA text into sequences. Gap characters are rejected.
pub fn parse(text: &str) -> Result<Vec<Sequence>, FastaError> {
    let records = split_records(text)?;
    records
        .into_iter()
        .map(|(id, body)| {
            Sequence::from_str(id.clone(), &body)
                .map_err(|source| FastaError::BadSequence { id, source })
        })
        .collect()
}

/// Parse gapped FASTA text into an alignment. All records must have the same
/// number of columns.
pub fn parse_alignment(text: &str) -> Result<Msa, FastaError> {
    let records = split_records(text)?;
    let mut ids = Vec::with_capacity(records.len());
    let mut rows: Vec<Vec<u8>> = Vec::with_capacity(records.len());
    let mut width: Option<usize> = None;
    for (id, body) in records {
        let mut row = Vec::with_capacity(body.len());
        for (pos, ch) in body.chars().enumerate() {
            if ch.is_whitespace() {
                continue;
            }
            match char_to_code(ch) {
                Some(code) => row.push(code),
                None => {
                    return Err(FastaError::BadSequence {
                        id,
                        source: SequenceError::InvalidResidue { ch, pos },
                    })
                }
            }
        }
        if row.is_empty() {
            return Err(FastaError::EmptyRecord { id });
        }
        match width {
            None => width = Some(row.len()),
            Some(w) if w != row.len() => {
                return Err(FastaError::RaggedAlignment { expected: w, got: row.len(), id })
            }
            _ => {}
        }
        ids.push(id);
        rows.push(row);
    }
    Ok(Msa::from_rows(ids, rows))
}

/// Error from the streaming [`Reader`].
///
/// Unlike [`FastaError`] this cannot be `Clone`/`Eq` because it carries the
/// underlying [`std::io::Error`] when the byte source itself fails (which
/// includes non-UTF-8 bytes, surfaced by `read_line` as
/// [`std::io::ErrorKind::InvalidData`]).
#[derive(Debug)]
pub enum ReadError {
    /// The underlying reader failed (or produced non-UTF-8 bytes).
    Io(std::io::Error),
    /// The FASTA text itself was malformed.
    Parse(FastaError),
}

impl ReadError {
    /// Whether this error means the input bytes were not UTF-8 text.
    pub fn is_not_utf8(&self) -> bool {
        matches!(self, ReadError::Io(e) if e.kind() == std::io::ErrorKind::InvalidData)
    }
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) if self.is_not_utf8() => {
                write!(f, "input is not UTF-8 text ({e})")
            }
            ReadError::Io(e) => write!(f, "{e}"),
            ReadError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            ReadError::Parse(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> ReadError {
        ReadError::Io(e)
    }
}

/// Streaming ungapped-FASTA reader over any [`std::io::BufRead`].
///
/// Yields one [`Sequence`] per record, holding at most a single record in
/// memory at a time — a 50k-read input never materialises as one giant
/// `String` the way [`parse`] requires. Record semantics are byte-for-byte
/// identical to [`parse`]: trailing whitespace (including CRLF endings) is
/// trimmed per line, blank lines are skipped, the id is the first
/// whitespace-delimited header token, data before the first header is an
/// error, and a final record without a trailing newline still parses.
///
/// After the first error the iterator fuses and yields nothing further.
///
/// ```
/// use bioseq::fasta::Reader;
/// let input = b">a desc\nMKV\nLAW\n>b\nMKIL";
/// let seqs: Vec<_> = Reader::new(&input[..]).collect::<Result<_, _>>().unwrap();
/// assert_eq!(seqs[0].id, "a");
/// assert_eq!(seqs[0].to_letters(), "MKVLAW");
/// assert_eq!(seqs[1].to_letters(), "MKIL");
/// ```
#[derive(Debug)]
pub struct Reader<R> {
    inner: R,
    /// Record under construction: `(id, body-so-far)`.
    pending: Option<(String, String)>,
    /// 1-based number of the last line read.
    lineno: usize,
    done: bool,
}

impl<R: std::io::BufRead> Reader<R> {
    /// Wrap a buffered byte source.
    pub fn new(inner: R) -> Reader<R> {
        Reader { inner, pending: None, lineno: 0, done: false }
    }

    fn finish(&mut self, id: String, body: String) -> Result<Sequence, ReadError> {
        Sequence::from_str(id.clone(), &body)
            .map_err(|source| ReadError::Parse(FastaError::BadSequence { id, source }))
    }

    fn next_record(&mut self) -> Result<Option<Sequence>, ReadError> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.inner.read_line(&mut line)? == 0 {
                return match self.pending.take() {
                    Some((id, body)) => self.finish(id, body).map(Some),
                    None => Ok(None),
                };
            }
            self.lineno += 1;
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                continue;
            }
            if let Some(header) = trimmed.strip_prefix('>') {
                let id = header.split_whitespace().next().unwrap_or("").to_string();
                if let Some((prev_id, prev_body)) = self.pending.replace((id, String::new())) {
                    return self.finish(prev_id, prev_body).map(Some);
                }
            } else {
                match self.pending.as_mut() {
                    Some((_, body)) => body.push_str(trimmed),
                    None => {
                        return Err(ReadError::Parse(FastaError::DataBeforeHeader {
                            line: self.lineno,
                        }))
                    }
                }
            }
        }
    }
}

impl<R: std::io::BufRead> Iterator for Reader<R> {
    type Item = Result<Sequence, ReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.next_record() {
            Ok(Some(seq)) => Some(Ok(seq)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Open a FASTA file for streaming: a [`Reader`] over a buffered file.
pub fn open(path: &std::path::Path) -> std::io::Result<Reader<std::io::BufReader<std::fs::File>>> {
    Ok(Reader::new(std::io::BufReader::new(std::fs::File::open(path)?)))
}

fn split_records(text: &str) -> Result<Vec<(String, String)>, FastaError> {
    let mut records: Vec<(String, String)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            let id = header.split_whitespace().next().unwrap_or("").to_string();
            records.push((id, String::new()));
        } else {
            match records.last_mut() {
                Some((_, body)) => body.push_str(line),
                None => return Err(FastaError::DataBeforeHeader { line: lineno + 1 }),
            }
        }
    }
    Ok(records)
}

/// Serialise sequences as FASTA with 60-column wrapping.
pub fn write(seqs: &[Sequence]) -> String {
    let mut out = String::new();
    for s in seqs {
        let _ = writeln!(out, ">{}", s.id);
        wrap_into(&mut out, &s.to_letters());
    }
    out
}

/// Serialise an alignment as gapped FASTA with 60-column wrapping.
pub fn write_alignment(msa: &Msa) -> String {
    let mut out = String::new();
    for i in 0..msa.num_rows() {
        let _ = writeln!(out, ">{}", msa.ids()[i]);
        let letters: String = msa.row(i).iter().map(|&c| code_to_char(c)).collect();
        wrap_into(&mut out, &letters);
    }
    out
}

fn wrap_into(out: &mut String, letters: &str) {
    let bytes = letters.as_bytes();
    if bytes.is_empty() {
        // `chunks(60)` yields nothing for an empty body, which would glue
        // the header straight onto the next record's header. Emit one
        // blank body line so every record owns at least one line.
        out.push('\n');
        return;
    }
    for chunk in bytes.chunks(60) {
        out.push_str(std::str::from_utf8(chunk).expect("ASCII"));
        out.push('\n');
    }
}

/// Convenience: whether a parsed alignment row code is a gap.
#[inline]
pub fn is_gap(code: u8) -> bool {
    code == GAP_CODE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_two_records() {
        let text = ">a desc here\nMKVL\nAW\n>b\nMKIL\n";
        let seqs = parse(text).unwrap();
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].id, "a");
        assert_eq!(seqs[0].to_letters(), "MKVLAW");
        assert_eq!(seqs[1].to_letters(), "MKIL");
    }

    #[test]
    fn roundtrip() {
        let text = ">a\nMKVLAW\n>b\nMKIL\n";
        let seqs = parse(text).unwrap();
        let out = write(&seqs);
        let again = parse(&out).unwrap();
        assert_eq!(seqs, again);
    }

    #[test]
    fn wrapping_at_60() {
        let long = "M".repeat(150);
        let seqs = parse(&format!(">x\n{long}\n")).unwrap();
        let out = write(&seqs);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 1 + 3); // header + 60 + 60 + 30
        assert_eq!(lines[1].len(), 60);
        assert_eq!(lines[3].len(), 30);
    }

    #[test]
    fn zero_length_record_still_owns_a_body_line() {
        // `chunks(60)` yields nothing for an empty body; without the
        // explicit blank line the header would glue straight onto the
        // next record's header and the text would stop round-tripping.
        let mut out = String::new();
        wrap_into(&mut out, "");
        assert_eq!(out, "\n", "an empty body writes exactly one blank line");
        // A record after an empty one keeps its own header line.
        let mut text = String::from(">empty\n");
        wrap_into(&mut text, "");
        text.push_str(">b\n");
        wrap_into(&mut text, "MKVL");
        assert_eq!(text, ">empty\n\n>b\nMKVL\n");
        // Both parsers see the same two records: the empty one is
        // rejected as empty (never silently merged into its neighbour),
        // and the healthy one survives untouched.
        assert!(matches!(
            parse(&text),
            Err(FastaError::BadSequence { ref id, source: SequenceError::Empty }) if id == "empty"
        ));
        assert!(matches!(
            parse_alignment(&text),
            Err(FastaError::EmptyRecord { ref id }) if id == "empty"
        ));
    }

    #[test]
    fn data_before_header_rejected() {
        assert!(matches!(parse("MKVL\n>a\nMK\n"), Err(FastaError::DataBeforeHeader { line: 1 })));
    }

    #[test]
    fn gapped_alignment_parses() {
        let text = ">a\nMK-VL\n>b\nMKI-L\n";
        let msa = parse_alignment(text).unwrap();
        assert_eq!(msa.num_rows(), 2);
        assert_eq!(msa.num_cols(), 5);
    }

    #[test]
    fn ragged_alignment_rejected() {
        let text = ">a\nMK-VL\n>b\nMKIL\n";
        assert!(matches!(
            parse_alignment(text),
            Err(FastaError::RaggedAlignment { expected: 5, got: 4, .. })
        ));
    }

    #[test]
    fn alignment_roundtrip() {
        let text = ">a\nMK-VL\n>b\nMKI-L\n";
        let msa = parse_alignment(text).unwrap();
        let out = write_alignment(&msa);
        let again = parse_alignment(&out).unwrap();
        assert_eq!(msa.rows(), again.rows());
    }

    #[test]
    fn gap_in_ungapped_rejected() {
        assert!(parse(">a\nMK-VL\n").is_err());
    }

    #[test]
    fn empty_input_ok() {
        assert!(parse("").unwrap().is_empty());
    }

    /// Collect the streaming reader over in-memory bytes, mapping its
    /// parse errors back to `FastaError` so results compare directly
    /// against `parse`.
    fn stream(text: &str) -> Result<Vec<Sequence>, FastaError> {
        Reader::new(text.as_bytes())
            .map(|r| {
                r.map_err(|e| match e {
                    ReadError::Parse(p) => p,
                    ReadError::Io(io) => panic!("in-memory source cannot fail: {io}"),
                })
            })
            .collect()
    }

    #[test]
    fn reader_matches_parse_on_awkward_inputs() {
        // CRLF endings, blank lines, multi-line bodies, descriptions,
        // missing trailing newline, empty input, lone header.
        for text in [
            "",
            ">a\nMKVL\n",
            ">a desc here\nMKVL\nAW\n>b\nMKIL\n",
            ">a\r\nMKVL\r\nAW\r\n>b\r\nMKIL\r\n",
            "\n\n>a\n\nMKVL\n\n\n>b\nMK\nIL\n\n",
            ">a\nMKVL\n>b\nMKIL",
            ">only-header\n",
            ">x\n  \nMK\n",
        ] {
            assert_eq!(stream(text), parse(text), "parity on {text:?}");
        }
    }

    #[test]
    fn reader_matches_parse_on_errors() {
        // Data before the first header, with the same 1-based line number.
        for text in ["MKVL\n>a\nMK\n", "\n\nMKVL\n>a\nMK\n", ">a\nMK\n>b\nMK-L\n>c\nMK\n"] {
            assert_eq!(stream(text), parse(text), "error parity on {text:?}");
        }
    }

    #[test]
    fn reader_fuses_after_error() {
        let mut r = Reader::new(&b"junk\n>a\nMKVL\n"[..]);
        assert!(r.next().unwrap().is_err());
        assert!(r.next().is_none(), "reader yields nothing after an error");
    }

    #[test]
    fn reader_surfaces_non_utf8_as_io_invalid_data() {
        let bytes: &[u8] = b">a\nMK\xFF\xFEVL\n";
        let errs: Vec<ReadError> = Reader::new(bytes).filter_map(Result::err).collect::<Vec<_>>();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].is_not_utf8(), "{:?}", errs[0]);
        assert!(errs[0].to_string().contains("not UTF-8"), "{}", errs[0]);
    }

    #[test]
    fn open_streams_a_real_file() {
        let dir = std::env::temp_dir().join(format!("bioseq-open-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("two.fa");
        std::fs::write(&path, ">a\nMKVL\n>b\nMKIL\n").unwrap();
        let seqs: Vec<Sequence> =
            open(&path).unwrap().collect::<Result<_, _>>().expect("file parses");
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[1].to_letters(), "MKIL");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_write_read_is_identity_over_varied_records() {
        // Deterministic "awkward" corpus: every residue code, lengths that
        // straddle the 60-column wrap, ids with descriptions to strip.
        let letters = "ACDEFGHIKLMNPQRSTVWYX";
        let mut text = String::new();
        for (i, len) in [1usize, 59, 60, 61, 120, 137, 233].iter().enumerate() {
            let _ = writeln!(text, ">rec{i} some description {i}");
            for pos in 0..*len {
                let c = letters.as_bytes()[(pos * 7 + i * 13) % letters.len()] as char;
                text.push(c);
                // Sprinkle in mid-record line breaks of ragged width.
                if pos % 47 == 46 {
                    text.push('\n');
                }
            }
            text.push('\n');
        }
        let first = parse(&text).unwrap();
        assert_eq!(first.len(), 7);
        let written = write(&first);
        let second = parse(&written).unwrap();
        assert_eq!(first, second, "read -> write -> read must be the identity");
        // And serialisation is a fixpoint: writing the re-read set changes
        // nothing, so repeated round-trips are stable forever.
        assert_eq!(written, write(&second));
    }

    #[test]
    fn alignment_read_write_read_is_identity_with_gap_structure() {
        let mut text = String::new();
        // 5 rows x 130 columns with systematic gap patterns crossing the
        // wrap boundary, including leading/trailing gaps and an all-X row.
        for row in 0..5usize {
            let _ = writeln!(text, ">row{row} trailing words ignored");
            for col in 0..130usize {
                let ch = if (col + row) % 4 == 0 {
                    '-'
                } else if row == 3 {
                    'X'
                } else {
                    "ACDEFGHIKLMNPQRSTVWY".as_bytes()[(col + row * 3) % 20] as char
                };
                text.push(ch);
            }
            text.push('\n');
        }
        let first = parse_alignment(&text).unwrap();
        assert_eq!((first.num_rows(), first.num_cols()), (5, 130));
        let written = write_alignment(&first);
        let second = parse_alignment(&written).unwrap();
        assert_eq!(first.ids(), second.ids());
        assert_eq!(first.rows(), second.rows());
        assert_eq!(written, write_alignment(&second), "serialised form is a fixpoint");
    }
}
