//! # psrs — Parallel Sorting by Regular Sampling (SampleSort)
//!
//! Sample-Align-D redistributes sequences between processors exactly the
//! way SampleSort/PSRS redistributes keys: sort locally, pick `p − 1`
//! evenly spaced (regular) samples per processor, gather the `p(p−1)`
//! sample keys at the root, pick `p − 1` pivots from the sorted sample,
//! broadcast them, and exchange buckets all-to-all. Shi & Schaeffer (1992)
//! prove that with regular sampling no processor ends up with more than
//! `2N/p` items as long as `N > p³` — the paper leans on this bound for
//! load balancing, and [`max_partition_bound`] restates it.
//!
//! Two implementations share the sampling/pivot code:
//! * [`cluster::psrs`] — the real distributed protocol over a
//!   [`vcluster::Node`] (this is what Sample-Align-D calls);
//! * [`shared::sample_sort_by`] — a rayon shared-memory equivalent used by
//!   the multithreaded variant of the system.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod sampling;
pub mod shared;

pub use cluster::{psrs, PsrsOutcome};
pub use sampling::{max_partition_bound, regular_samples, select_pivots, sort_work};
