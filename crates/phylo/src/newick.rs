//! Newick tree serialisation and parsing.
//!
//! Leaves are labelled through a caller-provided name table (or `L<i>` by
//! default); branch lengths are written with 6 significant digits.

use crate::tree::{NodeId, Tree};

/// Serialise a tree to Newick, labelling leaf item `i` with `names[i]`
/// (falls back to `L<i>` when the table is short).
pub fn to_newick(tree: &Tree, names: &[String]) -> String {
    fn rec(tree: &Tree, id: NodeId, names: &[String], out: &mut String) {
        let node = tree.node(id);
        match node.children {
            Some((a, b)) => {
                out.push('(');
                rec(tree, a, names, out);
                out.push(',');
                rec(tree, b, names, out);
                out.push(')');
            }
            None => {
                let leaf = node.leaf.expect("leaf node");
                match names.get(leaf) {
                    Some(n) => out.push_str(n),
                    None => out.push_str(&format!("L{leaf}")),
                }
            }
        }
        if tree.node(id).parent.is_some() {
            out.push_str(&format!(":{:.6}", node.branch_len));
        }
    }
    let mut out = String::new();
    rec(tree, tree.root(), names, &mut out);
    out.push(';');
    out
}

/// Error while parsing Newick text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewickError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset where the error was noticed.
    pub at: usize,
}

impl std::fmt::Display for NewickError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "newick parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for NewickError {}

/// Parse a strictly binary Newick string. Returns the tree plus the leaf
/// names in leaf-index order.
pub fn parse_newick(text: &str) -> Result<(Tree, Vec<String>), NewickError> {
    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
        names: Vec<String>,
        // (left, right, branch length pending assignment)
        merges: Vec<(usize, usize, f64)>,
        next_internal: usize,
        branch: Vec<(usize, f64)>,
    }
    enum Parsed {
        Node(usize),
    }
    impl<'a> Parser<'a> {
        fn err<T>(&self, message: &str) -> Result<T, NewickError> {
            Err(NewickError { message: message.into(), at: self.pos })
        }
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }
        fn node(&mut self, leaf_budget: &mut usize) -> Result<Parsed, NewickError> {
            match self.peek() {
                Some(b'(') => {
                    self.pos += 1;
                    let Parsed::Node(a) = self.subtree(leaf_budget)?;
                    if self.peek() != Some(b',') {
                        return self.err("expected ','");
                    }
                    self.pos += 1;
                    let Parsed::Node(b) = self.subtree(leaf_budget)?;
                    if self.peek() != Some(b')') {
                        return self.err("expected ')' (trees must be binary)");
                    }
                    self.pos += 1;
                    let id = self.next_internal;
                    self.next_internal += 1;
                    self.merges.push((a, b, 0.0));
                    Ok(Parsed::Node(id))
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if matches!(c, b',' | b')' | b':' | b';' | b'(') {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.pos == start {
                        return self.err("expected leaf name");
                    }
                    let name =
                        std::str::from_utf8(&self.bytes[start..self.pos]).unwrap().to_string();
                    let leaf = self.names.len();
                    self.names.push(name);
                    *leaf_budget += 1;
                    Ok(Parsed::Node(leaf))
                }
                None => self.err("unexpected end of input"),
            }
        }
        fn subtree(&mut self, leaf_budget: &mut usize) -> Result<Parsed, NewickError> {
            let Parsed::Node(id) = self.node(leaf_budget)?;
            if self.peek() == Some(b':') {
                self.pos += 1;
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if matches!(c, b',' | b')' | b';') {
                        break;
                    }
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
                let len: f64 = match text.parse() {
                    Ok(v) => v,
                    Err(_) => return self.err("bad branch length"),
                };
                self.branch.push((id, len));
            }
            Ok(Parsed::Node(id))
        }
    }

    let trimmed = text.trim();
    let mut p = Parser {
        bytes: trimmed.as_bytes(),
        pos: 0,
        names: Vec::new(),
        merges: Vec::new(),
        next_internal: 0,
        branch: Vec::new(),
    };
    let mut leaf_count = 0usize;
    // Two-pass trick: we don't know the leaf count up front, so parse with
    // provisional ids (leaves get 0.., internals get a separate counter)
    // then remap.
    // First pass gathers structure; internal ids start at a large offset.
    p.next_internal = 1 << 30;
    let Parsed::Node(root_prov) = p.subtree(&mut leaf_count)?;
    if p.peek() == Some(b';') {
        p.pos += 1;
    }
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    let n = leaf_count;
    if n == 0 {
        return Err(NewickError { message: "no leaves".into(), at: 0 });
    }
    if n == 1 {
        return Ok((Tree::singleton(), p.names));
    }
    // Remap provisional internal ids (1<<30 + k) to (n + k).
    let remap = |id: usize| -> usize {
        if id >= (1 << 30) {
            n + (id - (1 << 30))
        } else {
            id
        }
    };
    let merges: Vec<(usize, usize, f64)> = p
        .merges
        .iter()
        .enumerate()
        .map(|(k, &(a, b, _))| (remap(a), remap(b), (k + 1) as f64))
        .collect();
    if merges.len() != n - 1 {
        return Err(NewickError {
            message: format!("{} merges for {} leaves (not binary?)", merges.len(), n),
            at: 0,
        });
    }
    let _ = root_prov;
    let mut tree = Tree::from_merges(n, &merges);
    for (id, len) in p.branch {
        tree.set_branch_len(remap(id), len.max(0.0));
    }
    Ok((tree, p.names))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distmat::DistMatrix;
    use crate::upgma::upgma;

    #[test]
    fn serialise_simple_tree() {
        let mut m = DistMatrix::zeros(2);
        m.set(0, 1, 4.0);
        let t = upgma(&m);
        let s = to_newick(&t, &["a".into(), "b".into()]);
        assert_eq!(s, "(a:2.000000,b:2.000000);");
    }

    #[test]
    fn roundtrip_preserves_topology_and_lengths() {
        let m = DistMatrix::from_fn(5, |i, j| ((i * 3 + j) % 7) as f64 + 1.0);
        let t = upgma(&m);
        let names: Vec<String> = (0..5).map(|i| format!("seq{i}")).collect();
        let s = to_newick(&t, &names);
        let (t2, names2) = parse_newick(&s).unwrap();
        t2.validate().unwrap();
        assert_eq!(t2.n_leaves(), 5);
        // Leaf pairwise path lengths must be preserved (topology+branch
        // lengths), though leaf numbering may permute.
        let idx = |name: &str, names: &[String]| names.iter().position(|n| n == name).unwrap();
        for a in 0..5 {
            for b in 0..a {
                let n1a = t.leaf_node(a).unwrap();
                let n1b = t.leaf_node(b).unwrap();
                let d1 = t.path_length(n1a, n1b);
                let a2 = idx(&names[a], &names2);
                let b2 = idx(&names[b], &names2);
                let n2a = t2.leaf_node(a2).unwrap();
                let n2b = t2.leaf_node(b2).unwrap();
                let d2 = t2.path_length(n2a, n2b);
                assert!((d1 - d2).abs() < 1e-6, "pair {a},{b}: {d1} vs {d2}");
            }
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_newick("((a,b);").is_err());
        assert!(parse_newick("(a,b))").is_err());
        assert!(parse_newick("").is_err());
        assert!(parse_newick("(a,b,c);").is_err()); // non-binary
    }

    #[test]
    fn parse_single_leaf() {
        let (t, names) = parse_newick("onlyleaf;").unwrap();
        assert_eq!(t.n_leaves(), 1);
        assert_eq!(names, vec!["onlyleaf".to_string()]);
    }

    #[test]
    fn default_names_when_table_short() {
        let mut m = DistMatrix::zeros(2);
        m.set(0, 1, 2.0);
        let t = upgma(&m);
        let s = to_newick(&t, &[]);
        assert!(s.contains("L0") && s.contains("L1"));
    }

    #[test]
    fn parse_print_parse_is_identity_on_text() {
        // Start from Newick *text* (nested, unbalanced shapes, varied
        // branch lengths): parse -> print must reproduce a string that
        // parses to the same names and prints identically — i.e. printing
        // is a fixpoint after one normalisation pass.
        let inputs = [
            "(a:1.000000,b:2.500000);",
            "((a:0.100000,b:0.200000):0.300000,c:1.000000);",
            "((((d1:0.125000,d2:0.250000):0.500000,c:0.750000):1.000000,b:2.000000):0.062500,a:4.000000);",
            "((a:1.000000,b:1.000000):0.500000,(c:2.000000,d:0.250000):0.125000);",
        ];
        for input in inputs {
            let (t1, names1) = parse_newick(input).unwrap();
            t1.validate().unwrap();
            let printed = to_newick(&t1, &names1);
            let (t2, names2) = parse_newick(&printed).unwrap();
            t2.validate().unwrap();
            assert_eq!(names1, names2, "leaf order must survive {input}");
            assert_eq!(printed, to_newick(&t2, &names2), "print is a fixpoint for {input}");
            // Path metrics agree leaf-for-leaf.
            for a in 0..names1.len() {
                for b in 0..a {
                    let d1 = t1.path_length(t1.leaf_node(a).unwrap(), t1.leaf_node(b).unwrap());
                    let d2 = t2.path_length(t2.leaf_node(a).unwrap(), t2.leaf_node(b).unwrap());
                    assert!((d1 - d2).abs() < 1e-9, "{input}: pair {a},{b}");
                }
            }
        }
    }

    #[test]
    fn generated_trees_roundtrip_through_text() {
        // print -> parse -> print over machine-built trees of several sizes.
        for n in [2usize, 3, 7, 16, 33] {
            let m = DistMatrix::from_fn(n, |i, j| ((i * 31 + j * 17) % 23) as f64 + 0.5);
            let t = upgma(&m);
            let names: Vec<String> = (0..n).map(|i| format!("tip{i:02}")).collect();
            let printed = to_newick(&t, &names);
            let (t2, names2) = parse_newick(&printed).unwrap();
            t2.validate().unwrap();
            assert_eq!(t2.n_leaves(), n);
            let printed2 = to_newick(&t2, &names2);
            assert_eq!(printed, printed2, "n={n}: second print must match first");
        }
    }
}
