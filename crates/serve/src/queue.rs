//! The bounded job queue: priority first, then per-client round-robin.
//!
//! Workers self-schedule off a shared queue, as in the PR-5 batch runner,
//! but the serve queue adds three things the batch runner never needed:
//!
//! 1. **Admission control** — the queue is bounded; a full queue rejects
//!    the submission instead of letting one client buffer unbounded work.
//! 2. **Fairness** — among jobs of equal priority, the client that was
//!    served longest ago goes first, so a client that dumps fifty jobs
//!    cannot starve a client that submits one.
//! 3. **Atomic admission** — [`JobQueue::push`] runs a caller-supplied
//!    durability action (journal the `Accepted` entry, acknowledge the
//!    client) *before* the job becomes visible to workers, under the queue
//!    lock, so no worker can start a job whose acceptance was never
//!    journaled.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A job waiting for a worker.
#[derive(Debug, Clone)]
pub struct QueuedJob {
    /// Server-unique job id.
    pub id: String,
    /// Submitting client connection (None for recovery re-queues).
    pub client: Option<u64>,
    /// Scheduling priority; higher runs first.
    pub priority: i64,
    /// Digest of `fasta`.
    pub input: String,
    /// Config fingerprint the job will run under.
    pub fingerprint: String,
    /// Raw FASTA input.
    pub fasta: String,
}

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity.
    Full,
    /// The queue has been closed for new work (drain or kill).
    Closed,
}

struct Inner {
    pending: Vec<QueuedJob>,
    /// Tick at which each client was last served; absent = never served,
    /// which sorts first.
    served: HashMap<u64, u64>,
    tick: u64,
    capacity: usize,
    closed: bool,
}

/// The shared queue. All methods are safe to call from any thread.
pub struct JobQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
}

impl JobQueue {
    /// A queue admitting at most `capacity` pending jobs.
    pub fn new(capacity: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(Inner {
                pending: Vec::new(),
                served: HashMap::new(),
                tick: 0,
                capacity,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Admit a job. `before_visible` runs under the queue lock after the
    /// capacity check passes and before any worker can see the job; if it
    /// fails, the job is not admitted.
    pub fn push<E>(
        &self,
        job: QueuedJob,
        before_visible: impl FnOnce() -> Result<(), E>,
    ) -> Result<(), PushResult<E>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushResult::Refused(PushError::Closed));
        }
        if inner.pending.len() >= inner.capacity {
            return Err(PushResult::Refused(PushError::Full));
        }
        before_visible().map_err(PushResult::Action)?;
        inner.pending.push(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Re-admit a job during recovery: bypasses the capacity bound (the
    /// journal already owes this work) but still respects `closed`.
    pub fn push_recovered(&self, job: QueuedJob) -> Result<(), PushError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed);
        }
        inner.pending.push(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Take the next job, blocking up to `timeout`. Returns `None` on
    /// timeout or when the queue is closed and drained.
    pub fn pop(&self, timeout: Duration) -> Option<QueuedJob> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(at) = Self::choose(&inner) {
                let job = inner.pending.remove(at);
                if let Some(c) = job.client {
                    let tick = inner.tick;
                    inner.served.insert(c, tick);
                    inner.tick += 1;
                }
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            let (guard, wait) = self.ready.wait_timeout(inner, timeout).unwrap();
            inner = guard;
            if wait.timed_out() {
                return Self::choose(&inner).map(|at| {
                    let job = inner.pending.remove(at);
                    if let Some(c) = job.client {
                        let tick = inner.tick;
                        inner.served.insert(c, tick);
                        inner.tick += 1;
                    }
                    job
                });
            }
        }
    }

    /// The scheduling rule: highest priority wins; within a priority the
    /// client served longest ago wins (never-served sorts first, then by
    /// client id for determinism); within a client, FIFO.
    fn choose(inner: &Inner) -> Option<usize> {
        let top = inner.pending.iter().map(|j| j.priority).max()?;
        let mut best: Option<(u64, u64, usize)> = None;
        for (at, job) in inner.pending.iter().enumerate() {
            if job.priority != top {
                continue;
            }
            // Key: (last-served tick, client id) — both 0 for anonymous
            // recovery jobs, which therefore go before any served client.
            let client = job.client.unwrap_or(0);
            let served = job.client.and_then(|c| inner.served.get(&c)).map_or(0, |t| t + 1);
            let key = (served, client);
            match best {
                Some((s, c, _)) if (s, c) <= key => {}
                _ => best = Some((key.0, key.1, at)),
            }
        }
        best.map(|(_, _, at)| at)
    }

    /// Remove a still-pending job by id: the immediate-release path for a
    /// `CANCEL` that lands before a worker picks the job up.
    pub fn cancel(&self, id: &str) -> Option<QueuedJob> {
        let mut inner = self.inner.lock().unwrap();
        let at = inner.pending.iter().position(|j| j.id == id)?;
        Some(inner.pending.remove(at))
    }

    /// Number of pending jobs.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().pending.len()
    }

    /// Whether the queue has no pending jobs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stop admitting work; blocked `pop`s return once drained.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Drop all pending jobs (abrupt kill).
    pub fn clear(&self) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let n = inner.pending.len();
        inner.pending.clear();
        n
    }
}

/// Outcome of a failed [`JobQueue::push`].
#[derive(Debug)]
pub enum PushResult<E> {
    /// The queue refused the job (full or closed).
    Refused(PushError),
    /// The `before_visible` durability action failed.
    Action(E),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: &str, client: u64, priority: i64) -> QueuedJob {
        QueuedJob {
            id: id.into(),
            client: Some(client),
            priority,
            input: String::new(),
            fingerprint: String::new(),
            fasta: String::new(),
        }
    }

    fn ok_push(q: &JobQueue, j: QueuedJob) {
        q.push::<()>(j, || Ok(())).map_err(|_| "push failed").unwrap();
    }

    fn drain(q: &JobQueue) -> Vec<String> {
        let mut ids = Vec::new();
        while let Some(j) = q.pop(Duration::from_millis(1)) {
            ids.push(j.id);
        }
        ids
    }

    #[test]
    fn priority_beats_arrival_order() {
        let q = JobQueue::new(16);
        ok_push(&q, job("low", 1, 0));
        ok_push(&q, job("high", 1, 5));
        ok_push(&q, job("mid", 1, 2));
        assert_eq!(drain(&q), ["high", "mid", "low"]);
    }

    #[test]
    fn equal_priority_round_robins_across_clients() {
        let q = JobQueue::new(16);
        // Client 1 dumps three jobs, then client 2 submits one.
        for id in ["a1", "a2", "a3"] {
            ok_push(&q, job(id, 1, 0));
        }
        ok_push(&q, job("b1", 2, 0));
        // a1 goes first (nobody served yet, lower client id), but b1 must
        // come before a2: client 2 has been served less recently.
        assert_eq!(drain(&q), ["a1", "b1", "a2", "a3"]);
    }

    #[test]
    fn within_a_client_order_is_fifo() {
        let q = JobQueue::new(16);
        for id in ["first", "second", "third"] {
            ok_push(&q, job(id, 7, 0));
        }
        assert_eq!(drain(&q), ["first", "second", "third"]);
    }

    #[test]
    fn bounded_push_rejects_when_full() {
        let q = JobQueue::new(2);
        ok_push(&q, job("a", 1, 0));
        ok_push(&q, job("b", 1, 0));
        match q.push::<()>(job("c", 1, 0), || Ok(())) {
            Err(PushResult::Refused(PushError::Full)) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        // Recovery pushes bypass the bound.
        q.push_recovered(job("r", 1, 0)).unwrap();
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn failed_admission_action_keeps_job_invisible() {
        let q = JobQueue::new(4);
        let res = q.push(job("a", 1, 0), || Err("journal write failed"));
        assert!(matches!(res, Err(PushResult::Action("journal write failed"))));
        assert!(q.is_empty());
    }

    #[test]
    fn closed_queue_refuses_and_drains() {
        let q = JobQueue::new(4);
        ok_push(&q, job("a", 1, 0));
        q.close();
        assert!(matches!(
            q.push::<()>(job("b", 1, 0), || Ok(())),
            Err(PushResult::Refused(PushError::Closed))
        ));
        assert!(matches!(q.push_recovered(job("c", 1, 0)), Err(PushError::Closed)));
        assert_eq!(drain(&q), ["a"]);
        assert!(q.pop(Duration::from_millis(1)).is_none());
    }

    #[test]
    fn cancel_releases_pending_slot_immediately() {
        let q = JobQueue::new(2);
        ok_push(&q, job("a", 1, 0));
        ok_push(&q, job("b", 1, 0));
        let gone = q.cancel("a").expect("a is pending");
        assert_eq!(gone.id, "a");
        assert!(q.cancel("a").is_none(), "cancel is idempotent on the queue");
        // The slot is free again right away.
        ok_push(&q, job("c", 1, 0));
        assert_eq!(drain(&q), ["b", "c"]);
    }

    #[test]
    fn clear_drops_everything() {
        let q = JobQueue::new(4);
        ok_push(&q, job("a", 1, 0));
        ok_push(&q, job("b", 2, 0));
        assert_eq!(q.clear(), 2);
        assert!(q.is_empty());
    }
}
