//! MPI-flavoured collectives built from point-to-point messages.
//!
//! All collectives are SPMD: every rank must call the same collective in
//! the same order. Tags are derived from a per-rank collective sequence
//! number, so interleaving bugs surface as tag-mismatch panics instead of
//! silent data corruption.
//!
//! Algorithm choices mirror the assumptions in the paper's cost analysis:
//! `broadcast` uses a binomial tree (`O(log p)` rounds, the paper's
//! `O(p log p)` term for broadcasting `p` pivots), while `gather` and
//! `scatter` are linear at the root (the paper charges `O(p²·L)` for
//! collecting `p(p−1)` samples of length `L`). `all_to_allv` uses the
//! classic `p−1`-round pairwise exchange, giving the `O(N/p · L)`
//! redistribution cost derived in Section 3.

use crate::node::Node;
use crate::wire::WireSize;

/// Operation ids folded into collective tags (for diagnosable mismatches).
#[derive(Debug, Clone, Copy)]
#[repr(u64)]
enum Op {
    Broadcast = 1,
    Gather = 2,
    Scatter = 3,
    AllToAllV = 4,
    Reduce = 5,
    Barrier = 6,
}

const COLL_BIT: u64 = 1 << 63;

impl Node {
    fn coll_tag(&self, op: Op) -> u64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        COLL_BIT | (seq << 8) | op as u64
    }

    /// Binomial-tree broadcast from `root`. The root passes `Some(value)`,
    /// all other ranks pass `None`; every rank returns the value.
    ///
    /// # Panics
    /// Panics if the root passes `None` or a non-root passes `Some`.
    pub fn broadcast<M: WireSize + Clone + Send + 'static>(
        &self,
        root: usize,
        value: Option<M>,
    ) -> M {
        let tag = self.coll_tag(Op::Broadcast);
        let p = self.size();
        let vrank = (self.rank() + p - root) % p;
        if vrank == 0 {
            assert!(value.is_some(), "broadcast root must supply the value");
        } else {
            assert!(value.is_none(), "non-root rank {} supplied a value", self.rank());
        }
        let mut held = value;
        let mut mask = 1usize;
        while mask < p {
            if vrank < mask {
                let partner = vrank + mask;
                if partner < p {
                    let dst = (partner + root) % p;
                    self.send(dst, tag, held.clone().expect("holder has value"));
                }
            } else if vrank < 2 * mask {
                let src = (vrank - mask + root) % p;
                held = Some(self.recv::<M>(src, tag));
            }
            mask <<= 1;
        }
        held.expect("broadcast completed without a value")
    }

    /// Linear gather to `root` in rank order. Returns `Some(values)` at the
    /// root (index = source rank), `None` elsewhere.
    pub fn gather<M: WireSize + Send + 'static>(&self, root: usize, value: M) -> Option<Vec<M>> {
        let tag = self.coll_tag(Op::Gather);
        if self.rank() == root {
            let mut out: Vec<Option<M>> = (0..self.size()).map(|_| None).collect();
            out[root] = Some(value);
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = Some(self.recv::<M>(src, tag));
                }
            }
            Some(out.into_iter().map(|v| v.expect("gathered")).collect())
        } else {
            self.send(root, tag, value);
            None
        }
    }

    /// Linear scatter from `root`: rank `i` receives `items[i]`. The root
    /// passes `Some(items)` with exactly `size()` entries.
    pub fn scatter<M: WireSize + Send + 'static>(&self, root: usize, items: Option<Vec<M>>) -> M {
        let tag = self.coll_tag(Op::Scatter);
        if self.rank() == root {
            let items = items.expect("scatter root must supply items");
            assert_eq!(items.len(), self.size(), "scatter needs one item per rank");
            let mut own: Option<M> = None;
            for (dst, item) in items.into_iter().enumerate() {
                if dst == root {
                    own = Some(item);
                } else {
                    self.send(dst, tag, item);
                }
            }
            own.expect("root keeps its own item")
        } else {
            assert!(items.is_none(), "non-root rank {} supplied items", self.rank());
            self.recv::<M>(root, tag)
        }
    }

    /// All-gather: every rank ends up with every rank's value, indexed by
    /// source rank. Implemented as gather-to-0 plus broadcast.
    pub fn all_gather<M: WireSize + Clone + Send + 'static>(&self, value: M) -> Vec<M> {
        let gathered = self.gather(0, value);
        self.broadcast(0, gathered)
    }

    /// Personalised all-to-all with variable block sizes: `blocks[d]` is
    /// sent to rank `d`; the result's entry `s` is the block received from
    /// rank `s`. Uses the `p−1`-round pairwise exchange schedule.
    pub fn all_to_allv<M: WireSize + Send + 'static>(
        &self,
        mut blocks: Vec<Vec<M>>,
    ) -> Vec<Vec<M>> {
        assert_eq!(blocks.len(), self.size(), "need one block per destination");
        let tag = self.coll_tag(Op::AllToAllV);
        let p = self.size();
        let r = self.rank();
        let mut out: Vec<Vec<M>> = (0..p).map(|_| Vec::new()).collect();
        out[r] = std::mem::take(&mut blocks[r]);
        for round in 1..p {
            let dst = (r + round) % p;
            let src = (r + p - round) % p;
            self.send(dst, tag, std::mem::take(&mut blocks[dst]));
            out[src] = self.recv::<Vec<M>>(src, tag);
        }
        out
    }

    /// Sum-reduce `value` to `root` (linear). Returns `Some(sum)` at root.
    pub fn reduce_sum(&self, root: usize, value: f64) -> Option<f64> {
        let tag = self.coll_tag(Op::Reduce);
        if self.rank() == root {
            let mut acc = value;
            for src in 0..self.size() {
                if src != root {
                    acc += self.recv::<f64>(src, tag);
                }
            }
            Some(acc)
        } else {
            self.send(root, tag, value);
            None
        }
    }

    /// Max-allreduce: every rank learns the maximum of all values.
    pub fn allreduce_max(&self, value: f64) -> f64 {
        let all = self.all_gather(value);
        all.into_iter().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Synchronisation barrier (gather + broadcast of a unit token). In
    /// virtual time, every rank leaves the barrier no earlier than the
    /// token round-trip allows.
    pub fn barrier(&self) {
        let tag_up = self.coll_tag(Op::Barrier);
        // Inline linear gather/bcast of a zero-byte token.
        if self.rank() == 0 {
            for src in 1..self.size() {
                let _: u8 = self.recv(src, tag_up);
            }
            for dst in 1..self.size() {
                self.send(dst, tag_up, 0u8);
            }
        } else {
            self.send(0, tag_up, 0u8);
            let _: u8 = self.recv(0, tag_up);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::cluster::VirtualCluster;
    use crate::cost::CostModel;

    fn cluster(p: usize) -> VirtualCluster {
        VirtualCluster::new(p, CostModel::beowulf_2008())
    }

    #[test]
    fn broadcast_delivers_to_all() {
        for p in [1, 2, 3, 4, 7, 8] {
            let run = cluster(p).run(move |node| {
                let v = if node.rank() == 2 % p { Some(vec![1u32, 2, 3]) } else { None };
                node.broadcast(2 % p, v)
            });
            for r in run.results {
                assert_eq!(r, vec![1, 2, 3]);
            }
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let run = cluster(5).run(|node| node.gather(3, node.rank() as u64));
        for (rank, res) in run.results.into_iter().enumerate() {
            if rank == 3 {
                assert_eq!(res, Some(vec![0, 1, 2, 3, 4]));
            } else {
                assert_eq!(res, None);
            }
        }
    }

    #[test]
    fn scatter_routes_items() {
        let run = cluster(4).run(|node| {
            let items = (node.rank() == 1).then(|| vec![10u32, 11, 12, 13]);
            node.scatter(1, items)
        });
        assert_eq!(run.results, vec![10, 11, 12, 13]);
    }

    #[test]
    fn all_gather_everyone_sees_everything() {
        let run = cluster(6).run(|node| node.all_gather(node.rank() as u32 * 2));
        for r in run.results {
            assert_eq!(r, vec![0, 2, 4, 6, 8, 10]);
        }
    }

    #[test]
    fn all_to_allv_conserves_and_routes() {
        let p = 5;
        let run = cluster(p).run(move |node| {
            // Rank r sends the block [r*10 + d] to rank d.
            let blocks: Vec<Vec<u32>> =
                (0..p).map(|d| vec![(node.rank() * 10 + d) as u32; node.rank() + 1]).collect();
            node.all_to_allv(blocks)
        });
        for (d, received) in run.results.into_iter().enumerate() {
            for (s, block) in received.into_iter().enumerate() {
                assert_eq!(block.len(), s + 1, "dst {d} src {s}");
                assert!(block.iter().all(|&v| v == (s * 10 + d) as u32));
            }
        }
    }

    #[test]
    fn reduce_sums() {
        let run = cluster(4).run(|node| node.reduce_sum(0, node.rank() as f64 + 1.0));
        assert_eq!(run.results[0], Some(10.0));
        assert!(run.results[1..].iter().all(|r| r.is_none()));
    }

    #[test]
    fn allreduce_max_agrees() {
        let run = cluster(7).run(|node| node.allreduce_max((node.rank() as f64) * 1.5));
        for r in run.results {
            assert_eq!(r, 9.0);
        }
    }

    #[test]
    fn barrier_aligns_clocks_forward() {
        let run = cluster(4).run(|node| {
            // Rank 2 does heavy compute before the barrier.
            if node.rank() == 2 {
                node.advance(1.0);
            }
            node.barrier();
            node.clock()
        });
        // Every rank's post-barrier clock must be at least rank 2's 1.0s.
        for c in run.results {
            assert!(c >= 1.0, "clock {c} escaped the barrier early");
        }
    }

    #[test]
    fn broadcast_cost_grows_logarithmically() {
        // With fixed message size, makespan of a broadcast should grow
        // roughly with log2(p), not p.
        let time_for = |p: usize| {
            cluster(p)
                .run(|node| {
                    let v = (node.rank() == 0).then(|| vec![0u8; 1000]);
                    node.broadcast(0, v);
                })
                .makespan
        };
        let t4 = time_for(4);
        let t16 = time_for(16);
        // log2(16)/log2(4) = 2; allow generous slack but far below 4x.
        assert!(t16 < t4 * 3.0, "t4={t4} t16={t16}");
    }

    #[test]
    fn sequential_collectives_do_not_cross_talk() {
        let run = cluster(3).run(|node| {
            let a = node.all_gather(node.rank() as u32);
            let b = node.all_gather((node.rank() * 7) as u32);
            (a, b)
        });
        for (a, b) in run.results {
            assert_eq!(a, vec![0, 1, 2]);
            assert_eq!(b, vec![0, 7, 14]);
        }
    }
}
