//! A miniature of the paper's Table 2: PREFAB-style Q scores for the
//! sequential engines and for Sample-Align-D on a 4-node cluster.
//!
//! Run with: `cargo run --release --example prefab_eval [n_cases]`

use qbench::{evaluate_engine, evaluate_with, Benchmark, BenchmarkConfig};
use sample_align_d::prelude::*;

fn main() {
    let n_cases: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8);
    let benchmark = Benchmark::generate(&BenchmarkConfig {
        n_cases,
        seqs_per_case: 20,
        avg_len: 100,
        relatedness: (300.0, 1000.0),
        seed: 11,
    });
    println!("PREFAB-like benchmark: {n_cases} cases x 20 sequences\n");

    let cfg = SadConfig::default();
    let reports = vec![
        evaluate_engine(&MuscleLite::standard(), &benchmark),
        evaluate_engine(&MuscleLite::fast(), &benchmark),
        evaluate_engine(&ClustalLite::default(), &benchmark),
        evaluate_with("sample-align-d(p=4)", &benchmark, |seqs| {
            let cluster = VirtualCluster::new(4, CostModel::beowulf_2008());
            let report = Aligner::new(cfg.clone())
                .backend(Backend::Distributed(cluster))
                .run(seqs)
                .expect("benchmark cases are valid inputs");
            (report.msa, report.work)
        }),
    ];
    println!("{:<24} {:>8} {:>8} {:>8}", "method", "mean Q", "mean TC", "cases");
    for r in &reports {
        println!("{:<24} {:>8.3} {:>8.3} {:>8}", r.name, r.mean_q, r.mean_tc, r.scored_cases());
    }
    println!(
        "\npaper's Table 2 (real PREFAB): MUSCLE 0.645, CLUSTALW 0.563,\n\
         Sample-Align-D 0.544 — decomposition trades a little quality for\n\
         two orders of magnitude in throughput."
    );
}
