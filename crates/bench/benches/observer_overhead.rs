//! Overhead of the pipeline observer layer: a rayon run with a no-op
//! observer (plus a cancel token checked at every phase boundary) must
//! cost essentially the same as a bare run.
//!
//! Beyond the criterion timings, the bench asserts the acceptance bar
//! directly: over interleaved bare/observed run pairs (interleaving
//! decorrelates the comparison from machine-load drift), the observed
//! median stays within a generous noise bound (2× plus an absolute
//! 50 ms floor — the measured overhead is ~2%, so the bound is slack for
//! noisy CI runners while still catching a real per-event cost).

use criterion::{criterion_group, criterion_main, Criterion};
use sad_bench::rose_workload;
use sad_core::{Aligner, Backend, CancelToken, Event, Observer, SadConfig};
use std::sync::Arc;
use std::time::Instant;

struct Noop;

impl Observer for Noop {
    fn on_event(&self, _event: &Event) {}
}

fn timed_run(aligner: &Aligner, seqs: &[bioseq::Sequence]) -> f64 {
    let t0 = Instant::now();
    let report = aligner.run(seqs).expect("bench workloads are valid inputs");
    assert!(!report.work.is_zero());
    t0.elapsed().as_secs_f64()
}

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn bench(c: &mut Criterion) {
    let seqs = rose_workload(96, 0x0b5e);
    let cfg = SadConfig::default();
    let bare = Aligner::new(cfg.clone()).backend(Backend::Rayon { threads: 4 });
    let observed = Aligner::new(cfg)
        .backend(Backend::Rayon { threads: 4 })
        .observer(Arc::new(Noop))
        .cancel_token(CancelToken::new());

    // Warm-up, then the acceptance check on interleaved paired medians.
    let _ = (bare.run(&seqs), observed.run(&seqs));
    let (mut bare_times, mut observed_times) = (Vec::new(), Vec::new());
    for _ in 0..5 {
        bare_times.push(timed_run(&bare, &seqs));
        observed_times.push(timed_run(&observed, &seqs));
    }
    let t_bare = median(bare_times);
    let t_observed = median(observed_times);
    let ratio = t_observed / t_bare;
    println!(
        "rayon run, N={} L≈300: bare {t_bare:.4}s vs no-op observer {t_observed:.4}s \
         (ratio {ratio:.3})",
        seqs.len()
    );
    assert!(
        t_observed < t_bare * 2.0 + 0.050,
        "a no-op observer must add negligible overhead: bare {t_bare:.4}s vs {t_observed:.4}s"
    );

    c.bench_function("observer/rayon_bare", |b| b.iter(|| bare.run(&seqs).unwrap()));
    c.bench_function("observer/rayon_noop_observer", |b| b.iter(|| observed.run(&seqs).unwrap()));
}

criterion_group!(benches, bench);
criterion_main!(benches);
