//! Kernel-level guarantees of `align::dp` on realistic inputs:
//!
//! * `BandPolicy::Full` through the kernel reproduces the full-DP rows and
//!   scores byte-for-byte, whatever arena is used and however wide a fixed
//!   band is;
//! * adaptive banding (`BandPolicy::Auto`) converges to the full-DP
//!   optimum on rose-generated homologous families *and* on divergent
//!   pairs where the optimum needs off-diagonal excursions;
//! * the striped f32 kernel is a pure implementation swap: identical
//!   traceback ops (hence identical rows) to the scalar f64 oracle on
//!   every input family, under every band policy.

use align::dp::{BandPolicy, DpArena, DpKernel};
use align::pairwise::{global_align, global_align_with, global_align_with_kernel};
use align::papro::{align_profiles, align_profiles_with, align_profiles_with_kernel};
use align::Profile;
use bioseq::{GapPenalties, Msa, Sequence, SubstMatrix, Work, GAP_CODE};
use proptest::prelude::*;
use rosegen::{Family, FamilyConfig};

fn family(n: usize, avg_len: usize, relatedness: f64, seed: u64) -> Vec<Sequence> {
    Family::generate(&FamilyConfig { n_seqs: n, avg_len, relatedness, seed, ..Default::default() })
        .seqs
}

/// Every band shape the kernel supports: unrestricted, adaptive
/// (band-doubling with refills), and a deliberately narrow fixed band
/// that clips the optimum on most inputs.
const ALL_BANDS: [BandPolicy; 3] = [BandPolicy::Full, BandPolicy::Auto, BandPolicy::Fixed(16)];

/// Assert the striped kernel reproduces the scalar oracle's traceback
/// byte-for-byte on one pair, under every band policy.
fn assert_pair_kernel_identity(
    a: &Sequence,
    b: &Sequence,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
) {
    let mut arena = DpArena::new();
    for band in ALL_BANDS {
        let scalar =
            global_align_with_kernel(a, b, matrix, gaps, band, DpKernel::Scalar, &mut arena);
        let striped =
            global_align_with_kernel(a, b, matrix, gaps, band, DpKernel::Striped, &mut arena);
        assert_eq!(scalar.row_a, striped.row_a, "{band:?}");
        assert_eq!(scalar.row_b, striped.row_b, "{band:?}");
        assert_eq!(scalar.score, striped.score, "{band:?}");
        assert_eq!(scalar.work, striped.work, "{band:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On random rose families, a giant fixed band and a reused arena both
    /// reproduce the full-DP rows and scores byte-for-byte.
    #[test]
    fn full_band_reproduces_full_dp_rows(seed in 0u64..500, relatedness in 200f64..900.0) {
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties::default();
        let seqs = family(4, 90, relatedness, seed);
        let mut arena = DpArena::new();
        for pair in seqs.chunks(2) {
            let (a, b) = (&pair[0], &pair[1]);
            let full = global_align(a, b, &matrix, gaps);
            let huge = global_align_with(a, b, &matrix, gaps, BandPolicy::Fixed(4096), &mut arena);
            prop_assert_eq!(&huge.row_a, &full.row_a);
            prop_assert_eq!(&huge.row_b, &full.row_b);
            prop_assert_eq!(huge.score, full.score);
            let reused = global_align_with(a, b, &matrix, gaps, BandPolicy::Full, &mut arena);
            prop_assert_eq!(&reused.row_a, &full.row_a);
            prop_assert_eq!(&reused.row_b, &full.row_b);
        }
    }

    /// Adaptive banding matches the full-DP score on homologous families
    /// while filling no more cells than the full fill.
    #[test]
    fn auto_band_is_exact_and_cheaper_on_families(seed in 0u64..500) {
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties::default();
        let seqs = family(2, 450, 700.0, seed);
        let (a, b) = (&seqs[0], &seqs[1]);
        let full = global_align(a, b, &matrix, gaps);
        let auto = global_align_with(a, b, &matrix, gaps, BandPolicy::Auto, &mut DpArena::new());
        prop_assert_eq!(auto.score, full.score);
        prop_assert!(auto.work.dp_cells <= full.work.dp_cells, "banding must not cost extra here");
        prop_assert_eq!(auto.work.dp_cells_full, full.work.dp_cells);
    }

    /// Adaptive banding converges to the full optimum even on divergent
    /// pairs: unrelated sequences of different lengths, where the initial
    /// band is often too narrow and must be widened.
    #[test]
    fn auto_band_is_exact_on_divergent_pairs(
        a in prop::collection::vec(0u8..20, 40..160),
        b in prop::collection::vec(0u8..20, 40..160),
        open in 1i32..12,
        extend in 1i32..4,
    ) {
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties { open, extend };
        let sa = Sequence::from_codes("a", a);
        let sb = Sequence::from_codes("b", b);
        let full = global_align(&sa, &sb, &matrix, gaps);
        let auto = global_align_with(&sa, &sb, &matrix, gaps, BandPolicy::Auto, &mut DpArena::new());
        prop_assert_eq!(auto.score, full.score);
    }

    /// The profile kernel under adaptive banding matches the full-DP
    /// objective on profiles built from rose sub-families.
    #[test]
    fn auto_band_is_exact_for_profile_alignment(seed in 0u64..300) {
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties::default();
        let seqs = family(6, 150, 600.0, seed);
        let engine = align::MuscleLite::fast();
        use align::MsaEngine;
        let msa_a = engine.align(&seqs[..3]);
        let msa_b = engine.align(&seqs[3..]);
        let mut w = Work::ZERO;
        let pa = Profile::from_msa(&msa_a, &mut w);
        let pb = Profile::from_msa(&msa_b, &mut w);
        let full = align_profiles(&pa, &pb, &matrix, gaps);
        let auto =
            align_profiles_with(&pa, &pb, &matrix, gaps, BandPolicy::Auto, &mut DpArena::new());
        prop_assert!(
            (auto.score - full.score).abs() <= 1e-9 * full.score.abs().max(1.0),
            "auto {} vs full {}",
            auto.score,
            full.score
        );
    }

    /// Striped == scalar traceback identity on rose families, under all
    /// three band policies.
    #[test]
    fn striped_matches_scalar_on_families(seed in 0u64..400, relatedness in 200f64..900.0) {
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties::default();
        let seqs = family(4, 110, relatedness, seed);
        for pair in seqs.chunks(2) {
            assert_pair_kernel_identity(&pair[0], &pair[1], &matrix, gaps);
        }
    }

    /// Striped == scalar on unrelated random pairs of unequal length —
    /// the inputs most likely to exercise band refills and tie-breaks.
    #[test]
    fn striped_matches_scalar_on_divergent_pairs(
        a in prop::collection::vec(0u8..20, 1..160),
        b in prop::collection::vec(0u8..20, 1..160),
        open in 1i32..12,
        extend in 1i32..4,
    ) {
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties { open, extend };
        let sa = Sequence::from_codes("a", a);
        let sb = Sequence::from_codes("b", b);
        assert_pair_kernel_identity(&sa, &sb, &matrix, gaps);
    }

    /// Striped == scalar on the profile–profile (PSP) kernel: identical
    /// merge scripts under every band policy. Uniform-weight profiles are
    /// f32-exact, so scores match exactly too.
    #[test]
    fn striped_matches_scalar_for_profiles(seed in 0u64..200) {
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties::default();
        let seqs = family(6, 120, 600.0, seed);
        let engine = align::MuscleLite::fast();
        use align::MsaEngine;
        let msa_a = engine.align(&seqs[..3]);
        let msa_b = engine.align(&seqs[3..]);
        let mut w = Work::ZERO;
        let pa = Profile::from_msa(&msa_a, &mut w);
        let pb = Profile::from_msa(&msa_b, &mut w);
        let mut arena = DpArena::new();
        for band in ALL_BANDS {
            let scalar = align_profiles_with_kernel(
                &pa, &pb, &matrix, gaps, band, DpKernel::Scalar, &mut arena,
            );
            let striped = align_profiles_with_kernel(
                &pa, &pb, &matrix, gaps, band, DpKernel::Striped, &mut arena,
            );
            prop_assert_eq!(&scalar.ops, &striped.ops, "{:?}", band);
            prop_assert_eq!(scalar.score, striped.score, "{:?}", band);
        }
    }
}

/// Striped == scalar when one sequence is a 60-residue shift of the
/// other — the optimal path runs 60 diagonals off-centre, forcing Auto's
/// band-doubling refill path through both kernels.
#[test]
fn striped_matches_scalar_on_shifted_pair() {
    let matrix = SubstMatrix::blosum62();
    let gaps = GapPenalties { open: 4, extend: 1 };
    let core = family(1, 200, 900.0, 17).remove(0);
    let mut shifted = vec![bioseq::alphabet::char_to_code('P').unwrap(); 60];
    shifted.extend_from_slice(core.codes());
    let a = Sequence::from_codes("a", core.codes().to_vec());
    let b = Sequence::from_codes("b", shifted);
    assert_pair_kernel_identity(&a, &b, &matrix, gaps);
}

/// Striped == scalar on degenerate inputs: empty and single-residue
/// sequences, single-column profiles, and profiles containing an all-gap
/// column (weight-0 everywhere — the scoring lane must still agree).
#[test]
fn striped_matches_scalar_on_degenerate_inputs() {
    use align::dp::{gotoh_global_with, SubstScorer};
    let matrix = SubstMatrix::blosum62();
    let gaps = GapPenalties::default();
    // Empty sides only exist below the `Sequence` type (which rejects
    // them), so drive the kernel directly through the scorer API.
    let codes: [&[u8]; 4] = [&[], &[7], &[0, 5, 12, 19, 3], &[]];
    let mut arena = DpArena::new();
    for a in codes {
        for b in codes {
            let s = SubstScorer::new(a, b, &matrix, gaps);
            for band in ALL_BANDS {
                let scalar = gotoh_global_with(&s, band, DpKernel::Scalar, &mut arena);
                let striped = gotoh_global_with(&s, band, DpKernel::Striped, &mut arena);
                assert_eq!(scalar.ops, striped.ops, "{band:?} on {a:?} vs {b:?}");
                assert_eq!(scalar.score, striped.score, "{band:?} on {a:?} vs {b:?}");
            }
        }
    }
    let one = Sequence::from_codes("one", vec![7]);
    let short = Sequence::from_codes("short", vec![0, 5, 12, 19, 3]);
    assert_pair_kernel_identity(&one, &one, &matrix, gaps);
    assert_pair_kernel_identity(&one, &short, &matrix, gaps);

    // A profile whose middle column is entirely gaps, against a
    // single-column profile.
    let mut w = Work::ZERO;
    let gappy = Profile::from_msa(
        &Msa::from_rows(
            vec!["x".into(), "y".into()],
            vec![vec![0, GAP_CODE, 4], vec![2, GAP_CODE, GAP_CODE]],
        ),
        &mut w,
    );
    let single = Profile::from_msa(&Msa::from_rows(vec!["z".into()], vec![vec![4]]), &mut w);
    let mut arena = DpArena::new();
    for band in ALL_BANDS {
        for (pa, pb) in [(&gappy, &single), (&single, &gappy), (&gappy, &gappy)] {
            let scalar = align_profiles_with_kernel(
                pa,
                pb,
                &matrix,
                gaps,
                band,
                DpKernel::Scalar,
                &mut arena,
            );
            let striped = align_profiles_with_kernel(
                pa,
                pb,
                &matrix,
                gaps,
                band,
                DpKernel::Striped,
                &mut arena,
            );
            assert_eq!(scalar.ops, striped.ops, "{band:?}");
            assert_eq!(scalar.score, striped.score, "{band:?}");
        }
    }
}

/// Block transposition (a = S1+S2 vs b = S2+S1): the banded near-diagonal
/// path clears the band edges yet is far below the off-band optimum — the
/// case that forces Auto's score-stability acceptance rule.
#[test]
fn adaptive_band_is_exact_on_transposed_blocks() {
    let matrix = SubstMatrix::blosum62();
    let gaps = GapPenalties::default();
    let fam = family(2, 60, 900.0, 21);
    let (s1, s2) = (fam[0].codes(), fam[1].codes());
    let mut a = s1.to_vec();
    a.extend_from_slice(s2);
    let mut b = s2.to_vec();
    b.extend_from_slice(s1);
    let sa = Sequence::from_codes("a", a);
    let sb = Sequence::from_codes("b", b);
    let full = global_align(&sa, &sb, &matrix, gaps);
    let auto = global_align_with(&sa, &sb, &matrix, gaps, BandPolicy::Auto, &mut DpArena::new());
    assert_eq!(auto.score, full.score);
}

/// A structured adversarial case: a long shifted repeat forces the optimal
/// path far off the main diagonal, so the initial band must double (at
/// least once) before the optimum fits.
#[test]
fn adaptive_band_widens_for_large_shifts() {
    let matrix = SubstMatrix::blosum62();
    let gaps = GapPenalties { open: 4, extend: 1 };
    let core = family(1, 160, 900.0, 11).remove(0);
    let mut shifted = vec![bioseq::alphabet::char_to_code('P').unwrap(); 60];
    shifted.extend_from_slice(core.codes());
    let a = Sequence::from_codes("a", core.codes().to_vec());
    let b = Sequence::from_codes("b", shifted);
    let full = global_align(&a, &b, &matrix, gaps);
    let auto = global_align_with(&a, &b, &matrix, gaps, BandPolicy::Auto, &mut DpArena::new());
    assert_eq!(auto.score, full.score, "adaptive banding must find the shifted optimum");
}

/// End-to-end: the full-band engine and the default adaptive engine agree
/// on every alignment row for a family below the minimum band width, and
/// on the final score for longer ones.
#[test]
fn engines_agree_across_band_policies() {
    use align::{MsaEngine, MuscleLite};
    let matrix = SubstMatrix::blosum62();
    let gaps = GapPenalties::default();
    let seqs = family(8, 400, 700.0, 3);
    let (auto_msa, auto_work) = MuscleLite::fast().align_with_work(&seqs);
    let (full_msa, full_work) =
        MuscleLite::fast().with_band(BandPolicy::Full).align_with_work(&seqs);
    let score = |m: &Msa| m.sp_score(&matrix, gaps);
    assert_eq!(score(&auto_msa), score(&full_msa), "co-optimal alignments must tie on SP");
    assert!(
        auto_work.dp_cells < full_work.dp_cells,
        "auto {} should fill fewer cells than full {}",
        auto_work.dp_cells,
        full_work.dp_cells
    );
}
