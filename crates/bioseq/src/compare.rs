//! Alignment quality measures: the PREFAB `Q` score and the total-column
//! `TC` score.
//!
//! `Q` (Edgar 2004): the number of correctly aligned residue *pairs* divided
//! by the number of residue pairs in the reference alignment. For full MSAs
//! the pair counts are summed over every row pair present in both test and
//! reference (rows are matched by identifier).

use crate::alphabet::GAP_CODE;
use crate::msa::Msa;
use std::collections::HashMap;

/// Extract the aligned residue-index pairs of two gapped rows: each element
/// `(i, j)` says "residue `i` of sequence A is in the same column as residue
/// `j` of sequence B". Pairs are emitted in increasing order of both
/// components.
pub fn aligned_pairs(row_a: &[u8], row_b: &[u8]) -> Vec<(u32, u32)> {
    debug_assert_eq!(row_a.len(), row_b.len());
    let mut pairs = Vec::new();
    let (mut ia, mut ib) = (0u32, 0u32);
    for (&a, &b) in row_a.iter().zip(row_b) {
        let ra = a != GAP_CODE;
        let rb = b != GAP_CODE;
        if ra && rb {
            pairs.push((ia, ib));
        }
        if ra {
            ia += 1;
        }
        if rb {
            ib += 1;
        }
    }
    pairs
}

/// Count how many of `reference`'s pairs also occur in `test` (both sorted
/// ascending, as produced by [`aligned_pairs`]).
fn matched_pairs(test: &[(u32, u32)], reference: &[(u32, u32)]) -> usize {
    // Both lists are sorted lexicographically (first components strictly
    // increase within each list), so a merge works.
    let mut matched = 0;
    let (mut i, mut j) = (0usize, 0usize);
    while i < test.len() && j < reference.len() {
        match test[i].cmp(&reference[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                matched += 1;
                i += 1;
                j += 1;
            }
        }
    }
    matched
}

/// Q score for a single row pair.
///
/// Returns `None` when the reference pair has no aligned residue pairs
/// (quality is undefined — the paper footnote mentions discarding such
/// cases).
pub fn q_score_pair(test_a: &[u8], test_b: &[u8], ref_a: &[u8], ref_b: &[u8]) -> Option<f64> {
    let t = aligned_pairs(test_a, test_b);
    let r = aligned_pairs(ref_a, ref_b);
    if r.is_empty() {
        return None;
    }
    Some(matched_pairs(&t, &r) as f64 / r.len() as f64)
}

/// Q score of a test MSA against a reference MSA.
///
/// Rows are matched by identifier; rows present in only one of the two
/// alignments are ignored. Pair counts are pooled over all matched row
/// pairs (so big families weigh more, matching PREFAB's convention of
/// scoring each reference pair).
///
/// Returns `None` if fewer than two rows match or the reference contributes
/// no aligned pairs.
pub fn q_score_msa(test: &Msa, reference: &Msa) -> Option<f64> {
    let test_idx: HashMap<&str, usize> =
        test.ids().iter().enumerate().map(|(i, id)| (id.as_str(), i)).collect();
    let mut shared: Vec<(usize, usize)> = Vec::new(); // (ref row, test row)
    for (ri, id) in reference.ids().iter().enumerate() {
        if let Some(&ti) = test_idx.get(id.as_str()) {
            shared.push((ri, ti));
        }
    }
    if shared.len() < 2 {
        return None;
    }
    let mut matched = 0usize;
    let mut total = 0usize;
    for x in 0..shared.len() {
        for y in (x + 1)..shared.len() {
            let (ra, ta) = shared[x];
            let (rb, tb) = shared[y];
            let rp = aligned_pairs(reference.row(ra), reference.row(rb));
            let tp = aligned_pairs(test.row(ta), test.row(tb));
            matched += matched_pairs(&tp, &rp);
            total += rp.len();
        }
    }
    if total == 0 {
        None
    } else {
        Some(matched as f64 / total as f64)
    }
}

/// Total-column score: the fraction of reference columns that appear intact
/// (same residues of the same sequences, rows matched by id) as a column of
/// the test alignment. Columns that are all-gap over the shared rows are
/// skipped.
pub fn tc_score(test: &Msa, reference: &Msa) -> Option<f64> {
    let test_idx: HashMap<&str, usize> =
        test.ids().iter().enumerate().map(|(i, id)| (id.as_str(), i)).collect();
    let mut shared: Vec<(usize, usize)> = Vec::new();
    for (ri, id) in reference.ids().iter().enumerate() {
        if let Some(&ti) = test_idx.get(id.as_str()) {
            shared.push((ri, ti));
        }
    }
    if shared.len() < 2 {
        return None;
    }
    // For each shared row, map residue index -> test column.
    let res_to_col: Vec<HashMap<u32, u32>> = shared
        .iter()
        .map(|&(_, ti)| {
            let mut m = HashMap::new();
            let mut idx = 0u32;
            for (col, &c) in test.row(ti).iter().enumerate() {
                if c != GAP_CODE {
                    m.insert(idx, col as u32);
                    idx += 1;
                }
            }
            m
        })
        .collect();
    // Residue counters for reference rows.
    let mut ref_res_idx = vec![0u32; shared.len()];
    let mut hit = 0usize;
    let mut considered = 0usize;
    for col in 0..reference.num_cols() {
        let mut test_col: Option<u32> = None;
        let mut consistent = true;
        let mut any_residue = false;
        for (s, &(ri, _)) in shared.iter().enumerate() {
            let code = reference.row(ri)[col];
            if code == GAP_CODE {
                continue;
            }
            any_residue = true;
            let tcol = res_to_col[s].get(&ref_res_idx[s]).copied();
            match (tcol, test_col) {
                (Some(tc), None) => test_col = Some(tc),
                (Some(tc), Some(prev)) if tc == prev => {}
                _ => consistent = false,
            }
            ref_res_idx[s] += 1;
        }
        if any_residue {
            considered += 1;
            if consistent && test_col.is_some() {
                hit += 1;
            }
        }
    }
    if considered == 0 {
        None
    } else {
        Some(hit as f64 / considered as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasta;

    fn msa(text: &str) -> Msa {
        fasta::parse_alignment(text).unwrap()
    }

    #[test]
    fn aligned_pairs_basic() {
        // A: M K - V L     indices 0 1 _ 2 3
        // B: M - I V L     indices 0 _ 1 2 3
        let m = msa(">a\nMK-VL\n>b\nM-IVL\n");
        let p = aligned_pairs(m.row(0), m.row(1));
        assert_eq!(p, vec![(0, 0), (2, 2), (3, 3)]);
    }

    #[test]
    fn q_perfect_agreement() {
        let reference = msa(">a\nMK-VL\n>b\nM-IVL\n");
        assert_eq!(
            q_score_pair(reference.row(0), reference.row(1), reference.row(0), reference.row(1)),
            Some(1.0)
        );
    }

    #[test]
    fn q_total_disagreement() {
        // Test aligns nothing that the reference aligns.
        let reference = msa(">a\nMKV---\n>b\n---MKV\n");
        // Reference has zero aligned pairs -> undefined.
        assert_eq!(
            q_score_pair(reference.row(0), reference.row(1), reference.row(0), reference.row(1)),
            None
        );
    }

    #[test]
    fn q_partial() {
        let reference = msa(">a\nMKVL\n>b\nMKVL\n"); // pairs (0,0)..(3,3)
        let test = msa(">a\nMKVL-\n>b\n-MKVL\n"); // pairs (1,0),(2,1),(3,2)
        let q = q_score_pair(test.row(0), test.row(1), reference.row(0), reference.row(1)).unwrap();
        assert_eq!(q, 0.0);
        // Shift-by-zero variant matches 4/4.
        let q2 =
            q_score_pair(reference.row(0), reference.row(1), reference.row(0), reference.row(1))
                .unwrap();
        assert_eq!(q2, 1.0);
    }

    #[test]
    fn q_msa_matches_pair_when_two_rows() {
        let reference = msa(">a\nMK-VL\n>b\nM-IVL\n");
        let test = msa(">b\nM-IVL\n>a\nMK-VL\n"); // row order permuted
        assert_eq!(q_score_msa(&test, &reference), Some(1.0));
    }

    #[test]
    fn q_msa_ignores_unmatched_rows() {
        let reference = msa(">a\nMKVL\n>b\nMKVL\n>zzz\nMKVL\n");
        let test = msa(">a\nMKVL\n>b\nMKVL\n>other\nMKVL\n");
        assert_eq!(q_score_msa(&test, &reference), Some(1.0));
    }

    #[test]
    fn q_msa_requires_two_shared_rows() {
        let reference = msa(">a\nMKVL\n>b\nMKVL\n");
        let test = msa(">a\nMKVL\n>c\nMKVL\n");
        assert_eq!(q_score_msa(&test, &reference), None);
    }

    #[test]
    fn tc_perfect() {
        let reference = msa(">a\nMK-VL\n>b\nM-IVL\n");
        assert_eq!(tc_score(&reference, &reference), Some(1.0));
    }

    #[test]
    fn tc_detects_column_breakage() {
        let reference = msa(">a\nMKV\n>b\nMKV\n");
        // Test alignment shifts b by one column: no reference column
        // survives intact.
        let test = msa(">a\nMKV-\n>b\n-MKV\n");
        assert_eq!(tc_score(&test, &reference), Some(0.0));
    }

    #[test]
    fn tc_partial_columns() {
        let reference = msa(">a\nMKV\n>b\nMKV\n");
        // b's last residue pushed out of the shared column.
        let test = msa(">a\nMKV-\n>b\nMK-V\n");
        let tc = tc_score(&test, &reference).unwrap();
        assert!((tc - 2.0 / 3.0).abs() < 1e-12, "tc={tc}");
    }

    #[test]
    fn q_is_in_unit_interval() {
        let reference = msa(">a\nMKVLAW\n>b\nMK--AW\n");
        let test = msa(">a\nMKVLAW\n>b\n--MKAW\n");
        let q = q_score_msa(&test, &reference).unwrap();
        assert!((0.0..=1.0).contains(&q));
    }
}
