//! Scaling of the vertical (length-wise) decomposition: whole-length vs
//! anchored-block alignment on long related families.
//!
//! Beyond wall-clock timings, the bench asserts the decomposition
//! contract on an anchored length-2000 family:
//!
//! * vertical mode fills **strictly fewer** DP cells than the whole-length
//!   progressive alignment under a full-matrix band (the honest
//!   comparison — adaptive banding shrinks both bills);
//! * the glued MSA's Q against the family's true reference alignment is
//!   within tolerance of the whole-length result;
//! * sequential and rayon vertical runs are byte-identical.
//!
//! It also writes `BENCH_vertical.json` at the workspace root — one entry
//! per (length, mode) with dp_cells, block census and median wall time —
//! the committed baseline future decomposition work has to beat.

use bioseq::compare::q_score_msa;
use criterion::{criterion_group, criterion_main, Criterion};
use rosegen::{Family, FamilyConfig};
use sad_core::{Aligner, Backend, BandPolicy, RunReport, SadConfig, VerticalConfig};

/// A long, closely related family (low rose relatedness = few
/// substitutions per site), the shape vertical decomposition targets.
fn anchored_family(len: usize, seed: u64) -> Family {
    Family::generate(&FamilyConfig {
        n_seqs: 8,
        avg_len: len,
        relatedness: 120.0,
        indel_rate: 0.01,
        seed,
        ..Default::default()
    })
}

fn vcfg() -> VerticalConfig {
    VerticalConfig { max_block_len: 256, ..Default::default() }
}

fn run(seqs: &[bioseq::Sequence], vertical: bool, band: BandPolicy) -> RunReport {
    let mut cfg = SadConfig::default().with_band_policy(band);
    if vertical {
        cfg = cfg.with_vertical(vcfg());
    }
    Aligner::new(cfg).run(seqs).expect("valid bench input")
}

/// One measured (length, mode, band) point.
struct Entry {
    case: String,
    mode: &'static str,
    band: &'static str,
    dp_cells: u64,
    blocks: usize,
    seam_windows: usize,
    q_vs_reference: f64,
    seconds_median: f64,
}

impl Entry {
    fn json(&self) -> String {
        format!(
            "    {{\"case\": \"{}\", \"mode\": \"{}\", \"band\": \"{}\", \
             \"dp_cells\": {}, \"blocks\": {}, \"seam_windows\": {}, \
             \"q_vs_reference\": {:.4}, \"seconds_median\": {:.9}}}",
            self.case,
            self.mode,
            self.band,
            self.dp_cells,
            self.blocks,
            self.seam_windows,
            self.q_vs_reference,
            self.seconds_median
        )
    }
}

/// Median wall time of `runs` calls to `f`.
fn median_seconds(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let start = std::time::Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Q tolerance between the glued and the whole-length alignment, both
/// scored against the generative truth.
const Q_TOLERANCE: f64 = 0.05;

fn bench(c: &mut Criterion) {
    let mut entries: Vec<Entry> = Vec::new();

    for (len, seed) in [(600usize, 0x61u64), (1200, 0x62), (2000, 0x63)] {
        let fam = anchored_family(len, seed);
        for (band_label, band) in [("full", BandPolicy::Full), ("auto", BandPolicy::Auto)] {
            for (mode, vertical) in [("whole", false), ("vertical", true)] {
                let report = run(&fam.seqs, vertical, band);
                let v = report.vertical.as_ref();
                let q = q_score_msa(&report.msa, &fam.reference).unwrap_or(0.0);
                let seconds = median_seconds(3, || {
                    std::hint::black_box(run(std::hint::black_box(&fam.seqs), vertical, band));
                });
                entries.push(Entry {
                    case: format!("family_8xL{len}"),
                    mode,
                    band: band_label,
                    dp_cells: report.work.dp_cells,
                    blocks: v.map_or(1, |v| v.blocks()),
                    seam_windows: v.map_or(0, |v| v.seam_windows),
                    q_vs_reference: q,
                    seconds_median: seconds,
                });
            }
        }
    }

    for e in &entries {
        println!(
            "{}_{}_{}: {} cells, {} blocks, {} seams, Q {:.4}, {:.4}s median",
            e.case,
            e.mode,
            e.band,
            e.dp_cells,
            e.blocks,
            e.seam_windows,
            e.q_vs_reference,
            e.seconds_median
        );
    }

    // CI gates, on the length-2000 full-band point (the acceptance bar).
    let pick = |mode: &str, band: &str| {
        entries
            .iter()
            .find(|e| e.case == "family_8xL2000" && e.mode == mode && e.band == band)
            .expect("measured point")
    };
    let whole = pick("whole", "full");
    let vert = pick("vertical", "full");
    assert!(vert.blocks >= 2, "a length-2000 family at relatedness 120 must anchor into blocks");
    assert!(
        vert.dp_cells < whole.dp_cells,
        "vertical must fill strictly fewer DP cells than whole-length: {} vs {}",
        vert.dp_cells,
        whole.dp_cells
    );
    assert!(
        vert.q_vs_reference >= whole.q_vs_reference - Q_TOLERANCE,
        "vertical glue lost too much quality: Q {:.4} vs whole-length {:.4}",
        vert.q_vs_reference,
        whole.q_vs_reference
    );

    // Backend determinism: sequential and rayon vertical are byte-equal.
    let fam = anchored_family(1200, 0x62);
    let cfg = SadConfig::default().with_vertical(vcfg());
    let seq = Aligner::new(cfg.clone()).run(&fam.seqs).expect("valid input");
    let ray = Aligner::new(cfg)
        .backend(Backend::Rayon { threads: 4 })
        .run(&fam.seqs)
        .expect("valid input");
    assert_eq!(seq.msa, ray.msa, "vertical output must be backend-independent");
    assert_eq!(seq.work, ray.work);

    // Criterion timings for the headline shapes.
    let fam_long = anchored_family(2000, 0x63);
    c.bench_function("vertical_scaling/whole_8xL2000_auto", |bch| {
        bch.iter(|| run(std::hint::black_box(&fam_long.seqs), false, BandPolicy::Auto))
    });
    c.bench_function("vertical_scaling/vertical_8xL2000_auto", |bch| {
        bch.iter(|| run(std::hint::black_box(&fam_long.seqs), true, BandPolicy::Auto))
    });

    let json = format!(
        "{{\n  \"bench\": \"vertical_scaling\",\n  \"entries\": [\n{}\n  ]\n}}\n",
        entries.iter().map(Entry::json).collect::<Vec<_>>().join(",\n")
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_vertical.json");
    std::fs::write(&path, json).expect("write BENCH_vertical.json");
    println!("wrote {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
