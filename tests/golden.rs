//! Golden-file snapshots of the CLI's report rendering: the `sad align`
//! phase table and the `sad batch` summary table are pinned against
//! committed fixtures, so a report-format regression fails the default
//! test tier instead of shipping silently.
//!
//! Wall-clock readings differ between runs, so every float token is
//! normalized to `<t>` before comparison; everything else — layout,
//! headers, integer work/DP counters, sequence bodies, error renderings —
//! is compared verbatim. Goldens are stored pre-normalized. To bless a
//! deliberate format change, rerun with `BLESS=1`:
//!
//! ```text
//! BLESS=1 cargo test --test golden
//! ```

use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Run the CLI in-process, capturing stdout; returns the captured text
/// and the command's result.
fn run_cli(argv: &[&str]) -> (String, Result<(), String>) {
    let args = sad_cli::args::parse(argv.iter().copied()).expect("golden argv parses");
    let mut buf = Vec::new();
    let result = sad_cli::run(args, &mut buf);
    (String::from_utf8(buf).expect("CLI output is UTF-8"), result)
}

/// Replace every whitespace-separated token that reads as a float
/// (trailing `,`/`;` tolerated) with `<t>`, collapsing runs of spaces —
/// wall-clock and throughput readings vary per run, the rest of the
/// report must not.
fn normalize(out: &str) -> String {
    let mut lines: Vec<String> = out
        .lines()
        .map(|line| {
            line.split_whitespace()
                .map(|tok| {
                    let trimmed = tok.trim_end_matches([',', ';']);
                    if trimmed.contains('.') && trimmed.parse::<f64>().is_ok() {
                        tok.replace(trimmed, "<t>")
                    } else {
                        tok.to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    lines.push(String::new()); // trailing newline
    lines.join("\n")
}

/// Compare normalized CLI output against a committed golden file,
/// rewriting the golden under `BLESS=1`.
fn assert_matches_golden(name: &str, actual_raw: &str) {
    let actual = normalize(actual_raw);
    let path = golden_dir().join(name);
    if std::env::var("BLESS").is_ok() {
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} (run with BLESS=1 to create): {e}"));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden snapshot.\n\
         If the format change is intentional, bless it: BLESS=1 cargo test --test golden"
    );
}

#[test]
fn align_phase_table_matches_golden() {
    // The distributed backend pins the most: phase table with work units,
    // banded/full DP cells, virtual makespan line and the FASTA body.
    let input = golden_dir().join("fixtures/fam_a.fa");
    let (out, result) = run_cli(&["align", input.to_str().unwrap(), "--p", "2"]);
    result.expect("golden align succeeds");
    assert_matches_golden("align_distributed.txt", &out);
}

#[test]
fn align_sequential_table_matches_golden() {
    let input = golden_dir().join("fixtures/fam_b.fa");
    let (out, result) = run_cli(&["align", input.to_str().unwrap(), "--backend", "sequential"]);
    result.expect("golden align succeeds");
    assert_matches_golden("align_sequential.txt", &out);
}

#[test]
fn align_vertical_table_matches_golden() {
    // The vertical decomposition path pins the anchor-scan / block-align /
    // glue phase rows and the "decomposition: N blocks ..." census line of
    // the run summary. `fam_long` is a length-700 closely related family,
    // so the 128-column cap forces a genuine multi-block split.
    let input = golden_dir().join("fixtures/fam_long.fa");
    let (out, result) = run_cli(&[
        "align",
        input.to_str().unwrap(),
        "--vertical",
        "--max-block",
        "128",
        "--backend",
        "sequential",
    ]);
    result.expect("golden vertical align succeeds");
    assert_matches_golden("align_vertical.txt", &out);
}

#[test]
fn batch_summary_table_matches_golden() {
    // The committed manifest mixes two healthy families with a
    // one-sequence file, pinning both the success rows and the per-job
    // error rendering. One worker keeps the run order deterministic;
    // the command exits with the failure count, which is part of the
    // contract.
    let manifest = golden_dir().join("batch.manifest");
    let out_dir = std::env::temp_dir().join(format!("sad-golden-batch-{}", std::process::id()));
    let (out, result) = run_cli(&[
        "batch",
        manifest.to_str().unwrap(),
        "--out",
        out_dir.to_str().unwrap(),
        "--jobs",
        "1",
    ]);
    assert_eq!(result.unwrap_err(), "1 of 3 jobs failed");
    assert_matches_golden("batch_summary.txt", &out);
    // The healthy jobs wrote their alignments next to the summary.
    for name in ["fam_a", "fam_b"] {
        assert!(out_dir.join(format!("{name}.aligned.fa")).exists(), "{name}");
    }
    assert!(!out_dir.join("solo.aligned.fa").exists());
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn reads_summary_matches_golden() {
    // The large-N read mode's summary: read census, bucket census with the
    // cap verdict, decomposition depth, the truth-gated mean pair Q and
    // the phase table. Everything but wall-clock floats is pinned — the
    // simulation, bucketing and alignment are deterministic per seed.
    let (out, result) = run_cli(&[
        "reads",
        "--reads",
        "200",
        "--read-len",
        "60",
        "--source-len",
        "200",
        "--sources",
        "2",
        "--max-bucket",
        "32",
        "--threads",
        "2",
        "--kmer",
        "3",
        "--seed",
        "1",
    ]);
    result.expect("golden reads run succeeds");
    assert_matches_golden("reads_summary.txt", &out);
}

#[test]
fn trim_summary_matches_golden() {
    // `sad trim` on the committed gappy fixture: six full-length rows
    // plus two fragments whose exclusion only pays off as a pair, so the
    // golden pins the census line, the per-drop comments (the
    // pair-synergy path) and the trimmed FASTA body. There are no
    // wall-clock tokens here — the whole output is compared verbatim.
    // The fixture lives in `aligned/`, not `fixtures/`: the CI batch and
    // serve smoke steps feed every `fixtures/*.fa` to the aligner, which
    // rejects pre-gapped records.
    let input = golden_dir().join("aligned/gappy.fa");
    let (out, result) = run_cli(&["trim", input.to_str().unwrap()]);
    result.expect("golden trim succeeds");
    // The acceptance bar: trim strictly grows the alignment area on this
    // fixture (8 rows x 10 free cols -> 6 rows x 30 free cols).
    assert!(out.contains("area 80 -> 180"), "fixture must trim 80 -> 180:\n{out}");
    assert_matches_golden("trim_summary.txt", &out);
}

#[test]
fn normalizer_touches_only_float_tokens() {
    let sample =
        "; 8-local-align 123 456/789 0.0042 1.5000\ntotal 99 jobs, 1.25 jobs/s;\n>seq0\nMKVL.AW\n";
    let got = normalize(sample);
    assert_eq!(
        got, "; 8-local-align 123 456/789 <t> <t>\ntotal 99 jobs, <t> jobs/s;\n>seq0\nMKVL.AW\n",
        "integers, ids and non-numeric dotted tokens must survive"
    );
}

/// Decode a serve event line and blank its volatile fields (wall-clock
/// `seconds`), keeping everything else — event order, job ids, digests,
/// cached flags, row counts, and the full aligned FASTA — verbatim.
fn scrub_serve_event(line: &str) -> String {
    use sad_serve::Json;
    let mut value = Json::parse(line).expect("server event parses as JSON");
    if let Json::Obj(fields) = &mut value {
        for (key, field) in fields {
            if key == "seconds" {
                *field = Json::str("<t>");
            }
        }
    }
    value.encode()
}

#[test]
fn serve_session_transcript_matches_golden() {
    use std::io::Write;
    use std::time::Duration;

    let mut h = sad_serve::ServeHarness::new("golden-session").start();
    let mut stream = std::net::TcpStream::connect(h.server().addr()).expect("connect");
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
    let mut reader = sad_serve::protocol::LineReader::new(stream.try_clone().expect("clone"));
    let mut transcript = String::new();

    let read_until = |reader: &mut sad_serve::protocol::LineReader<std::net::TcpStream>,
                      transcript: &mut String,
                      stop: &str| {
        loop {
            match reader.next_line() {
                Ok(sad_serve::protocol::LineEvent::Line(line)) => {
                    let scrubbed = scrub_serve_event(&line);
                    transcript.push_str("<< ");
                    transcript.push_str(&scrubbed);
                    transcript.push('\n');
                    if scrubbed.contains(&format!("\"event\":\"{stop}\"")) {
                        return;
                    }
                }
                other => panic!("waiting for {stop}: {other:?}"),
            }
        }
    };
    let send = |stream: &mut std::net::TcpStream, transcript: &mut String, line: &str| {
        transcript.push_str(">> ");
        transcript.push_str(line);
        transcript.push('\n');
        writeln!(stream, "{line}").expect("send request");
    };

    read_until(&mut reader, &mut transcript, "hello");
    // Cold submission: accepted → started → per-phase progress → result.
    let fasta = std::fs::read_to_string(golden_dir().join("fixtures/fam_a.fa")).expect("fixture");
    let submit = sad_serve::Json::obj([
        ("cmd", sad_serve::Json::str("submit")),
        ("id", sad_serve::Json::str("fam_a")),
        ("fasta", sad_serve::Json::str(&fasta)),
    ])
    .encode();
    send(&mut stream, &mut transcript, &submit);
    read_until(&mut reader, &mut transcript, "result");
    // Byte-identical resubmission: answered from the cache, no started.
    send(&mut stream, &mut transcript, &submit);
    read_until(&mut reader, &mut transcript, "result");
    // Cancelling an unknown job is an error event, not a dropped line.
    send(&mut stream, &mut transcript, "CANCEL no-such-job");
    read_until(&mut reader, &mut transcript, "error");
    // Graceful goodbye.
    send(&mut stream, &mut transcript, "SHUTDOWN");
    read_until(&mut reader, &mut transcript, "bye");
    drop(reader);

    // The server drained after the SHUTDOWN request.
    assert!(h.server().wait_idle(Duration::from_secs(30)), "server drains");
    let stats = h.shutdown();
    // Both submissions completed; exactly one was served from the cache.
    assert_eq!((stats.completed, stats.cache_hits), (2, 1));
    assert_matches_golden("serve_session.txt", &transcript);
}
