//! No-op `Serialize`/`Deserialize` derives for the vendored serde stand-in.
//!
//! The stand-in's traits are marker traits with blanket impls (see
//! `vendor/serde`), so these derives legitimately have nothing to emit —
//! they exist only so `#[derive(Serialize, Deserialize)]` attributes keep
//! compiling unchanged until a real registry is available.

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// Accept `#[derive(Serialize)]`; the marker trait needs no generated impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept `#[derive(Deserialize)]`; the marker trait needs no generated impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
