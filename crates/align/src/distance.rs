//! Distance matrices between sequences: fast k-mer distances (MUSCLE
//! stage 1), Kimura-corrected identity distances from an existing alignment
//! (MUSCLE stage 2), and full pairwise-alignment distances (CLUSTALW).

use bioseq::kmer::KmerProfile;
use bioseq::msa::row_identity;
use bioseq::{CompressedAlphabet, GapPenalties, Msa, Sequence, SubstMatrix, Work};
use phylo::DistMatrix;
use rayon::prelude::*;

/// Build k-mer profiles for a set of sequences. Sequences shorter than `k`
/// yield `None` (their distances default to the maximum, 1.0).
pub fn kmer_profiles(
    seqs: &[Sequence],
    k: usize,
    alphabet: CompressedAlphabet,
    work: &mut Work,
) -> Vec<Option<KmerProfile>> {
    let profiles: Vec<Option<KmerProfile>> =
        seqs.par_iter().map(|s| KmerProfile::build(s, k, alphabet)).collect();
    work.seq_bytes += seqs.iter().map(|s| s.len() as u64).sum::<u64>();
    profiles
}

/// Pairwise k-mer distance matrix (`1 − F`). `O(n²·L)` via sorted-profile
/// merges, parallelised over rows.
pub fn kmer_distance_matrix(
    seqs: &[Sequence],
    k: usize,
    alphabet: CompressedAlphabet,
    work: &mut Work,
) -> DistMatrix {
    let profiles = kmer_profiles(seqs, k, alphabet, work);
    let n = seqs.len();
    // Compute each strict-lower-triangle row in parallel; track work.
    let rows: Vec<(Vec<f64>, Work)> = (1..n)
        .into_par_iter()
        .map(|i| {
            let mut w = Work::ZERO;
            let row: Vec<f64> = (0..i)
                .map(|j| match (&profiles[i], &profiles[j]) {
                    (Some(a), Some(b)) => 1.0 - a.similarity_counting(b, &mut w),
                    _ => 1.0,
                })
                .collect();
            (row, w)
        })
        .collect();
    let mut m = DistMatrix::zeros(n);
    for (i, (row, w)) in rows.into_iter().enumerate() {
        let i = i + 1;
        for (j, v) in row.into_iter().enumerate() {
            m.set(i, j, v);
        }
        *work += w;
    }
    m
}

/// Kimura (1983) correction of a fractional identity into an evolutionary
/// distance: `d = −ln(1 − D − D²/5)` for observed difference `D`, capped at
/// `MAX_KIMURA` for saturated pairs (MUSCLE's convention).
pub fn kimura_correction(fractional_identity: f64) -> f64 {
    /// Saturation cap for highly diverged pairs.
    const MAX_KIMURA: f64 = 10.0;
    let d = (1.0 - fractional_identity).clamp(0.0, 1.0);
    let arg = 1.0 - d - d * d / 5.0;
    if arg <= 1e-9 {
        MAX_KIMURA
    } else {
        (-arg.ln()).min(MAX_KIMURA)
    }
}

/// Kimura-corrected distance matrix from the pairwise identities of an
/// existing alignment (MUSCLE's improved stage-2 distance).
pub fn kimura_from_msa(msa: &Msa, work: &mut Work) -> DistMatrix {
    let n = msa.num_rows();
    let rows: Vec<Vec<f64>> = (1..n)
        .into_par_iter()
        .map(|i| (0..i).map(|j| kimura_correction(row_identity(msa.row(i), msa.row(j)))).collect())
        .collect();
    let mut m = DistMatrix::zeros(n);
    for (i, row) in rows.into_iter().enumerate() {
        let i = i + 1;
        for (j, v) in row.into_iter().enumerate() {
            m.set(i, j, v);
        }
    }
    work.col_ops += (n * n / 2) as u64 * msa.num_cols() as u64;
    m
}

/// Full pairwise-global-alignment distance matrix (`1 − identity` after
/// Gotoh alignment). `O(n²·L²)` — CLUSTALW's accurate-but-slow initial
/// distances, only sensible for small `n`.
pub fn alignment_distance_matrix(
    seqs: &[Sequence],
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    work: &mut Work,
) -> DistMatrix {
    alignment_distance_matrix_with(seqs, matrix, gaps, crate::dp::BandPolicy::Full, work)
}

/// [`alignment_distance_matrix`] under an explicit band policy. Each
/// worker reuses one [`crate::dp::DpArena`] across its whole row of
/// pairwise alignments.
pub fn alignment_distance_matrix_with(
    seqs: &[Sequence],
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    band: crate::dp::BandPolicy,
    work: &mut Work,
) -> DistMatrix {
    alignment_distance_matrix_with_kernel(
        seqs,
        matrix,
        gaps,
        band,
        crate::dp::DpKernel::default(),
        work,
    )
}

/// [`alignment_distance_matrix_with`] under an explicit
/// [`crate::dp::DpKernel`] selection.
pub fn alignment_distance_matrix_with_kernel(
    seqs: &[Sequence],
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    band: crate::dp::BandPolicy,
    kernel: crate::dp::DpKernel,
    work: &mut Work,
) -> DistMatrix {
    let n = seqs.len();
    let rows: Vec<(Vec<f64>, Work)> = (1..n)
        .into_par_iter()
        .map(|i| {
            let mut w = Work::ZERO;
            let mut arena = crate::dp::DpArena::new();
            let row: Vec<f64> = (0..i)
                .map(|j| {
                    crate::pairwise::alignment_distance_with_kernel(
                        &seqs[i], &seqs[j], matrix, gaps, band, kernel, &mut arena, &mut w,
                    )
                })
                .collect();
            (row, w)
        })
        .collect();
    let mut m = DistMatrix::zeros(n);
    for (i, (row, w)) in rows.into_iter().enumerate() {
        let i = i + 1;
        for (j, v) in row.into_iter().enumerate() {
            m.set(i, j, v);
        }
        *work += w;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(texts: &[&str]) -> Vec<Sequence> {
        texts
            .iter()
            .enumerate()
            .map(|(i, t)| Sequence::from_str(format!("s{i}"), t).unwrap())
            .collect()
    }

    #[test]
    fn kmer_matrix_zero_diag_like_behaviour() {
        let ss = seqs(&["MKVLAWGKVL", "MKVLAWGKVL", "PPPPGGPPPP"]);
        let mut w = Work::ZERO;
        let m = kmer_distance_matrix(&ss, 3, CompressedAlphabet::Identity, &mut w);
        assert!(m.get(0, 1) < 1e-12, "identical sequences at distance 0");
        assert!(m.get(0, 2) > 0.9, "unrelated sequences near distance 1");
        assert!(w.kmer_ops > 0);
    }

    #[test]
    fn kmer_matrix_symmetric_in_storage() {
        let ss = seqs(&["MKVLAW", "MKILAW", "MKILCW"]);
        let mut w = Work::ZERO;
        let m = kmer_distance_matrix(&ss, 2, CompressedAlphabet::Identity, &mut w);
        assert_eq!(m.get(0, 2), m.get(2, 0));
    }

    #[test]
    fn short_sequences_get_max_distance() {
        let ss = seqs(&["MK", "MKVLAWGKVL"]);
        let mut w = Work::ZERO;
        let m = kmer_distance_matrix(&ss, 6, CompressedAlphabet::Identity, &mut w);
        assert_eq!(m.get(0, 1), 1.0);
    }

    #[test]
    fn kimura_correction_properties() {
        assert_eq!(kimura_correction(1.0), 0.0);
        // Monotone decreasing in identity.
        let mut prev = kimura_correction(1.0);
        for id in [0.95, 0.9, 0.8, 0.7, 0.6, 0.5] {
            let d = kimura_correction(id);
            assert!(d > prev, "identity {id}");
            prev = d;
        }
        // Saturates at the cap for very low identity.
        assert_eq!(kimura_correction(0.0), 10.0);
        // For small distances, correction ≈ observed difference.
        let d = kimura_correction(0.99);
        assert!((d - 0.01).abs() < 1e-3, "d={d}");
    }

    #[test]
    fn kimura_matrix_from_msa() {
        let msa = bioseq::fasta::parse_alignment(">a\nMKVL\n>b\nMKVL\n>c\nWWWW\n").unwrap();
        let mut w = Work::ZERO;
        let m = kimura_from_msa(&msa, &mut w);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(0, 2), 10.0);
    }

    #[test]
    fn alignment_distance_matrix_small() {
        let ss = seqs(&["MKVLAW", "MKVLAW", "MKILAW"]);
        let mut w = Work::ZERO;
        let m = alignment_distance_matrix(
            &ss,
            &SubstMatrix::blosum62(),
            GapPenalties::default(),
            &mut w,
        );
        assert_eq!(m.get(0, 1), 0.0);
        assert!(m.get(0, 2) > 0.0 && m.get(0, 2) < 0.5);
        assert!(w.dp_cells > 0);
    }

    #[test]
    fn deterministic_under_parallelism() {
        let ss = seqs(&["MKVLAWGKVL", "MKILAWGKIL", "MKVLCWGKVL", "PPPPGGPPPP"]);
        let mut w1 = Work::ZERO;
        let mut w2 = Work::ZERO;
        let a = kmer_distance_matrix(&ss, 3, CompressedAlphabet::Dayhoff6, &mut w1);
        let b = kmer_distance_matrix(&ss, 3, CompressedAlphabet::Dayhoff6, &mut w2);
        assert_eq!(a, b);
        assert_eq!(w1, w2);
    }
}
