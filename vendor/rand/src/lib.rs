//! Offline stand-in for the `rand` crate.
//!
//! This build environment has no crates.io access, so the workspace vendors
//! the exact API subset it uses: [`Rng`]/[`RngCore`]/[`SeedableRng`],
//! [`rngs::StdRng`] (xoshiro256++ seeded through SplitMix64 — deterministic
//! and statistically strong enough for the moment-matching tests in
//! `rosegen`), and [`seq::SliceRandom`]. Swapping the manifest entry back to
//! the registry crate requires no call-site changes, though streams differ:
//! anything keyed to exact `StdRng` output (golden values) would move.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` built from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "p must be a probability");
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Derive the full generator state from one `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * rng.next_f64() as f32
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// In-place random operations on slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen_range(0u64..u64::MAX), c.gen_range(0u64..u64::MAX));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn uniform_f64_mean_is_half() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.005);
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }
}
