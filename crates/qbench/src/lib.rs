//! # qbench — a PREFAB-like alignment quality benchmark
//!
//! PREFAB (Edgar 2004) scores an aligner by how well it recovers a trusted
//! *pair* alignment embedded in a larger set of homologs: each case holds
//! two "seed" sequences with a reference alignment plus additional family
//! members, the aligner is run on the whole set, and the `Q` score counts
//! the seed residue pairs it reproduces.
//!
//! The real PREFAB data cannot be redistributed, so [`refset`] generates
//! structurally equivalent cases from `rosegen` families — there the
//! generative process supplies a *true* alignment to use as the reference,
//! and the two most divergent leaves play the role of the structure pair.
//! [`harness`] runs any alignment system over a benchmark and reports mean
//! `Q`, exactly like the paper's Table 2. [`reads`] extends the same
//! pair-scoring idea to the Pyro-Align large-N read mode: a simulated
//! read set's sparse truth is sampled pair-by-pair, so recovered read
//! alignments are gated in O(sample) memory at any read count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod reads;
pub mod refset;

pub use harness::{evaluate_engine, evaluate_with, EngineReport};
pub use reads::mean_read_pair_q;
pub use refset::{Benchmark, BenchmarkConfig, ReferenceCase};
