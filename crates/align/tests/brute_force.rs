//! Ground-truth verification: the Gotoh DP must return the *optimal*
//! affine-gap global alignment score. For tiny sequences we can enumerate
//! every possible alignment exhaustively and compare.

use align::pairwise::{banded_global_align, global_align};
use bioseq::alphabet::GAP_CODE;
use bioseq::msa::pairwise_row_score;
use bioseq::{GapPenalties, Sequence, SubstMatrix};
use proptest::prelude::*;

/// Enumerate all global alignments of `a[i..]` vs `b[j..]` and return the
/// best affine-gap score. `last` encodes the previous column type
/// (0 = substitution/none, 1 = gap in b, 2 = gap in a) for affine
/// continuation.
fn brute_best(
    a: &[u8],
    b: &[u8],
    i: usize,
    j: usize,
    last: u8,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
) -> i64 {
    if i == a.len() && j == b.len() {
        return 0;
    }
    let mut best = i64::MIN;
    if i < a.len() && j < b.len() {
        let s = matrix.score(a[i], b[j]) as i64 + brute_best(a, b, i + 1, j + 1, 0, matrix, gaps);
        best = best.max(s);
    }
    if i < a.len() {
        let cost = if last == 1 { gaps.extend } else { gaps.open } as i64;
        let s = -cost + brute_best(a, b, i + 1, j, 1, matrix, gaps);
        best = best.max(s);
    }
    if j < b.len() {
        let cost = if last == 2 { gaps.extend } else { gaps.open } as i64;
        let s = -cost + brute_best(a, b, i, j + 1, 2, matrix, gaps);
        best = best.max(s);
    }
    best
}

fn seq_of(codes: &[u8]) -> Sequence {
    Sequence::from_codes("t", codes.to_vec())
}

#[test]
fn gotoh_matches_brute_force_on_fixed_cases() {
    let matrix = SubstMatrix::blosum62();
    let cases: [(&[u8], &[u8]); 6] = [
        (&[0, 1, 2], &[0, 1, 2]),
        (&[0, 1, 2, 3], &[0, 3]),
        (&[4, 4, 4], &[17, 17]),
        (&[12, 11, 19, 10], &[12, 11, 10]),
        (&[0], &[0, 1, 2, 3, 4]),
        (&[7, 8, 9, 10, 11], &[11, 10, 9, 8, 7]),
    ];
    for gaps in [
        GapPenalties::default(),
        GapPenalties { open: 5, extend: 1 },
        GapPenalties { open: 2, extend: 2 },
    ] {
        for (ca, cb) in cases {
            let want = brute_best(ca, cb, 0, 0, 0, &matrix, gaps);
            let got = global_align(&seq_of(ca), &seq_of(cb), &matrix, gaps);
            assert_eq!(got.score, want, "codes {ca:?} vs {cb:?} gaps {gaps:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The DP score equals the exhaustive optimum for arbitrary tiny
    /// sequences and gap penalties.
    #[test]
    fn gotoh_is_optimal(
        a in prop::collection::vec(0u8..20, 1..6),
        b in prop::collection::vec(0u8..20, 1..6),
        open in 1i32..12,
        extend in 1i32..4,
    ) {
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties { open, extend };
        let want = brute_best(&a, &b, 0, 0, 0, &matrix, gaps);
        let got = global_align(&seq_of(&a), &seq_of(&b), &matrix, gaps);
        prop_assert_eq!(got.score, want);
        // And the emitted alignment really has that score.
        let rescored = pairwise_row_score(&got.row_a, &got.row_b, &matrix, gaps);
        prop_assert_eq!(rescored, want);
    }

    /// A full-width band must agree with the unbanded optimum.
    #[test]
    fn banded_with_full_band_is_optimal(
        a in prop::collection::vec(0u8..20, 1..6),
        b in prop::collection::vec(0u8..20, 1..6),
    ) {
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties::default();
        let full = global_align(&seq_of(&a), &seq_of(&b), &matrix, gaps);
        let banded = banded_global_align(&seq_of(&a), &seq_of(&b), &matrix, gaps, 16);
        prop_assert_eq!(banded.score, full.score);
    }

    /// Alignment rows always reconstruct the inputs, whatever the inputs.
    #[test]
    fn rows_always_reconstruct(
        a in prop::collection::vec(0u8..20, 1..12),
        b in prop::collection::vec(0u8..20, 1..12),
    ) {
        let matrix = SubstMatrix::pam250();
        let gaps = GapPenalties { open: 7, extend: 2 };
        let aln = global_align(&seq_of(&a), &seq_of(&b), &matrix, gaps);
        let ung_a: Vec<u8> = aln.row_a.iter().copied().filter(|&c| c != GAP_CODE).collect();
        let ung_b: Vec<u8> = aln.row_b.iter().copied().filter(|&c| c != GAP_CODE).collect();
        prop_assert_eq!(ung_a, a);
        prop_assert_eq!(ung_b, b);
        prop_assert_eq!(aln.row_a.len(), aln.row_b.len());
    }
}
