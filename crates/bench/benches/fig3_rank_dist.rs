//! Fig. 3 — distribution of the k-mer ranks of the sequences used in the
//! scaling experiments (N = 5000, rose, relatedness 800).
//!
//! The paper's requirement on the workload: the rank distribution must be
//! "in general evenly distributed" so the redistribution step balances
//! load. This bench regenerates the histogram and quantifies the spread.

use criterion::{criterion_group, criterion_main, Criterion};
use sad_bench::{banner, rose_workload, scaled, table};
use sad_core::{rank_experiment, SadConfig};

fn experiment() {
    let n = scaled(5000);
    banner("Fig. 3", &format!("k-mer rank distribution of the experiment input, N={n}"));
    let seqs = rose_workload(n, 0xF163);
    let cfg = SadConfig::default();
    let exp = rank_experiment(&seqs, 16, &cfg);

    let lo = exp.globalized.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = exp.globalized.iter().copied().fold(f64::NEG_INFINITY, f64::max) + 1e-9;
    let bins = 24;
    let h = bioseq::stats::Histogram::build(&exp.globalized, lo, hi, bins);
    println!("\nglobalized rank histogram:");
    print!("{}", h.ascii(40));
    let rows: Vec<Vec<String>> =
        (0..bins).map(|i| vec![format!("{:.4}", h.center(i)), h.counts[i].to_string()]).collect();
    table(&["rank_bin", "count"], &rows);

    // Even-spread check: no histogram bin should hold more than ~35% of
    // the mass once the degenerate edges are excluded.
    let total = h.total() as f64;
    let max_bin = *h.counts.iter().max().unwrap() as f64;
    println!(
        "\npaper check — ranks spread over many bins (max bin {:.1}% of mass): {}",
        100.0 * max_bin / total,
        if max_bin / total < 0.5 { "REPRODUCED" } else { "NOT reproduced" }
    );
}

fn bench(c: &mut Criterion) {
    experiment();
    let seqs = rose_workload(128, 0xF1633);
    let profiles: Vec<_> = seqs
        .iter()
        .map(|s| bioseq::KmerProfile::build(s, 6, bioseq::CompressedAlphabet::Dayhoff6).unwrap())
        .collect();
    c.bench_function("fig3/centralized_ranks_n128", |b| {
        b.iter(|| {
            let mut w = bioseq::Work::ZERO;
            bioseq::kmer::centralized_ranks(
                std::hint::black_box(&profiles),
                bioseq::RankTransform::PaperLog,
                &mut w,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
