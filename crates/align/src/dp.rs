//! The one Gotoh dynamic-programming kernel under every alignment path.
//!
//! Sample-Align-D's speed rests on each processor running its sequential
//! aligner over small domains, which makes the affine-gap DP the hot path
//! of the whole system. This module is the single home of that recurrence:
//!
//! * **One kernel, many scorers.** [`gotoh_global`] is generic over a
//!   [`ColumnScorer`], so residue-vs-residue alignment (via
//!   [`SubstScorer`]) and profile-vs-profile alignment (via [`PspScorer`],
//!   the PSP objective of MUSCLE) share one implementation instead of the
//!   four near-identical matrix fills the crate used to carry.
//! * **Packed traceback + rolling rows.** Scores live in two rolling rows
//!   (three layers each); the traceback stores all three layer choices in
//!   a single byte per cell. A full Gotoh instance used to keep six
//!   `O(n·m)` arrays of 8-byte scores — roughly 48 bytes per cell; the
//!   kernel keeps 1 byte per *in-band* cell plus `O(m)` score storage.
//! * **Reusable scratch.** All storage lives in a [`DpArena`] that callers
//!   thread through progressive alignment and refinement, so steady-state
//!   alignment performs no per-call heap allocation once the arena has
//!   grown to the workload's high-water mark.
//! * **Banded mode with adaptive doubling.** Under [`BandPolicy::Auto`]
//!   the DP is restricted to a diagonal band sized by the length
//!   difference, and the band is doubled and the instance re-run until
//!   the traced optimum clears the band edges **and** doubling no longer
//!   changes the score (edge clearance alone is not evidence of
//!   optimality — see [`gotoh_global`]). The fallback of the doubling is
//!   the full fill, so results converge to the full-DP optimum while
//!   [`bioseq::Work::dp_cells`] records only the cells actually filled.
//!
//! * **Two interchangeable kernels.** The classic scalar `f64` fill and a
//!   striped `f32` fill (selected by [`DpKernel`]) that scores whole rows
//!   through the batched [`ColumnScorer`] API, splits the recurrence into
//!   two vectorizable passes plus one serial suffix scan, and bit-packs
//!   the traceback into u64 planes. The scalar kernel is the
//!   property-test oracle: when the scorer reports
//!   [`ColumnScorer::f32_compatible`] (integral scores whose running sums
//!   stay below 2²⁴) every striped decision is provably identical and
//!   [`DpKernel::Auto`] selects the striped path; otherwise scores may
//!   differ by a relative epsilon (~1e-6) and `Auto` stays on the scalar
//!   oracle so traceback ops never drift.
//!
//! Scalar scores are `f64` throughout. For integer substitution matrices
//! and gap penalties every intermediate value is an exact small integer,
//! so both kernels reproduce the historical `i64` pairwise scores
//! bit-for-bit.

use crate::profile::{Profile, ProfileColumn};
use bioseq::alphabet::CODE_COUNT;
use bioseq::{GapPenalties, SubstMatrix, Work};
use serde::{Deserialize, Serialize};

/// The "unreachable" score. Ordinary arithmetic keeps it absorbing
/// (`NEG_INF + x == NEG_INF`), which is exactly what the recurrence needs.
pub const NEG_INF: f64 = f64::NEG_INFINITY;

/// Pick the best of the three layer scores, preferring M over X over Y on
/// ties (the tie-break every aligner in this crate has always used).
/// Returns `(best value, layer index)` with 0 = M, 1 = X, 2 = Y.
#[inline]
pub fn best3(m: f64, x: f64, y: f64) -> (f64, u8) {
    if m >= x && m >= y {
        (m, 0)
    } else if x >= y {
        (x, 1)
    } else {
        (y, 2)
    }
}

/// One traceback step of an alignment: which side(s) a merged column
/// consumes. (Historically `papro::ColOp`; re-exported there.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColOp {
    /// Consume one column from each side (aligned columns).
    Both,
    /// Consume a column from the first side; gap column in the second.
    FromA,
    /// Consume a column from the second side; gap column in the first.
    FromB,
}

/// How the kernel restricts the DP to a diagonal band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum BandPolicy {
    /// Fill the whole matrix. Exact, `O(n·m)` cells.
    Full,
    /// Start from a band sized by the sequence length difference (at
    /// least [`AUTO_MIN_BAND`]), and double it until the traced optimum
    /// clears the band edges and doubling leaves the score unchanged
    /// (falling back to the full fill). Matches the full-DP optimum on
    /// every input we can construct — including shifted and transposed
    /// blocks — while filling only near-diagonal cells on homologous
    /// ones; the acceptance test is a (strong) heuristic, not a proof.
    #[default]
    Auto,
    /// A fixed half-width band with **no** retry: fast and exact for
    /// near-homologous inputs, but may return a band-constrained (lower)
    /// score when the optimum needs larger shifts. The width is clamped
    /// up to the length difference so a path always exists.
    Fixed(usize),
}

impl BandPolicy {
    /// Stable label for engine names, CLI round-trips and reports:
    /// `"full"`, `"auto"`, or `"band<width>"`.
    pub fn label(&self) -> String {
        match self {
            BandPolicy::Full => "full".to_string(),
            BandPolicy::Auto => "auto".to_string(),
            BandPolicy::Fixed(w) => format!("band{w}"),
        }
    }

    /// Parse a [`label`](Self::label) or a bare width (`"64"`) back into
    /// a policy. Returns `None` for unknown text or a zero width.
    pub fn parse(text: &str) -> Option<BandPolicy> {
        match text {
            "full" => Some(BandPolicy::Full),
            "auto" => Some(BandPolicy::Auto),
            other => {
                let digits = other.strip_prefix("band").unwrap_or(other);
                match digits.parse::<usize>() {
                    Ok(0) | Err(_) => None,
                    Ok(w) => Some(BandPolicy::Fixed(w)),
                }
            }
        }
    }
}

/// Minimum initial half-width for [`BandPolicy::Auto`]. Instances whose
/// shorter side fits inside this band degenerate to a full fill, so tiny
/// alignments pay no banding overhead (and lose no optimality).
pub const AUTO_MIN_BAND: usize = 32;

/// Which matrix-fill implementation [`gotoh_global_with`] runs.
///
/// Both kernels produce identical traceback ops whenever the scorer is
/// [`ColumnScorer::f32_compatible`]; see the module docs for the epsilon
/// contract when it is not. Semiglobal and local alignments always use
/// the scalar fill regardless of this setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DpKernel {
    /// The one-cell-at-a-time `f64` fill: the property-test oracle.
    Scalar,
    /// The data-parallel `f32` row fill with bit-packed traceback.
    Striped,
    /// Per-instance choice: striped whenever the scorer guarantees
    /// f32-exact decisions, scalar otherwise.
    #[default]
    Auto,
}

impl DpKernel {
    /// Stable label for engine names, CLI round-trips and reports:
    /// `"scalar"`, `"striped"`, or `"auto"`.
    pub fn label(&self) -> &'static str {
        match self {
            DpKernel::Scalar => "scalar",
            DpKernel::Striped => "striped",
            DpKernel::Auto => "auto",
        }
    }

    /// Parse a [`label`](Self::label) back into a kernel choice. Returns
    /// `None` for unknown text.
    pub fn parse(text: &str) -> Option<DpKernel> {
        match text {
            "scalar" => Some(DpKernel::Scalar),
            "striped" => Some(DpKernel::Striped),
            "auto" => Some(DpKernel::Auto),
            _ => None,
        }
    }
}

/// Largest magnitude below which every integer is exactly representable
/// in `f32` (2²⁴): the boundary of the striped kernel's exactness proof.
const F32_EXACT_LIMIT: f64 = 16_777_216.0;

/// Build the [`SubstScorer`] per-residue lane table only for instances of
/// at least this many cells; below it the batched default fill is cheap
/// enough and the table would cost more than it saves.
const LANE_TABLE_MIN_CELLS: usize = 256;

/// The column-level scoring interface the kernel is generic over.
///
/// `i` indexes columns of the first side (`0..len_a()`), `j` of the second
/// (`0..len_b()`). Gap costs are *positive* charges: `gap_open_a(i)` is
/// the cost of the first gap symbol inserted into side B while consuming
/// column `i` of side A (the X layer), `gap_extend_a(i)` the cost of each
/// further one; `*_b` mirrors this for gaps in side A (the Y layer).
pub trait ColumnScorer {
    /// Number of columns on the first side.
    fn len_a(&self) -> usize;
    /// Number of columns on the second side.
    fn len_b(&self) -> usize;
    /// Substitution / PSP score for aligning column `i` of A with column
    /// `j` of B.
    fn substitution(&self, i: usize, j: usize) -> f64;
    /// Cost of opening a gap run in B that consumes A's column `i`.
    fn gap_open_a(&self, i: usize) -> f64;
    /// Cost of extending a gap run in B across A's column `i`.
    fn gap_extend_a(&self, i: usize) -> f64;
    /// Cost of opening a gap run in A that consumes B's column `j`.
    fn gap_open_b(&self, j: usize) -> f64;
    /// Cost of extending a gap run in A across B's column `j`.
    fn gap_extend_b(&self, j: usize) -> f64;

    /// Batched scoring: write `substitution(i, j0 + k)` for `k` in
    /// `0..out.len()` as `f32` lanes. The default loops over the scalar
    /// method; scorers with a denser layout override it (this is the
    /// striped kernel's hot path).
    fn fill_substitution_row(&self, i: usize, j0: usize, out: &mut [f32]) {
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.substitution(i, j0 + k) as f32;
        }
    }

    /// Batched gap costs: write `gap_open_b(j0 + k)` as `f32` lanes.
    fn fill_gap_open_b_row(&self, j0: usize, out: &mut [f32]) {
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.gap_open_b(j0 + k) as f32;
        }
    }

    /// Batched gap costs: write `gap_extend_b(j0 + k)` as `f32` lanes.
    fn fill_gap_extend_b_row(&self, j0: usize, out: &mut [f32]) {
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.gap_extend_b(j0 + k) as f32;
        }
    }

    /// Whether every decision the striped `f32` kernel would take on this
    /// instance is exact: all scores and gap costs are integers, and the
    /// worst-case running sum stays below 2²⁴ (f32's exact-integer
    /// range). When true, [`DpKernel::Auto`] selects the striped kernel
    /// with byte-identical traceback guaranteed. The conservative default
    /// keeps scorers that have not audited their arithmetic on the scalar
    /// oracle.
    fn f32_compatible(&self) -> bool {
        false
    }

    /// Whether [`BandPolicy::Auto`]'s confirmation refills should cache
    /// scored substitution rows in the arena and reuse the overlap
    /// instead of rescoring. Worth it when
    /// [`fill_substitution_row`](Self::fill_substitution_row) does real
    /// per-cell work (PSP dot products); pointless when it is already a
    /// table copy.
    fn cache_substitution_rows(&self) -> bool {
        true
    }
}

/// Residue-vs-residue scorer: a substitution matrix plus uniform affine
/// gap penalties. Terminal gaps are charged like internal ones, matching
/// [`bioseq::Msa::sp_score`]'s convention.
#[derive(Debug)]
pub struct SubstScorer<'a> {
    a: &'a [u8],
    b: &'a [u8],
    matrix: &'a SubstMatrix,
    open: f64,
    extend: f64,
    /// Per-residue score lanes: `lanes[c·m + j] = S(c, b[j])` for every
    /// code `c` present in `a`, so a striped row fill is one table copy.
    /// Left empty for tiny instances where building it costs more than
    /// the fill saves (the batched default path covers those).
    lanes: Vec<f32>,
    f32_ok: bool,
}

impl<'a> SubstScorer<'a> {
    /// Build a scorer over two code slices.
    pub fn new(a: &'a [u8], b: &'a [u8], matrix: &'a SubstMatrix, gaps: GapPenalties) -> Self {
        let (open, extend) = (gaps.open as f64, gaps.extend as f64);
        let m = b.len();
        let lanes = if a.len() * m >= LANE_TABLE_MIN_CELLS {
            let mut present = [false; CODE_COUNT];
            for &c in a {
                present[c as usize] = true;
            }
            let mut lanes = vec![0.0f32; CODE_COUNT * m];
            for (c, lane) in lanes.chunks_mut(m).enumerate() {
                if !present[c] {
                    continue;
                }
                let row = matrix.row(c as u8);
                for (slot, &code) in lane.iter_mut().zip(b) {
                    *slot = row[code as usize] as f32;
                }
            }
            lanes
        } else {
            Vec::new()
        };
        // Integer matrix, integer gaps: the striped kernel is exact as
        // long as no running sum can leave f32's exact-integer range.
        let max_step = (0..CODE_COUNT)
            .flat_map(|c| matrix.row(c as u8).iter())
            .fold(open.abs().max(extend.abs()), |acc, &v| acc.max((v as f64).abs()));
        let f32_ok = (a.len() + m + 2) as f64 * max_step < F32_EXACT_LIMIT;
        SubstScorer { a, b, matrix, open, extend, lanes, f32_ok }
    }
}

impl ColumnScorer for SubstScorer<'_> {
    #[inline]
    fn len_a(&self) -> usize {
        self.a.len()
    }
    #[inline]
    fn len_b(&self) -> usize {
        self.b.len()
    }
    #[inline]
    fn substitution(&self, i: usize, j: usize) -> f64 {
        self.matrix.row(self.a[i])[self.b[j] as usize] as f64
    }
    #[inline]
    fn gap_open_a(&self, _i: usize) -> f64 {
        self.open
    }
    #[inline]
    fn gap_extend_a(&self, _i: usize) -> f64 {
        self.extend
    }
    #[inline]
    fn gap_open_b(&self, _j: usize) -> f64 {
        self.open
    }
    #[inline]
    fn gap_extend_b(&self, _j: usize) -> f64 {
        self.extend
    }
    fn fill_substitution_row(&self, i: usize, j0: usize, out: &mut [f32]) {
        if self.lanes.is_empty() {
            let row = self.matrix.row(self.a[i]);
            for (slot, &code) in out.iter_mut().zip(&self.b[j0..]) {
                *slot = row[code as usize] as f32;
            }
        } else {
            let lane = &self.lanes[self.a[i] as usize * self.b.len() + j0..];
            out.copy_from_slice(&lane[..out.len()]);
        }
    }
    fn fill_gap_open_b_row(&self, _j0: usize, out: &mut [f32]) {
        out.fill(self.open as f32);
    }
    fn fill_gap_extend_b_row(&self, _j0: usize, out: &mut [f32]) {
        out.fill(self.extend as f32);
    }
    fn f32_compatible(&self) -> bool {
        self.f32_ok
    }
    /// Row fills are table copies (or one gather for tiny instances) —
    /// caching them in the arena would only duplicate the copy.
    fn cache_substitution_rows(&self) -> bool {
        false
    }
}

/// Profile-vs-profile scorer: the weighted PSP objective. Gap penalties
/// are scaled by the residue weight of the consumed column times the total
/// weight of the profile receiving the gap, keeping the objective in
/// weighted sum-of-pairs units end to end (exactly the arithmetic the old
/// `papro` matrix fill used).
#[derive(Debug)]
pub struct PspScorer<'a> {
    cols_a: &'a [ProfileColumn],
    /// Dense expected-score vectors for B's columns: `psp(i, j)` becomes a
    /// sparse dot of A's column `i` against `eb[j]`.
    eb: Vec<[f64; CODE_COUNT]>,
    /// Lane-major `f32` transpose of `eb` (`et[c·m + j] = eb[j][c]`): the
    /// striped row fill accumulates `w·et` over A's sparse residues with
    /// unit-stride multiply-adds.
    et: Vec<f32>,
    open_a: Vec<f64>,
    extend_a: Vec<f64>,
    open_b: Vec<f64>,
    extend_b: Vec<f64>,
    open_b32: Vec<f32>,
    extend_b32: Vec<f32>,
    f32_ok: bool,
}

impl<'a> PspScorer<'a> {
    /// Precompute the dense expected-score vectors and per-column gap
    /// rates. The `O(m·|Σ|)` setup cost is charged to `work.col_ops`.
    pub fn new(
        pa: &'a Profile,
        pb: &Profile,
        matrix: &SubstMatrix,
        gaps: GapPenalties,
        work: &mut Work,
    ) -> Self {
        let eb: Vec<[f64; CODE_COUNT]> =
            pb.cols.iter().map(|c| c.expected_scores(matrix)).collect();
        work.col_ops += (pb.len() * CODE_COUNT) as u64;
        let (open, extend) = (gaps.open as f64, gaps.extend as f64);
        let (wa_tot, wb_tot) = (pa.total_weight, pb.total_weight);
        let rate_a: Vec<f64> = pa.cols.iter().map(|c| c.residue_weight() * wb_tot).collect();
        let rate_b: Vec<f64> = pb.cols.iter().map(|c| c.residue_weight() * wa_tot).collect();
        let open_a: Vec<f64> = rate_a.iter().map(|r| open * r).collect();
        let extend_a: Vec<f64> = rate_a.iter().map(|r| extend * r).collect();
        let open_b: Vec<f64> = rate_b.iter().map(|r| open * r).collect();
        let extend_b: Vec<f64> = rate_b.iter().map(|r| extend * r).collect();
        let m = pb.len();
        let mut et = vec![0.0f32; CODE_COUNT * m];
        for (j, e) in eb.iter().enumerate() {
            for (c, &v) in e.iter().enumerate() {
                et[c * m + j] = v as f32;
            }
        }
        // Exactness audit for the striped kernel: integral weights make
        // every PSP term an integer, and the magnitude bound keeps the
        // worst-case running sum inside f32's exact-integer range. Both
        // must hold before Auto may leave the f64 oracle.
        let gap_costs = || open_a.iter().chain(&extend_a).chain(&open_b).chain(&extend_b);
        let integral = pa.cols.iter().all(ProfileColumn::weights_integral)
            && eb.iter().flatten().all(|v| v.fract() == 0.0)
            && gap_costs().all(|v| v.fract() == 0.0);
        let wa_max = pa.cols.iter().map(ProfileColumn::residue_weight).fold(0.0f64, f64::max);
        let e_max = eb.iter().flatten().fold(0.0f64, |acc, &v| acc.max(v.abs()));
        let g_max = gap_costs().fold(0.0f64, |acc, &v| acc.max(v.abs()));
        let step = (wa_max * e_max).max(g_max);
        let f32_ok = integral && (pa.len() + m + 2) as f64 * step < F32_EXACT_LIMIT;
        PspScorer {
            cols_a: &pa.cols,
            eb,
            et,
            open_a,
            extend_a,
            open_b32: open_b.iter().map(|&v| v as f32).collect(),
            extend_b32: extend_b.iter().map(|&v| v as f32).collect(),
            open_b,
            extend_b,
            f32_ok,
        }
    }
}

impl ColumnScorer for PspScorer<'_> {
    #[inline]
    fn len_a(&self) -> usize {
        self.cols_a.len()
    }
    #[inline]
    fn len_b(&self) -> usize {
        self.eb.len()
    }
    #[inline]
    fn substitution(&self, i: usize, j: usize) -> f64 {
        let e = &self.eb[j];
        let mut psp = 0.0;
        for &(a, wgt) in &self.cols_a[i].residues {
            psp += wgt * e[a as usize];
        }
        psp
    }
    #[inline]
    fn gap_open_a(&self, i: usize) -> f64 {
        self.open_a[i]
    }
    #[inline]
    fn gap_extend_a(&self, i: usize) -> f64 {
        self.extend_a[i]
    }
    #[inline]
    fn gap_open_b(&self, j: usize) -> f64 {
        self.open_b[j]
    }
    #[inline]
    fn gap_extend_b(&self, j: usize) -> f64 {
        self.extend_b[j]
    }
    fn fill_substitution_row(&self, i: usize, j0: usize, out: &mut [f32]) {
        out.fill(0.0);
        let m = self.eb.len();
        for &(a, wgt) in &self.cols_a[i].residues {
            let w = wgt as f32;
            let lane = &self.et[a as usize * m + j0..][..out.len()];
            for (slot, &e) in out.iter_mut().zip(lane) {
                *slot += w * e;
            }
        }
    }
    fn fill_gap_open_b_row(&self, j0: usize, out: &mut [f32]) {
        out.copy_from_slice(&self.open_b32[j0..j0 + out.len()]);
    }
    fn fill_gap_extend_b_row(&self, j0: usize, out: &mut [f32]) {
        out.copy_from_slice(&self.extend_b32[j0..j0 + out.len()]);
    }
    fn f32_compatible(&self) -> bool {
        self.f32_ok
    }
}

// Packed traceback layout: one byte per in-band cell.
// bits 0–1: M's diagonal predecessor layer (0 = M, 1 = X, 2 = Y,
//           3 = fresh start — local/semiglobal modes only);
// bit 2: X extended (vs opened); bit 3: X opened from Y (vs M);
// bit 4: Y extended (vs opened); bit 5: Y opened from X (vs M).
const TB_M_MASK: u8 = 0b0000_0011;
const TB_M_START: u8 = 3;
const TB_X_EXT: u8 = 0b0000_0100;
const TB_X_FROM_Y: u8 = 0b0000_1000;
const TB_Y_EXT: u8 = 0b0001_0000;
const TB_Y_FROM_X: u8 = 0b0010_0000;

/// Number of traceback bit-planes the striped kernel stores (bits 0–5 of
/// the byte layout above; [`TB_M_START`] only occurs in scalar-only
/// modes, so two M bits suffice).
const TB_PLANES: usize = 6;

/// Gather the low bit of each byte of `x` into one byte (result bit `k` =
/// LSB of byte `k`, little-endian). Each byte's bit is scattered by the
/// multiply to a distinct position of the top byte — positions `56 + k`
/// are hit exactly once and every cross term lands strictly below bit 56,
/// each at its own position, so no carry can reach the result.
#[inline]
fn gather_lsb(x: u64) -> u8 {
    (((x & 0x0101_0101_0101_0101).wrapping_mul(0x0102_0408_1020_4080)) >> 56) as u8
}

/// Substitution rows cached across [`BandPolicy::Auto`]'s confirmation
/// refills (striped kernel): per row, the scored column range and values,
/// so a doubled band rescores only the fresh flanks.
#[derive(Debug, Default)]
struct SubRows {
    vals: Vec<f32>,
    off: Vec<usize>,
    j0: Vec<usize>,
    len: Vec<usize>,
}

impl SubRows {
    fn reset(&mut self, n: usize) {
        self.vals.clear();
        for v in [&mut self.off, &mut self.j0, &mut self.len] {
            v.clear();
            v.resize(n + 1, 0);
        }
    }

    fn row(&self, i: usize) -> Option<(usize, &[f32])> {
        let len = *self.len.get(i)?;
        if len == 0 {
            return None;
        }
        Some((self.j0[i], &self.vals[self.off[i]..self.off[i] + len]))
    }

    fn push_row(&mut self, i: usize, j0: usize, vals: &[f32]) {
        self.off[i] = self.vals.len();
        self.j0[i] = j0;
        self.len[i] = vals.len();
        self.vals.extend_from_slice(vals);
    }
}

/// Reusable scratch for the kernel: two rolling score rows per layer, the
/// packed traceback, and per-row band geometry. One arena serves any
/// number of consecutive alignments; buffers grow to the largest instance
/// seen and are then reused without further allocation.
#[derive(Debug, Default)]
pub struct DpArena {
    // Rolling score rows (previous / current), one pair per layer.
    mp: Vec<f64>,
    xp: Vec<f64>,
    yp: Vec<f64>,
    mc: Vec<f64>,
    xc: Vec<f64>,
    yc: Vec<f64>,
    /// Packed traceback bytes, rows concatenated.
    tb: Vec<u8>,
    /// Per-row offset of the row's first stored byte in `tb`.
    row_off: Vec<usize>,
    /// Per-row first interior column stored (`max(1, lo)`).
    row_jlo: Vec<usize>,
    /// Per-row band bounds (inclusive) for edge detection.
    row_lo: Vec<usize>,
    row_hi: Vec<usize>,
    /// Last-column layer scores per row (semiglobal end-cell scan).
    lastcol: Vec<(f64, f64, f64)>,
    // Rolling `f32` score rows for the striped kernel.
    mp32: Vec<f32>,
    xp32: Vec<f32>,
    yp32: Vec<f32>,
    mc32: Vec<f32>,
    xc32: Vec<f32>,
    yc32: Vec<f32>,
    /// Striped traceback: [`TB_PLANES`] u64 bit-planes per row (one per
    /// traceback bit), rows concatenated. 6 bits per in-band cell instead
    /// of the scalar byte store's 8.
    tbw: Vec<u64>,
    /// Per-row offset of the row's first word in `tbw`.
    row_woff: Vec<usize>,
    /// Whether the last fill wrote the bit-plane store (`tbw`) instead of
    /// the byte store (`tb`).
    packed: bool,
    // Striped per-row scratch: scored substitution row, Y open
    // candidates + their origin bit, unpacked traceback bytes.
    srow: Vec<f32>,
    oy: Vec<f32>,
    yfrom: Vec<u8>,
    tbrow: Vec<u8>,
    // Per-column B gap costs, scored once per fill.
    gob32: Vec<f32>,
    geb32: Vec<f32>,
    // Substitution-row cache across Auto confirmation refills
    // (double-buffered: last fill's rows are read while the current
    // fill's are recorded).
    sub_cur: SubRows,
    sub_prev: SubRows,
    sub_valid: bool,
}

impl DpArena {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn tb_at(&self, i: usize, j: usize) -> u8 {
        let k = j - self.row_jlo[i];
        if !self.packed {
            return self.tb[self.row_off[i] + k];
        }
        let wpp = (self.row_hi[i] + 1 - self.row_jlo[i]).div_ceil(64);
        let base = self.row_woff[i];
        let (word, bit) = (k / 64, k % 64);
        let mut byte = 0u8;
        for p in 0..TB_PLANES {
            byte |= (((self.tbw[base + p * wpp + word] >> bit) & 1) as u8) << p;
        }
        byte
    }
}

/// What alignment variant the fill computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// End-to-end alignment, terminal gaps charged.
    Global,
    /// Overlap alignment: terminal gaps of either side are free.
    Semiglobal,
    /// Smith–Waterman: best-scoring local segment.
    Local,
}

/// The outcome of one global or semiglobal kernel run.
#[derive(Debug, Clone, PartialEq)]
pub struct DpResult {
    /// Column merge script (length = aligned width).
    pub ops: Vec<ColOp>,
    /// The DP objective value.
    pub score: f64,
    /// Matrix cells actually filled, summed over adaptive retries
    /// (single-layer count; one "cell" fills all three layers).
    pub cells: u64,
    /// Cells a full `n·m` fill would have touched (single-layer count).
    pub full_cells: u64,
    /// Final band half-width, or `None` when the whole matrix was filled.
    pub band: Option<usize>,
}

impl DpResult {
    /// The [`Work`] this run performed: three layers per filled cell,
    /// with the full-matrix equivalent recorded alongside.
    pub fn work(&self) -> Work {
        Work::dp_banded(3 * self.cells, 3 * self.full_cells)
    }
}

/// The outcome of a local (Smith–Waterman) kernel run.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalDpResult {
    /// Merge script of the aligned segment only.
    pub ops: Vec<ColOp>,
    /// Best local score (≥ 0).
    pub score: f64,
    /// Start of the segment in A (0-based column index).
    pub start_a: usize,
    /// Start of the segment in B.
    pub start_b: usize,
    /// One past the end of the segment in A.
    pub end_a: usize,
    /// One past the end of the segment in B.
    pub end_b: usize,
    /// Matrix cells filled (single-layer count; always the full matrix).
    pub cells: u64,
}

impl LocalDpResult {
    /// The [`Work`] this run performed.
    pub fn work(&self) -> Work {
        Work::dp(3 * self.cells)
    }
}

struct FillOutcome {
    cells: u64,
    /// End-cell layer scores (M, X, Y) at `(n, m)`.
    end: (f64, f64, f64),
    /// Best interior M cell (local mode).
    best: (f64, usize, usize),
}

/// Fill the matrix within half-width `hw` (`hw ≥ len_b` means full).
/// Returns the per-layer end values; traceback state stays in the arena.
fn fill<S: ColumnScorer>(s: &S, mode: Mode, hw: usize, arena: &mut DpArena) -> FillOutcome {
    let n = s.len_a();
    let m = s.len_b();
    let w = m + 1;
    debug_assert!(mode == Mode::Global || hw >= m, "banding is a global-mode feature");

    // Band geometry: row i is allowed columns [lo(i), hi(i)] around the
    // rescaled diagonal j ≈ i·m/n.
    let centre = |i: usize| (i * m).checked_div(n).unwrap_or(0);
    let lo = |i: usize| centre(i).saturating_sub(hw);
    let hi = |i: usize| (centre(i) + hw).min(m);

    // (Re)initialise the arena for this instance.
    for v in
        [&mut arena.mp, &mut arena.xp, &mut arena.yp, &mut arena.mc, &mut arena.xc, &mut arena.yc]
    {
        v.clear();
        v.resize(w, NEG_INF);
    }
    arena.row_off.clear();
    arena.row_off.resize(n + 1, 0);
    arena.row_jlo.clear();
    arena.row_jlo.resize(n + 1, 0);
    arena.row_lo.clear();
    arena.row_lo.resize(n + 1, 0);
    arena.row_hi.clear();
    arena.row_hi.resize(n + 1, 0);
    arena.tb.clear();
    arena.packed = false;
    if mode == Mode::Semiglobal {
        arena.lastcol.clear();
        arena.lastcol.resize(n + 1, (NEG_INF, NEG_INF, NEG_INF));
    }

    // Row 0.
    match mode {
        Mode::Global => {
            arena.mp[0] = 0.0;
            let mut by = 0.0;
            for j in 1..=hi(0) {
                by -= if j == 1 { s.gap_open_b(0) } else { s.gap_extend_b(j - 1) };
                arena.yp[j] = by;
            }
        }
        Mode::Semiglobal | Mode::Local => {
            for v in arena.mp.iter_mut() {
                *v = 0.0;
            }
        }
    }
    if mode == Mode::Semiglobal {
        arena.lastcol[0] = (arena.mp[m], arena.xp[m], arena.yp[m]);
    }

    // Column-0 boundary (the X run down the left edge), maintained while
    // the band still contains column 0.
    let mut bx = 0.0;

    let mut cells = 0u64;
    let mut best = (0.0f64, 0usize, 0usize);
    let mut tb_len = 0usize;
    for i in 1..=n {
        let (rlo, rhi) = (lo(i), hi(i));
        let jstart = rlo.max(1);
        arena.row_lo[i] = rlo;
        arena.row_hi[i] = rhi;
        arena.row_jlo[i] = jstart;
        arena.row_off[i] = tb_len;
        let width = rhi + 1 - jstart;
        tb_len += width;
        arena.tb.resize(tb_len, 0);

        // Clear the current row across every cell rows i and i+1 can
        // read, so values from two rows ago never leak through.
        let next_hi = if i < n { hi(i + 1) } else { rhi };
        let clo = rlo.saturating_sub(1);
        let chi = rhi.max(next_hi);
        for v in [&mut arena.mc, &mut arena.xc, &mut arena.yc] {
            for slot in &mut v[clo..=chi] {
                *slot = NEG_INF;
            }
        }

        // Cell (i, 0): the left-edge boundary.
        if rlo == 0 {
            match mode {
                Mode::Global => {
                    bx -= if i == 1 { s.gap_open_a(0) } else { s.gap_extend_a(i - 1) };
                    arena.xc[0] = bx;
                }
                Mode::Semiglobal | Mode::Local => arena.mc[0] = 0.0,
            }
        }

        let row_tb = &mut arena.tb[arena.row_off[i]..tb_len];
        for j in jstart..=rhi {
            cells += 1;
            let sub = s.substitution(i - 1, j - 1);
            // M: consume both columns.
            let (mut bprev, mut from) = best3(arena.mp[j - 1], arena.xp[j - 1], arena.yp[j - 1]);
            if mode == Mode::Local && 0.0 >= bprev {
                bprev = 0.0;
                from = TB_M_START;
            }
            let mval = bprev + sub;
            // X: consume from A (gap in B). Open from M/Y above or extend.
            let (um, ux, uy) = (arena.mp[j], arena.xp[j], arena.yp[j]);
            let open_x = um.max(uy) - s.gap_open_a(i - 1);
            let ext_x = ux - s.gap_extend_a(i - 1);
            let (xval, xbits) = if ext_x >= open_x {
                (ext_x, TB_X_EXT)
            } else {
                (open_x, if um >= uy { 0 } else { TB_X_FROM_Y })
            };
            // Y: consume from B (gap in A). Open from M/X on the left or
            // extend.
            let (lm, lx, ly) = (arena.mc[j - 1], arena.xc[j - 1], arena.yc[j - 1]);
            let open_y = lm.max(lx) - s.gap_open_b(j - 1);
            let ext_y = ly - s.gap_extend_b(j - 1);
            let (yval, ybits) = if ext_y >= open_y {
                (ext_y, TB_Y_EXT)
            } else {
                (open_y, if lm >= lx { 0 } else { TB_Y_FROM_X })
            };
            row_tb[j - jstart] = from | xbits | ybits;
            arena.mc[j] = mval;
            arena.xc[j] = xval;
            arena.yc[j] = yval;
            if mode == Mode::Local && mval > best.0 {
                best = (mval, i, j);
            }
        }
        if mode == Mode::Semiglobal {
            arena.lastcol[i] = (arena.mc[m], arena.xc[m], arena.yc[m]);
        }
        std::mem::swap(&mut arena.mp, &mut arena.mc);
        std::mem::swap(&mut arena.xp, &mut arena.xc);
        std::mem::swap(&mut arena.yp, &mut arena.yc);
    }
    // After the final swap the last filled row sits in the "previous"
    // buffers (row 0 included, when n == 0).
    FillOutcome { cells, end: (arena.mp[m], arena.xp[m], arena.yp[m]), best }
}

/// The striped fill: the scalar recurrence split into two vectorizable
/// row passes plus one serial suffix scan, over `f32` lanes, with the
/// traceback packed into u64 bit-planes. Global mode only; band geometry,
/// tie-breaking and cell accounting match [`fill`] exactly.
///
/// Pass 1 computes M (diagonal predecessor) and X (vertical) for the
/// whole row — both read only the previous row, so the loop carries no
/// dependency and autovectorizes. Pass 2 computes each cell's best
/// gap-*open* candidate for Y from the now-final M/X row. Pass 3 is the
/// lazy-F-style serial scan resolving Y's row-carried extension chain —
/// the only serial work left per row.
///
/// With `cache_rows`, scored substitution rows are recorded in the arena
/// and the next (wider) fill of the same instance copies the overlap
/// instead of rescoring — [`BandPolicy::Auto`]'s confirmation pass then
/// pays only for the fresh band flanks.
fn fill_striped<S: ColumnScorer>(
    s: &S,
    hw: usize,
    cache_rows: bool,
    arena: &mut DpArena,
) -> FillOutcome {
    let n = s.len_a();
    let m = s.len_b();
    let w = m + 1;
    let centre = |i: usize| (i * m).checked_div(n).unwrap_or(0);
    let lo = |i: usize| centre(i).saturating_sub(hw);
    let hi = |i: usize| (centre(i) + hw).min(m);

    for v in [
        &mut arena.mp32,
        &mut arena.xp32,
        &mut arena.yp32,
        &mut arena.mc32,
        &mut arena.xc32,
        &mut arena.yc32,
    ] {
        v.clear();
        v.resize(w, f32::NEG_INFINITY);
    }
    for v in [&mut arena.row_jlo, &mut arena.row_lo, &mut arena.row_hi, &mut arena.row_woff] {
        v.clear();
        v.resize(n + 1, 0);
    }
    arena.tbw.clear();
    arena.packed = true;

    // Per-column B gap costs, scored once for the whole fill.
    arena.gob32.clear();
    arena.gob32.resize(m, 0.0);
    arena.geb32.clear();
    arena.geb32.resize(m, 0.0);
    s.fill_gap_open_b_row(0, &mut arena.gob32);
    s.fill_gap_extend_b_row(0, &mut arena.geb32);

    let reuse = cache_rows && arena.sub_valid;
    if cache_rows {
        std::mem::swap(&mut arena.sub_cur, &mut arena.sub_prev);
        arena.sub_cur.reset(n);
    }

    // Row 0: M origin and the Y run along the top edge.
    arena.mp32[0] = 0.0;
    let mut by = 0.0f32;
    for j in 1..=hi(0) {
        by -= if j == 1 { arena.gob32[0] } else { arena.geb32[j - 1] };
        arena.yp32[j] = by;
    }

    let mut bx = 0.0f32;
    let mut cells = 0u64;
    for i in 1..=n {
        let (rlo, rhi) = (lo(i), hi(i));
        let jstart = rlo.max(1);
        arena.row_lo[i] = rlo;
        arena.row_hi[i] = rhi;
        arena.row_jlo[i] = jstart;
        arena.row_woff[i] = arena.tbw.len();
        let width = rhi + 1 - jstart;
        cells += width as u64;
        let wpp = width.div_ceil(64);

        // Clear the current row across every cell rows i and i+1 can
        // read, so values from two rows ago never leak through.
        let next_hi = if i < n { hi(i + 1) } else { rhi };
        let clo = rlo.saturating_sub(1);
        let chi = rhi.max(next_hi);
        for v in [&mut arena.mc32, &mut arena.xc32, &mut arena.yc32] {
            for slot in &mut v[clo..=chi] {
                *slot = f32::NEG_INFINITY;
            }
        }

        // Cell (i, 0): the left-edge boundary.
        if rlo == 0 {
            bx -= if i == 1 { s.gap_open_a(0) as f32 } else { s.gap_extend_a(i - 1) as f32 };
            arena.xc32[0] = bx;
        }

        // Score the substitution row (columns jstart..=rhi pair A's
        // column i-1 with B's columns jstart-1..rhi-1), reusing the
        // previous fill's overlap when it is cached.
        let sub_j0 = jstart - 1;
        arena.srow.clear();
        arena.srow.resize(width, 0.0);
        let mut scored = false;
        if reuse {
            if let Some((pj0, pvals)) = arena.sub_prev.row(i) {
                let o_lo = sub_j0.max(pj0);
                let o_hi = (sub_j0 + width).min(pj0 + pvals.len());
                if o_lo < o_hi {
                    arena.srow[o_lo - sub_j0..o_hi - sub_j0]
                        .copy_from_slice(&pvals[o_lo - pj0..o_hi - pj0]);
                    if o_lo > sub_j0 {
                        s.fill_substitution_row(i - 1, sub_j0, &mut arena.srow[..o_lo - sub_j0]);
                    }
                    if o_hi < sub_j0 + width {
                        s.fill_substitution_row(i - 1, o_hi, &mut arena.srow[o_hi - sub_j0..]);
                    }
                    scored = true;
                }
            }
        }
        if !scored {
            s.fill_substitution_row(i - 1, sub_j0, &mut arena.srow);
        }
        if cache_rows {
            arena.sub_cur.push_row(i, sub_j0, &arena.srow);
        }

        let goa = s.gap_open_a(i - 1) as f32;
        let gea = s.gap_extend_a(i - 1) as f32;
        arena.tbrow.clear();
        arena.tbrow.resize(width, 0);

        // Pass 1: M and X, no carried dependency.
        {
            let mp = &arena.mp32[jstart - 1..=rhi];
            let xp = &arena.xp32[jstart - 1..=rhi];
            let yp = &arena.yp32[jstart - 1..=rhi];
            let mc = &mut arena.mc32[jstart..=rhi];
            let xc = &mut arena.xc32[jstart..=rhi];
            let srow = &arena.srow[..width];
            let tbrow = &mut arena.tbrow[..width];
            for k in 0..width {
                // M from the best diagonal predecessor, ties M ≥ X ≥ Y
                // (strict `>` replacements keep the earlier layer).
                let (dm, dx, dy) = (mp[k], xp[k], yp[k]);
                let mut bv = dm;
                let mut bf = 0u8;
                if dx > bv {
                    bv = dx;
                    bf = 1;
                }
                if dy > bv {
                    bv = dy;
                    bf = 2;
                }
                mc[k] = bv + srow[k];
                // X: open from M/Y above or extend the run.
                let (um, ux, uy) = (mp[k + 1], xp[k + 1], yp[k + 1]);
                let open_x = um.max(uy) - goa;
                let ext_x = ux - gea;
                let ext = ext_x >= open_x;
                xc[k] = if ext { ext_x } else { open_x };
                let xbits = if ext {
                    TB_X_EXT
                } else if um >= uy {
                    0
                } else {
                    TB_X_FROM_Y
                };
                tbrow[k] = bf | xbits;
            }
        }

        // Pass 2: Y's open candidates from the final M/X row.
        {
            let mc = &arena.mc32[jstart - 1..rhi];
            let xc = &arena.xc32[jstart - 1..rhi];
            let gob = &arena.gob32[jstart - 1..rhi];
            arena.oy.clear();
            arena.oy.resize(width, 0.0);
            arena.yfrom.clear();
            arena.yfrom.resize(width, 0);
            let oy = &mut arena.oy[..width];
            let yfrom = &mut arena.yfrom[..width];
            for k in 0..width {
                let (lm, lx) = (mc[k], xc[k]);
                oy[k] = lm.max(lx) - gob[k];
                yfrom[k] = if lm >= lx { 0 } else { TB_Y_FROM_X };
            }
        }

        // Pass 3: the serial extension scan (lazy-F equivalent).
        {
            let geb = &arena.geb32[jstart - 1..rhi];
            let oy = &arena.oy[..width];
            let yfrom = &arena.yfrom[..width];
            let tbrow = &mut arena.tbrow[..width];
            let yc = &mut arena.yc32;
            let mut yprev = yc[jstart - 1];
            for k in 0..width {
                let ext = yprev - geb[k];
                let open = oy[k];
                let (v, bits) = if ext >= open { (ext, TB_Y_EXT) } else { (open, yfrom[k]) };
                yc[jstart + k] = v;
                yprev = v;
                tbrow[k] |= bits;
            }
        }

        // Pack the row's traceback bytes into bit-planes: SWAR gathers
        // 8 cells' worth of one bit per multiply.
        let base = arena.tbw.len();
        arena.tbw.resize(base + TB_PLANES * wpp, 0);
        let words = &mut arena.tbw[base..];
        for (wi, block) in arena.tbrow.chunks(64).enumerate() {
            for (ci, chunk) in block.chunks(8).enumerate() {
                let mut buf = [0u8; 8];
                buf[..chunk.len()].copy_from_slice(chunk);
                let x = u64::from_le_bytes(buf);
                for (p, plane) in words.chunks_mut(wpp).enumerate() {
                    plane[wi] |= (gather_lsb(x >> p) as u64) << (8 * ci);
                }
            }
        }

        std::mem::swap(&mut arena.mp32, &mut arena.mc32);
        std::mem::swap(&mut arena.xp32, &mut arena.xc32);
        std::mem::swap(&mut arena.yp32, &mut arena.yc32);
    }
    arena.sub_valid = cache_rows;
    // After the final swap the last filled row sits in the "previous"
    // buffers (row 0 included, when n == 0).
    FillOutcome {
        cells,
        end: (arena.mp32[m] as f64, arena.xp32[m] as f64, arena.yp32[m] as f64),
        best: (0.0, 0, 0),
    }
}

/// Walk of the packed traceback from `(i, j, layer)` back to the origin:
/// the recovered ops, whether the path touched a (clipped) band edge, and
/// the first cell of the path. `stop_start` ends the walk at a fresh-start
/// cell instead of padding to the origin (local mode).
struct Traceback {
    ops_rev: Vec<ColOp>,
    touched_edge: bool,
    pos: (usize, usize),
}

impl Traceback {
    fn walk(
        arena: &DpArena,
        m: usize,
        start: (usize, usize),
        mut layer: u8,
        stop_start: bool,
    ) -> Self {
        let (mut i, mut j) = start;
        let mut ops_rev = Vec::with_capacity(i + j);
        let mut touched = false;
        while i > 0 || j > 0 {
            if i == 0 {
                if stop_start {
                    break;
                }
                ops_rev.push(ColOp::FromB);
                j -= 1;
                continue;
            }
            if j == 0 {
                if stop_start {
                    break;
                }
                ops_rev.push(ColOp::FromA);
                i -= 1;
                continue;
            }
            // A path running within one cell of a clipped band edge may be
            // constrained by it; the adaptive controller widens and
            // retries in that case.
            let (rlo, rhi) = (arena.row_lo[i], arena.row_hi[i]);
            if (rlo > 0 && j <= rlo + 1) || (rhi < m && j + 1 >= rhi) {
                touched = true;
            }
            let byte = arena.tb_at(i, j);
            match layer {
                0 => {
                    ops_rev.push(ColOp::Both);
                    let src = byte & TB_M_MASK;
                    i -= 1;
                    j -= 1;
                    if src == TB_M_START {
                        if stop_start {
                            break;
                        }
                        // Semiglobal fresh start: the rest of the prefix
                        // is free terminal gaps, emitted by the boundary
                        // arms above.
                        layer = 0;
                        debug_assert!(
                            i == 0 || j == 0,
                            "fresh starts only occur on the boundary in semiglobal mode"
                        );
                    } else {
                        layer = src;
                    }
                }
                1 => {
                    ops_rev.push(ColOp::FromA);
                    let extended = byte & TB_X_EXT != 0;
                    i -= 1;
                    if !extended {
                        layer = if byte & TB_X_FROM_Y != 0 { 2 } else { 0 };
                    }
                }
                _ => {
                    ops_rev.push(ColOp::FromB);
                    let extended = byte & TB_Y_EXT != 0;
                    j -= 1;
                    if !extended {
                        layer = if byte & TB_Y_FROM_X != 0 { 1 } else { 0 };
                    }
                }
            }
        }
        ops_rev.reverse();
        Traceback { ops_rev, touched_edge: touched, pos: (i, j) }
    }
}

/// Global (Needleman–Wunsch/Gotoh) alignment under the given band policy.
///
/// Terminal gaps are charged like internal ones. Under
/// [`BandPolicy::Auto`] the kernel re-runs with a doubled band until the
/// traced optimum clears the band edges **and** the score is stable under
/// the doubling (an interior path can still be band-suboptimal — e.g.
/// transposed blocks — so clearance alone is not trusted), falling back
/// to a full fill; [`DpResult::cells`] sums the cells of every attempt
/// (a geometric series bounded by a small constant times one full fill).
pub fn gotoh_global<S: ColumnScorer>(s: &S, policy: BandPolicy, arena: &mut DpArena) -> DpResult {
    gotoh_global_with(s, policy, DpKernel::Auto, arena)
}

/// [`gotoh_global`] with an explicit [`DpKernel`] choice. `Scalar` and
/// `Striped` force their fill; `Auto` (the [`gotoh_global`] default) runs
/// striped exactly when the scorer guarantees f32-exact decisions
/// ([`ColumnScorer::f32_compatible`]), so results never depend on the
/// heuristic. Banding behaves identically under either kernel.
pub fn gotoh_global_with<S: ColumnScorer>(
    s: &S,
    policy: BandPolicy,
    kernel: DpKernel,
    arena: &mut DpArena,
) -> DpResult {
    let n = s.len_a();
    let m = s.len_b();
    let striped = match kernel {
        DpKernel::Scalar => false,
        DpKernel::Striped => true,
        DpKernel::Auto => s.f32_compatible(),
    };
    // Auto's confirmation refills revisit the same rows with a doubled
    // band: cache scored rows when the scorer's row fill is worth saving.
    let cache = striped && policy == BandPolicy::Auto && s.cache_substitution_rows();
    arena.sub_valid = false;
    let full_cells = (n as u64) * (m as u64);
    // hw ≥ m covers every column of every row: a full fill.
    let full_hw = m;
    let feasible = n.abs_diff(m) + 1;
    let run = |hw: usize, arena: &mut DpArena| -> (FillOutcome, Traceback, f64) {
        let out = if striped {
            fill_striped(s, hw, cache, arena)
        } else {
            fill(s, Mode::Global, hw, arena)
        };
        let (score, layer) = best3(out.end.0, out.end.1, out.end.2);
        let tb = Traceback::walk(arena, m, (n, m), layer, false);
        (out, tb, score)
    };
    match policy {
        BandPolicy::Full => {
            let (out, tb, score) = run(full_hw, arena);
            DpResult { ops: tb.ops_rev, score, cells: out.cells, full_cells, band: None }
        }
        BandPolicy::Fixed(width) => {
            let hw = width.max(feasible);
            let (out, tb, score) = run(hw, arena);
            let band = if hw >= full_hw { None } else { Some(hw) };
            DpResult { ops: tb.ops_rev, score, cells: out.cells, full_cells, band }
        }
        BandPolicy::Auto => {
            let mut hw = feasible.max(AUTO_MIN_BAND).min(full_hw.max(1));
            // Any accepted banded outcome costs at least the band plus
            // its doubled confirmation pass, ≈ (6·hw + 2)·n cells; when
            // that can't undercut the m·n full fill, run the
            // (unconditionally exact) full fill straight away.
            if 6 * hw + 2 >= full_hw {
                hw = full_hw;
            }
            let mut total = 0u64;
            let mut prev_score: Option<f64> = None;
            loop {
                let (out, tb, score) = run(hw, arena);
                total += out.cells;
                let clipped = hw < full_hw;
                // A clipped result is accepted only when the traced
                // optimum stays clear of the band edges AND doubling the
                // band left the score unchanged. Edge clearance alone is
                // not evidence of optimality: an interior near-diagonal
                // path can score less than an off-band excursion (e.g.
                // transposed sequence blocks), and only score stability
                // under widening rules that out.
                let confirmed = !tb.touched_edge && score > NEG_INF && prev_score == Some(score);
                if !clipped || confirmed {
                    let band = if clipped { Some(hw) } else { None };
                    return DpResult { ops: tb.ops_rev, score, cells: total, full_cells, band };
                }
                prev_score = Some(score);
                hw = (hw * 2).min(full_hw);
                // A doubled band about as wide as the matrix costs a full
                // fill anyway — make it the exact full run.
                if 2 * hw + 1 >= full_hw {
                    hw = full_hw;
                }
            }
        }
    }
}

/// Overlap (semiglobal) alignment: terminal gaps on either side are free,
/// so the score rewards the best end-to-end overlap of the two column
/// streams. The returned ops cover both inputs completely (free terminal
/// gaps included). Always a full fill.
pub fn gotoh_semiglobal<S: ColumnScorer>(s: &S, arena: &mut DpArena) -> DpResult {
    let n = s.len_a();
    let m = s.len_b();
    let full_cells = (n as u64) * (m as u64);
    let out = fill(s, Mode::Semiglobal, m, arena);
    // Best end anchored on the last row or last column; earlier rows win
    // ties (deterministic).
    let (mut score, mut layer, mut end) = (NEG_INF, 0u8, (n, m));
    for (i, &(em, ex, ey)) in arena.lastcol.iter().enumerate() {
        let (v, l) = best3(em, ex, ey);
        if v > score {
            score = v;
            layer = l;
            end = (i, m);
        }
    }
    // The final fill row (row n) sits in the "previous" buffers.
    for j in 0..=m {
        let (v, l) = best3(arena.mp[j], arena.xp[j], arena.yp[j]);
        if v > score {
            score = v;
            layer = l;
            end = (n, j);
        }
    }
    let trailing_a = n - end.0;
    let trailing_b = m - end.1;
    let tb = Traceback::walk(arena, m, end, layer, false);
    let mut ops = tb.ops_rev;
    ops.extend(std::iter::repeat_n(ColOp::FromA, trailing_a));
    ops.extend(std::iter::repeat_n(ColOp::FromB, trailing_b));
    DpResult { ops, score, cells: out.cells, full_cells, band: None }
}

/// Local (Smith–Waterman) alignment: the best-scoring segment pair. Empty
/// result (score 0) when nothing scores positively. Always a full fill.
pub fn gotoh_local<S: ColumnScorer>(s: &S, arena: &mut DpArena) -> LocalDpResult {
    let m = s.len_b();
    let out = fill(s, Mode::Local, m, arena);
    let (score, bi, bj) = out.best;
    if score <= 0.0 {
        return LocalDpResult {
            ops: Vec::new(),
            score: 0.0,
            start_a: 0,
            start_b: 0,
            end_a: 0,
            end_b: 0,
            cells: out.cells,
        };
    }
    let tb = Traceback::walk(arena, m, (bi, bj), 0, true);
    LocalDpResult {
        ops: tb.ops_rev,
        score,
        start_a: tb.pos.0,
        start_b: tb.pos.1,
        end_a: bi,
        end_b: bj,
        cells: out.cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scorer<'a>(
        a: &'a [u8],
        b: &'a [u8],
        matrix: &'a SubstMatrix,
        gaps: GapPenalties,
    ) -> SubstScorer<'a> {
        SubstScorer::new(a, b, matrix, gaps)
    }

    #[test]
    fn best3_prefers_m_then_x_then_y() {
        assert_eq!(best3(1.0, 1.0, 1.0), (1.0, 0));
        assert_eq!(best3(0.0, 1.0, 1.0), (1.0, 1));
        assert_eq!(best3(0.0, 0.0, 1.0), (1.0, 2));
    }

    #[test]
    fn kernel_labels_roundtrip() {
        for k in [DpKernel::Scalar, DpKernel::Striped, DpKernel::Auto] {
            assert_eq!(DpKernel::parse(k.label()), Some(k));
        }
        assert_eq!(DpKernel::parse("simd"), None);
        assert_eq!(DpKernel::parse(""), None);
        assert_eq!(DpKernel::default(), DpKernel::Auto);
    }

    #[test]
    fn gather_lsb_matches_naive() {
        let cases = [
            0u64,
            u64::MAX,
            0x0101_0101_0101_0101,
            0x8000_0000_0000_0001,
            0xdead_beef_cafe_f00d,
            0x0123_4567_89ab_cdef,
        ];
        for x in cases {
            let mut want = 0u8;
            for k in 0..8 {
                want |= (((x >> (8 * k)) & 1) as u8) << k;
            }
            assert_eq!(gather_lsb(x), want, "{x:#018x}");
        }
    }

    #[test]
    fn striped_matches_scalar_on_every_policy() {
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties::default();
        // An indel-riddled pair so every traceback bit class is exercised.
        let a: Vec<u8> = (0..90).map(|i| ((i * 7) % 20) as u8).collect();
        let mut b = a.clone();
        b.drain(30..40);
        b.insert(50, 3);
        let s = scorer(&a, &b, &matrix, gaps);
        assert!(s.f32_compatible(), "integer BLOSUM scoring is f32-exact at this size");
        let mut arena = DpArena::new();
        for policy in [BandPolicy::Full, BandPolicy::Auto, BandPolicy::Fixed(8)] {
            let scalar = gotoh_global_with(&s, policy, DpKernel::Scalar, &mut arena);
            let striped = gotoh_global_with(&s, policy, DpKernel::Striped, &mut arena);
            assert_eq!(scalar, striped, "{policy:?}");
        }
    }

    #[test]
    fn striped_handles_empty_sides() {
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties { open: 3, extend: 1 };
        let a = [12u8, 9, 17];
        let empty: [u8; 0] = [];
        let mut arena = DpArena::new();
        for policy in [BandPolicy::Full, BandPolicy::Auto, BandPolicy::Fixed(4)] {
            let out = gotoh_global_with(
                &scorer(&a, &empty, &matrix, gaps),
                policy,
                DpKernel::Striped,
                &mut arena,
            );
            assert_eq!(out.ops, vec![ColOp::FromA; 3], "{policy:?}");
            assert_eq!(out.score, -(3.0 + 2.0), "{policy:?}");
            let out = gotoh_global_with(
                &scorer(&empty, &a, &matrix, gaps),
                policy,
                DpKernel::Striped,
                &mut arena,
            );
            assert_eq!(out.ops, vec![ColOp::FromB; 3], "{policy:?}");
        }
    }

    #[test]
    fn band_policy_labels_roundtrip() {
        for p in [BandPolicy::Full, BandPolicy::Auto, BandPolicy::Fixed(17)] {
            assert_eq!(BandPolicy::parse(&p.label()), Some(p));
        }
        assert_eq!(BandPolicy::parse("64"), Some(BandPolicy::Fixed(64)));
        assert_eq!(BandPolicy::parse("0"), None);
        assert_eq!(BandPolicy::parse("band0"), None);
        assert_eq!(BandPolicy::parse("wavefront"), None);
    }

    #[test]
    fn identical_inputs_score_the_diagonal() {
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties::default();
        let codes = [12u8, 9, 17, 10, 0, 19];
        let s = scorer(&codes, &codes, &matrix, gaps);
        let mut arena = DpArena::new();
        for policy in [BandPolicy::Full, BandPolicy::Auto, BandPolicy::Fixed(2)] {
            let out = gotoh_global(&s, policy, &mut arena);
            assert!(out.ops.iter().all(|&op| op == ColOp::Both), "{policy:?}");
            let want: f64 = codes.iter().map(|&c| matrix.score(c, c) as f64).sum();
            assert_eq!(out.score, want, "{policy:?}");
        }
    }

    #[test]
    fn full_and_auto_agree_on_shifted_inputs() {
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties::default();
        // A shifted repeat: the optimum needs an off-diagonal excursion.
        let a: Vec<u8> = (0..50).map(|i| (i % 17) as u8).collect();
        let mut b = vec![19u8; 12];
        b.extend_from_slice(&a[..40]);
        let s = scorer(&a, &b, &matrix, gaps);
        let mut arena = DpArena::new();
        let full = gotoh_global(&s, BandPolicy::Full, &mut arena);
        let auto = gotoh_global(&s, BandPolicy::Auto, &mut arena);
        assert_eq!(full.score, auto.score);
        assert_eq!(full.full_cells, auto.full_cells);
    }

    #[test]
    fn fixed_band_fills_fewer_cells() {
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties::default();
        let a: Vec<u8> = (0..200).map(|i| (i % 19) as u8).collect();
        let s = scorer(&a, &a, &matrix, gaps);
        let mut arena = DpArena::new();
        let full = gotoh_global(&s, BandPolicy::Full, &mut arena);
        let banded = gotoh_global(&s, BandPolicy::Fixed(5), &mut arena);
        assert_eq!(full.cells, full.full_cells);
        assert!(banded.cells < full.cells / 3);
        assert_eq!(banded.score, full.score, "identical inputs stay on the diagonal");
        assert_eq!(banded.band, Some(5));
    }

    #[test]
    fn arena_reuse_is_equivalent_to_fresh() {
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties::default();
        let a: Vec<u8> = (0..60).map(|i| (i % 13) as u8).collect();
        let b: Vec<u8> = (0..45).map(|i| ((i * 7) % 20) as u8).collect();
        let s = scorer(&a, &b, &matrix, gaps);
        let mut shared = DpArena::new();
        // Dirty the arena with a larger unrelated instance first.
        let big: Vec<u8> = (0..120).map(|i| (i % 11) as u8).collect();
        let _ = gotoh_global(&scorer(&big, &big, &matrix, gaps), BandPolicy::Auto, &mut shared);
        let reused = gotoh_global(&s, BandPolicy::Auto, &mut shared);
        let fresh = gotoh_global(&s, BandPolicy::Auto, &mut DpArena::new());
        assert_eq!(reused, fresh);
    }

    #[test]
    fn semiglobal_overlap_is_free_at_the_ends() {
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties::default();
        // a's suffix equals b's prefix.
        let motif = [12u8, 9, 17, 10, 0, 19, 5, 8];
        let mut a = vec![14u8; 6];
        a.extend_from_slice(&motif);
        let mut b = motif.to_vec();
        b.extend(vec![3u8; 6]);
        let s = scorer(&a, &b, &matrix, gaps);
        let out = gotoh_semiglobal(&s, &mut DpArena::new());
        let want: f64 = motif.iter().map(|&c| matrix.score(c, c) as f64).sum();
        assert!(out.score >= want, "overlap score {} below motif score {want}", out.score);
        // Ops consume both inputs fully.
        let used_a = out.ops.iter().filter(|&&op| op != ColOp::FromB).count();
        let used_b = out.ops.iter().filter(|&&op| op != ColOp::FromA).count();
        assert_eq!(used_a, a.len());
        assert_eq!(used_b, b.len());
    }

    #[test]
    fn local_finds_the_embedded_motif() {
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties::default();
        let motif = [12u8, 9, 17, 10, 0, 19];
        let mut a = vec![13u8; 5];
        a.extend_from_slice(&motif);
        a.extend(vec![13u8; 5]);
        let mut b = vec![5u8; 2];
        b.extend_from_slice(&motif);
        let s = scorer(&a, &b, &matrix, gaps);
        let out = gotoh_local(&s, &mut DpArena::new());
        assert!(out.score > 0.0);
        assert_eq!(out.start_a, 5);
        assert_eq!(out.start_b, 2);
        assert_eq!(out.end_a - out.start_a, motif.len());
    }

    #[test]
    fn local_on_hopeless_inputs_is_empty_or_nonnegative() {
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties::default();
        let a = [0u8; 4];
        let b = [18u8; 4];
        let out = gotoh_local(&scorer(&a, &b, &matrix, gaps), &mut DpArena::new());
        assert!(out.score >= 0.0);
    }

    #[test]
    fn empty_sides_degrade_to_pure_gap_runs() {
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties { open: 3, extend: 1 };
        let a = [12u8, 9, 17];
        let empty: [u8; 0] = [];
        let out =
            gotoh_global(&scorer(&a, &empty, &matrix, gaps), BandPolicy::Auto, &mut DpArena::new());
        assert_eq!(out.ops, vec![ColOp::FromA; 3]);
        assert_eq!(out.score, -(3.0 + 2.0));
        let out =
            gotoh_global(&scorer(&empty, &a, &matrix, gaps), BandPolicy::Full, &mut DpArena::new());
        assert_eq!(out.ops, vec![ColOp::FromB; 3]);
    }

    #[test]
    fn work_reports_banded_and_full_cells() {
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties::default();
        let a: Vec<u8> = (0..300).map(|i| (i % 20) as u8).collect();
        let out =
            gotoh_global(&scorer(&a, &a, &matrix, gaps), BandPolicy::Auto, &mut DpArena::new());
        let w = out.work();
        assert_eq!(w.dp_cells, 3 * out.cells);
        assert_eq!(w.dp_cells_full, 3 * 300 * 300);
        assert!(
            w.dp_cells < w.dp_cells_full,
            "auto band (incl. its confirmation pass) must save cells at L=300"
        );
    }

    #[test]
    fn auto_band_refuses_interior_but_suboptimal_paths() {
        // Regression: two distinct blocks, transposed. The near-diagonal
        // banded path sits clear of the band edges yet scores far below
        // the off-band optimum, so acceptance must also demand score
        // stability under doubling.
        let matrix = SubstMatrix::blosum62();
        let gaps = GapPenalties::default();
        let s1: Vec<u8> = (0..60).map(|i| ((i * 7) % 20) as u8).collect();
        let s2: Vec<u8> = (0..60).map(|i| ((i * 11 + 3) % 20) as u8).collect();
        let mut a = s1.clone();
        a.extend_from_slice(&s2);
        let mut b = s2;
        b.extend_from_slice(&s1);
        let s = scorer(&a, &b, &matrix, gaps);
        let mut arena = DpArena::new();
        let full = gotoh_global(&s, BandPolicy::Full, &mut arena);
        let auto = gotoh_global(&s, BandPolicy::Auto, &mut arena);
        assert_eq!(auto.score, full.score, "transposed blocks must not fool the band");
    }
}
