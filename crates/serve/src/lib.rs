//! `sad-serve`: a journaled, resumable alignment daemon.
//!
//! The batch runner of PR 5 dies with its process; this crate puts a
//! long-lived service in front of the same pipeline. Jobs arrive over TCP
//! as line-delimited JSON, wait in a bounded priority queue with
//! per-client round-robin fairness, and run on a pool of workers that
//! stream [`sad_core::Observer`] progress events back to the submitting
//! client.
//!
//! Durability follows the resume-from-partial-work pattern of BiG-SCAPE's
//! `do_multiple_align`: every job writes `Accepted` → `Started` →
//! `Finished{digest}` lines to an append-only JSONL journal, and a
//! restarted server re-queues whatever is still owed while skipping jobs
//! whose output file on disk still hashes to the journaled digest. A
//! result cache keyed by `(input digest, config fingerprint)` answers
//! duplicate submissions without touching a worker.
//!
//! Module map:
//!
//! - [`json`] — hand-rolled JSON value/parser/writer (the vendored
//!   `serde` is marker-traits only).
//! - [`digest`] — FNV-1a content digests and config fingerprints.
//! - [`protocol`] — wire grammar: requests, event lines, line framing.
//! - [`journal`] — the write-ahead journal and its torn-tail-tolerant
//!   replay.
//! - [`queue`] — bounded, fair job queue.
//! - [`cache`] — the result cache.
//! - [`server`] — accept loop, connection readers, worker pool, recovery.
//! - [`client`] — blocking protocol client (`sad submit` and tests).
//! - [`harness`] — in-process test fixture with fault injection.
//! - [`signal`] — SIGTERM/SIGINT observation for the CLI loop.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod digest;
pub mod harness;
pub mod journal;
pub mod json;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod signal;

pub use cache::{CachedResult, ResultCache};
pub use client::{Client, ClientError, Submitted};
pub use harness::ServeHarness;
pub use journal::{Journal, JournalEntry, JournalError};
pub use json::Json;
pub use protocol::Request;
pub use server::{
    JobHold, RecoveryReport, ServeBackend, ServeConfig, ServeError, Server, ServerHandle,
    ServerStats,
};
