//! # sample-align-d — facade crate
//!
//! A from-scratch Rust reproduction of **"Sample-Align-D: A High
//! Performance Multiple Sequence Alignment System using Phylogenetic
//! Sampling and Domain Decomposition"** (Saeed & Khokhar, IPPS 2008),
//! including every substrate the paper depends on: the sequence/k-mer
//! machinery, MUSCLE-like and CLUSTALW-like sequential MSA engines,
//! phylogenetic tree builders, a virtual message-passing cluster with a
//! deterministic time model, PSRS/SampleSort redistribution, a rose-like
//! family generator and a PREFAB-like quality benchmark.
//!
//! ## Quickstart
//!
//! One entry point, three backends: build an [`Aligner`](prelude::Aligner),
//! pick a [`Backend`](prelude::Backend), get a
//! [`RunReport`](prelude::RunReport) whatever substrate ran.
//!
//! ```
//! use sample_align_d::prelude::*;
//!
//! // A synthetic family with a known true alignment.
//! let family = Family::generate(&FamilyConfig {
//!     n_seqs: 16,
//!     avg_len: 60,
//!     relatedness: 600.0,
//!     ..Default::default()
//! });
//!
//! // Align it with Sample-Align-D on a virtual 4-node Beowulf cluster.
//! let cluster = VirtualCluster::new(4, CostModel::beowulf_2008());
//! let report = Aligner::new(SadConfig::default())
//!     .backend(Backend::Distributed(cluster))
//!     .run(&family.seqs)
//!     .expect("valid input");
//!
//! assert_eq!(report.msa.num_rows(), 16);
//! println!("aligned in {:.3} virtual seconds", report.makespan().unwrap());
//! println!("{}", report.phase_table());
//!
//! // The same pipeline on shared memory — same report type, no cluster.
//! let shared = Aligner::new(SadConfig::default())
//!     .backend(Backend::Rayon { threads: 4 })
//!     .run(&family.seqs)
//!     .expect("valid input");
//! assert_eq!(shared.msa, report.msa);
//!
//! // Degenerate input is a typed error, not a panic.
//! let err = Aligner::new(SadConfig::default()).run(&family.seqs[..1]);
//! assert_eq!(err.unwrap_err(), SadError::TooFewSequences { found: 1 });
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! harness regenerating every table and figure of the paper.

pub use align;
pub use bioseq;
pub use phylo;
pub use psrs;
pub use qbench;
pub use rosegen;
pub use sad_core;
pub use sad_serve;
pub use vcluster;

/// The most common imports for working with the system.
pub mod prelude {
    pub use align::{
        trim_msa, BandPolicy, ClustalLite, DpArena, EngineChoice, MsaEngine, MuscleLite,
        TrimOutcome,
    };
    pub use bioseq::{fasta, CompressedAlphabet, GapPenalties, Msa, Sequence, SubstMatrix};
    pub use qbench::mean_read_pair_q;
    pub use rosegen::{Family, FamilyConfig, GenomeConfig, GenomeSample, ReadSet, ReadSimConfig};
    pub use sad_core::{
        Aligner, Backend, BackendExtras, BatchJob, BatchReport, CancelToken, Event, JobReport,
        Observer, Phase, PhaseStat, RunReport, SadConfig, SadError, TrimConfig, TrimReport,
        VerticalConfig, VerticalPlan, VerticalReport,
    };
    pub use vcluster::{CostModel, VirtualCluster};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_wires_everything_together() {
        let family = Family::generate(&FamilyConfig {
            n_seqs: 8,
            avg_len: 40,
            relatedness: 500.0,
            ..Default::default()
        });
        let cluster = VirtualCluster::new(2, CostModel::beowulf_2008());
        let report = Aligner::new(SadConfig::default())
            .backend(Backend::Distributed(cluster))
            .run(&family.seqs)
            .unwrap();
        assert_eq!(report.msa.num_rows(), 8);
    }
}
