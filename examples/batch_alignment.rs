//! Batch alignment: many families per process.
//!
//! Builds six synthetic families, runs them as one batch over the worker
//! pool (watching `JobStarted`/`JobFinished` events live), shows that a
//! degenerate job fails on its own without hurting its neighbours, and
//! prints the batch summary table.
//!
//! ```text
//! cargo run --release --example batch_alignment
//! ```

use sample_align_d::prelude::*;
use std::sync::Arc;

fn main() {
    // Six families of varying size — plus one deliberately broken "job"
    // holding a single sequence.
    let mut jobs: Vec<BatchJob> = (0..6)
        .map(|i| {
            let family = Family::generate(&FamilyConfig {
                n_seqs: 8 + 2 * i,
                avg_len: 60,
                relatedness: 650.0,
                seed: 40 + i as u64,
                ..Default::default()
            });
            BatchJob::new(format!("family-{i}"), family.seqs)
        })
        .collect();
    let solo = Family::generate(&FamilyConfig { n_seqs: 1, avg_len: 60, ..Default::default() });
    jobs.push(BatchJob::new("degenerate", solo.seqs));

    // Watch the batch live: the observer surface is the same one single
    // runs use, extended with per-job events.
    let observer = Arc::new(|event: &Event| match event {
        Event::JobStarted { job, id, n_seqs } => {
            eprintln!("[batch] job {job} ({id}): {n_seqs} sequences");
        }
        Event::JobFinished { job, id, seconds, ok } => {
            let verdict = if *ok { "ok" } else { "FAILED" };
            eprintln!("[batch] job {job} ({id}): {verdict} in {seconds:.3}s");
        }
        _ => {}
    });

    let aligner = Aligner::new(SadConfig::default()).observer(observer);
    let batch = aligner.run_batch(&jobs);

    println!("\n{}", batch.summary_table());
    assert_eq!(batch.succeeded(), 6);
    assert_eq!(batch.failed(), 1, "the degenerate job fails alone");

    // Parity: a batched job is byte-identical to running it on its own.
    let single = aligner.run(&jobs[0].seqs).expect("valid family");
    let batched = batch.job("family-0").unwrap().outcome.as_ref().unwrap();
    assert_eq!(batched.msa, single.msa);
    println!(
        "batch of {} jobs over {} worker(s): {:.1} jobs/s — parity with single runs verified",
        batch.jobs.len(),
        batch.workers,
        batch.jobs_per_second()
    );
}
