//! The [`Aligner`] builder — one entry point, three backends.
//!
//! The paper's pitch is one pipeline on many substrates: the same
//! sample-sort decomposition runs sequentially, on shared memory, or on a
//! message-passing cluster. The builder makes that literal:
//!
//! ```
//! use sad_core::{Aligner, Backend, SadConfig};
//! use vcluster::{CostModel, VirtualCluster};
//! # let seqs = rosegen::Family::generate(&rosegen::FamilyConfig {
//! #     n_seqs: 8, avg_len: 40, relatedness: 600.0, ..Default::default()
//! # }).seqs;
//!
//! let cluster = VirtualCluster::new(4, CostModel::beowulf_2008());
//! let report = Aligner::new(SadConfig::default())
//!     .backend(Backend::Distributed(cluster))
//!     .run(&seqs)
//!     .expect("valid input");
//! assert_eq!(report.msa.num_rows(), seqs.len());
//! assert!(report.makespan().unwrap() > 0.0);
//! ```
//!
//! Swapping `Backend::Distributed(..)` for `Backend::Rayon { threads: 4 }`
//! or `Backend::Sequential` changes the substrate, not the caller: every
//! backend returns the same [`RunReport`].
//!
//! Runs are observable and stoppable. Register an [`Observer`] to receive
//! typed [`Event`](crate::Event)s, hand in a [`CancelToken`] or a
//! wall-clock [`deadline`](Aligner::deadline) to stop a run at its next
//! phase boundary:
//!
//! ```
//! use sad_core::{Aligner, CancelToken, Phase, SadConfig, SadError};
//! # let seqs = rosegen::Family::generate(&rosegen::FamilyConfig {
//! #     n_seqs: 8, avg_len: 40, relatedness: 600.0, ..Default::default()
//! # }).seqs;
//! let token = CancelToken::new();
//! token.cancel(); // e.g. from another thread, mid-run
//! let err = Aligner::new(SadConfig::default())
//!     .cancel_token(token)
//!     .run(&seqs)
//!     .unwrap_err();
//! assert_eq!(err, SadError::Cancelled { phase: Phase::LocalAlign });
//! ```

use crate::batch::{BatchJob, BatchReport};
use crate::config::SadConfig;
use crate::error::SadError;
use crate::pipeline::{CancelToken, Observer, PipelineCtx};
use crate::report::RunReport;
use align::DpArena;
use bioseq::Sequence;
use std::sync::Arc;
use std::time::Duration;
use vcluster::VirtualCluster;

/// The execution substrate for one run.
#[derive(Debug, Clone, Default)]
pub enum Backend {
    /// The configured engine run directly on the whole set (the paper's
    /// speedup baseline).
    #[default]
    Sequential,
    /// Shared-memory pipeline on the rayon pool.
    Rayon {
        /// Logical buckets (the `p` of the decomposition).
        threads: usize,
    },
    /// Message-passing pipeline on a virtual cluster.
    Distributed(VirtualCluster),
}

impl Backend {
    /// Stable name for tables and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Sequential => "sequential",
            Backend::Rayon { .. } => "rayon",
            Backend::Distributed(_) => "distributed",
        }
    }
}

/// Builder for a Sample-Align-D run: configuration, backend choice, and
/// the run-control surface (observer, cancellation, deadline).
#[derive(Clone, Default)]
pub struct Aligner {
    cfg: SadConfig,
    backend: Backend,
    ranks: Option<usize>,
    observer: Option<Arc<dyn Observer>>,
    cancel: Option<CancelToken>,
    deadline: Option<Duration>,
}

impl std::fmt::Debug for Aligner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Aligner")
            .field("cfg", &self.cfg)
            .field("backend", &self.backend)
            .field("ranks", &self.ranks)
            .field("observer", &self.observer.is_some())
            .field("cancel", &self.cancel.is_some())
            .field("deadline", &self.deadline)
            .finish()
    }
}

impl Aligner {
    /// Start building a run with the given configuration. The default
    /// backend is [`Backend::Sequential`].
    pub fn new(cfg: SadConfig) -> Self {
        Aligner { cfg, ..Aligner::default() }
    }

    /// Select the execution backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Assert the decomposition width. Optional: the distributed backend
    /// takes its width from the cluster and the rayon backend from
    /// `threads`; setting `ranks` to a disagreeing value turns a silent
    /// misconfiguration into [`SadError::ClusterSizeMismatch`].
    pub fn ranks(mut self, ranks: usize) -> Self {
        self.ranks = Some(ranks);
        self
    }

    /// Register an observer receiving [`crate::Event`]s for every run this
    /// aligner starts: `RunStarted`, `PhaseStarted`/`PhaseFinished` with
    /// real wall-clock seconds, `BucketAligned`, `RunFinished`. Events are
    /// delivered synchronously; observers should be cheap.
    pub fn observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attach a cancellation token. Keep a clone; calling
    /// [`CancelToken::cancel`] on it — from another thread, from an
    /// observer — stops the run at its next phase boundary with
    /// [`SadError::Cancelled`].
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Give the run a wall-clock budget, measured from the moment
    /// [`Aligner::run`] starts. When it is exhausted the run stops at the
    /// next phase boundary with [`SadError::Cancelled`] — the pipeline is
    /// cooperative, so a long-running phase finishes before the check.
    ///
    /// In a batch the budget is batch-wide: it is measured from the start
    /// of [`Aligner::run_batch`], and each job runs under whatever share
    /// remains (jobs starting after exhaustion cancel at their first
    /// phase boundary).
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// The configuration this aligner will run with.
    pub fn config(&self) -> &SadConfig {
        &self.cfg
    }

    /// Validate configuration and input, then run the pipeline on the
    /// selected backend.
    pub fn run(&self, seqs: &[Sequence]) -> Result<RunReport, SadError> {
        self.run_inner(seqs, &self.backend, self.cancel.clone(), self.deadline, &mut DpArena::new())
    }

    /// Run many independent families through this aligner's backend with
    /// the default worker count (the host's available parallelism, capped
    /// by the batch size). See [`Aligner::run_batch_with`].
    pub fn run_batch(&self, jobs: &[BatchJob]) -> BatchReport {
        crate::batch::run_batch(self, jobs, None)
    }

    /// Run many independent families through this aligner's backend,
    /// scheduling across `workers` concurrent workers (clamped to
    /// `1..=jobs.len()`).
    ///
    /// Scheduling is backend-aware: [`Backend::Sequential`] and
    /// [`Backend::Rayon`] jobs are pulled from a shared queue by the
    /// worker pool (work-stealing across jobs), while
    /// [`Backend::Distributed`] jobs are round-robined over per-worker
    /// clones of the virtual cluster. Each worker owns one [`DpArena`] of
    /// DP scratch, reused across its jobs on the `Sequential` per-job
    /// backend (the decomposed backends keep scratch on their own
    /// internal worker threads).
    ///
    /// Failures never abort the batch: each [`BatchJob`] yields its own
    /// `Result<RunReport, SadError>` inside the returned [`BatchReport`].
    /// The aligner's [`CancelToken`] acts batch-wide (every remaining job
    /// stops at its next phase boundary), a job's own
    /// [`BatchJob::with_cancel`] token stops just that job, and a
    /// registered [`Observer`] additionally receives
    /// [`Event::JobStarted`](crate::Event::JobStarted)/
    /// [`Event::JobFinished`](crate::Event::JobFinished) pairs — from
    /// concurrent workers, so events of different jobs interleave.
    pub fn run_batch_with(&self, jobs: &[BatchJob], workers: usize) -> BatchReport {
        crate::batch::run_batch(self, jobs, Some(workers))
    }

    /// The shared single-run path: `run` uses the builder's own backend,
    /// token, deadline and a fresh arena; the batch runner substitutes
    /// per-job fused tokens, per-worker cluster clones, per-worker arenas
    /// and each job's *remaining* share of the batch-wide budget.
    pub(crate) fn run_inner(
        &self,
        seqs: &[Sequence],
        backend: &Backend,
        cancel: Option<CancelToken>,
        budget: Option<Duration>,
        scratch: &mut DpArena,
    ) -> Result<RunReport, SadError> {
        self.cfg.validate()?;
        if seqs.len() < 2 {
            return Err(SadError::TooFewSequences { found: seqs.len() });
        }
        let width = match backend {
            Backend::Sequential => 1,
            Backend::Rayon { threads } => {
                if *threads == 0 {
                    return Err(SadError::ZeroParallelism);
                }
                *threads
            }
            Backend::Distributed(cluster) => {
                // The SPMD protocol has no recursive redistribution
                // collective; reject the cap instead of silently ignoring
                // it (see SadConfig::max_bucket).
                if self.cfg.max_bucket.is_some() {
                    return Err(SadError::MaxBucketUnsupported { backend: "distributed" });
                }
                // Likewise no block-scheduling collective for vertical
                // decomposition yet (see SadConfig::vertical).
                if self.cfg.vertical.is_some() {
                    return Err(SadError::VerticalUnsupported { backend: "distributed" });
                }
                cluster.p()
            }
        };
        if let Some(requested) = self.ranks {
            if requested != width {
                return Err(SadError::ClusterSizeMismatch { actual: width, requested });
            }
        }
        let ctx = PipelineCtx::new(backend.name(), width, self.observer.clone(), cancel, budget);
        ctx.run_started(seqs.len());
        let mut result = match (backend, &self.cfg.vertical) {
            (Backend::Sequential | Backend::Rayon { .. }, Some(vertical)) => {
                crate::decomp::vertical_pipeline(
                    seqs, &self.cfg, vertical, backend, width, &ctx, scratch,
                )
            }
            (Backend::Sequential, None) => {
                crate::sequential::sequential_pipeline(seqs, &self.cfg, &ctx, scratch)
            }
            (Backend::Rayon { threads }, None) => {
                crate::rayon_impl::rayon_pipeline(seqs, *threads, &self.cfg, &ctx)
            }
            (Backend::Distributed(cluster), _) => {
                crate::distributed::distributed_pipeline(cluster, seqs, &self.cfg, &ctx)
            }
        };
        // The trim stage runs on the finished root alignment, so it is a
        // shared post-pass: one implementation, every backend (the
        // distributed protocol needs no collective — the root already
        // holds the glued MSA). The recorder was drained by the pipeline,
        // so a second drain yields exactly the trim phase's stat.
        if let Some(trim_cfg) = &self.cfg.trim {
            result = result.and_then(|mut report| {
                Self::trim_pass(&mut report, trim_cfg, &ctx)?;
                Ok(report)
            });
        }
        ctx.run_finished(matches!(result, Err(SadError::Cancelled { .. })));
        result
    }

    /// Apply the [`Phase::Trim`](crate::Phase::Trim) post-pass to a
    /// finished report: run the optimizer as a recorded phase, emit one
    /// [`Event::SequenceExcluded`](crate::Event::SequenceExcluded) per
    /// dropped row, and fold the phase's stat and work into the report.
    fn trim_pass(
        report: &mut RunReport,
        trim_cfg: &align::TrimConfig,
        ctx: &PipelineCtx,
    ) -> Result<(), SadError> {
        let outcome = ctx.phase(crate::Phase::Trim, || {
            let out = align::trim_msa(&report.msa, trim_cfg);
            for d in &out.dropped {
                ctx.sequence_excluded(d.id.clone(), d.area_gain);
            }
            let work = out.work;
            (out, work)
        })?;
        let (mut stats, extra) = ctx.drain();
        report.phases.append(&mut stats);
        report.work += extra;
        report.trim = Some(crate::report::TrimReport {
            rows_dropped: outcome.rows_dropped(),
            cols_gained: outcome.cols_gained(),
            area_before: outcome.area_before,
            area_after: outcome.area_after,
        });
        report.msa = outcome.msa;
        Ok(())
    }

    /// The selected backend (the batch runner's scheduling key).
    pub(crate) fn backend_ref(&self) -> &Backend {
        &self.backend
    }

    /// The batch-wide cancellation token, if any.
    pub(crate) fn cancel_ref(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// The registered observer, if any (the batch runner emits its
    /// `JobStarted`/`JobFinished` events through it).
    pub(crate) fn observer_ref(&self) -> Option<&Arc<dyn Observer>> {
        self.observer.as_ref()
    }

    /// The wall-clock budget, if any (the batch runner measures it from
    /// the start of the whole batch).
    pub(crate) fn deadline_budget(&self) -> Option<Duration> {
        self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Event, Phase};
    use rosegen::{Family, FamilyConfig};
    use std::sync::Mutex;
    use vcluster::CostModel;

    fn family(n: usize, seed: u64) -> Vec<Sequence> {
        Family::generate(&FamilyConfig {
            n_seqs: n,
            avg_len: 50,
            relatedness: 700.0,
            seed,
            ..Default::default()
        })
        .seqs
    }

    #[test]
    fn all_backends_return_the_same_report_shape() {
        let seqs = family(16, 1);
        let cfg = SadConfig::default();
        let cluster = VirtualCluster::new(4, CostModel::beowulf_2008());
        let seq = Aligner::new(cfg.clone()).run(&seqs).unwrap();
        let ray =
            Aligner::new(cfg.clone()).backend(Backend::Rayon { threads: 4 }).run(&seqs).unwrap();
        let dist = Aligner::new(cfg).backend(Backend::Distributed(cluster)).run(&seqs).unwrap();
        for report in [&seq, &ray, &dist] {
            assert_eq!(report.msa.num_rows(), 16);
            assert_eq!(report.bucket_sizes.iter().sum::<usize>(), 16);
            assert!(!report.work.is_zero());
            assert!(!report.phases.is_empty());
            // Every phase of a completed run carries real wall time.
            assert!(report.phases.iter().all(|p| p.seconds.is_some()), "{}", report.backend_name());
        }
        // Decomposed backends are step-identical; sequential differs in
        // columns but carries the same rows (checked in tests/).
        assert_eq!(ray.msa, dist.msa);
        assert_eq!(seq.ranks, 1);
        assert_eq!(ray.ranks, 4);
        assert_eq!(dist.ranks, 4);
        assert!(dist.makespan().is_some() && ray.makespan().is_none());
        // Only the distributed backend carries per-phase virtual maxima.
        assert!(dist.phases.iter().all(|p| p.virtual_seconds.is_some()));
        assert!(ray.phases.iter().all(|p| p.virtual_seconds.is_none()));
    }

    #[test]
    fn too_few_sequences_is_a_typed_error_not_a_panic() {
        let one = family(1, 2);
        for backend in [
            Backend::Sequential,
            Backend::Rayon { threads: 4 },
            Backend::Distributed(VirtualCluster::new(4, CostModel::beowulf_2008())),
        ] {
            let aligner = Aligner::new(SadConfig::default()).backend(backend);
            assert_eq!(aligner.run(&[]), Err(SadError::TooFewSequences { found: 0 }));
            assert_eq!(aligner.run(&one), Err(SadError::TooFewSequences { found: 1 }));
        }
    }

    #[test]
    fn invalid_config_is_rejected_before_running() {
        let seqs = family(8, 3);
        let zero_k = Aligner::new(SadConfig::default().with_kmer_k(0)).run(&seqs);
        assert_eq!(zero_k, Err(SadError::ZeroKmerLen));
        let zero_samples =
            Aligner::new(SadConfig::default().with_samples_per_rank(Some(0))).run(&seqs);
        assert_eq!(zero_samples, Err(SadError::ZeroSampleCount));
    }

    #[test]
    fn rank_mismatch_is_caught() {
        let seqs = family(8, 4);
        let cluster = VirtualCluster::new(4, CostModel::beowulf_2008());
        let err = Aligner::new(SadConfig::default())
            .backend(Backend::Distributed(cluster))
            .ranks(8)
            .run(&seqs);
        assert_eq!(err, Err(SadError::ClusterSizeMismatch { actual: 4, requested: 8 }));
        let err = Aligner::new(SadConfig::default())
            .backend(Backend::Rayon { threads: 2 })
            .ranks(3)
            .run(&seqs);
        assert_eq!(err, Err(SadError::ClusterSizeMismatch { actual: 2, requested: 3 }));
    }

    #[test]
    fn matching_ranks_pass() {
        let seqs = family(8, 5);
        let cluster = VirtualCluster::new(2, CostModel::beowulf_2008());
        let report = Aligner::new(SadConfig::default())
            .backend(Backend::Distributed(cluster))
            .ranks(2)
            .run(&seqs)
            .unwrap();
        assert_eq!(report.ranks, 2);
    }

    #[test]
    fn zero_threads_rejected() {
        let seqs = family(4, 6);
        let err =
            Aligner::new(SadConfig::default()).backend(Backend::Rayon { threads: 0 }).run(&seqs);
        assert_eq!(err, Err(SadError::ZeroParallelism));
    }

    #[test]
    fn max_bucket_rejected_on_distributed_only() {
        let seqs = family(12, 9);
        let cfg = SadConfig::default().with_max_bucket(Some(4));
        let cluster = VirtualCluster::new(2, CostModel::beowulf_2008());
        let err = Aligner::new(cfg.clone()).backend(Backend::Distributed(cluster)).run(&seqs);
        assert_eq!(err, Err(SadError::MaxBucketUnsupported { backend: "distributed" }));
        // Rayon honours the cap; sequential has no buckets and ignores it.
        let ray = Aligner::new(cfg.clone()).backend(Backend::Rayon { threads: 2 }).run(&seqs);
        assert!(ray.unwrap().bucket_sizes.iter().all(|&b| b <= 4));
        let seq = Aligner::new(cfg).run(&seqs).unwrap();
        assert_eq!(seq.bucket_sizes, vec![12]);
    }

    #[test]
    fn trim_stage_runs_on_every_backend() {
        let seqs = family(12, 11);
        let cfg = SadConfig::default().with_trim(align::TrimConfig::default());
        let cluster = VirtualCluster::new(2, CostModel::beowulf_2008());
        for backend in
            [Backend::Sequential, Backend::Rayon { threads: 2 }, Backend::Distributed(cluster)]
        {
            let report = Aligner::new(cfg.clone()).backend(backend).run(&seqs).unwrap();
            let trim = report.trim.expect("trim census present");
            assert!(trim.area_after >= trim.area_before, "area must never decrease");
            assert_eq!(report.msa.num_rows(), 12 - trim.rows_dropped);
            let stat = report.phase(Phase::Trim).expect("trim phase recorded");
            assert!(stat.seconds.is_some());
            // The report invariant survives the post-pass.
            assert_eq!(report.work, report.phases.iter().map(|p| p.work).sum());
            assert_eq!(report.phases.last().unwrap().phase, Phase::Trim);
        }
        // Untrimmed runs carry no census and no phase.
        let plain = Aligner::new(SadConfig::default()).run(&seqs).unwrap();
        assert_eq!(plain.trim, None);
        assert_eq!(plain.phase(Phase::Trim), None);
    }

    #[test]
    fn trim_events_name_the_dropped_rows() {
        let seqs = family(12, 12);
        let events: Arc<Mutex<Vec<Event>>> = Arc::default();
        let sink = Arc::clone(&events);
        let report = Aligner::new(SadConfig::default().with_trim(align::TrimConfig::default()))
            .observer(Arc::new(move |e: &Event| sink.lock().unwrap().push(e.clone())))
            .run(&seqs)
            .unwrap();
        let evs = events.lock().unwrap();
        let excluded: Vec<&Event> =
            evs.iter().filter(|e| matches!(e, Event::SequenceExcluded { .. })).collect();
        assert_eq!(excluded.len(), report.trim.unwrap().rows_dropped);
        // Exclusions arrive inside the Trim phase bracket.
        if !excluded.is_empty() {
            let started = evs
                .iter()
                .position(|e| matches!(e, Event::PhaseStarted { phase: Phase::Trim }))
                .expect("trim started");
            let finished = evs
                .iter()
                .position(|e| matches!(e, Event::PhaseFinished { phase: Phase::Trim, .. }))
                .expect("trim finished");
            let first = evs
                .iter()
                .position(|e| matches!(e, Event::SequenceExcluded { .. }))
                .expect("non-empty");
            assert!(started < first && first < finished);
        }
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(Backend::Sequential.name(), "sequential");
        assert_eq!(Backend::Rayon { threads: 2 }.name(), "rayon");
        let c = VirtualCluster::new(1, CostModel::beowulf_2008());
        assert_eq!(Backend::Distributed(c).name(), "distributed");
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_phase() {
        let seqs = family(8, 7);
        let token = CancelToken::new();
        token.cancel();
        let err =
            Aligner::new(SadConfig::default()).cancel_token(token.clone()).run(&seqs).unwrap_err();
        assert_eq!(err, SadError::Cancelled { phase: Phase::LocalAlign });
        // Validation failures still win over cancellation checks.
        let err = Aligner::new(SadConfig::default()).cancel_token(token).run(&seqs[..1]);
        assert_eq!(err, Err(SadError::TooFewSequences { found: 1 }));
    }

    #[test]
    fn zero_deadline_cancels_and_reports_run_finished() {
        let seqs = family(8, 8);
        let events: Arc<Mutex<Vec<Event>>> = Arc::default();
        let sink = Arc::clone(&events);
        let err = Aligner::new(SadConfig::default())
            .backend(Backend::Rayon { threads: 2 })
            .deadline(Duration::ZERO)
            .observer(Arc::new(move |e: &Event| sink.lock().unwrap().push(e.clone())))
            .run(&seqs)
            .unwrap_err();
        assert_eq!(err, SadError::Cancelled { phase: Phase::LocalKmerRank });
        let evs = events.lock().unwrap();
        assert!(matches!(evs.first(), Some(Event::RunStarted { backend: "rayon", .. })));
        assert!(matches!(evs.last(), Some(Event::RunFinished { cancelled: true, .. })));
    }

    #[test]
    fn debug_shows_control_surface_without_dumping_it() {
        let aligner = Aligner::new(SadConfig::default())
            .cancel_token(CancelToken::new())
            .deadline(Duration::from_secs(5));
        let dbg = format!("{aligner:?}");
        assert!(dbg.contains("cancel: true"), "{dbg}");
        assert!(dbg.contains("observer: false"), "{dbg}");
    }
}
