//! Weighted alignment profiles (sparse PSSM columns) and the
//! profile–profile substitution score (PSP).
//!
//! A profile summarises an alignment column-by-column: each column holds the
//! summed sequence weights of every residue occurring there plus the weight
//! of gaps. The PSP score between two columns is the expected (weighted)
//! sum-of-pairs substitution score
//! `Σ_a Σ_b w_A(a) · w_B(b) · S(a, b)`, which is what MUSCLE's
//! profile-alignment DP optimises.

use bioseq::alphabet::{CODE_COUNT, GAP_CODE};
use bioseq::{Msa, SubstMatrix, Work};

/// One profile column: sparse residue weights plus gap weight.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileColumn {
    /// `(residue code, summed weight)` sorted by code; no gap entries.
    pub residues: Vec<(u8, f64)>,
    /// Summed weight of sequences with a gap in this column.
    pub gap_weight: f64,
}

impl ProfileColumn {
    /// Total residue (non-gap) weight.
    #[inline]
    pub fn residue_weight(&self) -> f64 {
        self.residues.iter().map(|&(_, w)| w).sum()
    }

    /// Whether every residue weight and the gap weight is an exact
    /// integer. Uniform (unweighted) profiles qualify; Henikoff and
    /// tree-derived weights generally do not. This is one leg of the
    /// striped DP kernel's f32-exactness audit
    /// ([`crate::dp::ColumnScorer::f32_compatible`]): integral weights
    /// times an integer substitution matrix keep every PSP term an exact
    /// integer.
    pub fn weights_integral(&self) -> bool {
        self.residues.iter().all(|&(_, w)| w.fract() == 0.0) && self.gap_weight.fract() == 0.0
    }

    /// Dense expected-score vector against a substitution matrix:
    /// `E[a] = Σ_b w(b) · S(a, b)`.
    pub fn expected_scores(&self, matrix: &SubstMatrix) -> [f64; CODE_COUNT] {
        let mut e = [0.0; CODE_COUNT];
        for &(b, w) in &self.residues {
            let row = matrix.row(b);
            for (a, slot) in e.iter_mut().enumerate() {
                *slot += w * row[a] as f64;
            }
        }
        e
    }
}

/// A weighted profile over an alignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Columns, one per alignment column.
    pub cols: Vec<ProfileColumn>,
    /// Sum of all sequence weights.
    pub total_weight: f64,
    /// Number of sequences summarised.
    pub n_seqs: usize,
}

impl Profile {
    /// Build a profile with explicit per-sequence weights.
    ///
    /// # Panics
    /// Panics if `weights.len() != msa.num_rows()` or any weight is
    /// non-positive.
    pub fn from_msa_weighted(msa: &Msa, weights: &[f64], work: &mut Work) -> Profile {
        assert_eq!(weights.len(), msa.num_rows(), "one weight per row");
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        let ncols = msa.num_cols();
        let mut cols = Vec::with_capacity(ncols);
        // Accumulate into a dense scratch per column, then sparsify.
        let mut dense = [0.0f64; CODE_COUNT];
        for c in 0..ncols {
            dense.fill(0.0);
            let mut gap_weight = 0.0;
            for (r, row) in msa.rows().iter().enumerate() {
                let code = row[c];
                if code == GAP_CODE {
                    gap_weight += weights[r];
                } else {
                    dense[code as usize] += weights[r];
                }
            }
            let residues: Vec<(u8, f64)> = dense
                .iter()
                .enumerate()
                .filter(|&(_, &w)| w > 0.0)
                .map(|(code, &w)| (code as u8, w))
                .collect();
            cols.push(ProfileColumn { residues, gap_weight });
        }
        work.col_ops += (ncols * msa.num_rows()) as u64;
        Profile { cols, total_weight: weights.iter().sum(), n_seqs: msa.num_rows() }
    }

    /// Build with uniform unit weights.
    pub fn from_msa(msa: &Msa, work: &mut Work) -> Profile {
        let w = vec![1.0; msa.num_rows()];
        Self::from_msa_weighted(msa, &w, work)
    }

    /// Number of columns.
    #[inline]
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// Whether the profile has no columns (never true for valid MSAs).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// PSP score between column `i` of `self` and column `j` of `other`.
    pub fn psp(&self, i: usize, other: &Profile, j: usize, matrix: &SubstMatrix) -> f64 {
        let ca = &self.cols[i];
        let cb = &other.cols[j];
        let mut s = 0.0;
        for &(a, wa) in &ca.residues {
            let row = matrix.row(a);
            for &(b, wb) in &cb.residues {
                s += wa * wb * row[b as usize] as f64;
            }
        }
        s
    }
}

/// Henikoff & Henikoff (1994) position-based sequence weights, normalised
/// to mean 1. Columns that are all gaps (impossible for valid [`Msa`]s) or
/// single-residue contribute like any other.
pub fn henikoff_weights(msa: &Msa, work: &mut Work) -> Vec<f64> {
    let n = msa.num_rows();
    if n == 1 {
        return vec![1.0];
    }
    let mut weights = vec![0.0f64; n];
    let mut counts = [0usize; CODE_COUNT];
    for c in 0..msa.num_cols() {
        counts.fill(0);
        let mut distinct = 0usize;
        for row in msa.rows() {
            let code = row[c];
            if code != GAP_CODE {
                if counts[code as usize] == 0 {
                    distinct += 1;
                }
                counts[code as usize] += 1;
            }
        }
        if distinct == 0 {
            continue;
        }
        for (r, row) in msa.rows().iter().enumerate() {
            let code = row[c];
            if code != GAP_CODE {
                weights[r] += 1.0 / (distinct as f64 * counts[code as usize] as f64);
            }
        }
    }
    work.col_ops += (msa.num_cols() * n) as u64;
    // Normalise to mean 1; guard against degenerate all-zero weights.
    let mean = weights.iter().sum::<f64>() / n as f64;
    if mean > 0.0 {
        for w in weights.iter_mut() {
            *w /= mean;
        }
    } else {
        weights.iter_mut().for_each(|w| *w = 1.0);
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioseq::alphabet::char_to_code;
    use bioseq::fasta;

    fn msa(text: &str) -> Msa {
        fasta::parse_alignment(text).unwrap()
    }

    fn c(ch: char) -> u8 {
        char_to_code(ch).unwrap()
    }

    #[test]
    fn profile_counts_residues_and_gaps() {
        let m = msa(">a\nMK-V\n>b\nMKIV\n>c\nM-IV\n");
        let mut w = Work::ZERO;
        let p = Profile::from_msa(&m, &mut w);
        assert_eq!(p.len(), 4);
        assert_eq!(p.n_seqs, 3);
        assert_eq!(p.total_weight, 3.0);
        // Column 0: three Ms.
        assert_eq!(p.cols[0].residues, vec![(c('M'), 3.0)]);
        assert_eq!(p.cols[0].gap_weight, 0.0);
        // Column 1: two Ks, one gap.
        assert_eq!(p.cols[1].residues, vec![(c('K'), 2.0)]);
        assert_eq!(p.cols[1].gap_weight, 1.0);
        assert!(w.col_ops > 0);
    }

    #[test]
    fn weights_integral_tracks_the_f32_exactness_leg() {
        let m = msa(">a\nMK-V\n>b\nMKIV\n>c\nM-IV\n");
        let mut w = Work::ZERO;
        // Uniform weights are exact integers in every column, including
        // the gapped ones.
        let uniform = Profile::from_msa(&m, &mut w);
        assert!(uniform.cols.iter().all(ProfileColumn::weights_integral));
        // Doubling stays integral; any fractional weight breaks the
        // guarantee — residue or gap side alike.
        let doubled = Profile::from_msa_weighted(&m, &[2.0, 2.0, 2.0], &mut w);
        assert!(doubled.cols.iter().all(ProfileColumn::weights_integral));
        let skewed = Profile::from_msa_weighted(&m, &[1.5, 1.0, 1.0], &mut w);
        assert!(!skewed.cols[0].weights_integral(), "fractional residue weight");
        assert!(!skewed.cols[2].weights_integral(), "fractional gap weight");
    }

    #[test]
    fn psp_matches_manual_sum() {
        let ma = msa(">a\nM\n>b\nK\n");
        let mb = msa(">c\nM\n");
        let mut w = Work::ZERO;
        let pa = Profile::from_msa(&ma, &mut w);
        let pb = Profile::from_msa(&mb, &mut w);
        let matrix = SubstMatrix::blosum62();
        let expect = (matrix.score(c('M'), c('M')) + matrix.score(c('K'), c('M'))) as f64;
        assert!((pa.psp(0, &pb, 0, &matrix) - expect).abs() < 1e-12);
    }

    #[test]
    fn psp_scales_with_weights() {
        let ma = msa(">a\nM\n");
        let mb = msa(">b\nM\n");
        let mut w = Work::ZERO;
        let pa = Profile::from_msa_weighted(&ma, &[2.0], &mut w);
        let pb = Profile::from_msa_weighted(&mb, &[3.0], &mut w);
        let matrix = SubstMatrix::blosum62();
        let expect = 6.0 * matrix.score(c('M'), c('M')) as f64;
        assert!((pa.psp(0, &pb, 0, &matrix) - expect).abs() < 1e-12);
    }

    #[test]
    fn expected_scores_agree_with_psp() {
        let ma = msa(">a\nMKV\n>b\nMKI\n");
        let mb = msa(">c\nMRV\n>d\nMKL\n");
        let mut w = Work::ZERO;
        let pa = Profile::from_msa(&ma, &mut w);
        let pb = Profile::from_msa(&mb, &mut w);
        let matrix = SubstMatrix::blosum62();
        for i in 0..3 {
            let e = pb.cols[i].expected_scores(&matrix);
            let via_dense: f64 =
                pa.cols[i].residues.iter().map(|&(a, wa)| wa * e[a as usize]).sum();
            let direct = pa.psp(i, &pb, i, &matrix);
            assert!((via_dense - direct).abs() < 1e-9, "col {i}");
        }
    }

    #[test]
    fn henikoff_weights_uniform_for_identical_rows() {
        let m = msa(">a\nMKVL\n>b\nMKVL\n>c\nMKVL\n");
        let mut w = Work::ZERO;
        let hw = henikoff_weights(&m, &mut w);
        for v in &hw {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn henikoff_upweights_the_outlier() {
        // Two near-identical rows plus one divergent row: the divergent row
        // must get the largest weight.
        let m = msa(">a\nMKVLMKVL\n>b\nMKVLMKVL\n>c\nWWPPGGCC\n");
        let mut w = Work::ZERO;
        let hw = henikoff_weights(&m, &mut w);
        assert!(hw[2] > hw[0]);
        assert!((hw[0] - hw[1]).abs() < 1e-12);
        // Mean normalised to 1.
        let mean = hw.iter().sum::<f64>() / 3.0;
        assert!((mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_row_weight_is_one() {
        let m = msa(">a\nMKVL\n");
        let mut w = Work::ZERO;
        assert_eq!(henikoff_weights(&m, &mut w), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "one weight per row")]
    fn weight_arity_checked() {
        let m = msa(">a\nMK\n>b\nMK\n");
        let mut w = Work::ZERO;
        Profile::from_msa_weighted(&m, &[1.0], &mut w);
    }
}
