//! The paper's Fig. 2: two sets of sequences aligned independently of
//! each other are "tweaked" against the global ancestor template so they
//! can be joined into one alignment.
//!
//! Run with: `cargo run --release --example ancestor_tweak`

use align::consensus::consensus_sequence;
use align::MsaEngine;
use sad_core::ancestor::{anchor_to_ancestor, glue_anchored, glue_block_diagonal};
use sample_align_d::prelude::*;

fn main() {
    let matrix = SubstMatrix::blosum62();
    let gaps = GapPenalties::default();
    let mut work = bioseq::Work::ZERO;

    // Two buckets of related sequences, as they would land on two
    // processors after rank-based redistribution.
    let family = Family::generate(&FamilyConfig {
        n_seqs: 8,
        avg_len: 48,
        relatedness: 500.0,
        seed: 7,
        ..Default::default()
    });
    let engine = MuscleLite::fast();
    let bucket_a = engine.align(&family.seqs[..4]);
    let bucket_b = engine.align(&family.seqs[4..]);
    println!("bucket A ({} cols):", bucket_a.num_cols());
    print!("{}", bucket_a.snapshot(4, 72));
    println!("\nbucket B ({} cols):", bucket_b.num_cols());
    print!("{}", bucket_b.snapshot(4, 72));

    // Local ancestors -> global ancestor (aligned at the root processor).
    let anc_a = consensus_sequence(&bucket_a, "anc-A", &mut work);
    let anc_b = consensus_sequence(&bucket_b, "anc-B", &mut work);
    let anc_msa = engine.align(&[anc_a, anc_b]);
    let global_ancestor = consensus_sequence(&anc_msa, "global-ancestor", &mut work);
    println!("\nglobal ancestor: {}", global_ancestor.to_letters());

    // Naive joining (no ancestor): block-diagonal stacking.
    let naive = glue_block_diagonal(&[bucket_a.clone(), bucket_b.clone()], &mut work);
    println!(
        "\nwithout fine-tuning (block-diagonal): {} cols, SP = {}",
        naive.num_cols(),
        naive.sp_score(&matrix, gaps)
    );

    // Fig. 2's tweak: anchor each bucket to the ancestor, then glue.
    let band = BandPolicy::default();
    let kernel = align::DpKernel::default();
    let block_a =
        anchor_to_ancestor(&bucket_a, &global_ancestor, &matrix, gaps, band, kernel, &mut work);
    let block_b =
        anchor_to_ancestor(&bucket_b, &global_ancestor, &matrix, gaps, band, kernel, &mut work);
    let glued = glue_anchored(global_ancestor.len(), &[block_a, block_b], &mut work);
    println!(
        "with ancestor fine-tuning:            {} cols, SP = {}",
        glued.num_cols(),
        glued.sp_score(&matrix, gaps)
    );
    println!("\nglued alignment:");
    print!("{}", glued.snapshot(8, 72));

    let improvement = glued.sp_score(&matrix, gaps) - naive.sp_score(&matrix, gaps);
    println!("\nancestor template improved SP by {improvement} (cf. paper Fig. 2)");
}
