//! Small deterministic samplers built directly on [`rand::Rng`] so the
//! crate needs no distribution dependency.

use rand::Rng;

/// Normal sample via Box–Muller.
pub fn normal<R: Rng>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    mean + sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Poisson sample. Knuth's product method for small `λ`, a rounded normal
/// approximation for large `λ`.
pub fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> usize {
    assert!(lambda >= 0.0, "lambda must be non-negative");
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        return normal(rng, lambda, lambda.sqrt()).round().max(0.0) as usize;
    }
    let threshold = (-lambda).exp();
    let mut k = 0usize;
    let mut product: f64 = 1.0;
    loop {
        product *= rng.gen_range(0.0f64..1.0);
        if product <= threshold {
            return k;
        }
        k += 1;
    }
}

/// Geometric sample: number of trials until first success (≥ 1) with
/// success probability `p`.
pub fn geometric<R: Rng>(rng: &mut R, p: f64) -> usize {
    assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    ((u.ln() / (1.0 - p).max(f64::MIN_POSITIVE).ln()).floor() as usize) + 1
}

/// Exponential sample with the given rate.
pub fn exponential<R: Rng>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "rate must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Draw an index from a cumulative distribution (strictly increasing,
/// ending at ~1).
pub fn categorical<R: Rng>(rng: &mut R, cumulative: &[f64]) -> usize {
    debug_assert!(!cumulative.is_empty());
    let u: f64 = rng.gen_range(0.0..1.0);
    match cumulative.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
        Ok(i) | Err(i) => i.min(cumulative.len() - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean={mean}");
        assert!((var - 4.0).abs() < 0.3, "var={var}");
    }

    #[test]
    fn poisson_moments_small_lambda() {
        let mut r = rng();
        let xs: Vec<usize> = (0..20_000).map(|_| poisson(&mut r, 3.0)).collect();
        let mean = xs.iter().sum::<usize>() as f64 / xs.len() as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn poisson_large_lambda_uses_normal_path() {
        let mut r = rng();
        let xs: Vec<usize> = (0..5_000).map(|_| poisson(&mut r, 100.0)).collect();
        let mean = xs.iter().sum::<usize>() as f64 / xs.len() as f64;
        assert!((mean - 100.0).abs() < 1.5, "mean={mean}");
    }

    #[test]
    fn poisson_zero() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn geometric_mean_is_inverse_p() {
        let mut r = rng();
        let xs: Vec<usize> = (0..20_000).map(|_| geometric(&mut r, 0.25)).collect();
        let mean = xs.iter().sum::<usize>() as f64 / xs.len() as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean={mean}");
        assert!(xs.iter().all(|&x| x >= 1));
    }

    #[test]
    fn geometric_p_one_always_one() {
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(geometric(&mut r, 1.0), 1);
        }
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| exponential(&mut r, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn categorical_respects_weights() {
        let mut r = rng();
        let cum = [0.1, 0.4, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[categorical(&mut r, &cum)] += 1;
        }
        let f: Vec<f64> = counts.iter().map(|&c| c as f64 / 30_000.0).collect();
        assert!((f[0] - 0.1).abs() < 0.02);
        assert!((f[1] - 0.3).abs() < 0.02);
        assert!((f[2] - 0.6).abs() < 0.02);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = rng();
        let mut b = rng();
        for _ in 0..100 {
            assert_eq!(poisson(&mut a, 4.0), poisson(&mut b, 4.0));
        }
    }
}
