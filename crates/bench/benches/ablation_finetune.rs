//! Ablation — what the ancestor-constrained fine-tuning (the paper's
//! Fig. 2 mechanism) buys.
//!
//! Runs Sample-Align-D with and without step 8 on a single rose family
//! (so a true reference exists) and reports SP score and reference-Q for
//! both. Without the global ancestor the buckets can only be stacked
//! block-diagonally, which destroys all cross-bucket columns.

use criterion::{criterion_group, criterion_main, Criterion};
use sad_bench::{banner, sad_on_cluster, scaled, table};
use sad_core::SadConfig;

fn experiment() {
    let n = scaled(2400);
    banner(
        "Ablation: ancestor fine-tuning",
        &format!("SP and Q with/without the global-ancestor step, N={n}"),
    );
    let fam = rosegen::Family::generate(&rosegen::FamilyConfig {
        n_seqs: n,
        avg_len: 120,
        relatedness: 600.0,
        seed: 0xAB1AF,
        ..Default::default()
    });
    let matrix = bioseq::SubstMatrix::blosum62();
    let gaps = bioseq::GapPenalties::default();
    let mut rows = Vec::new();
    for p in [4usize, 8] {
        for fine_tune in [true, false] {
            let cfg = SadConfig::default().with_fine_tune(fine_tune);
            let run = sad_on_cluster(p, &fam.seqs, &cfg);
            let q = bioseq::compare::q_score_msa(&run.msa, &fam.reference).unwrap_or(0.0);
            rows.push(vec![
                p.to_string(),
                if fine_tune { "on" } else { "off" }.to_string(),
                run.msa.sp_score(&matrix, gaps).to_string(),
                format!("{q:.3}"),
                format!("{:.2}", run.makespan().expect("distributed runs have a makespan")),
            ]);
        }
    }
    table(&["p", "fine_tune", "sp_score", "Q_vs_truth", "time_s"], &rows);

    // Check: at each p, fine-tune on strictly beats off on both metrics.
    let mut ok = true;
    for pair in rows.chunks(2) {
        let sp_on: i64 = pair[0][2].parse().unwrap();
        let sp_off: i64 = pair[1][2].parse().unwrap();
        let q_on: f64 = pair[0][3].parse().unwrap();
        let q_off: f64 = pair[1][3].parse().unwrap();
        if sp_on <= sp_off || q_on < q_off {
            ok = false;
        }
    }
    println!(
        "\ncheck — ancestor fine-tuning improves SP and Q at every p: {}",
        if ok { "HOLDS" } else { "does not hold" }
    );
}

fn bench(c: &mut Criterion) {
    experiment();
    let fam = rosegen::Family::generate(&rosegen::FamilyConfig {
        n_seqs: 32,
        avg_len: 60,
        relatedness: 600.0,
        seed: 2,
        ..Default::default()
    });
    let cfg = SadConfig::default();
    c.bench_function("ablation_finetune/sad_finetune_n32_p4", |b| {
        b.iter(|| sad_on_cluster(4, std::hint::black_box(&fam.seqs), &cfg))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
