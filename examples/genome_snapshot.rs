//! The paper's Fig. 6/Fig. 7 scenario: align a few hundred genome-like
//! sequences (M. acetivorans analogue, avg length ≈ 316) on a virtual
//! 8-node cluster and print the alignment snapshot plus the timing
//! breakdown.
//!
//! Run with: `cargo run --release --example genome_snapshot [n_seqs] [p]`

use sample_align_d::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let p: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let genome = GenomeSample::generate(&GenomeConfig {
        n_seqs: n,
        n_families: (n / 50).max(4),
        avg_len: 316,
        seed: 2008,
        ..Default::default()
    });
    println!(
        "sampled {} ORF-like sequences, mean length {:.0} (M. acetivorans avg 316)",
        genome.seqs.len(),
        genome.mean_len()
    );

    let cfg = SadConfig::default();
    let cluster = VirtualCluster::new(p, CostModel::beowulf_2008());
    let report = Aligner::new(cfg.clone())
        .backend(Backend::Distributed(cluster.clone()))
        .run(&genome.seqs)
        .expect("valid input");
    let makespan = report.makespan().expect("distributed runs have a makespan");

    // Sequential baseline on one node (the paper's "MUSCLE took 23 hours"
    // comparison, in virtual seconds on the same cost model).
    let (_m, t_seq) =
        sad_core::sequential::sequential_seconds(&genome.seqs, &cfg, cluster.cost_model());

    println!("\nFig. 7-style alignment snapshot:");
    print!("{}", report.msa.snapshot(16, 72));

    println!("\nvirtual time on {p} nodes: {makespan:.2}s");
    println!("sequential engine on 1 node: {t_seq:.2}s");
    println!("speedup: {:.1}x (paper reports 142x at p=16)", t_seq / makespan);
    println!("load imbalance: {:.2} (regular-sampling bound is 2.0)", report.load_imbalance());
    println!("\nphase breakdown:");
    print!("{}", report.phase_table());
}
