//! Abstract work accounting.
//!
//! Compute kernels report how much work they did in hardware-independent
//! units (dynamic-programming cells, k-mer merge steps, …). The virtual
//! cluster's deterministic cost model (see the `vcluster` crate) converts a
//! [`Work`] into virtual seconds, which is how the reproduction obtains
//! scheduling-noise-free per-processor timings on a single-core host.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Counters for the work performed by a computation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Work {
    /// Dynamic-programming matrix cells **actually filled** (pairwise or
    /// profile DP). Banded kernels report only the in-band cells they
    /// touched — including every retry of an adaptive run — so this is
    /// the number the cost model converts into virtual time.
    pub dp_cells: u64,
    /// The cells an unbanded `O(n·m)` fill of the same DP instances would
    /// have touched. `dp_cells == dp_cells_full` for full fills;
    /// `dp_cells < dp_cells_full` measures what banding saved. Not a cost
    /// (excluded from [`total_units`](Self::total_units)); reports print
    /// the banded/full pair side by side.
    pub dp_cells_full: u64,
    /// K-mer profile merge steps (one per sparse entry visited).
    pub kmer_ops: u64,
    /// Comparison operations in sorting.
    pub sort_ops: u64,
    /// Guide-tree construction steps (distance matrix merges etc.).
    pub tree_ops: u64,
    /// Alignment-column operations (profile builds, gap insertion, glue).
    pub col_ops: u64,
    /// Bytes of sequence data touched in bulk passes (I/O-ish work).
    pub seq_bytes: u64,
}

impl Work {
    /// The zero work value.
    pub const ZERO: Work = Work {
        dp_cells: 0,
        dp_cells_full: 0,
        kmer_ops: 0,
        sort_ops: 0,
        tree_ops: 0,
        col_ops: 0,
        seq_bytes: 0,
    };

    /// Whether all counters are zero.
    pub fn is_zero(&self) -> bool {
        *self == Self::ZERO
    }

    /// Grand total of all counters (unit-weighted; used by tests and quick
    /// reports, not the cost model). `dp_cells_full` is a reference
    /// figure, not performed work, so it is excluded.
    pub fn total_units(&self) -> u64 {
        self.dp_cells
            + self.kmer_ops
            + self.sort_ops
            + self.tree_ops
            + self.col_ops
            + self.seq_bytes
    }

    /// Convenience constructor for pure full-matrix DP work (the filled
    /// and full-equivalent counts coincide).
    pub fn dp(cells: u64) -> Work {
        Work { dp_cells: cells, dp_cells_full: cells, ..Self::ZERO }
    }

    /// DP work from a banded fill: `cells` actually filled out of a
    /// `full` full-matrix equivalent.
    pub fn dp_banded(cells: u64, full: u64) -> Work {
        Work { dp_cells: cells, dp_cells_full: full, ..Self::ZERO }
    }

    /// Convenience constructor for pure k-mer work.
    pub fn kmer(ops: u64) -> Work {
        Work { kmer_ops: ops, ..Self::ZERO }
    }

    /// Convenience constructor for sorting work.
    pub fn sort(ops: u64) -> Work {
        Work { sort_ops: ops, ..Self::ZERO }
    }
}

impl Add for Work {
    type Output = Work;
    fn add(self, rhs: Work) -> Work {
        Work {
            dp_cells: self.dp_cells + rhs.dp_cells,
            dp_cells_full: self.dp_cells_full + rhs.dp_cells_full,
            kmer_ops: self.kmer_ops + rhs.kmer_ops,
            sort_ops: self.sort_ops + rhs.sort_ops,
            tree_ops: self.tree_ops + rhs.tree_ops,
            col_ops: self.col_ops + rhs.col_ops,
            seq_bytes: self.seq_bytes + rhs.seq_bytes,
        }
    }
}

impl AddAssign for Work {
    fn add_assign(&mut self, rhs: Work) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for Work {
    fn sum<I: Iterator<Item = Work>>(iter: I) -> Work {
        iter.fold(Work::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_zero() {
        assert!(Work::ZERO.is_zero());
        assert!(!Work::dp(1).is_zero());
    }

    #[test]
    fn add_accumulates() {
        let w = Work::dp(10) + Work::kmer(5) + Work::dp(2);
        assert_eq!(w.dp_cells, 12);
        assert_eq!(w.kmer_ops, 5);
        assert_eq!(w.total_units(), 17);
    }

    #[test]
    fn sum_over_iterator() {
        let w: Work = (0..4).map(Work::dp).sum();
        assert_eq!(w.dp_cells, 6);
    }

    #[test]
    fn banded_dp_tracks_both_counts() {
        let w = Work::dp_banded(100, 900) + Work::dp(50);
        assert_eq!(w.dp_cells, 150);
        assert_eq!(w.dp_cells_full, 950);
        // The full-matrix equivalent is a reference figure, not work.
        assert_eq!(w.total_units(), 150);
    }

    #[test]
    fn add_assign_matches_add() {
        let mut w = Work::dp(3);
        w += Work::sort(7);
        assert_eq!(w, Work::dp(3) + Work::sort(7));
    }
}
