//! # sad-bench — the evaluation harness
//!
//! One bench target per table/figure of the paper (see `benches/`), plus
//! ablations and micro-kernel benchmarks. This library holds the shared
//! plumbing: workload construction, paper-vs-scaled sizing, and table
//! printing.
//!
//! Every figure bench runs its experiment **once** (outside criterion's
//! measurement loop — the figures are deterministic virtual-time results,
//! not wall-clock samples), prints the series the paper reports, and then
//! registers a small criterion measurement over a representative kernel so
//! `cargo bench` retains real benchmarking semantics.
//!
//! Sizing: by default workloads are scaled down ~10× so the whole suite
//! finishes on a small CI box. Set `SAD_PAPER_SCALE=1` to run the paper's
//! exact sizes (N up to 20 000).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bioseq::Sequence;
use rosegen::{Family, FamilyConfig, GenomeConfig, GenomeSample};
use sad_core::{Aligner, Backend, RunReport, SadConfig};
use vcluster::{CostModel, VirtualCluster};

/// Run Sample-Align-D on a `p`-rank virtual Beowulf cluster — the
/// configuration every figure/table bench measures.
///
/// Bench workloads are generated and therefore always valid, so the
/// typed-error path is unreachable here and the helper unwraps.
pub fn sad_on_cluster(p: usize, seqs: &[Sequence], cfg: &SadConfig) -> RunReport {
    let cluster = VirtualCluster::new(p, CostModel::beowulf_2008());
    Aligner::new(cfg.clone())
        .backend(Backend::Distributed(cluster))
        .run(seqs)
        .expect("bench workloads are valid inputs")
}

/// The virtual makespan of [`sad_on_cluster`] — the series the paper's
/// timing figures plot.
pub fn sad_makespan(p: usize, seqs: &[Sequence], cfg: &SadConfig) -> f64 {
    sad_on_cluster(p, seqs, cfg).makespan().expect("distributed runs have a makespan")
}

/// Whether the paper's full-size workloads were requested.
pub fn paper_scale() -> bool {
    std::env::var("SAD_PAPER_SCALE").map(|v| v == "1").unwrap_or(false)
}

/// Scale a paper workload size: identity under `SAD_PAPER_SCALE=1`,
/// otherwise `n / 10` (minimum 64).
pub fn scaled(paper_n: usize) -> usize {
    if paper_scale() {
        paper_n
    } else {
        (paper_n / 10).max(64)
    }
}

/// The processor counts of the paper's scaling plots.
pub const PAPER_PROCS: [usize; 5] = [1, 4, 8, 12, 16];

/// The rose-style workload of the scaling experiments: average length 300,
/// relatedness 800 ("not very close"), evenly spread k-mer ranks.
pub fn rose_workload(n: usize, seed: u64) -> Vec<Sequence> {
    Family::generate(&FamilyConfig {
        n_seqs: n,
        avg_len: 300,
        len_sd: 20.0,
        relatedness: 800.0,
        seed,
        id_prefix: "rose".into(),
        ..Default::default()
    })
    .seqs
}

/// The Fig. 6 workload: a diverse genome-like sample, average length 316.
pub fn genome_workload(n: usize, seed: u64) -> Vec<Sequence> {
    GenomeSample::generate(&GenomeConfig {
        n_seqs: n,
        n_families: (n / 50).max(4),
        avg_len: 316,
        seed,
        ..Default::default()
    })
    .seqs
}

/// Print a labelled experiment header so bench output reads like the
/// paper's evaluation section.
pub fn banner(experiment: &str, what: &str) {
    println!("\n================================================================");
    println!("{experiment}: {what}");
    println!("(scaled workload; set SAD_PAPER_SCALE=1 for the paper's sizes)");
    println!("================================================================");
}

/// Print rows as an aligned table *and* as CSV (for EXPERIMENTS.md).
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, String::len))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let fmt_row = |cells: Vec<&str>| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(headers.to_vec()));
    for row in rows {
        println!("{}", fmt_row(row.iter().map(String::as_str).collect()));
    }
    println!("-- csv --");
    println!("{}", headers.join(","));
    for row in rows {
        println!("{}", row.join(","));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_rules() {
        if !paper_scale() {
            assert_eq!(scaled(5000), 500);
            assert_eq!(scaled(200), 64);
        }
    }

    #[test]
    fn workloads_have_requested_sizes() {
        assert_eq!(rose_workload(70, 1).len(), 70);
        assert_eq!(genome_workload(80, 1).len(), 80);
    }

    #[test]
    fn cluster_helper_reports_makespan() {
        let seqs = rose_workload(64, 3);
        let cfg = SadConfig::default();
        let report = sad_on_cluster(2, &seqs, &cfg);
        assert_eq!(report.msa.num_rows(), 64);
        assert!(sad_makespan(2, &seqs, &cfg) > 0.0);
    }

    #[test]
    fn genome_mean_length_echoes_acetivorans() {
        let seqs = genome_workload(300, 2);
        let mean: f64 = seqs.iter().map(|s| s.len() as f64).sum::<f64>() / seqs.len() as f64;
        assert!((mean - 316.0).abs() < 90.0, "mean {mean}");
    }
}
