//! The [`MsaEngine`] abstraction: "any sequential multiple alignment
//! system", exactly the role MUSCLE plays inside each Sample-Align-D
//! processor.

use crate::dp::DpArena;
use bioseq::{Msa, Sequence, Work};
use serde::{Deserialize, Serialize};

/// A sequential multiple sequence alignment system.
///
/// Implementations must be deterministic: the virtual cluster's timing
/// model assumes a rerun performs identical work.
pub trait MsaEngine: Send + Sync {
    /// Engine name for reports (e.g. `"muscle-lite-fast"`).
    fn name(&self) -> String;

    /// Align the sequences and report the work performed.
    ///
    /// The returned alignment contains exactly the input sequences (same
    /// ids, same residues once ungapped), rows in input order.
    fn align_with_work(&self, seqs: &[Sequence]) -> (Msa, Work);

    /// Align using caller-provided DP scratch, so consecutive runs (e.g.
    /// the jobs of a batch worker) reuse one [`DpArena`]'s buffers instead
    /// of re-allocating per run. The arena is pure scratch: results and
    /// work are identical to [`align_with_work`](Self::align_with_work).
    ///
    /// The default implementation ignores the arena and delegates, so
    /// third-party engines stay source-compatible.
    fn align_with_work_in(&self, seqs: &[Sequence], arena: &mut DpArena) -> (Msa, Work) {
        let _ = arena;
        self.align_with_work(seqs)
    }

    /// Align without work accounting.
    fn align(&self, seqs: &[Sequence]) -> Msa {
        self.align_with_work(seqs).0
    }
}

/// Serializable engine selector used by configuration surfaces (CLI,
/// benches, the distributed system's config messages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EngineChoice {
    /// MUSCLE-like, stage 1 only (fast draft).
    #[default]
    MuscleFast,
    /// MUSCLE-like with tree re-estimation and refinement.
    MuscleStandard,
    /// CLUSTALW-like.
    Clustal,
}

impl EngineChoice {
    /// Instantiate the engine with default parameters (and the default
    /// adaptive band policy and kernel).
    pub fn build(self) -> Box<dyn MsaEngine> {
        self.build_with_band(crate::dp::BandPolicy::default())
    }

    /// Instantiate the engine with an explicit DP kernel band policy.
    pub fn build_with_band(self, band: crate::dp::BandPolicy) -> Box<dyn MsaEngine> {
        self.build_with(band, crate::dp::DpKernel::default())
    }

    /// Instantiate the engine with explicit band policy and DP kernel.
    pub fn build_with(
        self,
        band: crate::dp::BandPolicy,
        kernel: crate::dp::DpKernel,
    ) -> Box<dyn MsaEngine> {
        match self {
            EngineChoice::MuscleFast => {
                Box::new(crate::muscle::MuscleLite::fast().with_band(band).with_kernel(kernel))
            }
            EngineChoice::MuscleStandard => {
                Box::new(crate::muscle::MuscleLite::standard().with_band(band).with_kernel(kernel))
            }
            EngineChoice::Clustal => {
                Box::new(crate::clustal::ClustalLite::default().with_band(band).with_kernel(kernel))
            }
        }
    }

    /// Stable label for tables.
    pub fn label(self) -> &'static str {
        match self {
            EngineChoice::MuscleFast => "muscle-fast",
            EngineChoice::MuscleStandard => "muscle",
            EngineChoice::Clustal => "clustalw",
        }
    }

    /// Parse a [`label`](Self::label) back into a choice — the selector
    /// configuration surfaces (CLI flags, config files) go through.
    pub fn from_label(label: &str) -> Option<EngineChoice> {
        EngineChoice::ALL.into_iter().find(|c| c.label() == label)
    }

    /// All selectable engines (for sweeps).
    pub const ALL: [EngineChoice; 3] =
        [EngineChoice::MuscleFast, EngineChoice::MuscleStandard, EngineChoice::Clustal];
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(texts: &[&str]) -> Vec<Sequence> {
        texts
            .iter()
            .enumerate()
            .map(|(i, t)| Sequence::from_str(format!("s{i}"), t).unwrap())
            .collect()
    }

    #[test]
    fn every_engine_satisfies_the_contract() {
        let ss = seqs(&["MKVLAWGKVL", "MKILAWKIL", "MKVLWGKVL", "MKILAWGKIL"]);
        for choice in EngineChoice::ALL {
            let engine = choice.build();
            let (msa, work) = engine.align_with_work(&ss);
            msa.validate().unwrap();
            assert_eq!(msa.num_rows(), ss.len(), "{}", engine.name());
            for (i, s) in ss.iter().enumerate() {
                assert_eq!(msa.ids()[i], s.id, "{}", engine.name());
                assert_eq!(msa.ungapped(i).to_letters(), s.to_letters(), "{}", engine.name());
            }
            assert!(!work.is_zero(), "{} reported no work", engine.name());
        }
    }

    #[test]
    fn arena_reuse_is_pure_scratch() {
        // Running several families back to back through one arena must
        // yield exactly the fresh-arena results — the batch runner's
        // per-worker reuse depends on it.
        let families = [
            seqs(&["MKVLAWGKVL", "MKILAWKIL", "MKVLWGKVL", "MKILAWGKIL"]),
            seqs(&["PPWPPGGPPW", "PPWPPGGPW", "PPWPGGPPW"]),
            seqs(&["MKVLAWGKVLSSDD", "MKVLAWGKVLSSD"]),
        ];
        for choice in EngineChoice::ALL {
            let engine = choice.build();
            let mut arena = crate::dp::DpArena::new();
            for family in &families {
                let fresh = engine.align_with_work(family);
                let reused = engine.align_with_work_in(family, &mut arena);
                assert_eq!(fresh, reused, "{}", engine.name());
            }
        }
    }

    #[test]
    fn align_defaults_to_align_with_work() {
        let ss = seqs(&["MKVL", "MKIL"]);
        let engine = EngineChoice::MuscleFast.build();
        assert_eq!(engine.align(&ss), engine.align_with_work(&ss).0);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            EngineChoice::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), EngineChoice::ALL.len());
    }

    #[test]
    fn labels_roundtrip_through_from_label() {
        for choice in EngineChoice::ALL {
            assert_eq!(EngineChoice::from_label(choice.label()), Some(choice));
        }
        assert_eq!(EngineChoice::from_label("t-coffee"), None);
    }
}
