//! Content digests for inputs, outputs and configurations.
//!
//! The journal and the result cache both key on digests: the input digest
//! decides whether a submission is a duplicate, the config fingerprint
//! decides whether a cached result is still valid for the server's current
//! settings, and the output digest is the BiG-SCAPE-style
//! verify-before-trusting check — a journaled `Finished` entry is only
//! believed if the output file on disk still hashes to the recorded value.
//!
//! FNV-1a (64-bit) is enough here: digests guard against truncation,
//! corruption and accidental collisions, not adversaries.

use sad_core::{Backend, SadConfig};

/// 64-bit FNV-1a over a byte stream.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The canonical textual form of a digest: 16 lowercase hex digits.
pub fn hex(digest: u64) -> String {
    format!("{digest:016x}")
}

/// Digest of an input or output payload.
pub fn payload(text: &str) -> String {
    hex(fnv64(text.as_bytes()))
}

/// Fingerprint of the configuration a job runs under: every knob of the
/// [`SadConfig`] plus the backend and its decomposition width. Two jobs
/// with equal input digests and equal fingerprints are guaranteed the same
/// output bytes (the pipeline is deterministic), which is what licenses
/// the result cache and the skip-on-restart path.
pub fn config_fingerprint(cfg: &SadConfig, backend: &Backend) -> String {
    let width = match backend {
        Backend::Sequential => 1,
        Backend::Rayon { threads } => *threads,
        Backend::Distributed(cluster) => cluster.p(),
    };
    hex(fnv64(format!("{cfg:?}|{}|{width}", backend.name()).as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcluster::{CostModel, VirtualCluster};

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(hex(0), "0000000000000000");
        assert_eq!(hex(0xdead_beef), "00000000deadbeef");
        assert_eq!(payload("x").len(), 16);
    }

    #[test]
    fn fingerprint_separates_configs_and_backends() {
        let cfg = SadConfig::default();
        let seq = config_fingerprint(&cfg, &Backend::Sequential);
        assert_eq!(seq, config_fingerprint(&SadConfig::default(), &Backend::Sequential));
        assert_ne!(seq, config_fingerprint(&cfg.clone().with_kmer_k(5), &Backend::Sequential));
        assert_ne!(
            seq,
            config_fingerprint(&cfg.clone().with_fine_tune(false), &Backend::Sequential)
        );
        assert_ne!(seq, config_fingerprint(&cfg, &Backend::Rayon { threads: 2 }));
        let c2 = Backend::Distributed(VirtualCluster::new(2, CostModel::beowulf_2008()));
        let c4 = Backend::Distributed(VirtualCluster::new(4, CostModel::beowulf_2008()));
        assert_ne!(config_fingerprint(&cfg, &c2), config_fingerprint(&cfg, &c4));
    }

    #[test]
    fn fingerprint_covers_every_post_pr6_knob() {
        // The cache key must change whenever any knob added since the
        // serve daemon landed changes: `max_bucket`, `dp_kernel`, the
        // vertical mode and each of its fields, the anchored-merge
        // toggle, and the trim stage and each of its fields. Configs
        // differing only in one of these must never share a cache key
        // (stale hits would silently serve wrong alignments).
        use align::DpKernel;
        use sad_core::{TrimConfig, VerticalConfig};
        let base = SadConfig::default();
        let variants: Vec<SadConfig> = vec![
            base.clone(),
            base.clone().with_max_bucket(Some(128)),
            base.clone().with_max_bucket(Some(256)),
            base.clone().with_dp_kernel(DpKernel::Scalar),
            base.clone().with_dp_kernel(DpKernel::Striped),
            base.clone().with_anchored_merge(false),
            base.clone().with_vertical(VerticalConfig::default()),
            base.clone().with_vertical(VerticalConfig { seam_window: 8, ..Default::default() }),
            base.clone().with_vertical(VerticalConfig { max_block_len: 256, ..Default::default() }),
            base.clone().with_vertical(VerticalConfig { min_anchor_len: 12, ..Default::default() }),
            base.clone().with_trim(TrimConfig::default()),
            base.clone().with_trim(TrimConfig { max_dropped: Some(4), ..Default::default() }),
            base.clone().with_trim(TrimConfig { branch_bound: true, ..Default::default() }),
        ];
        let prints: Vec<String> =
            variants.iter().map(|c| config_fingerprint(c, &Backend::Sequential)).collect();
        for i in 0..prints.len() {
            for j in i + 1..prints.len() {
                assert_ne!(prints[i], prints[j], "variants {i} and {j} collide");
            }
        }
    }
}
