//! UPGMA / WPGMA agglomerative clustering.
//!
//! Uses the nearest-neighbour-array technique: each active cluster caches
//! its current nearest neighbour, so a merge only rescans rows whose cached
//! neighbour was invalidated. Expected `O(n²)` on distance matrices arising
//! from metric-ish data (worst case `O(n³)`, never observed on sequence
//! distances).

use crate::distmat::DistMatrix;
use crate::tree::{NodeId, Tree};

/// Linkage rule for merging cluster distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Unweighted pair group method: sizes weight the average (UPGMA).
    Unweighted,
    /// Weighted pair group method: plain average of the two rows (WPGMA).
    Weighted,
}

/// Cluster with UPGMA linkage. See [`cluster`].
pub fn upgma(dist: &DistMatrix) -> Tree {
    cluster(dist, Linkage::Unweighted)
}

/// Cluster with WPGMA linkage. See [`cluster`].
pub fn wpgma(dist: &DistMatrix) -> Tree {
    cluster(dist, Linkage::Weighted)
}

/// Agglomerative clustering of a distance matrix into a rooted ultrametric
/// tree. Leaf `i` of the result corresponds to index `i` of the matrix.
pub fn cluster(dist: &DistMatrix, linkage: Linkage) -> Tree {
    let n = dist.len();
    if n == 1 {
        return Tree::singleton();
    }
    // Working copy of the matrix, full square for O(1) row updates.
    let mut d = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            d[i * n + j] = dist.get(i, j);
        }
    }
    let mut active: Vec<bool> = vec![true; n];
    let mut size: Vec<f64> = vec![1.0; n];
    // Tree node id that currently represents matrix row i.
    let mut rep: Vec<NodeId> = (0..n).collect();
    let mut height: Vec<f64> = vec![0.0; n];
    // Nearest active neighbour of each active row.
    let mut nn: Vec<usize> = vec![usize::MAX; n];
    let find_nn = |d: &[f64], active: &[bool], i: usize| -> usize {
        let mut best = usize::MAX;
        let mut best_d = f64::INFINITY;
        for j in 0..n {
            if j != i && active[j] {
                let v = d[i * n + j];
                if v < best_d {
                    best_d = v;
                    best = j;
                }
            }
        }
        best
    };
    for (i, slot) in nn.iter_mut().enumerate() {
        *slot = find_nn(&d, &active, i);
    }

    let mut merges: Vec<(NodeId, NodeId, f64)> = Vec::with_capacity(n - 1);
    for round in 0..(n - 1) {
        // Pick the globally closest pair via the nn cache.
        let mut bi = usize::MAX;
        let mut best = f64::INFINITY;
        for i in 0..n {
            if active[i] && nn[i] != usize::MAX {
                let v = d[i * n + nn[i]];
                if v < best {
                    best = v;
                    bi = i;
                }
            }
        }
        let i = bi;
        let j = nn[bi];
        debug_assert!(active[i] && active[j] && i != j);
        let new_height = (best / 2.0).max(height[i]).max(height[j]);
        merges.push((rep[i], rep[j], new_height));
        // Merge j into i.
        let (si, sj) = (size[i], size[j]);
        for k in 0..n {
            if k != i && k != j && active[k] {
                let dik = d[i * n + k];
                let djk = d[j * n + k];
                let merged = match linkage {
                    Linkage::Unweighted => (si * dik + sj * djk) / (si + sj),
                    Linkage::Weighted => 0.5 * (dik + djk),
                };
                d[i * n + k] = merged;
                d[k * n + i] = merged;
            }
        }
        active[j] = false;
        size[i] = si + sj;
        height[i] = new_height;
        // The merge created tree node `n + round`.
        rep[i] = n + round;
        if merges.len() == n - 1 {
            break;
        }
        // Refresh invalidated nearest-neighbour entries.
        nn[i] = find_nn(&d, &active, i);
        for k in 0..n {
            if active[k] && k != i && (nn[k] == i || nn[k] == j) {
                nn[k] = find_nn(&d, &active, k);
            }
        }
    }
    let tree = Tree::from_merges(n, &merges);
    debug_assert!(tree.validate().is_ok());
    tree
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_leaves() {
        let mut m = DistMatrix::zeros(2);
        m.set(0, 1, 4.0);
        let t = upgma(&m);
        t.validate().unwrap();
        assert_eq!(t.n_leaves(), 2);
        // Ultrametric: both leaves at distance 2 from root.
        assert_eq!(t.node(0).branch_len, 2.0);
        assert_eq!(t.node(1).branch_len, 2.0);
    }

    #[test]
    fn textbook_example() {
        // Classic UPGMA worked example with a clean hierarchy:
        // d(0,1)=2, everything with 2 = 6, everything with 3 = 10.
        let m = DistMatrix::from_fn(4, |i, j| match (i, j) {
            (1, 0) => 2.0,
            (2, 0) | (2, 1) => 6.0,
            (3, _) => 10.0,
            _ => unreachable!(),
        });
        let t = upgma(&m);
        t.validate().unwrap();
        // First merge must be (0,1) at height 1.
        let post = t.postorder();
        let first_internal =
            post.iter().copied().find(|&id| t.node(id).children.is_some()).unwrap();
        let mut leaves = t.leaves_under(first_internal);
        leaves.sort_unstable();
        assert_eq!(leaves, vec![0, 1]);
        assert!((t.node(first_internal).height - 1.0).abs() < 1e-12);
        // Root joins leaf 3 at height 5.
        assert!((t.node(t.root()).height - 5.0).abs() < 1e-12);
    }

    #[test]
    fn upgma_recovers_ultrametric_distances() {
        // Build an ultrametric matrix from a known tree, cluster it, and
        // check path lengths between leaves reproduce the matrix.
        let m = DistMatrix::from_fn(5, |i, j| {
            // Two clades {0,1,2} (pairwise 2.0) and {3,4} (pairwise 1.0),
            // across clades 8.0.
            let clade = |x: usize| usize::from(x >= 3);
            if clade(i) == clade(j) {
                if clade(i) == 0 {
                    2.0
                } else {
                    1.0
                }
            } else {
                8.0
            }
        });
        let t = upgma(&m);
        t.validate().unwrap();
        for i in 0..5 {
            for j in 0..i {
                let li = t.leaf_node(i).unwrap();
                let lj = t.leaf_node(j).unwrap();
                assert!((t.path_length(li, lj) - m.get(i, j)).abs() < 1e-9, "pair {i},{j}");
            }
        }
    }

    #[test]
    fn wpgma_differs_from_upgma_on_skewed_sizes() {
        // A matrix engineered so the linkage rule changes the root height:
        // cluster {0,1,2} forms first; WPGMA then averages rows without
        // size weights.
        let m = DistMatrix::from_fn(4, |i, j| match (i, j) {
            (1, 0) => 1.0,
            (2, 0) => 1.2,
            (2, 1) => 1.2,
            (3, 0) => 10.0,
            (3, 1) => 10.0,
            (3, 2) => 2.0,
            _ => unreachable!(),
        });
        let tu = upgma(&m);
        let tw = wpgma(&m);
        let hu = tu.node(tu.root()).height;
        let hw = tw.node(tw.root()).height;
        assert!((hu - hw).abs() > 1e-9, "hu={hu} hw={hw}");
    }

    #[test]
    fn singleton_matrix() {
        let t = upgma(&DistMatrix::zeros(1));
        assert_eq!(t.n_leaves(), 1);
    }

    #[test]
    fn handles_ties_deterministically() {
        let m = DistMatrix::from_fn(4, |_, _| 1.0);
        let a = upgma(&m);
        let b = upgma(&m);
        assert_eq!(a, b);
        a.validate().unwrap();
    }

    #[test]
    fn heights_monotone_nondecreasing() {
        // Heights along any root path must not decrease (guaranteed by the
        // max() clamp even for non-ultrametric inputs).
        let m = DistMatrix::from_fn(6, |i, j| ((i * 7 + j * 3) % 11) as f64 + 0.5);
        let t = upgma(&m);
        for id in 0..t.n_nodes() {
            if let Some(p) = t.node(id).parent {
                assert!(t.node(p).height >= t.node(id).height - 1e-12);
            }
        }
    }
}
