//! Profile–profile alignment: the engine of progressive MSA and of the
//! paper's ancestor-constrained fine-tuning.
//!
//! An affine-gap DP over *columns* (not residues) maximising the summed PSP
//! score. Gap penalties are scaled by the residue weight of the column
//! being consumed and the total weight of the profile receiving the gap, so
//! the objective stays in (weighted) sum-of-pairs units end to end.

use crate::profile::Profile;
use bioseq::alphabet::{CODE_COUNT, GAP_CODE};
use bioseq::{GapPenalties, Msa, SubstMatrix, Work};

/// One traceback step of a profile alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColOp {
    /// Consume one column from each profile (aligned columns).
    Both,
    /// Consume a column from the first profile; gap column in the second.
    FromA,
    /// Consume a column from the second profile; gap column in the first.
    FromB,
}

/// Result of a profile–profile alignment.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileAlignment {
    /// Column merge script (length = merged alignment width).
    pub ops: Vec<ColOp>,
    /// DP objective value (weighted SP units).
    pub score: f64,
    /// Work performed.
    pub work: Work,
}

const NEG_INF: f64 = f64::NEG_INFINITY;

/// Align two profiles with affine gap penalties.
pub fn align_profiles(
    pa: &Profile,
    pb: &Profile,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
) -> ProfileAlignment {
    let n = pa.len();
    let m = pb.len();
    assert!(n > 0 && m > 0, "profiles must be non-empty");
    let mut work = Work::ZERO;

    // Dense expected-score vectors for B's columns: psp(i, j) becomes a
    // sparse dot against eb[j].
    let eb: Vec<[f64; CODE_COUNT]> = pb.cols.iter().map(|c| c.expected_scores(matrix)).collect();
    work.col_ops += (m * CODE_COUNT) as u64;

    let resw_a: Vec<f64> = pa.cols.iter().map(|c| c.residue_weight()).collect();
    let resw_b: Vec<f64> = pb.cols.iter().map(|c| c.residue_weight()).collect();
    let (wa_tot, wb_tot) = (pa.total_weight, pb.total_weight);
    let open = gaps.open as f64;
    let extend = gaps.extend as f64;
    // Cost rate of gapping B against A's column i (and vice versa).
    let ga = |i: usize| resw_a[i] * wb_tot;
    let gb = |j: usize| resw_b[j] * wa_tot;

    let w = m + 1;
    let mut mm = vec![NEG_INF; (n + 1) * w];
    let mut xx = vec![NEG_INF; (n + 1) * w];
    let mut yy = vec![NEG_INF; (n + 1) * w];
    mm[0] = 0.0;
    for i in 1..=n {
        let rate = ga(i - 1);
        let prev = if i == 1 { mm[0] } else { xx[(i - 1) * w] };
        let charge = if i == 1 { open } else { extend };
        xx[i * w] = prev - charge * rate;
    }
    for j in 1..=m {
        let rate = gb(j - 1);
        let prev = if j == 1 { mm[0] } else { yy[j - 1] };
        let charge = if j == 1 { open } else { extend };
        yy[j] = prev - charge * rate;
    }

    for i in 1..=n {
        let ca = &pa.cols[i - 1];
        let rate_a = ga(i - 1);
        for j in 1..=m {
            let idx = i * w + j;
            let diag = (i - 1) * w + (j - 1);
            let up = (i - 1) * w + j;
            let left = i * w + (j - 1);
            // PSP via sparse dot with the dense expected vector.
            let e = &eb[j - 1];
            let mut psp = 0.0;
            for &(a, wgt) in &ca.residues {
                psp += wgt * e[a as usize];
            }
            let best_prev = mm[diag].max(xx[diag]).max(yy[diag]);
            if best_prev > NEG_INF {
                mm[idx] = best_prev + psp;
            }
            xx[idx] = (mm[up].max(yy[up]) - open * rate_a).max(xx[up] - extend * rate_a);
            let rate_b = gb(j - 1);
            yy[idx] = (mm[left].max(xx[left]) - open * rate_b).max(yy[left] - extend * rate_b);
        }
    }
    work.dp_cells += 3 * (n as u64) * (m as u64);

    // Traceback.
    let end = n * w + m;
    let (score, mut layer) = best3(mm[end], xx[end], yy[end]);
    let mut ops_rev = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n, m);
    let eps = 1e-9;
    while i > 0 || j > 0 {
        let idx = i * w + j;
        match layer {
            0 => {
                debug_assert!(i > 0 && j > 0);
                ops_rev.push(ColOp::Both);
                let diag = (i - 1) * w + (j - 1);
                let target = {
                    let e = &eb[j - 1];
                    let mut psp = 0.0;
                    for &(a, wgt) in &pa.cols[i - 1].residues {
                        psp += wgt * e[a as usize];
                    }
                    mm[idx] - psp
                };
                layer = pick_layer(mm[diag], xx[diag], yy[diag], target, eps);
                i -= 1;
                j -= 1;
            }
            1 => {
                debug_assert!(i > 0);
                ops_rev.push(ColOp::FromA);
                let up = (i - 1) * w + j;
                let rate = ga(i - 1);
                if (xx[idx] - (xx[up] - extend * rate)).abs() <= eps {
                    // extended
                } else {
                    layer = if mm[up] >= yy[up] { 0 } else { 2 };
                }
                i -= 1;
            }
            _ => {
                debug_assert!(j > 0);
                ops_rev.push(ColOp::FromB);
                let left = i * w + (j - 1);
                let rate = gb(j - 1);
                if (yy[idx] - (yy[left] - extend * rate)).abs() <= eps {
                    // extended
                } else {
                    layer = if mm[left] >= xx[left] { 0 } else { 1 };
                }
                j -= 1;
            }
        }
    }
    ops_rev.reverse();
    ProfileAlignment { ops: ops_rev, score, work }
}

#[inline]
fn best3(m: f64, x: f64, y: f64) -> (f64, u8) {
    if m >= x && m >= y {
        (m, 0)
    } else if x >= y {
        (x, 1)
    } else {
        (y, 2)
    }
}

#[inline]
fn pick_layer(m: f64, x: f64, y: f64, target: f64, eps: f64) -> u8 {
    if (m - target).abs() <= eps {
        0
    } else if (x - target).abs() <= eps {
        1
    } else {
        debug_assert!((y - target).abs() <= eps.max(target.abs() * 1e-9));
        2
    }
}

/// Apply a column merge script to two alignments, producing the merged
/// alignment (rows of `a` first).
///
/// # Panics
/// Panics if the script does not consume exactly the columns of `a` and
/// `b`.
pub fn merge_msas(a: &Msa, b: &Msa, ops: &[ColOp], work: &mut Work) -> Msa {
    let out_cols = ops.len();
    let ra = a.num_rows();
    let rb = b.num_rows();
    let mut rows: Vec<Vec<u8>> = (0..ra + rb).map(|_| Vec::with_capacity(out_cols)).collect();
    let (mut ia, mut ib) = (0usize, 0usize);
    for &op in ops {
        match op {
            ColOp::Both => {
                for (r, row) in rows.iter_mut().enumerate().take(ra) {
                    row.push(a.row(r)[ia]);
                }
                for (r, row) in rows.iter_mut().enumerate().skip(ra) {
                    row.push(b.row(r - ra)[ib]);
                }
                ia += 1;
                ib += 1;
            }
            ColOp::FromA => {
                for (r, row) in rows.iter_mut().enumerate().take(ra) {
                    row.push(a.row(r)[ia]);
                }
                for row in rows.iter_mut().skip(ra) {
                    row.push(GAP_CODE);
                }
                ia += 1;
            }
            ColOp::FromB => {
                for row in rows.iter_mut().take(ra) {
                    row.push(GAP_CODE);
                }
                for (r, row) in rows.iter_mut().enumerate().skip(ra) {
                    row.push(b.row(r - ra)[ib]);
                }
                ib += 1;
            }
        }
    }
    assert_eq!(ia, a.num_cols(), "script must consume all of a");
    assert_eq!(ib, b.num_cols(), "script must consume all of b");
    work.col_ops += (out_cols * (ra + rb)) as u64;
    let mut ids = a.ids().to_vec();
    ids.extend_from_slice(b.ids());
    Msa::from_rows(ids, rows)
}

/// Convenience: profile-align two alignments with uniform weights and merge
/// them.
pub fn align_and_merge(
    a: &Msa,
    b: &Msa,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    work: &mut Work,
) -> Msa {
    let pa = Profile::from_msa(a, work);
    let pb = Profile::from_msa(b, work);
    let aln = align_profiles(&pa, &pb, matrix, gaps);
    *work += aln.work;
    merge_msas(a, b, &aln.ops, work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioseq::fasta;
    use bioseq::Sequence;

    fn msa(text: &str) -> Msa {
        fasta::parse_alignment(text).unwrap()
    }

    fn setup() -> (SubstMatrix, GapPenalties) {
        (SubstMatrix::blosum62(), GapPenalties::default())
    }

    #[test]
    fn identical_profiles_align_diagonally() {
        let (mat, g) = setup();
        let a = msa(">a\nMKVLAW\n");
        let mut w = Work::ZERO;
        let pa = Profile::from_msa(&a, &mut w);
        let aln = align_profiles(&pa, &pa, &mat, g);
        assert!(aln.ops.iter().all(|&op| op == ColOp::Both));
        assert_eq!(aln.ops.len(), 6);
    }

    #[test]
    fn merge_preserves_ungapped_rows() {
        let (mat, g) = setup();
        let a = msa(">a\nMKVLAW\n>b\nMKV-AW\n");
        let b = msa(">c\nMKAW\n");
        let mut w = Work::ZERO;
        let merged = align_and_merge(&a, &b, &mat, g, &mut w);
        assert_eq!(merged.num_rows(), 3);
        merged.validate().unwrap();
        assert_eq!(merged.ungapped(0).to_letters(), "MKVLAW");
        assert_eq!(merged.ungapped(1).to_letters(), "MKVAW");
        assert_eq!(merged.ungapped(2).to_letters(), "MKAW");
        assert!(w.dp_cells > 0);
    }

    #[test]
    fn merged_ids_in_order() {
        let (mat, g) = setup();
        let a = msa(">x\nMKVL\n");
        let b = msa(">y\nMKIL\n>z\nMKIL\n");
        let mut w = Work::ZERO;
        let merged = align_and_merge(&a, &b, &mat, g, &mut w);
        assert_eq!(merged.ids(), &["x".to_string(), "y".to_string(), "z".to_string()]);
    }

    #[test]
    fn dp_score_matches_rescoring_pairwise_case() {
        // For single-sequence profiles the profile DP must agree with a
        // rescoring of the produced alignment (PSP == pair score, weights 1).
        let (mat, g) = setup();
        let texts = [("MKVLAWGKVL", "MKILWGKIL"), ("AAAAW", "WAAA"), ("MW", "M")];
        for (ta, tb) in texts {
            let a = Msa::from_sequence(&Sequence::from_str("a", ta).unwrap());
            let b = Msa::from_sequence(&Sequence::from_str("b", tb).unwrap());
            let mut w = Work::ZERO;
            let merged = align_and_merge(&a, &b, &mat, g, &mut w);
            let pa = Profile::from_msa(&a, &mut w);
            let pb = Profile::from_msa(&b, &mut w);
            let aln = align_profiles(&pa, &pb, &mat, g);
            let rescored = bioseq::msa::pairwise_row_score(merged.row(0), merged.row(1), &mat, g);
            assert!(
                (aln.score - rescored as f64).abs() < 1e-6,
                "{ta} vs {tb}: dp={} rescored={rescored}",
                aln.score
            );
        }
    }

    #[test]
    fn profile_alignment_matches_pairwise_alignment_score() {
        // Single-sequence profile alignment is exactly pairwise Gotoh.
        let (mat, g) = setup();
        let a = Sequence::from_str("a", "MKVLAWGKVLPP").unwrap();
        let b = Sequence::from_str("b", "MKILWGKILGG").unwrap();
        let pairwise = crate::pairwise::global_align(&a, &b, &mat, g);
        let mut w = Work::ZERO;
        let pa = Profile::from_msa(&Msa::from_sequence(&a), &mut w);
        let pb = Profile::from_msa(&Msa::from_sequence(&b), &mut w);
        let profile = align_profiles(&pa, &pb, &mat, g);
        assert!(
            (profile.score - pairwise.score as f64).abs() < 1e-6,
            "profile {} vs pairwise {}",
            profile.score,
            pairwise.score
        );
    }

    #[test]
    fn gap_columns_inserted_where_cheaper() {
        let (mat, g) = setup();
        let a = msa(">a\nMKVVVVKW\n");
        let b = msa(">b\nMKKW\n");
        let mut w = Work::ZERO;
        let merged = align_and_merge(&a, &b, &mat, g, &mut w);
        // The short sequence must receive gap columns.
        assert!(merged.row(1).contains(&GAP_CODE));
        assert_eq!(merged.num_cols(), 8);
    }

    #[test]
    #[should_panic(expected = "consume all")]
    fn bad_script_panics() {
        let a = msa(">a\nMK\n");
        let b = msa(">b\nMK\n");
        let mut w = Work::ZERO;
        merge_msas(&a, &b, &[ColOp::Both], &mut w);
    }

    #[test]
    fn weighted_profiles_shift_alignment() {
        // Weighting the gappy row heavily should change gap placement
        // economics but never break structure.
        let (mat, g) = setup();
        let a = msa(">a\nMKVLAW\n>b\nMK--AW\n");
        let b = msa(">c\nMKVLAW\n");
        let mut w = Work::ZERO;
        let pa = Profile::from_msa_weighted(&a, &[1.0, 10.0], &mut w);
        let pb = Profile::from_msa(&b, &mut w);
        let aln = align_profiles(&pa, &pb, &mat, g);
        let merged = merge_msas(&a, &b, &aln.ops, &mut w);
        merged.validate().unwrap();
        assert_eq!(merged.ungapped(2).to_letters(), "MKVLAW");
    }
}
