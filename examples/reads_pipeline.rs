//! Large-N read mode: the Pyro-Align workload end to end.
//!
//! Simulates pyrosequencing-style reads from a small set of source
//! sequences (fragmentation, homopolymer-biased errors), aligns them on
//! the rayon backend with hierarchical bucketing (`max_bucket`) so no
//! single rank centralizes the work, watches the `BucketSplit` /
//! `BucketAligned` event stream live, and scores the result against the
//! simulator's known truth with the sampled pair-Q gate.
//!
//! ```text
//! cargo run --release --example reads_pipeline
//! ```

use sample_align_d::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn main() {
    // Four unknown "source" sequences, read at 8x coverage.
    let sources = Family::generate(&FamilyConfig {
        n_seqs: 4,
        avg_len: 300,
        relatedness: 800.0,
        seed: 9,
        ..Default::default()
    });
    let reads = ReadSet::from_family(
        &sources,
        &ReadSimConfig {
            total_reads: Some(1_500),
            read_len: 80,
            error_rate: 0.02,
            seed: 9,
            ..Default::default()
        },
    );
    println!("simulated {} reads from {} sources", reads.len(), sources.seqs.len());

    // Hierarchical bucketing: any first-pass bucket larger than the cap
    // is recursively re-partitioned before its alignment starts.
    const CAP: usize = 128;
    let splits = Arc::new(AtomicUsize::new(0));
    let max_aligned = Arc::new(AtomicUsize::new(0));
    let observer = {
        let (splits, max_aligned) = (splits.clone(), max_aligned.clone());
        Arc::new(move |event: &Event| match event {
            Event::BucketSplit { bucket, depth, size, parts } => {
                splits.fetch_add(1, Ordering::Relaxed);
                eprintln!("[split] bucket {bucket} (depth {depth}): {size} reads -> {parts} parts");
            }
            Event::BucketAligned { rows, .. } => {
                max_aligned.fetch_max(*rows, Ordering::Relaxed);
            }
            _ => {}
        })
    };

    let report = Aligner::new(SadConfig::default().with_max_bucket(Some(CAP)))
        .backend(Backend::Rayon { threads: reads.len().div_ceil(CAP) })
        .observer(observer)
        .run(&reads.reads)
        .expect("simulated reads are a valid input");

    let largest = report.bucket_sizes.iter().max().copied().unwrap_or(0);
    println!(
        "{} buckets (largest {largest}), {} splits, decomposition depth {}",
        report.bucket_sizes.len(),
        splits.load(Ordering::Relaxed),
        report.decomposition_depth,
    );
    assert!(largest <= CAP, "no bucket may exceed the cap");
    assert!(max_aligned.load(Ordering::Relaxed) <= CAP, "no engine run saw more than CAP rows");
    assert!(splits.load(Ordering::Relaxed) > 0, "1500 reads over cap 128 must split");
    assert_eq!(report.msa.num_rows(), reads.len(), "every read lands in the alignment");

    // The simulator knows which source region each read came from, so the
    // alignment can be scored against the truth on a sample of read pairs.
    let q = mean_read_pair_q(&reads, &report.msa, 400).expect("overlapping pairs exist at 8x");
    println!("mean pair Q over sampled overlapping read pairs: {q:.3}");
    assert!(q > 0.05, "recovered alignment must beat noise, got {q:.3}");

    println!("{}", report.phase_table());
}
