//! The pipeline observability contract: every backend emits the same
//! well-formed, typed event stream, and every backend stops promptly at a
//! phase boundary when cancelled — by token, by observer, or by deadline.

use sample_align_d::prelude::*;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn family(n: usize, seed: u64) -> Vec<Sequence> {
    Family::generate(&FamilyConfig {
        n_seqs: n,
        avg_len: 60,
        relatedness: 700.0,
        seed,
        ..Default::default()
    })
    .seqs
}

/// An observer that records every event it sees.
#[derive(Default)]
struct Recorder {
    events: Mutex<Vec<Event>>,
}

impl Observer for Recorder {
    fn on_event(&self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

impl Recorder {
    fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }
}

fn backends(p: usize) -> Vec<Backend> {
    vec![
        Backend::Sequential,
        Backend::Rayon { threads: p },
        Backend::Distributed(VirtualCluster::new(p, CostModel::beowulf_2008())),
    ]
}

/// The projections of an event stream that are deterministic on every
/// backend: the order phases started and the order they finished.
/// (`PhaseStarted(k+1)` may arrive before `PhaseFinished(k)` on the
/// message-passing backend — ranks overlap adjacent phases — so the full
/// interleaving is not compared.)
fn started(events: &[Event]) -> Vec<Phase> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::PhaseStarted { phase } => Some(*phase),
            _ => None,
        })
        .collect()
}

fn finished(events: &[Event]) -> Vec<Phase> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::PhaseFinished { phase, .. } => Some(*phase),
            _ => None,
        })
        .collect()
}

#[test]
fn every_backend_emits_a_well_formed_stream() {
    let seqs = family(24, 1);
    for backend in backends(4) {
        let name = backend.name();
        let rec = Arc::new(Recorder::default());
        let report = Aligner::new(SadConfig::default())
            .backend(backend)
            .observer(Arc::clone(&rec) as Arc<dyn Observer>)
            .run(&seqs)
            .unwrap();
        let events = rec.events();
        assert!(
            matches!(events.first(), Some(Event::RunStarted { n_seqs: 24, .. })),
            "{name}: stream must open with RunStarted"
        );
        assert!(
            matches!(events.last(), Some(Event::RunFinished { cancelled: false, .. })),
            "{name}: stream must close with RunFinished"
        );
        // Every started phase finishes, in the same order, and the
        // finished sequence is exactly the report's phase list.
        assert_eq!(started(&events), finished(&events), "{name}: unbalanced phase events");
        assert_eq!(finished(&events), report.phase_sequence(), "{name}: report/event mismatch");
        // PhaseFinished seconds agree with the recorded stats.
        for event in &events {
            if let Event::PhaseFinished { phase, work, seconds } = event {
                let stat = report.phase(*phase).unwrap();
                assert_eq!(stat.work, *work, "{name}: {phase} work mismatch");
                assert_eq!(stat.seconds, Some(*seconds), "{name}: {phase} seconds mismatch");
            }
        }
        // One BucketAligned per non-empty bucket, covering every row.
        let buckets: Vec<(usize, usize)> = events
            .iter()
            .filter_map(|e| match e {
                Event::BucketAligned { bucket, rows, .. } => Some((*bucket, *rows)),
                _ => None,
            })
            .collect();
        let nonempty = report.bucket_sizes.iter().filter(|&&s| s > 0).count();
        assert_eq!(buckets.len(), nonempty, "{name}: one event per aligned bucket");
        assert_eq!(buckets.iter().map(|&(_, r)| r).sum::<usize>(), 24, "{name}");
    }
}

#[test]
fn decomposed_backends_emit_identical_phase_sequences() {
    // The satellite parity check: the rayon and distributed pipelines are
    // step-identical, so their typed phase sequences must match event for
    // event; the sequential baseline runs the one phase it has.
    let seqs = family(24, 2);
    let mut streams = Vec::new();
    for backend in backends(4) {
        let rec = Arc::new(Recorder::default());
        Aligner::new(SadConfig::default())
            .backend(backend)
            .observer(Arc::clone(&rec) as Arc<dyn Observer>)
            .run(&seqs)
            .unwrap();
        streams.push(rec.events());
    }
    let (seq, ray, dist) = (&streams[0], &streams[1], &streams[2]);
    assert_eq!(started(ray), started(dist), "rayon vs distributed start order");
    assert_eq!(finished(ray), finished(dist), "rayon vs distributed finish order");
    assert_eq!(started(seq), vec![Phase::LocalAlign], "sequential is the one-phase baseline");
    // Phases run in pipeline order on every backend.
    for events in &streams {
        let order = started(events);
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted, "phases out of pipeline order");
    }
}

/// A capped rayon run over `total_reads` simulated reads: every bucket
/// the engine aligned (per `BucketAligned` events) must respect the cap,
/// and the `BucketSplit` trail must be well-formed.
fn assert_capped_read_run(total_reads: usize, cap: usize) {
    let sources = Family::generate(&FamilyConfig {
        n_seqs: 4,
        avg_len: 300,
        relatedness: 800.0,
        seed: 7,
        ..Default::default()
    });
    let reads = ReadSet::from_family(
        &sources,
        &ReadSimConfig { total_reads: Some(total_reads), seed: 7, ..Default::default() },
    );
    let rec = Arc::new(Recorder::default());
    let report = Aligner::new(SadConfig::default().with_max_bucket(Some(cap)))
        .backend(Backend::Rayon { threads: total_reads.div_ceil(cap).max(4) })
        .observer(Arc::clone(&rec) as Arc<dyn Observer>)
        .run(&reads.reads)
        .unwrap();
    assert_eq!(report.msa.num_rows(), total_reads, "every read lands in the alignment");
    assert!(report.bucket_sizes.iter().all(|&s| s <= cap), "{:?}", report.bucket_sizes);
    assert!(report.decomposition_depth >= 1, "{total_reads} reads over cap {cap} must split");

    let events = rec.events();
    // The observer stream is the ground truth: no engine invocation ever
    // saw more than `cap` rows...
    let aligned: Vec<usize> = events
        .iter()
        .filter_map(|e| match e {
            Event::BucketAligned { rows, .. } => Some(*rows),
            _ => None,
        })
        .collect();
    assert!(!aligned.is_empty());
    assert!(aligned.iter().all(|&rows| rows <= cap), "an engine run exceeded the cap");
    assert_eq!(aligned.iter().sum::<usize>(), total_reads, "bucket rows partition the reads");
    // ...every split happened on an over-cap bucket, in increasing depth
    // per first-pass bucket, inside the sub-partition phase.
    let splits: Vec<(usize, usize, usize)> = events
        .iter()
        .filter_map(|e| match e {
            Event::BucketSplit { bucket, depth, size, .. } => Some((*bucket, *depth, *size)),
            _ => None,
        })
        .collect();
    assert!(!splits.is_empty(), "a capped large-N run must record its splits");
    let max_depth = splits.iter().map(|&(_, d, _)| d).max().unwrap();
    assert_eq!(max_depth, report.decomposition_depth, "report depth == deepest split event");
    for &(bucket, depth, size) in &splits {
        assert!(size > cap, "bucket {bucket} split at size {size} <= cap {cap}");
        assert!(depth >= 1);
    }
    for window in splits.windows(2) {
        let ((b0, d0, _), (b1, d1, _)) = (window[0], window[1]);
        assert!(b1 > b0 || (b1 == b0 && d1 >= d0), "splits arrive bucket-major, depth-increasing");
    }
    assert!(started(&events).contains(&Phase::SubPartition), "splits live in their own phase");
}

#[test]
fn capped_read_run_never_exceeds_the_bucket_cap() {
    assert_capped_read_run(2_000, 128);
}

#[test]
fn capped_read_run_at_paper_scale() {
    // The full Pyro-Align-scale contract (~minutes of wall clock): only
    // run when asked, like the 50k bench point.
    if std::env::var("SAD_PAPER_SCALE").as_deref() != Ok("1") {
        eprintln!("skipping the 50k read run (set SAD_PAPER_SCALE=1 to run it)");
        return;
    }
    assert_capped_read_run(50_000, 512);
}

#[test]
fn pre_cancelled_token_stops_every_backend_at_the_first_boundary() {
    let seqs = family(12, 3);
    for backend in backends(3) {
        let name = backend.name();
        let first = match backend {
            Backend::Sequential => Phase::LocalAlign,
            _ => Phase::LocalKmerRank,
        };
        let token = CancelToken::new();
        token.cancel();
        let err = Aligner::new(SadConfig::default())
            .backend(backend)
            .cancel_token(token)
            .run(&seqs)
            .unwrap_err();
        assert_eq!(err, SadError::Cancelled { phase: first }, "{name}");
    }
}

#[test]
fn mid_run_cancel_stops_at_the_next_phase_boundary() {
    // An observer cancels the token the moment local alignment finishes:
    // the decomposed backends must stop at a phase boundary after it,
    // without ever reaching the final glue. On the rayon backend the
    // boundary is exactly the next phase; the message-passing backend's
    // root rank may already be a phase or two ahead of the *last* rank
    // leaving local alignment (phases overlap across ranks), but its glue
    // phase synchronises on every rank, so the cut lands strictly before
    // it.
    let seqs = family(24, 4);
    for backend in backends(4).into_iter().skip(1) {
        let name = backend.name();
        let token = CancelToken::new();
        let trigger = token.clone();
        let rec = Arc::new(Recorder::default());
        let sink = Arc::clone(&rec);
        let observer = move |e: &Event| {
            sink.on_event(e);
            if matches!(e, Event::PhaseFinished { phase: Phase::LocalAlign, .. }) {
                trigger.cancel();
            }
        };
        let distributed = matches!(backend, Backend::Distributed(_));
        let err = Aligner::new(SadConfig::default())
            .backend(backend)
            .cancel_token(token)
            .observer(Arc::new(observer))
            .run(&seqs)
            .unwrap_err();
        let SadError::Cancelled { phase } = err else {
            panic!("{name}: expected Cancelled, got {err:?}");
        };
        if distributed {
            assert!(
                phase > Phase::LocalAlign && phase < Phase::Glue,
                "{name}: cancelled at {phase}, expected between local-align and glue"
            );
        } else {
            assert_eq!(phase, Phase::LocalAncestor, "{name}: rayon stops at the very next phase");
        }
        let events = rec.events();
        assert!(
            !started(&events).contains(&Phase::Glue),
            "{name}: the glue phase must never start after a mid-run cancel"
        );
        assert!(
            !finished(&events).contains(&phase),
            "{name}: the cancelled phase must never finish"
        );
        assert!(
            matches!(events.last(), Some(Event::RunFinished { cancelled: true, .. })),
            "{name}: cancelled runs still close their stream"
        );
    }
}

#[test]
fn exhausted_deadline_cancels_every_backend() {
    let seqs = family(12, 5);
    for backend in backends(3) {
        let name = backend.name();
        let err = Aligner::new(SadConfig::default())
            .backend(backend)
            .deadline(Duration::ZERO)
            .run(&seqs)
            .unwrap_err();
        assert!(matches!(err, SadError::Cancelled { .. }), "{name}: got {err:?}");
    }
    // A generous deadline never fires.
    let report = Aligner::new(SadConfig::default())
        .backend(Backend::Rayon { threads: 2 })
        .deadline(Duration::from_secs(3600))
        .run(&seqs)
        .unwrap();
    assert_eq!(report.msa.num_rows(), 12);
}

#[test]
fn cancellation_does_not_poison_the_aligner() {
    // The same builder can run again after a cancelled run — the recorder
    // is per-run state, not per-aligner.
    let seqs = family(12, 6);
    let token = CancelToken::new();
    let aligner = Aligner::new(SadConfig::default())
        .backend(Backend::Rayon { threads: 2 })
        .cancel_token(token.clone());
    token.cancel();
    assert!(aligner.run(&seqs).is_err());
    // ...but a fresh aligner without the cancelled token succeeds.
    let clean = Aligner::new(SadConfig::default()).backend(Backend::Rayon { threads: 2 });
    assert_eq!(clean.run(&seqs).unwrap().msa.num_rows(), 12);
}
