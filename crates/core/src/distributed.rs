//! The distributed Sample-Align-D pipeline over the virtual cluster.
//!
//! Phase names follow the numbered steps of the algorithm listing in
//! Section 2 of the paper, so the per-phase timing table lines up with the
//! cost analysis of Section 3.

use crate::ancestor::{anchor_to_ancestor, glue_anchored, glue_block_diagonal};
use crate::config::SadConfig;
use crate::messages::{AnchoredBlockMsg, MaybeSeq, MsaBlockMsg, RankedSeq};
use align::consensus::consensus_sequence;
use bioseq::kmer::{self, KmerProfile};
use bioseq::{Msa, Sequence, Work};
use vcluster::{Node, RankTrace, VirtualCluster};

/// A batch of sequences for the sample all-gather.
use crate::messages::SeqBatch;

/// The outcome of one distributed run.
#[derive(Debug)]
pub struct SadRun {
    /// The assembled global alignment (gathered at the root).
    pub msa: Msa,
    /// Virtual wall-clock of the run (seconds).
    pub makespan: f64,
    /// Per-rank execution traces (phases, bytes, clocks).
    pub traces: Vec<RankTrace>,
    /// Post-redistribution bucket sizes, indexed by rank.
    pub bucket_sizes: Vec<usize>,
}

impl SadRun {
    /// The per-phase timing table (max/mean across ranks).
    pub fn phase_table(&self) -> String {
        vcluster::trace::phase_table(&self.traces)
    }

    /// Load imbalance: largest bucket relative to the perfect share.
    pub fn load_imbalance(&self) -> f64 {
        let n: usize = self.bucket_sizes.iter().sum();
        let max = self.bucket_sizes.iter().copied().max().unwrap_or(0);
        if n == 0 {
            return 1.0;
        }
        max as f64 / (n as f64 / self.bucket_sizes.len() as f64)
    }
}

/// Run Sample-Align-D on a virtual cluster. `seqs` plays the role of the
/// pre-staged input files (the paper stages shards on each node's disk
/// before timing starts, so the initial slice is free here too).
///
/// # Panics
/// Panics if `seqs` is empty or ids are not unique.
pub fn run_distributed(cluster: &VirtualCluster, seqs: &[Sequence], cfg: &SadConfig) -> SadRun {
    assert!(!seqs.is_empty(), "cannot align an empty set");
    debug_assert_eq!(
        seqs.iter().map(|s| s.id.as_str()).collect::<std::collections::HashSet<_>>().len(),
        seqs.len(),
        "sequence ids must be unique"
    );
    let run = cluster.run(|node| sad_node(node, seqs, cfg));
    let mut msa: Option<Msa> = None;
    let mut bucket_sizes = Vec::with_capacity(run.results.len());
    for (rank_msa, bucket) in run.results {
        if let Some(m) = rank_msa {
            msa = Some(m);
        }
        bucket_sizes.push(bucket);
    }
    SadRun {
        msa: msa.expect("root assembled the alignment"),
        makespan: run.makespan,
        traces: run.traces,
        bucket_sizes,
    }
}

/// Build a k-mer profile, degrading to k=1 for ultra-short sequences.
fn profile_of(seq: &Sequence, cfg: &SadConfig) -> KmerProfile {
    KmerProfile::build(seq, cfg.kmer_k, cfg.alphabet)
        .unwrap_or_else(|| KmerProfile::build(seq, 1, cfg.alphabet).expect("k=1 always works"))
}

fn sort_work(n: usize) -> Work {
    Work::sort((n.max(2) as f64 * (n.max(2) as f64).log2()).ceil() as u64)
}

/// One rank's program. Returns (root's assembled alignment, bucket size).
fn sad_node(node: &Node, all_seqs: &[Sequence], cfg: &SadConfig) -> (Option<Msa>, usize) {
    let p = node.size();
    let rank = node.rank();
    let n = all_seqs.len();
    let chunk = n.div_ceil(p);
    let lo = (rank * chunk).min(n);
    let hi = ((rank + 1) * chunk).min(n);
    let mut local: Vec<Sequence> = all_seqs[lo..hi].to_vec();

    // Steps 1–2: local k-mer rank and local sort.
    node.phase_start("1-local-kmer-rank");
    let mut w = Work::ZERO;
    let mut profs: Vec<KmerProfile> = local.iter().map(|s| profile_of(s, cfg)).collect();
    w.seq_bytes += local.iter().map(|s| s.len() as u64).sum::<u64>();
    let local_ranks: Vec<f64> =
        profs.iter().map(|pr| kmer::kmer_rank(pr, &profs, cfg.rank_transform, &mut w)).collect();
    node.compute(w);
    node.phase_end();

    node.phase_start("2-local-sort");
    let mut order: Vec<usize> = (0..local.len()).collect();
    order.sort_by(|&a, &b| local_ranks[a].total_cmp(&local_ranks[b]));
    local = order.iter().map(|&i| local[i].clone()).collect();
    profs = order.iter().map(|&i| profs[i].clone()).collect();
    node.compute(sort_work(local.len()));
    node.phase_end();

    // Steps 3–4: regular sampling and sample exchange.
    node.phase_start("3-sample-exchange");
    let k = cfg.samples_for(p);
    let m = local.len();
    let kk = k.min(m);
    let samples: Vec<Sequence> =
        (0..kk).map(|s| local[(((s + 1) * m) / (kk + 1)).min(m - 1)].clone()).collect();
    let all_samples: Vec<Sequence> =
        node.all_gather(SeqBatch(samples)).into_iter().flat_map(|b| b.0).collect();
    node.phase_end();

    // Step 5: globalized rank against the pooled sample.
    node.phase_start("5-globalized-rank");
    let mut w = Work::ZERO;
    let sample_profiles: Vec<KmerProfile> =
        all_samples.iter().map(|s| profile_of(s, cfg)).collect();
    let granks: Vec<f64> = profs
        .iter()
        .map(|pr| kmer::kmer_rank(pr, &sample_profiles, cfg.rank_transform, &mut w))
        .collect();
    node.compute(w);
    node.phase_end();

    // Steps 6–7: PSRS redistribution on the globalized rank.
    node.phase_start("6-redistribute");
    let items: Vec<RankedSeq> =
        local.into_iter().zip(granks).map(|(seq, rank)| RankedSeq { seq, rank }).collect();
    let out = psrs::psrs(node, items, |r| r.rank);
    let bucket: Vec<Sequence> = out.items.into_iter().map(|r| r.seq).collect();
    let bucket_size = bucket.len();
    node.phase_end();

    // Step 8: sequential MSA on the local bucket.
    node.phase_start("8-local-align");
    let engine = cfg.engine.build();
    let local_msa: Option<Msa> = if bucket.is_empty() {
        None
    } else {
        let (msa, work) = engine.align_with_work(&bucket);
        node.compute(work);
        Some(msa)
    };
    node.phase_end();

    // Degenerate paths: single rank, or fine-tuning disabled.
    if p == 1 {
        return (local_msa, bucket_size);
    }
    if !cfg.fine_tune {
        node.phase_start("12-glue");
        let gathered = node.gather(0, MsaBlockMsg(local_msa));
        let result = gathered.map(|blocks| {
            let present: Vec<Msa> = blocks.into_iter().filter_map(|b| b.0).collect();
            let mut w = Work::ZERO;
            let glued = if present.len() == 1 {
                present.into_iter().next().expect("one block")
            } else {
                glue_block_diagonal(&present, &mut w)
            };
            node.compute(w);
            glued
        });
        node.phase_end();
        return (result, bucket_size);
    }

    // Step 9: local ancestor extraction.
    node.phase_start("9-local-ancestor");
    let mut w = Work::ZERO;
    let local_anc: Option<Sequence> =
        local_msa.as_ref().map(|msa| consensus_sequence(msa, format!("local-anc-{rank}"), &mut w));
    node.compute(w);
    node.phase_end();

    // Step 10: global ancestor at the root, broadcast to everyone.
    node.phase_start("10-global-ancestor");
    let gathered = node.gather(0, MaybeSeq(local_anc));
    let ga_msg: MaybeSeq = node.broadcast(
        0,
        gathered.map(|list| {
            let ancestors: Vec<Sequence> = list.into_iter().filter_map(|m| m.0).collect();
            assert!(!ancestors.is_empty(), "at least one bucket is non-empty");
            let ga = if ancestors.len() == 1 {
                ancestors.into_iter().next().expect("one ancestor")
            } else {
                let (anc_msa, work) = engine.align_with_work(&ancestors);
                node.compute(work);
                let mut w = Work::ZERO;
                let ga = consensus_sequence(&anc_msa, "global-ancestor", &mut w);
                node.compute(w);
                ga
            };
            MaybeSeq(Some(ga))
        }),
    );
    let ga = ga_msg.0.expect("global ancestor broadcast");
    node.phase_end();

    // Step 11: constrained fine-tuning against the global ancestor.
    node.phase_start("11-fine-tune");
    let block: Option<AnchoredBlockMsg> = local_msa.as_ref().map(|msa| {
        let mut w = Work::ZERO;
        let b = anchor_to_ancestor(msa, &ga, &cfg.matrix, cfg.gaps, &mut w);
        node.compute(w);
        b
    });
    node.phase_end();

    // Step 12: glue at the root.
    node.phase_start("12-glue");
    let gathered = node.gather(0, block);
    let result = gathered.map(|blocks| {
        let present: Vec<AnchoredBlockMsg> = blocks.into_iter().flatten().collect();
        let mut w = Work::ZERO;
        let glued = glue_anchored(ga.len(), &present, &mut w);
        node.compute(w);
        glued
    });
    node.phase_end();
    (result, bucket_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rosegen::{Family, FamilyConfig};
    use std::collections::HashMap;
    use vcluster::CostModel;

    fn family(n: usize, len: usize, seed: u64) -> Vec<Sequence> {
        Family::generate(&FamilyConfig {
            n_seqs: n,
            avg_len: len,
            relatedness: 700.0,
            seed,
            ..Default::default()
        })
        .seqs
    }

    fn cluster(p: usize) -> VirtualCluster {
        VirtualCluster::new(p, CostModel::beowulf_2008())
    }

    fn check_complete(result: &Msa, input: &[Sequence]) {
        result.validate().unwrap();
        assert_eq!(result.num_rows(), input.len());
        let by_id: HashMap<&str, &Sequence> = input.iter().map(|s| (s.id.as_str(), s)).collect();
        for r in 0..result.num_rows() {
            let id = &result.ids()[r];
            let want = by_id.get(id.as_str()).unwrap_or_else(|| panic!("alien row {id}"));
            assert_eq!(&result.ungapped(r), *want, "row {id} corrupted");
        }
    }

    #[test]
    fn end_to_end_small() {
        let seqs = family(24, 60, 1);
        let run = run_distributed(&cluster(4), &seqs, &SadConfig::default());
        check_complete(&run.msa, &seqs);
        assert_eq!(run.bucket_sizes.iter().sum::<usize>(), 24);
        assert!(run.makespan > 0.0);
    }

    #[test]
    fn deterministic() {
        let seqs = family(16, 50, 2);
        let a = run_distributed(&cluster(4), &seqs, &SadConfig::default());
        let b = run_distributed(&cluster(4), &seqs, &SadConfig::default());
        assert_eq!(a.msa, b.msa);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.bucket_sizes, b.bucket_sizes);
    }

    #[test]
    fn p1_is_one_engine_run_over_everything() {
        // With one rank the pipeline degenerates to "sort by rank, then run
        // the engine once" — same sequences, one bucket, no glue artifacts.
        let seqs = family(10, 50, 3);
        let run = run_distributed(&cluster(1), &seqs, &SadConfig::default());
        check_complete(&run.msa, &seqs);
        assert_eq!(run.bucket_sizes, vec![10]);
    }

    #[test]
    fn more_ranks_than_sequences() {
        let seqs = family(3, 40, 4);
        let run = run_distributed(&cluster(8), &seqs, &SadConfig::default());
        check_complete(&run.msa, &seqs);
    }

    #[test]
    fn single_sequence() {
        let seqs = family(1, 40, 5);
        let run = run_distributed(&cluster(4), &seqs, &SadConfig::default());
        assert_eq!(run.msa.num_rows(), 1);
    }

    #[test]
    fn fine_tune_beats_block_diagonal() {
        let seqs = family(20, 60, 6);
        let cfg_on = SadConfig::default();
        let cfg_off = SadConfig { fine_tune: false, ..Default::default() };
        let on = run_distributed(&cluster(4), &seqs, &cfg_on);
        let off = run_distributed(&cluster(4), &seqs, &cfg_off);
        check_complete(&on.msa, &seqs);
        check_complete(&off.msa, &seqs);
        let m = &cfg_on.matrix;
        let g = cfg_on.gaps;
        assert!(
            on.msa.sp_score(m, g) > off.msa.sp_score(m, g),
            "ancestor fine-tuning must improve the glued SP score"
        );
    }

    #[test]
    fn scaling_reduces_makespan() {
        // Large enough that the w² distance term dominates.
        let seqs = family(96, 60, 7);
        let t1 = run_distributed(&cluster(1), &seqs, &SadConfig::default()).makespan;
        let t4 = run_distributed(&cluster(4), &seqs, &SadConfig::default()).makespan;
        assert!(t4 < t1, "4 ranks ({t4:.4}s) should beat 1 rank ({t1:.4}s)");
    }

    #[test]
    fn phases_present_in_trace() {
        let seqs = family(12, 40, 8);
        let run = run_distributed(&cluster(2), &seqs, &SadConfig::default());
        let table = run.phase_table();
        for phase in [
            "1-local-kmer-rank",
            "2-local-sort",
            "3-sample-exchange",
            "5-globalized-rank",
            "6-redistribute",
            "8-local-align",
            "9-local-ancestor",
            "10-global-ancestor",
            "11-fine-tune",
            "12-glue",
        ] {
            assert!(table.contains(phase), "missing phase {phase}:\n{table}");
        }
    }

    #[test]
    fn load_imbalance_reported() {
        let seqs = family(64, 50, 9);
        let run = run_distributed(&cluster(4), &seqs, &SadConfig::default());
        let imb = run.load_imbalance();
        assert!(imb >= 1.0);
        // Regular sampling bound: max ≤ 2·N/p ⇒ imbalance ≤ 2 (+ slack for
        // duplicate ranks in small samples).
        assert!(imb <= 3.0, "imbalance {imb} suspiciously high");
    }

    #[test]
    fn clustal_engine_works_too() {
        let seqs = family(12, 40, 10);
        let cfg = SadConfig { engine: align::EngineChoice::Clustal, ..Default::default() };
        let run = run_distributed(&cluster(3), &seqs, &cfg);
        check_complete(&run.msa, &seqs);
    }
}
