//! Quality scoring for recovered *read* alignments — the Pyro-Align
//! counterpart of the PREFAB harness.
//!
//! A simulated [`ReadSet`] knows its own reference alignment, but only
//! sparsely: materialising the dense truth of 50k reads would cost
//! gigabytes. This module therefore scores a recovered MSA the way PREFAB
//! scores structure pairs — over *pairs* of reads. A deterministic sample
//! of truth-overlapping pairs is drawn, each pair's exact two-row
//! reference alignment is projected from the sparse truth
//! ([`ReadSet::true_pair`]), and the recovered rows are scored with the
//! standard `Q` measure. Cost is O(sample), independent of the read
//! count, so the same gate runs on a 60-read unit test and a 50k-read
//! release check.

use bioseq::compare::q_score_pair;
use bioseq::Msa;
use rosegen::ReadSet;
use std::collections::HashMap;

/// How far apart (in read index) two reads may be and still be tried as a
/// pair. Reads are emitted source-row by source-row, so near indices come
/// from the same region and overlap often; scanning a small window keeps
/// pair discovery linear in the read count.
const PAIR_WINDOW: usize = 8;

/// Pairs must share at least this many reference columns to be scored —
/// tiny overlaps make `Q` noisy.
const MIN_OVERLAP: usize = 10;

/// Mean `Q` of a recovered read alignment against the set's sparse truth,
/// over a deterministic sample of at most `max_pairs` overlapping read
/// pairs. Rows are matched to reads by identifier, so bucketing backends
/// that reorder rows score correctly.
///
/// Returns `None` when no scorable pair exists (no overlapping reads, or
/// reads missing from the MSA).
pub fn mean_read_pair_q(set: &ReadSet, msa: &Msa, max_pairs: usize) -> Option<f64> {
    let row_of: HashMap<&str, usize> =
        msa.ids().iter().enumerate().map(|(row, id)| (id.as_str(), row)).collect();
    let n = set.len();
    let mut sum = 0.0;
    let mut scored = 0usize;
    // Stride the pair scan so the sample spreads over the whole set
    // instead of exhausting `max_pairs` on its first reads.
    let stride = (n / max_pairs.max(1)).max(1);
    'scan: for i in (0..n).step_by(stride) {
        for j in i + 1..(i + 1 + PAIR_WINDOW).min(n) {
            if set.overlap(i, j) < MIN_OVERLAP {
                continue;
            }
            let (Some(&ra), Some(&rb)) =
                (row_of.get(set.reads[i].id.as_str()), row_of.get(set.reads[j].id.as_str()))
            else {
                continue;
            };
            let (ref_a, ref_b) = set.true_pair(i, j);
            if let Some(q) = q_score_pair(msa.row(ra), msa.row(rb), &ref_a, &ref_b) {
                sum += q;
                scored += 1;
                if scored >= max_pairs {
                    break 'scan;
                }
            }
            break; // one pair per anchor read keeps the sample spread out
        }
    }
    (scored > 0).then(|| sum / scored as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use align::{MsaEngine, MuscleLite};
    use rosegen::{Family, FamilyConfig, ReadSimConfig};

    fn read_set(error_rate: f64, total: usize) -> ReadSet {
        let fam = Family::generate(&FamilyConfig {
            n_seqs: 2,
            avg_len: 160,
            relatedness: 900.0,
            seed: 11,
            ..Default::default()
        });
        ReadSet::from_family(
            &fam,
            &ReadSimConfig {
                total_reads: Some(total),
                read_len: 60,
                len_sd: 5.0,
                error_rate,
                min_len: 20,
                seed: 11,
                ..Default::default()
            },
        )
    }

    #[test]
    fn truth_scores_itself_perfectly() {
        let set = read_set(0.02, 40);
        let q = mean_read_pair_q(&set, &set.reference_msa(), 50).expect("overlapping pairs");
        assert!((q - 1.0).abs() < 1e-12, "reference vs itself must be Q = 1, got {q}");
    }

    #[test]
    fn recovered_alignments_pass_the_gate_at_several_error_rates() {
        // The gate the CLI applies: aligning simulated reads must recover
        // most true residue pairs, degrading gracefully as the
        // homopolymer error rate grows.
        for (error_rate, floor) in [(0.0, 0.7), (0.02, 0.6), (0.05, 0.5)] {
            let set = read_set(error_rate, 30);
            let msa = MuscleLite::fast().align(&set.reads);
            let q = mean_read_pair_q(&set, &msa, 50)
                .unwrap_or_else(|| panic!("no scorable pairs at error rate {error_rate}"));
            assert!(q >= floor, "error rate {error_rate}: mean pair Q {q:.3} under floor {floor}");
        }
    }

    #[test]
    fn shuffled_rows_score_identically() {
        // Row order must not matter: ids, not positions, match reads.
        let set = read_set(0.01, 24);
        let msa = MuscleLite::fast().align(&set.reads);
        let rev_ids: Vec<String> = msa.ids().iter().rev().cloned().collect();
        let rev_rows: Vec<Vec<u8>> =
            (0..msa.num_rows()).rev().map(|i| msa.row(i).to_vec()).collect();
        let reversed = Msa::from_rows(rev_ids, rev_rows);
        assert_eq!(mean_read_pair_q(&set, &msa, 50), mean_read_pair_q(&set, &reversed, 50));
    }

    #[test]
    fn empty_overlap_yields_none() {
        // Two reads from far-apart regions of one row never overlap.
        let fam = Family::generate(&FamilyConfig {
            n_seqs: 1,
            avg_len: 400,
            seed: 3,
            ..Default::default()
        });
        let set = ReadSet::from_reference(
            &fam.reference,
            &ReadSimConfig {
                total_reads: Some(2),
                read_len: 20,
                len_sd: 0.0,
                error_rate: 0.0,
                min_len: 10,
                seed: 5,
                ..Default::default()
            },
        );
        if set.overlap(0, 1) < MIN_OVERLAP {
            assert_eq!(mean_read_pair_q(&set, &set.reference_msa(), 10), None);
        }
    }
}
