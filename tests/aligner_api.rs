//! The unified `Aligner` API contract: typed errors instead of panics,
//! `SadConfig::validate()` coverage, and cross-backend parity of the
//! single `RunReport` shape.

use sample_align_d::prelude::*;
use std::collections::BTreeSet;

fn family(n: usize, seed: u64) -> Vec<Sequence> {
    Family::generate(&FamilyConfig {
        n_seqs: n,
        avg_len: 60,
        relatedness: 650.0,
        seed,
        ..Default::default()
    })
    .seqs
}

fn all_backends(p: usize) -> Vec<Backend> {
    vec![
        Backend::Sequential,
        Backend::Rayon { threads: p },
        Backend::Distributed(VirtualCluster::new(p, CostModel::beowulf_2008())),
    ]
}

/// The observable row content of an alignment: (id, ungapped residues).
fn row_set(msa: &bioseq::Msa) -> BTreeSet<(String, String)> {
    (0..msa.num_rows()).map(|r| (msa.ids()[r].clone(), msa.ungapped(r).to_letters())).collect()
}

#[test]
fn validate_rejects_zero_kmer() {
    assert_eq!(SadConfig::default().with_kmer_k(0).validate(), Err(SadError::ZeroKmerLen));
    assert_eq!(SadConfig::default().validate(), Ok(()));
}

#[test]
fn validate_rejects_zero_samples_per_rank() {
    assert_eq!(
        SadConfig::default().with_samples_per_rank(Some(0)).validate(),
        Err(SadError::ZeroSampleCount)
    );
    assert_eq!(SadConfig::default().with_samples_per_rank(Some(1)).validate(), Ok(()));
}

#[test]
fn validate_for_rejects_kmer_not_shorter_than_shortest_sequence() {
    let mut seqs = family(4, 1);
    seqs.push(Sequence::from_codes("stub", vec![0, 1, 2, 3])); // length 4 < k = 6
    let err = SadConfig::default().validate_for(&seqs).unwrap_err();
    assert_eq!(err, SadError::KmerExceedsShortest { k: 6, shortest: 4 });
    // Shrinking k below the shortest sequence clears the check.
    assert_eq!(SadConfig::default().with_kmer_k(3).validate_for(&seqs), Ok(()));
}

#[test]
fn degenerate_input_is_a_typed_error_on_every_backend() {
    let one = family(1, 2);
    for backend in all_backends(4) {
        let aligner = Aligner::new(SadConfig::default()).backend(backend);
        assert_eq!(aligner.run(&[]), Err(SadError::TooFewSequences { found: 0 }));
        assert_eq!(aligner.run(&one), Err(SadError::TooFewSequences { found: 1 }));
    }
}

#[test]
fn invalid_configs_are_rejected_on_every_backend() {
    let seqs = family(8, 3);
    for backend in all_backends(2) {
        let zero_k =
            Aligner::new(SadConfig::default().with_kmer_k(0)).backend(backend.clone()).run(&seqs);
        assert_eq!(zero_k, Err(SadError::ZeroKmerLen), "{}", backend.name());
        let zero_s = Aligner::new(SadConfig::default().with_samples_per_rank(Some(0)))
            .backend(backend)
            .run(&seqs);
        assert_eq!(zero_s, Err(SadError::ZeroSampleCount));
    }
}

#[test]
fn cluster_size_mismatch_is_caught() {
    let seqs = family(8, 4);
    let cluster = VirtualCluster::new(4, CostModel::beowulf_2008());
    let err = Aligner::new(SadConfig::default())
        .backend(Backend::Distributed(cluster))
        .ranks(16)
        .run(&seqs);
    assert_eq!(err, Err(SadError::ClusterSizeMismatch { actual: 4, requested: 16 }));
}

#[test]
fn all_three_backends_yield_identical_row_sets() {
    // The satellite parity check: one input, three substrates, one row
    // set — through the new API only.
    let seqs = family(24, 5);
    let cfg = SadConfig::default();
    let reports: Vec<RunReport> = all_backends(4)
        .into_iter()
        .map(|b| Aligner::new(cfg.clone()).backend(b).run(&seqs).unwrap())
        .collect();
    let want = row_set(&reports[0].msa);
    assert_eq!(want.len(), seqs.len());
    for report in &reports {
        assert_eq!(row_set(&report.msa), want, "{} row set diverged", report.backend_name());
        assert_eq!(report.bucket_sizes.iter().sum::<usize>(), seqs.len());
        assert!(!report.work.is_zero());
        assert!(report.phase_table().contains("8-local-align"));
        assert!(report.phase_sequence().contains(&Phase::LocalAlign));
        // Every phase of every backend carries real wall-clock seconds.
        assert!(
            report.phases.iter().all(|p| p.seconds.is_some()),
            "{} lost wall-clock timing",
            report.backend_name()
        );
    }
    // The decomposed backends agree column-for-column, and only the
    // distributed one carries a virtual clock.
    assert_eq!(reports[1].msa, reports[2].msa);
    assert!(reports[2].makespan().is_some());
    assert!(reports[0].makespan().is_none() && reports[1].makespan().is_none());
}

#[test]
fn errors_display_cleanly_through_the_facade() {
    let err = Aligner::new(SadConfig::default()).run(&family(1, 6)).unwrap_err();
    assert_eq!(format!("{err}"), "need at least 2 sequences to align, got 1");
    let source: &dyn std::error::Error = &err;
    assert!(source.source().is_none());
}
