//! # rosegen — synthetic protein families with known true alignments
//!
//! The paper generates its scaling workloads with the *rose* sequence
//! generator (Stoye, Evers & Meyer 1998) and its quality/genome workloads
//! from PREFAB and the Methanosarcina acetivorans genome — none of which
//! can be redistributed here. This crate reimplements the generative
//! model:
//!
//! * a random ultrametric phylogeny ([`treegen`], Kingman coalescent
//!   shape);
//! * residue substitution along branches driven by BLOSUM62-derived
//!   conditional probabilities ([`mutation`]);
//! * affine-length insertions/deletions tracked through a global column
//!   registry, so every generated family carries its **true reference
//!   alignment** ([`family`]) — the property PREFAB-style Q scoring needs;
//! * a genome-like sampler ([`genome`]) producing phylogenetically diverse
//!   mixtures of families with the M. acetivorans ORF length statistics
//!   (average ≈ 316 aa) for the Fig. 6 experiment;
//! * a pyrosequencing read simulator ([`reads`]) fragmenting a family into
//!   short overlapping reads with homopolymer-biased indel errors — the
//!   Pyro-Align large-N workload, with per-read alignment truth.
//!
//! The *relatedness* knob reads backwards: **larger values mean more
//! divergent families**, not more related ones. It follows rose's
//! convention — expected substitutions per site `≈ relatedness / 500` —
//! so `100.0` is a tight family and `1500.0` barely-alignable sequences:
//!
//! ```
//! use rosegen::{Family, FamilyConfig};
//!
//! let base = FamilyConfig { n_seqs: 8, avg_len: 80, seed: 7, ..Default::default() };
//! let close = Family::generate(&FamilyConfig { relatedness: 100.0, ..base.clone() });
//! let far = Family::generate(&FamilyConfig { relatedness: 1500.0, ..base });
//! // Higher relatedness ⇒ lower pairwise identity.
//! assert!(close.reference.average_identity() > far.reference.average_identity());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod family;
pub mod genome;
pub mod mutation;
pub mod reads;
pub mod rng;
pub mod treegen;

pub use family::{Family, FamilyConfig};
pub use genome::{GenomeConfig, GenomeSample};
pub use reads::{ReadSet, ReadSimConfig};
