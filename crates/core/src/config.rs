//! Sample-Align-D configuration.

use align::EngineChoice;
use bioseq::{CompressedAlphabet, GapPenalties, RankTransform, SubstMatrix};
use serde::Serialize;

/// All knobs of the Sample-Align-D pipeline.
#[derive(Debug, Clone, Serialize)]
pub struct SadConfig {
    /// k-mer length for rank computation (paper/MUSCLE default 6).
    pub kmer_k: usize,
    /// Compressed alphabet for k-mer counting.
    pub alphabet: CompressedAlphabet,
    /// Transform from average k-mer measure to scalar rank.
    pub rank_transform: RankTransform,
    /// Samples contributed per processor (`k` in the paper; defaults to
    /// `p − 1` when `None`).
    pub samples_per_rank: Option<usize>,
    /// The sequential MSA engine run inside each processor.
    pub engine: EngineChoice,
    /// Run the ancestor-constrained fine-tuning + glue (step 8). Disabling
    /// it leaves the buckets block-diagonal — the ablation showing why the
    /// global ancestor matters.
    pub fine_tune: bool,
    /// Substitution matrix for ancestor alignment and fine-tuning.
    pub matrix: SubstMatrix,
    /// Gap penalties for ancestor alignment and fine-tuning.
    pub gaps: GapPenalties,
}

impl Default for SadConfig {
    fn default() -> Self {
        SadConfig {
            kmer_k: 6,
            alphabet: CompressedAlphabet::Dayhoff6,
            rank_transform: RankTransform::PaperLog,
            samples_per_rank: None,
            engine: EngineChoice::MuscleFast,
            fine_tune: true,
            matrix: SubstMatrix::blosum62(),
            gaps: GapPenalties::default(),
        }
    }
}

impl SadConfig {
    /// Effective sample count per rank for a cluster of `p`.
    pub fn samples_for(&self, p: usize) -> usize {
        self.samples_per_rank.unwrap_or_else(|| p.saturating_sub(1)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_samples_follow_paper() {
        let cfg = SadConfig::default();
        assert_eq!(cfg.samples_for(16), 15);
        assert_eq!(cfg.samples_for(1), 1); // never zero samples
    }

    #[test]
    fn explicit_sample_count_wins() {
        let cfg = SadConfig { samples_per_rank: Some(5), ..Default::default() };
        assert_eq!(cfg.samples_for(16), 5);
    }

    #[test]
    fn config_serialises() {
        // No serde format crate in the dependency set; assert the bound
        // compiles so downstream tooling can serialise configs.
        fn assert_serialize<T: serde::Serialize>(_: &T) {}
        assert_serialize(&SadConfig::default());
    }
}
