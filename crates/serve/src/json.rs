//! A minimal JSON value type with parser and writer.
//!
//! The wire protocol and the job journal are line-delimited JSON, but the
//! dependency set has no serde *format* crate (the vendored `serde` is a
//! marker-trait stand-in). This module is the small, fully-owned JSON
//! subset both sides share: objects, arrays, strings with escapes,
//! numbers, booleans and null. Object keys keep insertion order so encoded
//! lines are deterministic — the golden session transcript depends on it.

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (held as `f64`; the protocol's integers are small).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Look up a key in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialise to a single-line JSON string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse one JSON value from `text`, requiring that nothing but
    /// whitespace follows it. Nesting deeper than [`MAX_DEPTH`] is
    /// rejected (protocol lines come from untrusted peers; unbounded
    /// recursion would let `"[[[[…"` overflow the stack).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError { at: pos, reason: "trailing characters after value" });
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, what: u8, reason: &'static str) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&what) {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError { at: *pos, reason })
    }
}

/// Maximum container nesting [`Json::parse`] accepts. The protocol and
/// journal never nest more than a couple of levels; the bound exists so a
/// hostile line cannot recurse the connection thread off its stack.
pub const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    if depth >= MAX_DEPTH {
        return Err(JsonError { at: *pos, reason: "nesting too deep" });
    }
    match bytes.get(*pos) {
        None => Err(JsonError { at: *pos, reason: "unexpected end of input" }),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':', "expected ':' after object key")?;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(JsonError { at: *pos, reason: "expected ',' or '}'" }),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(JsonError { at: *pos, reason: "expected ',' or ']'" }),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, b"null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &[u8],
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(JsonError { at: *pos, reason: "invalid literal" })
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError { at: start, reason: "invalid number" })?;
    match text.parse::<f64>() {
        Ok(n) if n.is_finite() => Ok(Json::Num(n)),
        _ => Err(JsonError { at: start, reason: "invalid number" }),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"', "expected '\"'")?;
    let mut out = String::new();
    let mut chunk_start = *pos;
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError { at: *pos, reason: "unterminated string" }),
            Some(b'"') => {
                out.push_str(str_slice(bytes, chunk_start, *pos)?);
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                out.push_str(str_slice(bytes, chunk_start, *pos)?);
                *pos += 1;
                let escaped = match bytes.get(*pos) {
                    Some(b'"') => '"',
                    Some(b'\\') => '\\',
                    Some(b'/') => '/',
                    Some(b'n') => '\n',
                    Some(b'r') => '\r',
                    Some(b't') => '\t',
                    Some(b'b') => '\u{8}',
                    Some(b'f') => '\u{c}',
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        match code {
                            // A high surrogate must be immediately followed
                            // by a `\uDC00`–`\uDFFF` low surrogate; standard
                            // encoders emit non-BMP characters this way.
                            0xD800..=0xDBFF => {
                                if bytes.get(*pos + 1) != Some(&b'\\')
                                    || bytes.get(*pos + 2) != Some(&b'u')
                                {
                                    return Err(JsonError {
                                        at: *pos,
                                        reason: "unpaired high surrogate",
                                    });
                                }
                                let low = parse_hex4(bytes, *pos + 3)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(JsonError {
                                        at: *pos,
                                        reason: "unpaired high surrogate",
                                    });
                                }
                                *pos += 6;
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or(JsonError { at: *pos, reason: "bad \\u escape" })?
                            }
                            0xDC00..=0xDFFF => {
                                return Err(JsonError {
                                    at: *pos,
                                    reason: "unpaired low surrogate",
                                })
                            }
                            code => char::from_u32(code)
                                .ok_or(JsonError { at: *pos, reason: "bad \\u escape" })?,
                        }
                    }
                    _ => return Err(JsonError { at: *pos, reason: "unknown escape" }),
                };
                out.push(escaped);
                *pos += 1;
                chunk_start = *pos;
            }
            Some(_) => *pos += 1,
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, JsonError> {
    let hex = bytes.get(at..at + 4).ok_or(JsonError { at, reason: "truncated \\u escape" })?;
    let hex = std::str::from_utf8(hex).map_err(|_| JsonError { at, reason: "bad \\u escape" })?;
    u32::from_str_radix(hex, 16).map_err(|_| JsonError { at, reason: "bad \\u escape" })
}

fn str_slice(bytes: &[u8], start: usize, end: usize) -> Result<&str, JsonError> {
    std::str::from_utf8(&bytes[start..end])
        .map_err(|_| JsonError { at: start, reason: "invalid UTF-8 in string" })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_every_value_kind() {
        let value = Json::obj([
            ("cmd", Json::str("submit")),
            ("priority", Json::num(3)),
            ("seconds", Json::Num(0.25)),
            ("negative", Json::Num(-7.0)),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            ("items", Json::Arr(vec![Json::num(1), Json::str("two")])),
        ]);
        let text = value.encode();
        assert_eq!(Json::parse(&text), Ok(value));
        assert!(text.starts_with("{\"cmd\":\"submit\""), "keys keep insertion order: {text}");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let gnarly = "line1\nline2\t\"quoted\" back\\slash \u{1}control >seq";
        let encoded = Json::Str(gnarly.into()).encode();
        assert!(!encoded.contains('\n'), "payloads stay on one line: {encoded}");
        assert_eq!(Json::parse(&encoded), Ok(Json::Str(gnarly.into())));
        // FASTA payloads survive a protocol round trip verbatim.
        let fasta = ">a desc\nMKVL-AW\n>b\nMK.VLAW\n";
        let wire = Json::obj([("fasta", Json::str(fasta))]).encode();
        let back = Json::parse(&wire).unwrap();
        assert_eq!(back.get("fasta").unwrap().as_str(), Some(fasta));
    }

    #[test]
    fn accessors_are_typed() {
        let v = Json::parse(r#"{"n":4,"f":1.5,"s":"x","b":false,"i":-2}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("n").unwrap().as_i64(), Some(4));
        assert_eq!(v.get("i").unwrap().as_i64(), Some(-2));
        assert_eq!(v.get("i").unwrap().as_u64(), None);
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("n"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in
            ["", "{", "{\"a\"", "{\"a\":}", "[1,", "\"unterminated", "{\"a\":1}x", "nul", "1.2.3"]
        {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
        // A truncated journal line is exactly this shape.
        assert!(Json::parse(r#"{"entry":"finished","job":"fam_a","dig"#).is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(Json::parse(r#""Aé""#), Ok(Json::Str("Aé".into())));
        assert!(Json::parse(r#""\u00g1""#).is_err());
    }

    #[test]
    fn surrogate_pairs_decode_to_one_character() {
        // What `json.dumps("😀")` (ensure_ascii) puts on the wire.
        assert_eq!(Json::parse(r#""😀""#), Ok(Json::Str("😀".into())));
        assert_eq!(Json::parse(r#""a😀b""#), Ok(Json::Str("a😀b".into())));
        // Non-BMP characters survive an encode→parse round trip whether
        // sent raw or escaped.
        let raw = Json::Str("header 𝛼😀".into());
        assert_eq!(Json::parse(&raw.encode()), Ok(raw));
    }

    #[test]
    fn unpaired_surrogates_are_rejected() {
        for bad in [
            r#""\ud83d""#,       // lone high surrogate
            r#""\ud83dx""#,      // high surrogate, then a plain char
            r#""\ud83d\n""#,     // high surrogate, then a non-\u escape
            r#""\ud83d\ud83d""#, // high followed by another high
            r#""\ude00""#,       // lone low surrogate
            r#""\ud83d\ude0""#,  // truncated low escape
        ] {
            assert!(Json::parse(bad).is_err(), "{bad} must not parse");
        }
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // Within the bound: fine.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH - 1), "]".repeat(MAX_DEPTH - 1));
        assert!(Json::parse(&ok).is_ok());
        // One past it: a clean error, not deeper recursion.
        let deep = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert_eq!(Json::parse(&deep).unwrap_err().reason, "nesting too deep");
        // The attack shape from untrusted input: a huge run of openers
        // must error out instead of overflowing the stack.
        assert!(Json::parse(&"[".repeat(100_000)).is_err());
        assert!(Json::parse(&"{\"k\":".repeat(100_000)).is_err());
    }
}
