//! Offline stand-in for `crossbeam`: just the unbounded MPSC channel
//! surface `vcluster` uses, backed by `std::sync::mpsc`.
//!
//! The virtual cluster wires one dedicated channel per (sender, receiver)
//! rank pair, so multi-consumer cloning and `select!` — the features that
//! would actually require crossbeam — are never needed here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Channel types mirroring `crossbeam::channel`.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender};

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn fifo_across_threads() {
        let (tx, rx) = unbounded();
        std::thread::spawn(move || {
            for i in 0..100u32 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn hangup_is_an_error() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
