//! A miniature of the paper's Fig. 4/Fig. 5: execution time and speedup
//! of Sample-Align-D as the (virtual) cluster grows.
//!
//! Run with: `cargo run --release --example cluster_scaling [n_seqs]`

use sample_align_d::prelude::*;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(400);
    let family = Family::generate(&FamilyConfig {
        n_seqs: n,
        avg_len: 300,
        relatedness: 800.0,
        seed: 4,
        ..Default::default()
    });
    println!("N = {n} rose sequences, avg length 300, relatedness 800\n");
    println!(
        "{:>4}  {:>12}  {:>10}  {:>10}  {:>14}",
        "p", "time (s)", "speedup", "efficiency", "max bucket"
    );
    let cfg = SadConfig::default();
    let mut t1 = None;
    for p in [1usize, 2, 4, 8, 12, 16] {
        let cluster = VirtualCluster::new(p, CostModel::beowulf_2008());
        let report = Aligner::new(cfg.clone())
            .backend(Backend::Distributed(cluster))
            .run(&family.seqs)
            .expect("valid input");
        let t = report.makespan().expect("distributed runs have a makespan");
        let t1v = *t1.get_or_insert(t);
        let speedup = t1v / t;
        println!(
            "{p:>4}  {t:>12.3}  {speedup:>10.2}  {:>10.2}  {:>14}",
            speedup / p as f64,
            report.bucket_sizes.iter().max().unwrap()
        );
    }
    println!(
        "\nefficiency > 1 means super-linear speedup — the paper's headline\n\
         effect, caused by the O((N/p)^2) distance term inside each bucket."
    );
}
