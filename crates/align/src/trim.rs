//! MaxAlign-style alignment-area optimization.
//!
//! The *area* of an alignment is `retained rows × gap-free columns`: the
//! amount of unambiguously aligned signal a downstream consumer (a
//! phylogeny program, a profile HMM, a column-wise statistic) actually
//! gets to use. Gappy alignments — and Sample-Align-D's glue seams and
//! fragment-read merges inject gap columns by construction — can often
//! trade a few pathological rows for many recovered columns, increasing
//! the area. This module finds such trades:
//!
//! * [`gap_masks`] packs each row's gap positions into `u64` words so a
//!   candidate exclusion is scored with a handful of `AND` + `count_ones`
//!   sweeps instead of a column scan;
//! * [`trim_msa`] runs a greedy exclusion loop with pairwise/triple
//!   *synergy lookahead* (dropping two rows together can unlock columns
//!   neither unlocks alone), optionally refined by a bounded
//!   branch-and-bound pass ([`TrimConfig::branch_bound`]);
//! * the result ([`TrimOutcome`]) never has a smaller area than its input:
//!   dropping nothing is always a candidate, and only strictly improving
//!   moves are taken.
//!
//! Retained rows are byte-identical to their input rows except that
//! columns gapped in *every* retained row are removed, so the output is
//! always a valid [`Msa`].

use bioseq::{Msa, Work, GAP_CODE};
use serde::{Deserialize, Serialize};

/// Knobs for the trim stage.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrimConfig {
    /// Upper bound on the number of rows the optimizer may drop.
    /// `None` allows up to `rows - 1` (at least one row is always kept).
    pub max_dropped: Option<usize>,
    /// After the greedy pass, run a bounded branch-and-bound refinement
    /// seeded with the greedy solution (never returns a smaller area).
    pub branch_bound: bool,
}

/// One excluded row, in the order the optimizer dropped it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DroppedRow {
    /// Row index in the *input* alignment.
    pub index: usize,
    /// Sequence identifier of the dropped row.
    pub id: String,
    /// Marginal area change from this single drop. Negative values can
    /// appear inside a synergy move (the pair or triple as a whole gains).
    pub area_gain: i64,
}

/// The result of [`trim_msa`].
#[derive(Debug, Clone)]
pub struct TrimOutcome {
    /// The trimmed alignment: retained rows in input order, with columns
    /// that became all-gap removed.
    pub msa: Msa,
    /// Excluded rows in drop order.
    pub dropped: Vec<DroppedRow>,
    /// `rows × gap-free columns` of the input.
    pub area_before: u64,
    /// `rows × gap-free columns` of the output (never less than
    /// [`area_before`](Self::area_before)).
    pub area_after: u64,
    /// Gap-free columns of the input.
    pub free_cols_before: usize,
    /// Gap-free columns of the output.
    pub free_cols_after: usize,
    /// Mask/popcount work performed, for the cost model.
    pub work: Work,
}

impl TrimOutcome {
    /// Number of rows excluded.
    pub fn rows_dropped(&self) -> usize {
        self.dropped.len()
    }

    /// Gap-free columns gained by the exclusions.
    pub fn cols_gained(&self) -> usize {
        self.free_cols_after - self.free_cols_before
    }
}

/// `(rows × gap-free columns, gap-free columns)` of an alignment.
pub fn alignment_area(msa: &Msa) -> (u64, usize) {
    let free = (0..msa.num_cols()).filter(|&c| msa.rows().iter().all(|r| r[c] != GAP_CODE)).count();
    (msa.num_rows() as u64 * free as u64, free)
}

/// Bit-pack each row's gap positions: bit `c` of word `c / 64` is set iff
/// the row has a gap in column `c`. Returns the masks and the word count.
pub fn gap_masks(msa: &Msa) -> (Vec<Vec<u64>>, usize) {
    let cols = msa.num_cols();
    let words = cols.div_ceil(64);
    let masks = msa
        .rows()
        .iter()
        .map(|row| {
            let mut mask = vec![0u64; words];
            for (c, &code) in row.iter().enumerate() {
                if code == GAP_CODE {
                    mask[c / 64] |= 1u64 << (c % 64);
                }
            }
            mask
        })
        .collect();
    (masks, words)
}

/// Popcount of `a & b`.
fn pop2(a: &[u64], b: &[u64]) -> u32 {
    a.iter().zip(b).map(|(&x, &y)| (x & y).count_ones()).sum()
}

/// Popcount of `a & (b | c)`.
fn pop_or2(a: &[u64], b: &[u64], c: &[u64]) -> u32 {
    a.iter().zip(b.iter().zip(c)).map(|(&x, (&y, &z))| (x & (y | z)).count_ones()).sum()
}

/// Popcount of `a & b & c`.
fn pop3(a: &[u64], b: &[u64], c: &[u64]) -> u32 {
    a.iter().zip(b.iter().zip(c)).map(|(&x, (&y, &z))| (x & y & z).count_ones()).sum()
}

/// Per-column gap counts over the rows still retained.
struct GapCounts {
    counts: Vec<u32>,
}

impl GapCounts {
    fn new(msa: &Msa) -> Self {
        let cols = msa.num_cols();
        let mut counts = vec![0u32; cols];
        for row in msa.rows() {
            for (c, &code) in row.iter().enumerate() {
                if code == GAP_CODE {
                    counts[c] += 1;
                }
            }
        }
        GapCounts { counts }
    }

    /// Remove one row's gaps (the row was just dropped).
    fn drop_row(&mut self, mask: &[u64]) {
        for (w, &word) in mask.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let c = w * 64 + bits.trailing_zeros() as usize;
                self.counts[c] -= 1;
                bits &= bits - 1;
            }
        }
    }

    fn free_cols(&self) -> usize {
        self.counts.iter().filter(|&&n| n == 0).count()
    }

    /// Bit masks of the columns whose retained gap count is exactly 1, 2
    /// and 3 — the columns a 1-, 2- or 3-row drop can possibly free.
    fn exact_masks(&self, words: usize) -> [Vec<u64>; 3] {
        let mut exact = [vec![0u64; words], vec![0u64; words], vec![0u64; words]];
        for (c, &n) in self.counts.iter().enumerate() {
            if (1..=3).contains(&n) {
                exact[n as usize - 1][c / 64] |= 1u64 << (c % 64);
            }
        }
        exact
    }
}

/// Candidate pool caps: synergy lookahead scans all pairs while the
/// retained set is small, and falls back to the most gap-blocked rows on
/// large inputs so the loop stays near-quadratic.
const PAIR_POOL: usize = 256;
const TRIPLE_POOL: usize = 12;

/// The best move found by one lookahead sweep.
struct Move {
    rows: Vec<usize>,
    gain: i64,
}

/// Trim an alignment: greedily exclude rows (with pair/triple synergy
/// lookahead, and optional branch-and-bound refinement) to maximize
/// `retained rows × gap-free columns`. The reported area never decreases
/// relative to the input.
pub fn trim_msa(msa: &Msa, cfg: &TrimConfig) -> TrimOutcome {
    let n = msa.num_rows();
    let (masks, words) = gap_masks(msa);
    let budget = cfg.max_dropped.unwrap_or(n.saturating_sub(1)).min(n.saturating_sub(1));
    let mut work = Work::ZERO;
    work.seq_bytes += (n * msa.num_cols()) as u64;

    let mut drop_order = greedy(msa, &masks, words, budget, &mut work);

    if cfg.branch_bound {
        let refined = branch_bound(msa, &masks, budget, &drop_order, &mut work);
        if drop_set_area(msa, &masks, &refined) > drop_set_area(msa, &masks, &drop_order) {
            drop_order = refined;
        }
    }

    assemble(msa, &masks, drop_order, work)
}

/// Area after dropping exactly the rows in `dropped` (any order).
fn drop_set_area(msa: &Msa, masks: &[Vec<u64>], dropped: &[usize]) -> u64 {
    let mut counts = GapCounts::new(msa);
    for &i in dropped {
        counts.drop_row(&masks[i]);
    }
    (msa.num_rows() - dropped.len()) as u64 * counts.free_cols() as u64
}

/// The greedy exclusion loop. Returns the drop order.
fn greedy(
    msa: &Msa,
    masks: &[Vec<u64>],
    words: usize,
    budget: usize,
    work: &mut Work,
) -> Vec<usize> {
    let n = msa.num_rows();
    let mut retained: Vec<usize> = (0..n).collect();
    let mut counts = GapCounts::new(msa);
    let mut drop_order: Vec<usize> = Vec::new();

    while drop_order.len() < budget && retained.len() > 1 {
        let r = retained.len() as i64;
        let free = counts.free_cols() as i64;
        let area = r * free;
        let exact = counts.exact_masks(words);
        let left = budget - drop_order.len();

        let mut best: Option<Move> = None;
        let mut consider = |rows: Vec<usize>, gain: i64| {
            let better = match &best {
                None => gain > 0,
                // Strict improvement only; prefer dropping fewer rows for
                // the same gain, then the earliest indices (determinism).
                Some(b) => {
                    gain > b.gain
                        || (gain == b.gain && (rows.len(), &rows) < (b.rows.len(), &b.rows))
                }
            };
            if better {
                best = Some(Move { rows, gain });
            }
        };

        // Singles: a drop frees exactly the columns where this row holds
        // the only retained gap.
        let mut single_gain: Vec<(usize, u32)> = Vec::with_capacity(retained.len());
        for &i in &retained {
            let freed = pop2(&exact[0], &masks[i]);
            work.col_ops += words as u64;
            single_gain.push((i, freed));
            consider(vec![i], (r - 1) * (free + i64::from(freed)) - area);
        }

        // Pairs: columns where the pair holds the only one or two gaps.
        if left >= 2 && retained.len() > 2 {
            let pool = pair_pool(&retained, &single_gain, masks, &exact, PAIR_POOL, work);
            for (pi, &i) in pool.iter().enumerate() {
                for &j in &pool[pi + 1..] {
                    let freed = pop_or2(&exact[0], &masks[i], &masks[j])
                        + pop3(&exact[1], &masks[i], &masks[j]);
                    work.col_ops += 3 * words as u64;
                    consider(two_sorted(i, j), (r - 2) * (free + i64::from(freed)) - area);
                }
            }
        }

        // Triples, over the most promising handful of rows.
        if left >= 3 && retained.len() > 3 {
            let pool = pair_pool(&retained, &single_gain, masks, &exact, TRIPLE_POOL, work);
            for (pi, &i) in pool.iter().enumerate() {
                for (pj, &j) in pool[pi + 1..].iter().enumerate() {
                    for &k in &pool[pi + 1 + pj + 1..] {
                        let freed = triple_freed(&exact, masks, i, j, k);
                        work.col_ops += 7 * words as u64;
                        consider(three_sorted(i, j, k), (r - 3) * (free + i64::from(freed)) - area);
                    }
                }
            }
        }

        let Some(mv) = best else { break };
        if mv.gain <= 0 {
            break;
        }
        for &i in &mv.rows {
            counts.drop_row(&masks[i]);
            retained.retain(|&x| x != i);
            drop_order.push(i);
        }
    }
    drop_order
}

/// The candidate pool for synergy lookahead: everything while small,
/// otherwise the `cap` rows blocking the most nearly-free columns.
fn pair_pool(
    retained: &[usize],
    single_gain: &[(usize, u32)],
    masks: &[Vec<u64>],
    exact: &[Vec<u64>; 3],
    cap: usize,
    work: &mut Work,
) -> Vec<usize> {
    if retained.len() <= cap {
        return retained.to_vec();
    }
    // Score by gaps held in columns with ≤ 3 retained gaps — the columns
    // any small synergy move could free.
    let mut scored: Vec<(u32, usize)> = single_gain
        .iter()
        .map(|&(i, s1)| {
            work.col_ops += 2 * exact[1].len() as u64;
            (s1 + pop2(&exact[1], &masks[i]) + pop2(&exact[2], &masks[i]), i)
        })
        .collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut pool: Vec<usize> = scored.into_iter().take(cap).map(|(_, i)| i).collect();
    pool.sort_unstable();
    pool
}

/// Columns freed by dropping `{i, j, k}` together: exactly-1 columns where
/// any of them holds the gap, exactly-2 columns where two of them hold
/// both, and exactly-3 columns where they hold all three.
fn triple_freed(exact: &[Vec<u64>; 3], masks: &[Vec<u64>], i: usize, j: usize, k: usize) -> u32 {
    let (gi, gj, gk) = (&masks[i], &masks[j], &masks[k]);
    let mut freed = 0u32;
    for w in 0..gi.len() {
        let (a, b, c) = (gi[w], gj[w], gk[w]);
        let any = a | b | c;
        let two = (a & b) | (a & c) | (b & c);
        let all = a & b & c;
        freed += (exact[0][w] & any).count_ones()
            + (exact[1][w] & two).count_ones()
            + (exact[2][w] & all).count_ones();
    }
    freed
}

fn two_sorted(i: usize, j: usize) -> Vec<usize> {
    let mut v = vec![i, j];
    v.sort_unstable();
    v
}

fn three_sorted(i: usize, j: usize, k: usize) -> Vec<usize> {
    let mut v = vec![i, j, k];
    v.sort_unstable();
    v
}

/// Bounded branch-and-bound over drop subsets, seeded with (and never
/// worse than) the greedy solution. Rows are considered in descending
/// gap-count order; the optimistic bound assumes `e` further drops free
/// every unblocked column with ≤ `e` remaining gaps.
fn branch_bound(
    msa: &Msa,
    masks: &[Vec<u64>],
    budget: usize,
    seed: &[usize],
    work: &mut Work,
) -> Vec<usize> {
    const NODE_BUDGET: u64 = 100_000;
    let n = msa.num_rows();
    let mut order: Vec<usize> = (0..n).collect();
    let gaps_of = |i: usize| masks[i].iter().map(|w| w.count_ones()).sum::<u32>();
    order.sort_by(|&a, &b| gaps_of(b).cmp(&gaps_of(a)).then(a.cmp(&b)));

    struct Search<'a> {
        msa: &'a Msa,
        masks: &'a [Vec<u64>],
        order: &'a [usize],
        budget: usize,
        counts: GapCounts,
        /// Columns gapped in a row already committed as kept.
        blocked: Vec<bool>,
        dropped: Vec<usize>,
        best_area: u64,
        best_set: Vec<usize>,
        nodes: u64,
        work_cols: u64,
    }

    impl Search<'_> {
        fn area_now(&self) -> u64 {
            (self.msa.num_rows() - self.dropped.len()) as u64 * self.counts.free_cols() as u64
        }

        /// Optimistic area bound from this node.
        fn bound(&mut self) -> u64 {
            let r = self.msa.num_rows() - self.dropped.len();
            let left = (self.budget - self.dropped.len()).min(r.saturating_sub(1));
            // hist[g] = unblocked columns with exactly g remaining gaps.
            let mut hist = vec![0u64; left + 1];
            for (c, &g) in self.counts.counts.iter().enumerate() {
                let g = g as usize;
                if g <= left && !self.blocked[c] {
                    hist[g] += 1;
                }
            }
            self.work_cols += self.counts.counts.len() as u64;
            let mut best = 0u64;
            let mut freeable = hist[0];
            for (e, &h) in hist.iter().enumerate() {
                if e > 0 {
                    freeable += h;
                }
                best = best.max((r - e) as u64 * freeable);
            }
            best
        }

        fn recurse(&mut self, pos: usize) {
            self.nodes += 1;
            let area = self.area_now();
            if area > self.best_area {
                self.best_area = area;
                self.best_set = self.dropped.clone();
            }
            if self.nodes >= NODE_BUDGET || pos == self.order.len() {
                return;
            }
            if self.bound() <= self.best_area {
                return;
            }
            let i = self.order[pos];
            // Drop branch first: improvements tighten the bound early.
            let r = self.msa.num_rows() - self.dropped.len();
            if self.dropped.len() < self.budget && r > 1 {
                self.counts.drop_row(&self.masks[i]);
                self.dropped.push(i);
                self.recurse(pos + 1);
                self.dropped.pop();
                // Restore the counts.
                for (w, &word) in self.masks[i].iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let c = w * 64 + bits.trailing_zeros() as usize;
                        self.counts.counts[c] += 1;
                        bits &= bits - 1;
                    }
                }
            }
            // Keep branch: columns this row gaps can never free up.
            let newly: Vec<usize> =
                gap_columns(&self.masks[i]).into_iter().filter(|&c| !self.blocked[c]).collect();
            for &c in &newly {
                self.blocked[c] = true;
            }
            self.recurse(pos + 1);
            for &c in &newly {
                self.blocked[c] = false;
            }
        }
    }

    let mut search = Search {
        msa,
        masks,
        order: &order,
        budget,
        counts: GapCounts::new(msa),
        blocked: vec![false; msa.num_cols()],
        dropped: Vec::new(),
        best_area: drop_set_area(msa, masks, seed),
        best_set: seed.to_vec(),
        nodes: 0,
        work_cols: 0,
    };
    search.recurse(0);
    work.col_ops += search.work_cols;
    let mut best = search.best_set;
    best.sort_unstable();
    best
}

/// Column indices set in a gap mask.
fn gap_columns(mask: &[u64]) -> Vec<usize> {
    let mut cols = Vec::new();
    for (w, &word) in mask.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            cols.push(w * 64 + bits.trailing_zeros() as usize);
            bits &= bits - 1;
        }
    }
    cols
}

/// Build the final outcome from a drop order: marginal per-row gains, the
/// retained sub-alignment with all-gap columns removed, and the area
/// bookkeeping.
fn assemble(msa: &Msa, masks: &[Vec<u64>], drop_order: Vec<usize>, work: Work) -> TrimOutcome {
    let n = msa.num_rows();
    let mut counts = GapCounts::new(msa);
    let free_before = counts.free_cols();
    let area_before = n as u64 * free_before as u64;

    let mut dropped = Vec::with_capacity(drop_order.len());
    let mut area = area_before as i64;
    for (step, &i) in drop_order.iter().enumerate() {
        counts.drop_row(&masks[i]);
        let now = (n - step - 1) as i64 * counts.free_cols() as i64;
        dropped.push(DroppedRow { index: i, id: msa.ids()[i].clone(), area_gain: now - area });
        area = now;
    }
    let free_after = counts.free_cols();
    let area_after = (n - drop_order.len()) as u64 * free_after as u64;
    debug_assert!(area_after >= area_before, "trim must never lose area");

    let keep: Vec<usize> = (0..n).filter(|i| !drop_order.contains(i)).collect();
    let ids: Vec<String> = keep.iter().map(|&i| msa.ids()[i].clone()).collect();
    let rows: Vec<Vec<u8>> = keep.iter().map(|&i| msa.row(i).to_vec()).collect();
    let mut out = Msa::from_rows(ids, rows);
    out.drop_all_gap_columns();

    TrimOutcome {
        msa: out,
        dropped,
        area_before,
        area_after,
        free_cols_before: free_before,
        free_cols_after: free_after,
        work,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioseq::fasta;

    fn msa(text: &str) -> Msa {
        fasta::parse_alignment(text).unwrap()
    }

    #[test]
    fn area_of_gapless_alignment() {
        let m = msa(">a\nMKVL\n>b\nMKIL\n");
        let (area, free) = alignment_area(&m);
        assert_eq!((area, free), (8, 4));
    }

    #[test]
    fn gap_masks_mark_gaps() {
        let m = msa(">a\nM-VL\n>b\n-KIL\n");
        let (masks, words) = gap_masks(&m);
        assert_eq!(words, 1);
        assert_eq!(masks[0][0], 0b0010);
        assert_eq!(masks[1][0], 0b0001);
    }

    #[test]
    fn gapless_input_is_untouched() {
        let m = msa(">a\nMKVL\n>b\nMKIL\n>c\nMKVL\n");
        let out = trim_msa(&m, &TrimConfig::default());
        assert_eq!(out.msa, m);
        assert!(out.dropped.is_empty());
        assert_eq!(out.area_before, out.area_after);
    }

    #[test]
    fn one_gappy_row_is_dropped() {
        // Dropping `c` takes the area from 4*2=8 to 3*6=18.
        let m = msa(">a\nMKVLAW\n>b\nMKILAW\n>d\nMKVLAW\n>c\n--VL--\n");
        let out = trim_msa(&m, &TrimConfig::default());
        assert_eq!(out.rows_dropped(), 1);
        assert_eq!(out.dropped[0].id, "c");
        assert_eq!(out.area_before, 8);
        assert_eq!(out.area_after, 18);
        assert_eq!(out.cols_gained(), 4);
        assert!(out.msa.validate().is_ok());
    }

    #[test]
    fn max_dropped_caps_the_exclusions() {
        let m = msa(">a\nMKVLAW\n>b\nMKILAW\n>d\nMKVLAW\n>c\n--VL--\n>e\nMK--AW\n");
        let unlimited = trim_msa(&m, &TrimConfig::default());
        assert!(unlimited.rows_dropped() >= 2);
        let capped = trim_msa(&m, &TrimConfig { max_dropped: Some(1), ..Default::default() });
        assert_eq!(capped.rows_dropped(), 1);
        assert!(capped.area_after >= capped.area_before);
    }

    #[test]
    fn pair_synergy_is_found() {
        // `c` and `d` gap the same four columns, so every one of those
        // columns carries two retained gaps: no single drop frees
        // anything (gain 3×2−8 < 0), but dropping the pair frees all
        // four. Area: 4 rows × 2 free = 8 → 2 rows × 6 free = 12.
        let m = msa(">a\nMKVLAW\n>b\nMKILAW\n>c\n--VL--\n>d\n--KL--\n");
        let single_best = trim_msa(&m, &TrimConfig { max_dropped: Some(1), ..Default::default() });
        assert_eq!(single_best.rows_dropped(), 0, "no single drop should pay off");
        let out = trim_msa(&m, &TrimConfig::default());
        assert_eq!(out.rows_dropped(), 2);
        assert_eq!(out.area_after, 12);
        let ids: Vec<&str> = out.dropped.iter().map(|d| d.id.as_str()).collect();
        assert_eq!(ids, ["c", "d"]);
    }

    #[test]
    fn marginal_gains_sum_to_total() {
        let m = msa(">a\nMKVLAW\n>b\nMKILAW\n>c\n--VL--\n>d\n--KL--\n");
        let out = trim_msa(&m, &TrimConfig::default());
        let total: i64 = out.dropped.iter().map(|d| d.area_gain).sum();
        assert_eq!(total, out.area_after as i64 - out.area_before as i64);
    }

    #[test]
    fn branch_bound_never_loses_to_greedy() {
        let m = msa(">a\nMK-LAW-K\n>b\nMKILAW-K\n>c\n--VLAWQK\n>d\nMKVL--QK\n>e\nM-VLAWQ-\n");
        let greedy = trim_msa(&m, &TrimConfig::default());
        let bb = trim_msa(&m, &TrimConfig { branch_bound: true, ..Default::default() });
        assert!(bb.area_after >= greedy.area_after);
        assert!(bb.msa.validate().is_ok());
    }

    #[test]
    fn retained_rows_are_subsequences() {
        let m = msa(">a\nMK-LAW\n>b\nMKILAW\n>c\n--VL--\n");
        let out = trim_msa(&m, &TrimConfig::default());
        for (k, id) in out.msa.ids().iter().enumerate() {
            let i = m.ids().iter().position(|x| x == id).unwrap();
            let orig: Vec<u8> = m.row(i).iter().copied().filter(|&c| c != GAP_CODE).collect();
            let kept: Vec<u8> = out.msa.row(k).iter().copied().filter(|&c| c != GAP_CODE).collect();
            assert_eq!(orig, kept, "row {id} lost residues");
        }
    }

    #[test]
    fn single_row_alignment_keeps_its_residues() {
        // A lone row's gap column is all-gap by definition, so the output
        // normalizes it away; the area (4 residue columns) is unchanged.
        let m = msa(">a\nMK-VL\n");
        let out = trim_msa(&m, &TrimConfig { branch_bound: true, ..Default::default() });
        assert!(out.dropped.is_empty());
        assert_eq!(out.msa, msa(">a\nMKVL\n"));
        assert_eq!(out.area_before, 4);
        assert_eq!(out.area_after, 4);
    }
}
