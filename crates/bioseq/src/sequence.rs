//! Owned, validated protein sequences.

use crate::alphabet::{char_to_code, code_to_char, GAP_CODE, X_CODE};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An ungapped protein sequence with an identifier.
///
/// Residues are stored as codes `0..=20` (see [`crate::alphabet`]); gaps are
/// *not* representable here — gapped rows live in [`crate::msa::Msa`].
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Sequence {
    /// FASTA-style identifier (without the leading `>`).
    pub id: String,
    residues: Vec<u8>,
}

/// Error produced when parsing sequence text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SequenceError {
    /// A character was not a valid residue letter.
    InvalidResidue {
        /// The offending character.
        ch: char,
        /// Byte position within the residue text.
        pos: usize,
    },
    /// A gap character appeared in an ungapped sequence context.
    UnexpectedGap {
        /// Byte position within the residue text.
        pos: usize,
    },
    /// The sequence had no residues.
    Empty,
}

impl fmt::Display for SequenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SequenceError::InvalidResidue { ch, pos } => {
                write!(f, "invalid residue character {ch:?} at position {pos}")
            }
            SequenceError::UnexpectedGap { pos } => {
                write!(f, "unexpected gap character at position {pos}")
            }
            SequenceError::Empty => write!(f, "empty sequence"),
        }
    }
}

impl std::error::Error for SequenceError {}

impl Sequence {
    /// Build a sequence from residue text such as `"MKVL..."`.
    ///
    /// Whitespace is ignored; gap characters are rejected.
    pub fn from_str(id: impl Into<String>, text: &str) -> Result<Self, SequenceError> {
        let mut residues = Vec::with_capacity(text.len());
        for (pos, ch) in text.chars().enumerate() {
            if ch.is_whitespace() {
                continue;
            }
            match char_to_code(ch) {
                Some(GAP_CODE) => return Err(SequenceError::UnexpectedGap { pos }),
                Some(code) => residues.push(code),
                None => return Err(SequenceError::InvalidResidue { ch, pos }),
            }
        }
        if residues.is_empty() {
            return Err(SequenceError::Empty);
        }
        Ok(Sequence { id: id.into(), residues })
    }

    /// Build a sequence from pre-validated residue codes.
    ///
    /// # Panics
    /// Panics if any code is a gap or out of range, or if `codes` is empty.
    pub fn from_codes(id: impl Into<String>, codes: Vec<u8>) -> Self {
        assert!(!codes.is_empty(), "sequence must be non-empty");
        assert!(codes.iter().all(|&c| c <= X_CODE), "codes must be residues (0..=20)");
        Sequence { id: id.into(), residues: codes }
    }

    /// Residue codes.
    #[inline]
    pub fn codes(&self) -> &[u8] {
        &self.residues
    }

    /// Sequence length in residues.
    #[inline]
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// Whether the sequence is empty (never true for validated sequences).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }

    /// Render the residues as an ASCII string.
    pub fn to_letters(&self) -> String {
        self.residues.iter().map(|&c| code_to_char(c)).collect()
    }

    /// Fraction of identical residues against another sequence of the same
    /// length (no alignment performed — positional identity).
    pub fn positional_identity(&self, other: &Sequence) -> Option<f64> {
        if self.len() != other.len() {
            return None;
        }
        let same = self.residues.iter().zip(&other.residues).filter(|(a, b)| a == b).count();
        Some(same as f64 / self.len() as f64)
    }

    /// Approximate wire size in bytes when shipped between cluster ranks:
    /// one byte per residue plus the identifier.
    pub fn wire_bytes(&self) -> usize {
        self.residues.len() + self.id.len() + 8
    }
}

impl fmt::Debug for Sequence {
    /// Prints a truncated preview rather than megabytes of residues.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: String = self.residues.iter().take(24).map(|&c| code_to_char(c)).collect();
        let ellipsis = if self.residues.len() > 24 { "…" } else { "" };
        write!(f, "Sequence({} len={} {}{})", self.id, self.residues.len(), preview, ellipsis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_render() {
        let s = Sequence::from_str("s1", "MKVLAW").unwrap();
        assert_eq!(s.len(), 6);
        assert_eq!(s.to_letters(), "MKVLAW");
    }

    #[test]
    fn whitespace_ignored() {
        let s = Sequence::from_str("s", "MK VL\nAW").unwrap();
        assert_eq!(s.to_letters(), "MKVLAW");
    }

    #[test]
    fn gap_rejected() {
        assert!(matches!(
            Sequence::from_str("s", "MK-VL"),
            Err(SequenceError::UnexpectedGap { pos: 2 })
        ));
    }

    #[test]
    fn invalid_rejected() {
        assert!(matches!(
            Sequence::from_str("s", "MK1VL"),
            Err(SequenceError::InvalidResidue { ch: '1', pos: 2 })
        ));
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(Sequence::from_str("s", "  "), Err(SequenceError::Empty)));
    }

    #[test]
    fn positional_identity_basics() {
        let a = Sequence::from_str("a", "MKVL").unwrap();
        let b = Sequence::from_str("b", "MKIL").unwrap();
        assert_eq!(a.positional_identity(&b), Some(0.75));
        assert_eq!(a.positional_identity(&a), Some(1.0));
        let c = Sequence::from_str("c", "MK").unwrap();
        assert_eq!(a.positional_identity(&c), None);
    }

    #[test]
    fn debug_is_truncated() {
        let long = "A".repeat(100);
        let s = Sequence::from_str("long", &long).unwrap();
        let dbg = format!("{s:?}");
        assert!(dbg.len() < 80, "debug too long: {dbg}");
        assert!(dbg.contains("len=100"));
    }

    #[test]
    fn ambiguity_mapped_on_parse() {
        let s = Sequence::from_str("s", "BZJ").unwrap();
        assert_eq!(s.to_letters(), "DEL");
    }
}
