//! The residue substitution model: BLOSUM-consistent conditional mutation
//! probabilities plus background composition.

use crate::rng::categorical;
use bioseq::matrix::BACKGROUND_FREQS;
use bioseq::SubstMatrix;
use rand::Rng;

/// A substitution model derived from a log-odds matrix: joint probabilities
/// `q(a,b) ∝ p(a)p(b)·exp(λ·S(a,b))`, conditioned per source residue.
#[derive(Debug, Clone)]
pub struct MutationModel {
    /// Cumulative conditional distributions: `cond_cum[a]` draws the
    /// replacement residue given source `a`.
    cond_cum: [[f64; 20]; 20],
    /// Cumulative background distribution for sampling fresh residues.
    background_cum: [f64; 20],
}

impl MutationModel {
    /// Build from a substitution matrix. `lambda` is the matrix's inverse
    /// scale (`ln 2 / 2` for half-bit matrices like BLOSUM62).
    pub fn from_matrix(matrix: &SubstMatrix, lambda: f64) -> Self {
        let joint = matrix.joint_probabilities(lambda);
        let mut cond_cum = [[0.0; 20]; 20];
        for a in 0..20 {
            let row_sum: f64 = joint[a].iter().sum();
            let mut acc = 0.0;
            for b in 0..20 {
                acc += joint[a][b] / row_sum;
                cond_cum[a][b] = acc;
            }
            cond_cum[a][19] = 1.0;
        }
        let mut background_cum = [0.0; 20];
        let total: f64 = BACKGROUND_FREQS.iter().sum();
        let mut acc = 0.0;
        for (i, &f) in BACKGROUND_FREQS.iter().enumerate() {
            acc += f / total;
            background_cum[i] = acc;
        }
        background_cum[19] = 1.0;
        MutationModel { cond_cum, background_cum }
    }

    /// The default model: BLOSUM62 at half-bit scale.
    pub fn blosum62() -> Self {
        Self::from_matrix(&SubstMatrix::blosum62(), std::f64::consts::LN_2 / 2.0)
    }

    /// Sample a residue from the background composition.
    pub fn sample_background<R: Rng>(&self, rng: &mut R) -> u8 {
        categorical(rng, &self.background_cum) as u8
    }

    /// Sample a replacement for residue `a` (may return `a` itself —
    /// multiple hits are part of the process).
    pub fn substitute<R: Rng>(&self, rng: &mut R, a: u8) -> u8 {
        debug_assert!(a < 20);
        categorical(rng, &self.cond_cum[a as usize]) as u8
    }

    /// Evolve one site across a branch of length `t` expected
    /// substitutions per site: the site is hit with probability
    /// `1 − e^{−t}`; a hit redraws the residue from the conditional
    /// distribution.
    pub fn evolve_site<R: Rng>(&self, rng: &mut R, a: u8, t: f64) -> u8 {
        let p_hit = 1.0 - (-t).exp();
        if rng.gen_range(0.0f64..1.0) < p_hit {
            self.substitute(rng, a)
        } else {
            a
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn background_sampling_matches_frequencies() {
        let model = MutationModel::blosum62();
        let mut r = rng();
        let mut counts = [0usize; 20];
        let n = 100_000;
        for _ in 0..n {
            counts[model.sample_background(&mut r) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let f = c as f64 / n as f64;
            assert!(
                (f - BACKGROUND_FREQS[i]).abs() < 0.01,
                "residue {i}: {f} vs {}",
                BACKGROUND_FREQS[i]
            );
        }
    }

    #[test]
    fn substitution_favours_similar_residues() {
        // I (code 9) should mutate to V (19) or L (10) far more often than
        // to W (17) — BLOSUM62 scores I/V=3, I/L=2, I/W=-3.
        let model = MutationModel::blosum62();
        let mut r = rng();
        let mut counts = [0usize; 20];
        for _ in 0..50_000 {
            counts[model.substitute(&mut r, 9) as usize] += 1;
        }
        assert!(counts[19] > counts[17] * 5, "V={} W={}", counts[19], counts[17]);
        assert!(counts[10] > counts[17] * 3, "L={} W={}", counts[10], counts[17]);
        // Self-substitution is the single most likely outcome.
        assert!(counts[9] >= *counts.iter().max().unwrap() / 2);
    }

    #[test]
    fn zero_branch_is_identity() {
        let model = MutationModel::blosum62();
        let mut r = rng();
        for a in 0..20u8 {
            assert_eq!(model.evolve_site(&mut r, a, 0.0), a);
        }
    }

    #[test]
    fn long_branch_randomises() {
        let model = MutationModel::blosum62();
        let mut r = rng();
        let mut changed = 0;
        let n = 10_000;
        for _ in 0..n {
            if model.evolve_site(&mut r, 0, 50.0) != 0 {
                changed += 1;
            }
        }
        // With t=50 every site is hit; only conditional self-draws survive.
        let frac = changed as f64 / n as f64;
        assert!(frac > 0.5, "frac changed = {frac}");
    }

    #[test]
    fn branch_length_monotone_in_divergence() {
        let model = MutationModel::blosum62();
        let mut r = rng();
        let divergence = |t: f64, r: &mut StdRng| {
            let n = 20_000;
            let mut diff = 0;
            for _ in 0..n {
                let a = model.sample_background(r);
                if model.evolve_site(r, a, t) != a {
                    diff += 1;
                }
            }
            diff as f64 / n as f64
        };
        let d1 = divergence(0.1, &mut r);
        let d2 = divergence(0.5, &mut r);
        let d3 = divergence(2.0, &mut r);
        assert!(d1 < d2 && d2 < d3, "{d1} {d2} {d3}");
    }
}
