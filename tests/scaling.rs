//! Integration checks on the performance model: scaling shape, load
//! balance, and the phase structure the paper's cost analysis assumes.

use sample_align_d::prelude::*;

fn workload(n: usize, seed: u64) -> Vec<Sequence> {
    Family::generate(&FamilyConfig {
        n_seqs: n,
        avg_len: 80,
        relatedness: 800.0,
        seed,
        ..Default::default()
    })
    .seqs
}

#[test]
fn makespan_strictly_improves_with_ranks() {
    let seqs = workload(96, 1);
    let cfg = SadConfig::default();
    let mut prev = f64::INFINITY;
    for p in [1usize, 2, 4, 8] {
        let run = run_distributed(&VirtualCluster::new(p, CostModel::beowulf_2008()), &seqs, &cfg);
        assert!(run.makespan < prev, "p={p}: {:.4} did not improve on {:.4}", run.makespan, prev);
        prev = run.makespan;
    }
}

#[test]
fn speedup_beats_half_linear() {
    let seqs = workload(128, 2);
    let cfg = SadConfig::default();
    let t1 =
        run_distributed(&VirtualCluster::new(1, CostModel::beowulf_2008()), &seqs, &cfg).makespan;
    let t8 =
        run_distributed(&VirtualCluster::new(8, CostModel::beowulf_2008()), &seqs, &cfg).makespan;
    let speedup = t1 / t8;
    assert!(speedup > 4.0, "speedup at p=8 was only {speedup:.2}");
}

#[test]
fn load_balance_bound_holds() {
    let seqs = workload(192, 3);
    let run = run_distributed(
        &VirtualCluster::new(6, CostModel::beowulf_2008()),
        &seqs,
        &SadConfig::default(),
    );
    let bound = psrs::max_partition_bound(192, 6);
    for (rank, &size) in run.bucket_sizes.iter().enumerate() {
        assert!(size <= bound + 6, "rank {rank} got {size} sequences (bound {bound})");
    }
}

#[test]
fn communication_is_minor_versus_compute() {
    // The paper's premise: communication cost is much less than alignment
    // cost for large-enough buckets.
    let seqs = workload(96, 4);
    let run = run_distributed(
        &VirtualCluster::new(4, CostModel::beowulf_2008()),
        &seqs,
        &SadConfig::default(),
    );
    for t in &run.traces {
        assert!(
            t.comm_s < t.compute_s,
            "rank {}: comm {:.4}s should stay below compute {:.4}s",
            t.rank,
            t.comm_s,
            t.compute_s
        );
    }
}

#[test]
fn local_align_dominates_the_phase_table() {
    // Section 3: the O((N/p)^2 L) + O((N/p) L^2) alignment term dominates
    // every other phase.
    let seqs = workload(96, 5);
    let run = run_distributed(
        &VirtualCluster::new(4, CostModel::beowulf_2008()),
        &seqs,
        &SadConfig::default(),
    );
    let phases = vcluster::trace::phase_summary(&run.traces);
    let of = |name: &str| {
        phases.iter().find(|(n, _, _)| n == name).map(|&(_, max, _)| max).unwrap_or(0.0)
    };
    let align = of("8-local-align");
    for other in ["2-local-sort", "3-sample-exchange", "6-redistribute", "12-glue"] {
        assert!(
            align > of(other),
            "{other} ({:.4}s) outweighed local alignment ({align:.4}s)",
            of(other)
        );
    }
}

#[test]
fn modern_cost_model_preserves_shape() {
    // Constants change; the scaling shape must not.
    let seqs = workload(96, 6);
    let cfg = SadConfig::default();
    let t1 = run_distributed(&VirtualCluster::new(1, CostModel::modern()), &seqs, &cfg).makespan;
    let t4 = run_distributed(&VirtualCluster::new(4, CostModel::modern()), &seqs, &cfg).makespan;
    assert!(t4 < t1, "modern model lost the scaling: {t4} vs {t1}");
}
