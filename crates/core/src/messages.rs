//! Typed messages exchanged between ranks, with wire-size accounting for
//! the virtual network.

use bioseq::{Msa, Sequence};
use vcluster::WireSize;

/// A sequence travelling with its globalized k-mer rank (redistribution
/// payload).
#[derive(Debug, Clone, PartialEq)]
pub struct RankedSeq {
    /// The sequence.
    pub seq: Sequence,
    /// Its globalized rank (the PSRS key).
    pub rank: f64,
}

impl WireSize for RankedSeq {
    fn wire_bytes(&self) -> usize {
        self.seq.wire_bytes() + 8
    }
}

/// A batch of sequences (sample exchange, ancestor gathering).
#[derive(Debug, Clone, PartialEq)]
pub struct SeqBatch(pub Vec<Sequence>);

impl WireSize for SeqBatch {
    fn wire_bytes(&self) -> usize {
        8 + self.0.iter().map(Sequence::wire_bytes).sum::<usize>()
    }
}

/// An optional single sequence (local/global ancestors; `None` for empty
/// buckets).
#[derive(Debug, Clone, PartialEq)]
pub struct MaybeSeq(pub Option<Sequence>);

impl WireSize for MaybeSeq {
    fn wire_bytes(&self) -> usize {
        1 + self.0.as_ref().map_or(0, Sequence::wire_bytes)
    }
}

/// An anchored alignment block shipped to the root for gluing: the rows of
/// one bucket in "global ancestor + private inserts" coordinates, plus the
/// per-column kind marker.
#[derive(Debug, Clone, PartialEq)]
pub struct AnchoredBlockMsg {
    /// Row ids.
    pub ids: Vec<String>,
    /// Gapped rows (all the same width).
    pub rows: Vec<Vec<u8>>,
    /// For every column: `true` if it corresponds to a global-ancestor
    /// column, `false` for a bucket-private insert column.
    pub is_anchor: Vec<bool>,
}

impl WireSize for AnchoredBlockMsg {
    fn wire_bytes(&self) -> usize {
        let ids: usize = self.ids.iter().map(|s| 8 + s.len()).sum();
        let rows: usize = self.rows.iter().map(|r| 8 + r.len()).sum();
        8 + ids + rows + self.is_anchor.len()
    }
}

/// A plain alignment block (no-fine-tune glue path).
#[derive(Debug, Clone, PartialEq)]
pub struct MsaBlockMsg(pub Option<Msa>);

impl WireSize for MsaBlockMsg {
    fn wire_bytes(&self) -> usize {
        match &self.0 {
            None => 1,
            Some(m) => {
                let ids: usize = m.ids().iter().map(|s| 8 + s.len()).sum();
                1 + ids + m.num_rows() * m.num_cols()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(t: &str) -> Sequence {
        Sequence::from_str("id", t).unwrap()
    }

    #[test]
    fn ranked_seq_bytes() {
        let r = RankedSeq { seq: seq("MKVL"), rank: 0.5 };
        // 4 residues + 2 id chars + 8 overhead + 8 rank
        assert_eq!(r.wire_bytes(), 4 + 2 + 8 + 8);
    }

    #[test]
    fn batch_bytes_scale_with_members() {
        let b1 = SeqBatch(vec![seq("MKVL")]);
        let b2 = SeqBatch(vec![seq("MKVL"), seq("MKVL")]);
        assert!(b2.wire_bytes() > b1.wire_bytes());
        assert_eq!(b2.wire_bytes() - b1.wire_bytes(), seq("MKVL").wire_bytes());
    }

    #[test]
    fn maybe_seq_none_is_tiny() {
        assert_eq!(MaybeSeq(None).wire_bytes(), 1);
        assert!(MaybeSeq(Some(seq("MKVL"))).wire_bytes() > 10);
    }

    #[test]
    fn anchored_block_counts_everything() {
        let m = AnchoredBlockMsg {
            ids: vec!["a".into()],
            rows: vec![vec![0, 1, 2]],
            is_anchor: vec![true, false, true],
        };
        assert_eq!(m.wire_bytes(), 8 + (8 + 1) + (8 + 3) + 3);
    }

    #[test]
    fn msa_block_bytes() {
        assert_eq!(MsaBlockMsg(None).wire_bytes(), 1);
        let m = bioseq::fasta::parse_alignment(">a\nMK\n>b\nMK\n").unwrap();
        let msg = MsaBlockMsg(Some(m));
        assert_eq!(msg.wire_bytes(), 1 + (8 + 1) * 2 + 4);
    }
}
