//! Table 2 — alignment quality (PREFAB Q scores).
//!
//! Paper's Q scores: Sample-Align-D 0.544, MUSCLE 0.645, MUSCLE-p 0.634,
//! T-Coffee 0.615, NWNSI 0.615, FFTNSI 0.591, CLUSTALW 0.563.
//!
//! The shape to reproduce on our PREFAB-like generated benchmark:
//! the full sequential engines beat the domain-decomposed system by a
//! modest margin (decomposing 20–30 sequences over 4 processors is "too
//! fine grain", as the paper itself notes), and Sample-Align-D stays in
//! the same quality class as CLUSTALW.

use criterion::{criterion_group, criterion_main, Criterion};
use qbench::{evaluate_engine, evaluate_with, Benchmark, BenchmarkConfig};
use sad_bench::{banner, paper_scale, sad_on_cluster, table};
use sad_core::SadConfig;

fn experiment() {
    let cases = if paper_scale() { 48 } else { 12 };
    banner("Table 2", &format!("PREFAB-like Q scores, {cases} cases (paper: PREFAB 4)"));
    let benchmark = Benchmark::generate(&BenchmarkConfig {
        n_cases: cases,
        seqs_per_case: 24,
        avg_len: 120,
        // PREFAB's hard cases sit well below 50% identity; this range puts
        // our generated references in the same Q regime as the paper's
        // Table 2 (see the probe in EXPERIMENTS.md).
        relatedness: (1100.0, 3000.0),
        seed: 0x7AB1E2,
    });

    let muscle = evaluate_engine(&align::MuscleLite::standard(), &benchmark);
    let muscle_fast = evaluate_engine(&align::MuscleLite::fast(), &benchmark);
    let clustal = evaluate_engine(&align::ClustalLite::default(), &benchmark);
    // Sample-Align-D on a 4-processor cluster, as in the paper's Table 2.
    let cfg = SadConfig::default();
    let sad = evaluate_with("sample-align-d(p=4)", &benchmark, |seqs| {
        let run = sad_on_cluster(4, seqs, &cfg);
        (run.msa, run.work)
    });

    let rows = vec![
        vec!["sample-align-d(p=4)".into(), format!("{:.3}", sad.mean_q), "0.544".into()],
        vec!["muscle-lite".into(), format!("{:.3}", muscle.mean_q), "0.645".into()],
        vec![
            "muscle-lite-fast".into(),
            format!("{:.3}", muscle_fast.mean_q),
            "0.634 (MUSCLE-p)".into(),
        ],
        vec!["clustal-lite".into(), format!("{:.3}", clustal.mean_q), "0.563".into()],
    ];
    table(&["method", "Q (ours)", "Q (paper)"], &rows);
    println!(
        "\nTC scores: sad={:.3} muscle={:.3} clustal={:.3}",
        sad.mean_tc, muscle.mean_tc, clustal.mean_tc
    );

    println!(
        "\npaper check — engines rank MUSCLE ≥ CLUSTALW: {}",
        if muscle.mean_q >= clustal.mean_q - 0.02 { "REPRODUCED" } else { "NOT reproduced" }
    );
    println!(
        "paper check — SAD within ~0.1 of CLUSTALW-class quality: {}",
        if (sad.mean_q - clustal.mean_q).abs() < 0.12 || sad.mean_q > clustal.mean_q {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    println!(
        "paper check — decomposition costs some quality vs full MUSCLE: {}",
        if sad.mean_q <= muscle.mean_q + 0.02 { "REPRODUCED" } else { "NOT reproduced" }
    );
}

fn bench(c: &mut Criterion) {
    experiment();
    let benchmark = Benchmark::generate(&BenchmarkConfig {
        n_cases: 2,
        seqs_per_case: 12,
        avg_len: 80,
        relatedness: (400.0, 800.0),
        seed: 1,
    });
    c.bench_function("table2/qbench_muscle_fast_2cases", |b| {
        b.iter(|| evaluate_engine(&align::MuscleLite::fast(), std::hint::black_box(&benchmark)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
