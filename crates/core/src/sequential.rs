//! The sequential baseline: the configured engine run on the whole set
//! (what "MUSCLE on a single cluster node" is to the paper's Fig. 6).

use crate::config::SadConfig;
use bioseq::{Msa, Sequence, Work};

/// Align everything with the configured sequential engine.
pub fn run_sequential(seqs: &[Sequence], cfg: &SadConfig) -> (Msa, Work) {
    cfg.engine.build().align_with_work(seqs)
}

/// Virtual seconds the sequential baseline would take on the given cost
/// model (the denominator of every speedup in the paper).
pub fn sequential_seconds(
    seqs: &[Sequence],
    cfg: &SadConfig,
    cost: &vcluster::CostModel,
) -> (Msa, f64) {
    let (msa, work) = run_sequential(seqs, cfg);
    (msa, cost.work_seconds(&work))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rosegen::{Family, FamilyConfig};

    #[test]
    fn baseline_aligns_and_costs_time() {
        let seqs = Family::generate(&FamilyConfig {
            n_seqs: 10,
            avg_len: 50,
            seed: 1,
            ..Default::default()
        })
        .seqs;
        let cfg = SadConfig::default();
        let (msa, secs) = sequential_seconds(&seqs, &cfg, &vcluster::CostModel::beowulf_2008());
        msa.validate().unwrap();
        assert_eq!(msa.num_rows(), 10);
        assert!(secs > 0.0);
    }

    #[test]
    fn matches_engine_directly() {
        let seqs = Family::generate(&FamilyConfig {
            n_seqs: 6,
            avg_len: 40,
            seed: 2,
            ..Default::default()
        })
        .seqs;
        let cfg = SadConfig::default();
        let (a, _) = run_sequential(&seqs, &cfg);
        assert_eq!(a, cfg.engine.build().align(&seqs));
    }
}
