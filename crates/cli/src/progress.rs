//! The `--progress` live phase display: an [`Observer`] that renders
//! pipeline events as log lines on a writer (stderr in the binary, so
//! stdout stays parseable FASTA).

use sad_core::{Event, Observer};
use std::io::Write;
use std::sync::Mutex;

/// An observer rendering each pipeline event as one `[sad]` line.
///
/// Output goes through a mutex-guarded writer because the decomposed
/// backends deliver `BucketAligned` events from worker threads.
pub struct ProgressObserver {
    out: Mutex<Box<dyn Write + Send>>,
}

impl ProgressObserver {
    /// A progress display writing to `out` (the binary passes stderr).
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        ProgressObserver { out: Mutex::new(out) }
    }

    /// A progress display on standard error.
    pub fn stderr() -> Self {
        Self::new(Box::new(std::io::stderr()))
    }
}

impl Observer for ProgressObserver {
    fn on_event(&self, event: &Event) {
        let line = match event {
            Event::RunStarted { backend, n_seqs, ranks } => {
                format!("run started: {n_seqs} sequences on the {backend} backend, {ranks} rank(s)")
            }
            Event::PhaseStarted { phase } => format!("> {phase}"),
            Event::PhaseFinished { phase, work, seconds } => {
                format!("* {phase} done in {seconds:.3}s ({} work units)", work.total_units())
            }
            Event::BucketAligned { bucket, rows, seconds } => {
                format!("  bucket {bucket}: {rows} rows aligned in {seconds:.3}s")
            }
            Event::RunFinished { seconds, cancelled } => {
                if *cancelled {
                    format!("run CANCELLED after {seconds:.3}s")
                } else {
                    format!("run finished in {seconds:.3}s")
                }
            }
            Event::JobStarted { job, id, n_seqs } => {
                format!("job {job} [{id}]: started ({n_seqs} sequences)")
            }
            Event::JobFinished { job, id, seconds, ok } => {
                if *ok {
                    format!("job {job} [{id}]: done in {seconds:.3}s")
                } else {
                    format!("job {job} [{id}]: FAILED after {seconds:.3}s")
                }
            }
            // `Event` is non-exhaustive; render unknown events generically
            // rather than dropping them.
            other => format!("{other:?}"),
        };
        let mut out = self.out.lock().expect("progress writer poisoned");
        let _ = writeln!(out, "[sad] {line}");
        let _ = out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sad_core::{Aligner, Backend, SadConfig};
    use std::sync::Arc;

    /// A writer that appends into a shared buffer the test can read back.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn renders_every_phase_of_a_run() {
        let buf = SharedBuf::default();
        let observer = Arc::new(ProgressObserver::new(Box::new(buf.clone())));
        let seqs = rosegen::Family::generate(&rosegen::FamilyConfig {
            n_seqs: 12,
            avg_len: 40,
            relatedness: 700.0,
            seed: 1,
            ..Default::default()
        })
        .seqs;
        Aligner::new(SadConfig::default())
            .backend(Backend::Rayon { threads: 3 })
            .observer(observer)
            .run(&seqs)
            .unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("run started: 12 sequences on the rayon backend"), "{text}");
        assert!(text.contains("> 8-local-align"), "{text}");
        assert!(text.contains("* 8-local-align done in"), "{text}");
        assert!(text.contains("bucket"), "{text}");
        assert!(text.contains("run finished in"), "{text}");
        assert!(text.lines().all(|l| l.starts_with("[sad] ")), "{text}");
    }

    #[test]
    fn renders_batch_job_events() {
        let buf = SharedBuf::default();
        let observer = Arc::new(ProgressObserver::new(Box::new(buf.clone())));
        let family = |seed| {
            rosegen::Family::generate(&rosegen::FamilyConfig {
                n_seqs: 6,
                avg_len: 40,
                relatedness: 700.0,
                seed,
                ..Default::default()
            })
            .seqs
        };
        let jobs = vec![
            sad_core::BatchJob::new("good", family(1)),
            sad_core::BatchJob::new("bad", family(2)[..1].to_vec()),
        ];
        let batch = Aligner::new(SadConfig::default()).observer(observer).run_batch_with(&jobs, 1);
        assert_eq!(batch.succeeded(), 1);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("job 0 [good]: started (6 sequences)"), "{text}");
        assert!(text.contains("job 0 [good]: done in"), "{text}");
        assert!(text.contains("job 1 [bad]: FAILED after"), "{text}");
    }
}
