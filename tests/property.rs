//! Property-based integration tests: the pipeline's invariants must hold
//! for arbitrary (valid) inputs, not just rose families.

use proptest::prelude::*;
use sample_align_d::prelude::*;

/// Strategy: a set of 2..=12 random protein sequences with unique ids.
fn arb_sequences() -> impl Strategy<Value = Vec<Sequence>> {
    prop::collection::vec(prop::collection::vec(0u8..20, 8..40), 2..12).prop_map(|codes| {
        codes
            .into_iter()
            .enumerate()
            .map(|(i, c)| Sequence::from_codes(format!("p{i}"), c))
            .collect()
    })
}

fn on_cluster(p: usize, seqs: &[Sequence]) -> RunReport {
    let cluster = VirtualCluster::new(p, CostModel::beowulf_2008());
    Aligner::new(SadConfig::default())
        .backend(Backend::Distributed(cluster))
        .run(seqs)
        .expect("arbitrary 2+ sequence sets are valid inputs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn distributed_preserves_every_sequence(seqs in arb_sequences(), p in 1usize..5) {
        let report = on_cluster(p, &seqs);
        prop_assert!(report.msa.validate().is_ok());
        prop_assert_eq!(report.msa.num_rows(), seqs.len());
        let mut got: Vec<(String, String)> = (0..report.msa.num_rows())
            .map(|r| (report.msa.ids()[r].clone(), report.msa.ungapped(r).to_letters()))
            .collect();
        got.sort();
        let mut want: Vec<(String, String)> =
            seqs.iter().map(|s| (s.id.clone(), s.to_letters())).collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bucket_sizes_conserve_input(seqs in arb_sequences(), p in 1usize..5) {
        let report = on_cluster(p, &seqs);
        prop_assert_eq!(report.bucket_sizes.iter().sum::<usize>(), seqs.len());
        let makespan = report.makespan().expect("distributed runs have a makespan");
        prop_assert!(makespan.is_finite() && makespan >= 0.0);
    }

    #[test]
    fn report_work_is_the_sum_of_its_phases(seqs in arb_sequences(), p in 1usize..5) {
        // The unified report's invariant, whatever the backend.
        let dist = on_cluster(p, &seqs);
        let ray = Aligner::new(SadConfig::default())
            .backend(Backend::Rayon { threads: p })
            .run(&seqs)
            .expect("valid input");
        let seq = Aligner::new(SadConfig::default()).run(&seqs).expect("valid input");
        for report in [&dist, &ray, &seq] {
            let total: bioseq::Work = report.phases.iter().map(|ph| ph.work).sum();
            prop_assert_eq!(report.work, total, "{} phases", report.backend_name());
            prop_assert!(!report.work.is_zero(), "{} did no work", report.backend_name());
        }
    }

    #[test]
    fn sp_score_finite_and_q_bounded(seqs in arb_sequences()) {
        let report = on_cluster(2, &seqs);
        let matrix = SubstMatrix::blosum62();
        let sp = report.msa.sp_score(&matrix, GapPenalties::default());
        // SP of an n x c alignment is bounded by pairs x columns x max score.
        let n = report.msa.num_rows() as i64;
        let c = report.msa.num_cols() as i64;
        prop_assert!(sp.abs() <= n * n * c * 17, "sp={sp} n={n} c={c}");
    }

    #[test]
    fn fasta_roundtrip_of_pipeline_output(seqs in arb_sequences()) {
        let report = on_cluster(2, &seqs);
        let text = fasta::write_alignment(&report.msa);
        let parsed = fasta::parse_alignment(&text).unwrap();
        prop_assert_eq!(parsed.rows(), report.msa.rows());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn engines_are_total_on_arbitrary_inputs(seqs in arb_sequences()) {
        for engine in EngineChoice::ALL {
            let msa = engine.build().align(&seqs);
            prop_assert!(msa.validate().is_ok(), "{:?}", engine);
            prop_assert_eq!(msa.num_rows(), seqs.len());
        }
    }
}
