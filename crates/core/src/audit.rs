//! Complexity audit — an executable version of the paper's Section 3 cost
//! table.
//!
//! Section 3 derives per-step computation costs (`w²L` for the local rank,
//! `w log w` for the local sort, `w⁴ + wL²` for the local alignment, …)
//! and a total communication cost of `O(p²L + p log p + (N/p)L + L log p)`.
//! This module measures the actual per-phase virtual times of a run and
//! fits empirical scaling exponents across a sweep of `(N, p)` so the
//! analysis can be checked rather than trusted.

use crate::aligner::{Aligner, Backend};
use crate::config::SadConfig;
use crate::pipeline::Phase;
use bioseq::{Sequence, Work};
use vcluster::{CostModel, VirtualCluster};

/// The DP accounting invariant every aggregated [`Work`] must satisfy:
/// `dp_cells` counts only cells the banded kernel actually filled, so it
/// can exceed the full-matrix equivalent `dp_cells_full` only by the
/// bounded geometric series of adaptive band retries (factor ≤ 3). A
/// violation means cells were double-counted somewhere — e.g. a batch
/// aggregate accumulating the filled count without its matching
/// full-matrix equivalent (the two must be summed in step, as
/// `Work::add` does).
///
/// Checked by the audit sweep on every run and by
/// [`crate::Aligner::run_batch`] on the batch aggregate.
pub fn dp_accounting_ok(work: &Work) -> bool {
    work.dp_cells <= 3 * work.dp_cells_full
}

/// Per-phase maxima for one `(N, p)` configuration.
#[derive(Debug, Clone)]
pub struct AuditPoint {
    /// Input size.
    pub n: usize,
    /// Ranks.
    pub p: usize,
    /// `(phase, max virtual seconds across ranks)` in pipeline order.
    pub phases: Vec<(Phase, f64)>,
    /// Total makespan.
    pub makespan: f64,
    /// Total bytes on the wire.
    pub bytes: u64,
}

/// Run the pipeline over a sweep of input sizes at fixed `p`, recording
/// per-phase timings.
pub fn sweep_n(
    sizes: &[usize],
    p: usize,
    cfg: &SadConfig,
    cost: CostModel,
    mut workload: impl FnMut(usize) -> Vec<Sequence>,
) -> Vec<AuditPoint> {
    sizes
        .iter()
        .map(|&n| {
            let seqs = workload(n);
            let cluster = VirtualCluster::new(p, cost);
            let run = Aligner::new(cfg.clone())
                .backend(Backend::Distributed(cluster))
                .run(&seqs)
                .expect("audit sweeps use valid inputs");
            assert!(
                dp_accounting_ok(&run.work),
                "dp_cells {} exceeds the adaptive-banding bound (full equivalent {})",
                run.work.dp_cells,
                run.work.dp_cells_full
            );
            let traces = run.traces().expect("distributed runs carry traces");
            AuditPoint {
                n,
                p,
                phases: run
                    .phases
                    .iter()
                    .map(|s| (s.phase, s.virtual_seconds.expect("distributed phases are timed")))
                    .collect(),
                makespan: run.makespan().expect("distributed runs have a makespan"),
                bytes: traces.iter().map(|t| t.bytes_sent).sum(),
            }
        })
        .collect()
}

/// Least-squares slope of `log(y)` against `log(x)` — the empirical
/// scaling exponent `y ∝ x^slope`. Returns `None` with fewer than two
/// usable (positive) points.
pub fn fit_exponent(points: &[(f64, f64)]) -> Option<f64> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    if logs.len() < 2 {
        return None;
    }
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|&(x, _)| x).sum();
    let sy: f64 = logs.iter().map(|&(_, y)| y).sum();
    let sxx: f64 = logs.iter().map(|&(x, _)| x * x).sum();
    let sxy: f64 = logs.iter().map(|&(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

/// Empirical exponent of one phase's time in the input size `N` across a
/// sweep (e.g. `≈ 2` for the `w²L` rank phase at fixed `p`).
pub fn phase_exponent(points: &[AuditPoint], phase: Phase) -> Option<f64> {
    let series: Vec<(f64, f64)> = points
        .iter()
        .filter_map(|pt| {
            pt.phases.iter().find(|&&(p, _)| p == phase).map(|&(_, t)| (pt.n as f64, t))
        })
        .collect();
    fit_exponent(&series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rosegen::{Family, FamilyConfig};

    /// Prefixes of one fixed family, so sweeping N changes only the input
    /// *size*, never its statistics.
    fn workload(n: usize) -> Vec<Sequence> {
        let fam = Family::generate(&FamilyConfig {
            n_seqs: 128,
            avg_len: 60,
            relatedness: 300.0,
            seed: 1,
            ..Default::default()
        });
        fam.seqs[..n].to_vec()
    }

    #[test]
    fn dp_accounting_flags_double_counting() {
        // A clean banded fill and a clean full fill both pass, as does a
        // clean sum of the two (Work::add sums both counters in step).
        assert!(dp_accounting_ok(&Work::dp_banded(100, 900)));
        assert!(dp_accounting_ok(&Work::dp(500)));
        assert!(dp_accounting_ok(&Work::ZERO));
        assert!(dp_accounting_ok(&(Work::dp_banded(100, 900) + Work::dp(500))));
        // An aggregate that accumulates `dp_cells` without its matching
        // `dp_cells_full` (e.g. a batch loop adding one side per job, or
        // adding a job's filled cells repeatedly) drifts past the bound.
        let mut skewed = Work::dp(900);
        for _ in 0..4 {
            skewed.dp_cells += 900; // job re-counted on the filled side only
        }
        assert!(!dp_accounting_ok(&skewed));
        // Filled cells with no full-matrix equivalent at all is always a
        // bookkeeping bug.
        assert!(!dp_accounting_ok(&Work { dp_cells: 1, ..Work::ZERO }));
    }

    #[test]
    fn exponent_fit_exact_powers() {
        let quad: Vec<(f64, f64)> = (1..6).map(|i| (i as f64, (i * i) as f64)).collect();
        assert!((fit_exponent(&quad).unwrap() - 2.0).abs() < 1e-9);
        let lin: Vec<(f64, f64)> = (1..6).map(|i| (i as f64, 3.0 * i as f64)).collect();
        assert!((fit_exponent(&lin).unwrap() - 1.0).abs() < 1e-9);
        assert!(fit_exponent(&[(1.0, 1.0)]).is_none());
        assert!(fit_exponent(&[(1.0, 0.0), (2.0, 0.0)]).is_none());
    }

    #[test]
    fn rank_phase_scales_quadratically() {
        // Step 1 is w²L with w = N/p: at fixed p its exponent in N is ≈ 2.
        let points =
            sweep_n(&[32, 64, 128], 2, &SadConfig::default(), CostModel::beowulf_2008(), workload);
        let e = phase_exponent(&points, Phase::LocalKmerRank).unwrap();
        assert!((1.5..=2.5).contains(&e), "rank exponent {e}");
    }

    #[test]
    fn align_phase_superlinear() {
        // Step 8 contains the engine's w² distance term plus the wL²
        // progressive term: exponent in N must exceed 1.
        let points =
            sweep_n(&[32, 64, 128], 2, &SadConfig::default(), CostModel::beowulf_2008(), workload);
        let e = phase_exponent(&points, Phase::LocalAlign).unwrap();
        assert!(e > 0.8, "align exponent {e}");
    }

    #[test]
    fn communication_bytes_grow_roughly_linearly() {
        // Section 3: redistribution dominates the wire, O((N/p)·L) per
        // rank ⇒ total bytes ~ N·L.
        let points =
            sweep_n(&[32, 64, 128], 4, &SadConfig::default(), CostModel::beowulf_2008(), workload);
        let series: Vec<(f64, f64)> =
            points.iter().map(|pt| (pt.n as f64, pt.bytes as f64)).collect();
        let e = fit_exponent(&series).unwrap();
        assert!((0.6..=1.5).contains(&e), "bytes exponent {e}");
    }

    #[test]
    fn banded_kernel_fills_fewer_cells_than_full_on_long_sequences() {
        // The paper's workloads are homologous families; on L=300
        // sequences the adaptive band stays far below the full matrix.
        let fam = Family::generate(&FamilyConfig {
            n_seqs: 8,
            avg_len: 300,
            relatedness: 700.0,
            seed: 2,
            ..Default::default()
        });
        let cluster = VirtualCluster::new(2, CostModel::beowulf_2008());
        let run = Aligner::new(SadConfig::default())
            .backend(Backend::Distributed(cluster))
            .run(&fam.seqs)
            .unwrap();
        assert!(
            run.work.dp_cells < run.work.dp_cells_full,
            "banded {} vs full {}",
            run.work.dp_cells,
            run.work.dp_cells_full
        );
    }

    #[test]
    fn kernel_choice_never_changes_results_or_accounting() {
        // The striped kernel is an implementation detail: forcing either
        // variant across a whole run must produce the same alignment and,
        // crucially, the same dp_cells/dp_cells_full accounting — the
        // virtual cluster's cost model charges cells, not wall-clock, so
        // any divergence would skew every reported speedup.
        use align::DpKernel;
        let fam = Family::generate(&FamilyConfig {
            n_seqs: 16,
            avg_len: 80,
            relatedness: 400.0,
            seed: 3,
            ..Default::default()
        });
        let run = |kernel: DpKernel| {
            let cluster = VirtualCluster::new(2, CostModel::beowulf_2008());
            Aligner::new(SadConfig::default().with_dp_kernel(kernel))
                .backend(Backend::Distributed(cluster))
                .run(&fam.seqs)
                .unwrap()
        };
        let scalar = run(DpKernel::Scalar);
        let striped = run(DpKernel::Striped);
        let auto = run(DpKernel::Auto);
        assert_eq!(scalar.msa, striped.msa);
        assert_eq!(scalar.msa, auto.msa);
        assert_eq!(scalar.work.dp_cells, striped.work.dp_cells);
        assert_eq!(scalar.work.dp_cells_full, striped.work.dp_cells_full);
        assert_eq!(scalar.work, striped.work);
        assert_eq!(scalar.work, auto.work);
        // Only the report label records which fill ran.
        assert_eq!(scalar.kernel, "scalar");
        assert_eq!(striped.kernel, "striped");
        assert_eq!(auto.kernel, "auto");
    }

    #[test]
    fn audit_points_carry_all_phases() {
        let points = sweep_n(&[24], 2, &SadConfig::default(), CostModel::beowulf_2008(), workload);
        let phases: Vec<Phase> = points[0].phases.iter().map(|&(p, _)| p).collect();
        let expected: Vec<Phase> = Phase::ALL
            .into_iter()
            .filter(|&p| {
                !matches!(
                    p,
                    Phase::SubPartition | Phase::AnchorScan | Phase::BlockAlign | Phase::Trim
                )
            })
            .collect();
        assert_eq!(phases, expected, "a default p=2 run executes every non-opt-in phase");
    }
}
