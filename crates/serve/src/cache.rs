//! The result cache: `(input digest, config fingerprint)` → aligned FASTA.
//!
//! The pipeline is deterministic, so two submissions with the same input
//! bytes under the same configuration are guaranteed the same output
//! bytes. The cache exploits that: a duplicate submission is answered at
//! accept time from memory — no queue slot, no worker, no DP cells. The
//! cache is rebuilt on restart from journal `Finished{digest}` entries
//! whose output files still verify, so a warm restart keeps its hits.
//!
//! Memory is bounded: every entry is charged its key and FASTA bytes
//! against a configurable budget ([`ResultCache::with_budget_bytes`],
//! `--cache-mb` on the CLI), and inserting past the budget evicts the
//! least-recently-used entries first. A long-lived daemon fed thousands
//! of distinct families therefore plateaus instead of growing without
//! bound, and a journal replay larger than the budget re-warms only the
//! most recently finished jobs.

use std::collections::HashMap;
use std::sync::Mutex;

/// A cached alignment result.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// Digest of the aligned FASTA text.
    pub digest: String,
    /// Number of aligned rows.
    pub rows: usize,
    /// The aligned FASTA text itself.
    pub fasta: String,
}

impl CachedResult {
    /// Bytes this result is charged against the cache budget (its owned
    /// strings; the fixed struct overhead is charged per entry).
    fn cost(&self) -> usize {
        self.digest.len() + self.fasta.len()
    }
}

/// One cached entry plus its recency stamp.
#[derive(Debug)]
struct Entry {
    result: CachedResult,
    /// Bytes charged for this entry (key + result).
    cost: usize,
    /// Monotonic access clock: smallest = least recently used.
    last_used: u64,
}

#[derive(Debug)]
struct Inner {
    map: HashMap<(String, String), Entry>,
    budget: usize,
    used: usize,
    clock: u64,
}

/// Per-entry fixed charge covering key/entry bookkeeping, so that even
/// many tiny results cannot grow the map without bound.
const ENTRY_OVERHEAD: usize = 128;

/// Thread-safe, byte-budgeted LRU result cache.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<Inner>,
}

/// Default budget when none is configured: 64 MiB, matching the CLI's
/// `--cache-mb` default.
pub const DEFAULT_BUDGET_BYTES: usize = 64 * 1024 * 1024;

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::with_budget_bytes(DEFAULT_BUDGET_BYTES)
    }
}

impl ResultCache {
    /// An empty cache with the default budget.
    pub fn new() -> ResultCache {
        ResultCache::default()
    }

    /// An empty cache holding at most `budget` bytes of results
    /// (FASTA text + keys + fixed per-entry overhead).
    pub fn with_budget_bytes(budget: usize) -> ResultCache {
        ResultCache { inner: Mutex::new(Inner { map: HashMap::new(), budget, used: 0, clock: 0 }) }
    }

    /// Look up a result by input digest + config fingerprint; a hit
    /// refreshes the entry's recency.
    pub fn get(&self, input: &str, fingerprint: &str) -> Option<CachedResult> {
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        let entry = inner.map.get_mut(&(input.to_string(), fingerprint.to_string()))?;
        entry.last_used = clock;
        Some(entry.result.clone())
    }

    /// Record a completed result, evicting least-recently-used entries if
    /// the budget is exceeded. A result larger than the whole budget is
    /// not cached at all (evicting everything for one giant entry would
    /// only thrash).
    pub fn insert(&self, input: &str, fingerprint: &str, result: CachedResult) {
        let key = (input.to_string(), fingerprint.to_string());
        let cost = key.0.len() + key.1.len() + result.cost() + ENTRY_OVERHEAD;
        let mut inner = self.inner.lock().unwrap();
        if cost > inner.budget {
            return;
        }
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.map.insert(key, Entry { result, cost, last_used: clock }) {
            inner.used -= old.cost;
        }
        inner.used += cost;
        // Evict oldest-first until we fit. A linear scan per eviction is
        // fine at the entry counts a budgeted cache can hold.
        while inner.used > inner.budget {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("used > budget implies a non-empty map");
            let evicted = inner.map.remove(&victim).expect("victim key just observed");
            inner.used -= evicted.cost;
        }
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently charged against the budget.
    pub fn used_bytes(&self) -> usize {
        self.inner.lock().unwrap().used
    }

    /// The configured budget in bytes.
    pub fn budget_bytes(&self) -> usize {
        self.inner.lock().unwrap().budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(tag: &str, bytes: usize) -> CachedResult {
        CachedResult { digest: tag.into(), rows: 2, fasta: "x".repeat(bytes) }
    }

    /// Budget that fits exactly `n` of the test entries below (3-byte
    /// input key, 3-byte fingerprint, 1-byte digest, `body` FASTA bytes).
    fn budget_for(n: usize, body: usize) -> usize {
        n * (3 + 3 + 1 + body + ENTRY_OVERHEAD)
    }

    #[test]
    fn hit_requires_both_key_halves() {
        let cache = ResultCache::new();
        let result =
            CachedResult { digest: "d".into(), rows: 2, fasta: ">a\nMK-L\n>b\nMKIL\n".into() };
        cache.insert("in1", "cfg1", result.clone());
        assert_eq!(cache.get("in1", "cfg1").unwrap().fasta, result.fasta);
        assert!(cache.get("in1", "cfg2").is_none(), "same input, other config: miss");
        assert!(cache.get("in2", "cfg1").is_none(), "other input, same config: miss");
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn newer_insert_wins() {
        let cache = ResultCache::new();
        cache.insert(
            "in",
            "cfg",
            CachedResult { digest: "old".into(), rows: 1, fasta: "old".into() },
        );
        cache.insert(
            "in",
            "cfg",
            CachedResult { digest: "new".into(), rows: 1, fasta: "new".into() },
        );
        assert_eq!(cache.get("in", "cfg").unwrap().digest, "new");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eviction_is_least_recently_used_first() {
        let cache = ResultCache::with_budget_bytes(budget_for(2, 100));
        cache.insert("in1", "cfg", result("a", 100));
        cache.insert("in2", "cfg", result("b", 100));
        // Touch in1 so in2 becomes the LRU entry.
        assert!(cache.get("in1", "cfg").is_some());
        cache.insert("in3", "cfg", result("c", 100));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("in1", "cfg").is_some(), "recently used entry survives");
        assert!(cache.get("in2", "cfg").is_none(), "LRU entry was evicted");
        assert!(cache.get("in3", "cfg").is_some(), "new entry is present");
    }

    #[test]
    fn insert_order_is_recency_when_nothing_is_read() {
        let cache = ResultCache::with_budget_bytes(budget_for(3, 50));
        for (i, tag) in ["a", "b", "c", "d", "e"].iter().enumerate() {
            cache.insert(&format!("in{i}"), "cfg", result(tag, 50));
        }
        assert_eq!(cache.len(), 3);
        for (i, present) in [false, false, true, true, true].iter().enumerate() {
            assert_eq!(cache.get(&format!("in{i}"), "cfg").is_some(), *present, "in{i}");
        }
    }

    #[test]
    fn replacing_an_entry_never_double_charges() {
        let cache = ResultCache::with_budget_bytes(budget_for(1, 100));
        for _ in 0..10 {
            cache.insert("in1", "cfg", result("a", 100));
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.used_bytes(), budget_for(1, 100));
    }

    #[test]
    fn oversized_results_are_not_cached() {
        let cache = ResultCache::with_budget_bytes(256);
        cache.insert("in1", "cfg", result("small", 16));
        cache.insert("in2", "cfg", result("huge", 10_000));
        assert!(cache.get("in2", "cfg").is_none(), "over-budget entry skipped");
        assert!(cache.get("in1", "cfg").is_some(), "existing entries untouched");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn used_bytes_tracks_contents_and_stays_within_budget() {
        let cache = ResultCache::with_budget_bytes(budget_for(2, 64));
        assert_eq!(cache.used_bytes(), 0);
        for i in 0..8 {
            cache.insert(&format!("in{i}"), "cfg", result("d", 64));
            assert!(cache.used_bytes() <= cache.budget_bytes());
        }
        assert_eq!(cache.len(), 2);
    }
}
