//! Ancestor-constrained fine-tuning and gluing (steps 7–8 of the
//! pipeline; the paper's Fig. 2).
//!
//! Every bucket's alignment is profile-aligned against the global ancestor
//! sequence, putting all buckets into a shared coordinate system: the
//! ancestor's columns are the anchors, and whatever a bucket inserts
//! relative to the ancestor becomes a bucket-private column. The glue step
//! interleaves the anchored blocks, padding other buckets with gaps across
//! private columns — PSI-BLAST-style master–slave stacking, which is what
//! lets the paper "just join" the tweaked sub-alignments.

use crate::messages::AnchoredBlockMsg;
use align::anchor::{anchored_profile_ops, AnchorSpec};
use align::papro::{align_profiles_with_kernel, ColOp};
use align::{BandPolicy, DpArena, DpKernel, Profile};
use bioseq::alphabet::GAP_CODE;
use bioseq::{GapPenalties, Msa, Sequence, SubstMatrix, Work};

/// Anchor one bucket's alignment to the global ancestor.
///
/// Returns the bucket's rows rewritten into "ancestor + private inserts"
/// coordinates: the result has exactly `ancestor.len()` anchor columns (in
/// order) plus the bucket's insert columns. The profile DP runs under
/// `band` (see [`BandPolicy`]) with the `kernel` fill variant (see
/// [`DpKernel`]).
pub fn anchor_to_ancestor(
    local: &Msa,
    ancestor: &Sequence,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    band: BandPolicy,
    kernel: DpKernel,
    work: &mut Work,
) -> AnchoredBlockMsg {
    let p_local = Profile::from_msa(local, work);
    let anc_msa = Msa::from_sequence(ancestor);
    let p_anc = Profile::from_msa(&anc_msa, work);
    let aln = align_profiles_with_kernel(
        &p_local,
        &p_anc,
        matrix,
        gaps,
        band,
        kernel,
        &mut DpArena::new(),
    );
    *work += aln.work;
    apply_anchor_ops(local, ancestor, &aln.ops, work)
}

/// Like [`anchor_to_ancestor`], but seeds the profile DP with conserved
/// consensus anchors ([`anchored_profile_ops`]): k-mers shared (and
/// unique) between the bucket's consensus and the ancestor are pinned as
/// matched columns, and only the stretches in between run the affine DP.
/// With zero detected anchors the script degrades to exactly the
/// whole-width DP of [`anchor_to_ancestor`].
#[allow(clippy::too_many_arguments)]
pub fn anchor_to_ancestor_seeded(
    local: &Msa,
    ancestor: &Sequence,
    spec: &AnchorSpec,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    band: BandPolicy,
    kernel: DpKernel,
    work: &mut Work,
) -> AnchoredBlockMsg {
    let anc_msa = Msa::from_sequence(ancestor);
    let ops = anchored_profile_ops(
        local,
        &anc_msa,
        spec,
        matrix,
        gaps,
        band,
        kernel,
        &mut DpArena::new(),
        work,
    );
    apply_anchor_ops(local, ancestor, &ops, work)
}

/// Rewrite `local`'s rows along a merge script against the ancestor:
/// `Both`/`FromA` columns carry the bucket's residues (anchored/private),
/// `FromB` columns are ancestor-only and get gaps.
fn apply_anchor_ops(
    local: &Msa,
    ancestor: &Sequence,
    ops: &[ColOp],
    work: &mut Work,
) -> AnchoredBlockMsg {
    let mut rows: Vec<Vec<u8>> =
        (0..local.num_rows()).map(|_| Vec::with_capacity(ops.len())).collect();
    let mut is_anchor = Vec::with_capacity(ops.len());
    let mut col = 0usize;
    for op in ops {
        match op {
            // Local column aligned to an ancestor column.
            ColOp::Both => {
                for (r, row) in rows.iter_mut().enumerate() {
                    row.push(local.row(r)[col]);
                }
                col += 1;
                is_anchor.push(true);
            }
            // Bucket-private insert relative to the ancestor.
            ColOp::FromA => {
                for (r, row) in rows.iter_mut().enumerate() {
                    row.push(local.row(r)[col]);
                }
                col += 1;
                is_anchor.push(false);
            }
            // Ancestor column the bucket has no residues for.
            ColOp::FromB => {
                for row in rows.iter_mut() {
                    row.push(GAP_CODE);
                }
                is_anchor.push(true);
            }
        }
    }
    debug_assert_eq!(col, local.num_cols());
    debug_assert_eq!(
        is_anchor.iter().filter(|&&a| a).count(),
        ancestor.len(),
        "every ancestor column must appear exactly once"
    );
    work.col_ops += (ops.len() * local.num_rows()) as u64;
    AnchoredBlockMsg { ids: local.ids().to_vec(), rows, is_anchor }
}

/// Glue anchored blocks into one alignment: anchor columns are shared
/// across blocks, private insert columns get gaps in every other block.
///
/// # Panics
/// Panics if blocks disagree on the number of anchor columns.
pub fn glue_anchored(ancestor_len: usize, blocks: &[AnchoredBlockMsg], work: &mut Work) -> Msa {
    assert!(!blocks.is_empty(), "nothing to glue");
    for (i, b) in blocks.iter().enumerate() {
        assert_eq!(
            b.is_anchor.iter().filter(|&&a| a).count(),
            ancestor_len,
            "block {i} has the wrong anchor count"
        );
    }
    let total_rows: usize = blocks.iter().map(|b| b.rows.len()).sum();
    // Per block: positions split into runs between anchors.
    // cursor[b] walks the block's columns.
    let mut cursors = vec![0usize; blocks.len()];
    let mut ids = Vec::with_capacity(total_rows);
    for b in blocks {
        ids.extend(b.ids.iter().cloned());
    }
    let mut rows: Vec<Vec<u8>> = (0..total_rows).map(|_| Vec::new()).collect();
    let row_offset: Vec<usize> = blocks
        .iter()
        .scan(0usize, |acc, b| {
            let at = *acc;
            *acc += b.rows.len();
            Some(at)
        })
        .collect();

    // Emit: for each anchor index g, first every block's private columns
    // pending before its next anchor, then the shared anchor column. After
    // the last anchor, flush trailing private columns.
    let emit_private = |rows: &mut Vec<Vec<u8>>, cursors: &mut Vec<usize>| {
        for (bi, block) in blocks.iter().enumerate() {
            while cursors[bi] < block.is_anchor.len() && !block.is_anchor[cursors[bi]] {
                for (r, row) in rows.iter_mut().enumerate() {
                    let in_block = r >= row_offset[bi] && r < row_offset[bi] + block.rows.len();
                    row.push(if in_block {
                        block.rows[r - row_offset[bi]][cursors[bi]]
                    } else {
                        GAP_CODE
                    });
                }
                cursors[bi] += 1;
            }
        }
    };
    for _g in 0..ancestor_len {
        emit_private(&mut rows, &mut cursors);
        // Shared anchor column.
        for (bi, block) in blocks.iter().enumerate() {
            debug_assert!(block.is_anchor[cursors[bi]]);
            for r in 0..block.rows.len() {
                rows[row_offset[bi] + r].push(block.rows[r][cursors[bi]]);
            }
            cursors[bi] += 1;
        }
    }
    emit_private(&mut rows, &mut cursors);
    for (bi, block) in blocks.iter().enumerate() {
        debug_assert_eq!(cursors[bi], block.is_anchor.len(), "block {bi} fully consumed");
    }
    let width: usize = rows[0].len();
    work.col_ops += (width * total_rows) as u64;
    let mut msa = Msa::from_rows(ids, rows);
    // Anchor columns where every bucket was gapped can be all-gap.
    msa.drop_all_gap_columns();
    msa
}

/// The no-fine-tune glue: stack buckets block-diagonally (each bucket's
/// columns are private). This is what "just concatenating" without the
/// ancestor constraint yields — the ablation baseline.
pub fn glue_block_diagonal(blocks: &[Msa], work: &mut Work) -> Msa {
    assert!(!blocks.is_empty(), "nothing to glue");
    let total_cols: usize = blocks.iter().map(Msa::num_cols).sum();
    let total_rows: usize = blocks.iter().map(Msa::num_rows).sum();
    let mut ids = Vec::with_capacity(total_rows);
    let mut rows: Vec<Vec<u8>> = Vec::with_capacity(total_rows);
    let mut col_offset = 0usize;
    for block in blocks {
        for r in 0..block.num_rows() {
            ids.push(block.ids()[r].clone());
            let mut row = vec![GAP_CODE; total_cols];
            row[col_offset..col_offset + block.num_cols()].copy_from_slice(block.row(r));
            rows.push(row);
        }
        col_offset += block.num_cols();
    }
    work.col_ops += (total_cols * total_rows) as u64;
    Msa::from_rows(ids, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioseq::fasta;

    fn msa(text: &str) -> Msa {
        fasta::parse_alignment(text).unwrap()
    }

    fn setup() -> (SubstMatrix, GapPenalties) {
        (SubstMatrix::blosum62(), GapPenalties::default())
    }

    #[test]
    fn anchoring_preserves_rows_and_anchor_count() {
        let (mat, gaps) = setup();
        let local = msa(">a\nMKVLAW\n>b\nMKV-AW\n");
        let anc = Sequence::from_str("GA", "MKVAW").unwrap();
        let mut w = Work::ZERO;
        let block = anchor_to_ancestor(
            &local,
            &anc,
            &mat,
            gaps,
            BandPolicy::Auto,
            DpKernel::default(),
            &mut w,
        );
        assert_eq!(block.ids, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(block.is_anchor.iter().filter(|&&a| a).count(), 5);
        // Rows ungap to the originals.
        for (r, want) in [(0usize, "MKVLAW"), (1, "MKVAW")] {
            let got: String = block.rows[r]
                .iter()
                .filter(|&&c| c != GAP_CODE)
                .map(|&c| bioseq::alphabet::code_to_char(c))
                .collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn glue_two_identical_buckets_aligns_rows() {
        let (mat, gaps) = setup();
        let bucket = msa(">a\nMKVLAW\n>b\nMKVLAW\n");
        let bucket2 = msa(">c\nMKVLAW\n>d\nMKVLAW\n");
        let anc = Sequence::from_str("GA", "MKVLAW").unwrap();
        let mut w = Work::ZERO;
        let b1 = anchor_to_ancestor(
            &bucket,
            &anc,
            &mat,
            gaps,
            BandPolicy::Auto,
            DpKernel::default(),
            &mut w,
        );
        let b2 = anchor_to_ancestor(
            &bucket2,
            &anc,
            &mat,
            gaps,
            BandPolicy::Auto,
            DpKernel::default(),
            &mut w,
        );
        let glued = glue_anchored(anc.len(), &[b1, b2], &mut w);
        glued.validate().unwrap();
        assert_eq!(glued.num_rows(), 4);
        assert_eq!(glued.num_cols(), 6);
        // Perfect cross-bucket identity.
        assert!((glued.average_identity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn glue_handles_private_inserts() {
        let (mat, gaps) = setup();
        // Bucket 1 has an insertion (WWW) the ancestor lacks.
        let bucket1 = msa(">a\nMKVWWWLAW\n");
        let bucket2 = msa(">b\nMKVLAW\n");
        let anc = Sequence::from_str("GA", "MKVLAW").unwrap();
        let mut w = Work::ZERO;
        let b1 = anchor_to_ancestor(
            &bucket1,
            &anc,
            &mat,
            gaps,
            BandPolicy::Auto,
            DpKernel::default(),
            &mut w,
        );
        let b2 = anchor_to_ancestor(
            &bucket2,
            &anc,
            &mat,
            gaps,
            BandPolicy::Auto,
            DpKernel::default(),
            &mut w,
        );
        let glued = glue_anchored(anc.len(), &[b1, b2], &mut w);
        glued.validate().unwrap();
        assert_eq!(glued.ungapped(0).to_letters(), "MKVWWWLAW");
        assert_eq!(glued.ungapped(1).to_letters(), "MKVLAW");
        // The shared residues align: M with M in column 0.
        assert_eq!(glued.row(0)[0], glued.row(1)[0]);
    }

    #[test]
    fn block_diagonal_glue_shape() {
        let b1 = msa(">a\nMKV\n>b\nMKV\n");
        let b2 = msa(">c\nAWAW\n");
        let mut w = Work::ZERO;
        let glued = glue_block_diagonal(&[b1, b2], &mut w);
        glued.validate().unwrap();
        assert_eq!(glued.num_rows(), 3);
        assert_eq!(glued.num_cols(), 7);
        // Row c has gaps in the first 3 columns.
        assert!(glued.row(2)[..3].iter().all(|&c| c == GAP_CODE));
    }

    #[test]
    fn anchored_glue_beats_block_diagonal_on_sp() {
        let (mat, gaps) = setup();
        let bucket1 = msa(">a\nMKVLAW\n>b\nMKVLAW\n");
        let bucket2 = msa(">c\nMKVLAW\n>d\nMKVLAW\n");
        let anc = Sequence::from_str("GA", "MKVLAW").unwrap();
        let mut w = Work::ZERO;
        let anchored = glue_anchored(
            anc.len(),
            &[
                anchor_to_ancestor(
                    &bucket1,
                    &anc,
                    &mat,
                    gaps,
                    BandPolicy::Auto,
                    DpKernel::default(),
                    &mut w,
                ),
                anchor_to_ancestor(
                    &bucket2,
                    &anc,
                    &mat,
                    gaps,
                    BandPolicy::Auto,
                    DpKernel::default(),
                    &mut w,
                ),
            ],
            &mut w,
        );
        let diagonal = glue_block_diagonal(&[bucket1, bucket2], &mut w);
        assert!(
            anchored.sp_score(&mat, gaps) > diagonal.sp_score(&mat, gaps),
            "ancestor fine-tuning must beat naive concatenation"
        );
    }

    #[test]
    fn seeded_anchoring_without_anchors_matches_unseeded() {
        // A spec too long to ever match degrades the seeded script to the
        // one whole-width profile DP — byte-identical blocks.
        let (mat, gaps) = setup();
        let local = msa(">a\nMKVLAWMKVLAW\n>b\nMKV-AWMKVLAW\n");
        let anc = Sequence::from_str("GA", "MKVAWMKVLAW").unwrap();
        let mut w1 = Work::ZERO;
        let plain = anchor_to_ancestor(
            &local,
            &anc,
            &mat,
            gaps,
            BandPolicy::Auto,
            DpKernel::default(),
            &mut w1,
        );
        let mut w2 = Work::ZERO;
        let seeded = anchor_to_ancestor_seeded(
            &local,
            &anc,
            &AnchorSpec { k: 64, ..Default::default() },
            &mat,
            gaps,
            BandPolicy::Auto,
            DpKernel::default(),
            &mut w2,
        );
        assert_eq!(plain, seeded);
    }

    #[test]
    fn seeded_anchoring_preserves_rows_and_anchor_count() {
        let (mat, gaps) = setup();
        // A long shared core so the consensus scan actually anchors.
        let core = "MKVLAWHEQRNDCGIFPSTYMKWHQRLAVE";
        let local = msa(&format!(">a\n{core}\n>b\n{core}\n"));
        let anc = Sequence::from_str("GA", core).unwrap();
        let mut w = Work::ZERO;
        let spec = AnchorSpec { k: 6, min_spacing: 8, min_confidence: 0.2 };
        let block = anchor_to_ancestor_seeded(
            &local,
            &anc,
            &spec,
            &mat,
            gaps,
            BandPolicy::Auto,
            DpKernel::default(),
            &mut w,
        );
        assert_eq!(block.ids, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(block.is_anchor.iter().filter(|&&a| a).count(), anc.len());
        for r in 0..2 {
            let got: String = block.rows[r]
                .iter()
                .filter(|&&c| c != GAP_CODE)
                .map(|&c| bioseq::alphabet::code_to_char(c))
                .collect();
            assert_eq!(got, core, "row {r} must ungap to its input");
        }
    }

    #[test]
    fn single_block_glue_is_identityish() {
        let (mat, gaps) = setup();
        let bucket = msa(">a\nMKVLAW\n>b\nMKV-AW\n");
        let anc = Sequence::from_str("GA", "MKVLAW").unwrap();
        let mut w = Work::ZERO;
        let block = anchor_to_ancestor(
            &bucket,
            &anc,
            &mat,
            gaps,
            BandPolicy::Auto,
            DpKernel::default(),
            &mut w,
        );
        let glued = glue_anchored(anc.len(), &[block], &mut w);
        assert_eq!(glued.num_rows(), 2);
        for r in 0..2 {
            assert_eq!(glued.ungapped(r), bucket.ungapped(r));
        }
    }
}
