//! Fig. 4 — execution time vs number of processors for N = 5000, 10000,
//! 20000 rose sequences (average length 300, relatedness 800).
//!
//! Regenerates the three timing curves on the virtual Beowulf cluster.
//! The claim to reproduce: execution time decreases sharply with p.

use criterion::{criterion_group, criterion_main, Criterion};
use sad_bench::{banner, rose_workload, sad_makespan, sad_on_cluster, scaled, table, PAPER_PROCS};
use sad_core::SadConfig;

fn experiment() {
    let sizes: Vec<usize> = [5000, 10000, 20000].iter().map(|&n| scaled(n)).collect();
    banner(
        "Fig. 4",
        &format!("execution time vs processors, N = {sizes:?} (paper: 5000/10000/20000)"),
    );
    let cfg = SadConfig::default();
    let mut rows = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let seqs = rose_workload(n, 0xF164 + i as u64);
        let mut row = vec![n.to_string()];
        let mut t1 = None;
        for &p in &PAPER_PROCS {
            let makespan = sad_makespan(p, &seqs, &cfg);
            if p == 1 {
                t1 = Some(makespan);
            }
            row.push(format!("{makespan:.2}"));
        }
        let _ = t1;
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("N".to_string())
        .chain(PAPER_PROCS.iter().map(|p| format!("t(p={p})s")))
        .collect();
    let hrefs: Vec<&str> = headers.iter().map(String::as_str).collect();
    table(&hrefs, &rows);

    // Paper check: every curve decreases sharply (t(16) well below t(1)).
    let mut ok = true;
    for row in &rows {
        let t1: f64 = row[1].parse().unwrap();
        let t16: f64 = row[PAPER_PROCS.len()].parse().unwrap();
        if t16 >= t1 / 4.0 {
            ok = false;
        }
    }
    println!(
        "\npaper check — time falls sharply with p (t16 < t1/4 for all N): {}",
        if ok { "REPRODUCED" } else { "NOT reproduced" }
    );
}

fn bench(c: &mut Criterion) {
    experiment();
    let seqs = rose_workload(128, 0xF1644);
    let cfg = SadConfig::default();
    c.bench_function("fig4/sad_n128_p8", |b| {
        b.iter(|| sad_on_cluster(8, std::hint::black_box(&seqs), &cfg))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
