//! Property-based integration tests: the pipeline's invariants must hold
//! for arbitrary (valid) inputs, not just rose families.

use proptest::prelude::*;
use sample_align_d::prelude::*;

/// Strategy: a set of 2..=12 random protein sequences with unique ids.
fn arb_sequences() -> impl Strategy<Value = Vec<Sequence>> {
    prop::collection::vec(prop::collection::vec(0u8..20, 8..40), 2..12).prop_map(|codes| {
        codes
            .into_iter()
            .enumerate()
            .map(|(i, c)| Sequence::from_codes(format!("p{i}"), c))
            .collect()
    })
}

fn on_cluster(p: usize, seqs: &[Sequence]) -> RunReport {
    let cluster = VirtualCluster::new(p, CostModel::beowulf_2008());
    Aligner::new(SadConfig::default())
        .backend(Backend::Distributed(cluster))
        .run(seqs)
        .expect("arbitrary 2+ sequence sets are valid inputs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn distributed_preserves_every_sequence(seqs in arb_sequences(), p in 1usize..5) {
        let report = on_cluster(p, &seqs);
        prop_assert!(report.msa.validate().is_ok());
        prop_assert_eq!(report.msa.num_rows(), seqs.len());
        let mut got: Vec<(String, String)> = (0..report.msa.num_rows())
            .map(|r| (report.msa.ids()[r].clone(), report.msa.ungapped(r).to_letters()))
            .collect();
        got.sort();
        let mut want: Vec<(String, String)> =
            seqs.iter().map(|s| (s.id.clone(), s.to_letters())).collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bucket_sizes_conserve_input(seqs in arb_sequences(), p in 1usize..5) {
        let report = on_cluster(p, &seqs);
        prop_assert_eq!(report.bucket_sizes.iter().sum::<usize>(), seqs.len());
        let makespan = report.makespan().expect("distributed runs have a makespan");
        prop_assert!(makespan.is_finite() && makespan >= 0.0);
    }

    #[test]
    fn report_work_is_the_sum_of_its_phases(seqs in arb_sequences(), p in 1usize..5) {
        // The unified report's invariant, whatever the backend.
        let dist = on_cluster(p, &seqs);
        let ray = Aligner::new(SadConfig::default())
            .backend(Backend::Rayon { threads: p })
            .run(&seqs)
            .expect("valid input");
        let seq = Aligner::new(SadConfig::default()).run(&seqs).expect("valid input");
        for report in [&dist, &ray, &seq] {
            let total: bioseq::Work = report.phases.iter().map(|ph| ph.work).sum();
            prop_assert_eq!(report.work, total, "{} phases", report.backend_name());
            prop_assert!(!report.work.is_zero(), "{} did no work", report.backend_name());
        }
    }

    #[test]
    fn sp_score_finite_and_q_bounded(seqs in arb_sequences()) {
        let report = on_cluster(2, &seqs);
        let matrix = SubstMatrix::blosum62();
        let sp = report.msa.sp_score(&matrix, GapPenalties::default());
        // SP of an n x c alignment is bounded by pairs x columns x max score.
        let n = report.msa.num_rows() as i64;
        let c = report.msa.num_cols() as i64;
        prop_assert!(sp.abs() <= n * n * c * 17, "sp={sp} n={n} c={c}");
    }

    #[test]
    fn fasta_roundtrip_of_pipeline_output(seqs in arb_sequences()) {
        let report = on_cluster(2, &seqs);
        let text = fasta::write_alignment(&report.msa);
        let parsed = fasta::parse_alignment(&text).unwrap();
        prop_assert_eq!(parsed.rows(), report.msa.rows());
    }
}

/// Residues every FASTA surface accepts.
const RESIDUES: [char; 20] = [
    'A', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'K', 'L', 'M', 'N', 'P', 'Q', 'R', 'S', 'T', 'V', 'W',
    'Y',
];

/// Strategy: 1..6 records, each 1..4 residue body lines (ids are derived
/// from the record index when the text is assembled).
fn arb_fasta_records() -> impl Strategy<Value = Vec<Vec<String>>> {
    let body_line = prop::collection::vec(0usize..RESIDUES.len(), 1..20)
        .prop_map(|codes| codes.into_iter().map(|c| RESIDUES[c]).collect::<String>());
    prop::collection::vec(prop::collection::vec(body_line, 1..4), 1..6)
}

/// Assemble syntactically varied FASTA text: LF or CRLF endings,
/// multi-line records, interspersed blank lines, an optional missing
/// trailing newline, and (rarely) a leading junk line that must fail
/// identically in both parsers.
fn assemble_fasta(
    records: &[Vec<String>],
    crlf: bool,
    trailing: bool,
    blanks: &[bool],
    leading_junk: bool,
) -> String {
    let eol = if crlf { "\r\n" } else { "\n" };
    let mut text = String::new();
    if leading_junk {
        text.push_str("sequence data before any header");
        text.push_str(eol);
    }
    for (i, lines) in records.iter().enumerate() {
        text.push_str(&format!(">read_{i} case {i}{eol}"));
        for line in lines {
            text.push_str(line);
            text.push_str(eol);
        }
        if blanks[i % blanks.len()] {
            text.push_str(eol);
        }
    }
    if !trailing {
        while text.ends_with('\n') || text.ends_with('\r') {
            text.pop();
        }
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn streaming_reader_matches_whole_file_parse(
        records in arb_fasta_records(),
        crlf in 0u8..2,
        trailing in 0u8..2,
        blank_codes in prop::collection::vec(0u8..2, 6..7),
        junk in 0u8..32,
    ) {
        let blanks: Vec<bool> = blank_codes.iter().map(|&b| b == 1).collect();
        let text =
            assemble_fasta(&records, crlf == 1, trailing == 1, &blanks, junk < 3);
        // The streaming fasta::Reader must agree with fasta::parse byte
        // for byte — same records in the same order, or the same typed
        // error — on every input shape, so `sad align` and `sad reads`
        // ingesting via the reader stay drop-in replacements for the
        // old slurp-then-parse path.
        let parsed = fasta::parse(&text);
        let streamed: Result<Vec<Sequence>, _> = fasta::Reader::new(text.as_bytes())
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| match e {
                fasta::ReadError::Parse(parse_err) => parse_err,
                fasta::ReadError::Io(io_err) => {
                    panic!("in-memory reads cannot fail I/O: {io_err}")
                }
            });
        prop_assert_eq!(streamed, parsed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn engines_are_total_on_arbitrary_inputs(seqs in arb_sequences()) {
        for engine in EngineChoice::ALL {
            let msa = engine.build().align(&seqs);
            prop_assert!(msa.validate().is_ok(), "{:?}", engine);
            prop_assert_eq!(msa.num_rows(), seqs.len());
        }
    }
}

/// Strategy: an arbitrary gapped alignment — 2..=9 rows, 6..=49 columns
/// (ragged draws are truncated to the shortest row), roughly a quarter of
/// the cells gaps, never an all-gap row (column 0 is forced to a residue
/// when a row comes out all gaps).
fn arb_gapped_msa() -> impl Strategy<Value = Msa> {
    prop::collection::vec(prop::collection::vec(0u8..26, 6..50), 2..10).prop_map(|raw| {
        let width = raw.iter().map(Vec::len).min().expect("at least two rows");
        let rows: Vec<Vec<u8>> = raw
            .into_iter()
            .map(|mut row| {
                row.truncate(width);
                for cell in row.iter_mut() {
                    if *cell >= 20 {
                        *cell = bioseq::GAP_CODE;
                    }
                }
                if row.iter().all(|&c| c == bioseq::GAP_CODE) {
                    row[0] = 0;
                }
                row
            })
            .collect();
        let ids = (0..rows.len()).map(|i| format!("r{i}")).collect();
        Msa::from_rows(ids, rows)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn trim_never_shrinks_the_area_and_output_validates(
        msa in arb_gapped_msa(),
        branch_bound in 0u8..2,
        max_dropped_raw in 0usize..5,
    ) {
        // 0 encodes "no cap"; n encodes an explicit cap of n - 1.
        let max_dropped = max_dropped_raw.checked_sub(1);
        let cfg = TrimConfig { max_dropped, branch_bound: branch_bound == 1 };
        let out = trim_msa(&msa, &cfg);
        prop_assert!(out.area_after >= out.area_before,
            "area {} -> {}", out.area_before, out.area_after);
        prop_assert!(out.msa.validate().is_ok());
        if let Some(cap) = max_dropped {
            prop_assert!(out.rows_dropped() <= cap);
        }
        // The reported areas are real: recomputing from the trimmed MSA
        // reproduces area_after exactly.
        let (area, free) = align::trim::alignment_area(&out.msa);
        prop_assert_eq!(area, out.area_after);
        prop_assert_eq!(free, out.free_cols_after);
    }

    #[test]
    fn trim_keeps_retained_rows_byte_identical(msa in arb_gapped_msa()) {
        let out = trim_msa(&msa, &TrimConfig::default());
        let dropped: std::collections::HashSet<usize> =
            out.dropped.iter().map(|d| d.index).collect();
        let kept: Vec<usize> =
            (0..msa.num_rows()).filter(|i| !dropped.contains(i)).collect();
        prop_assert_eq!(kept.len(), out.msa.num_rows());
        // Columns that are all-gap among the kept rows vanish; everything
        // else survives byte for byte, in the original row order.
        let keep_col: Vec<bool> = (0..msa.num_cols())
            .map(|c| kept.iter().any(|&r| msa.row(r)[c] != bioseq::GAP_CODE))
            .collect();
        for (new_r, &old_r) in kept.iter().enumerate() {
            prop_assert_eq!(&out.msa.ids()[new_r], &msa.ids()[old_r]);
            let expected: Vec<u8> = msa
                .row(old_r)
                .iter()
                .zip(&keep_col)
                .filter_map(|(&cell, &keep)| keep.then_some(cell))
                .collect();
            prop_assert_eq!(out.msa.row(new_r), &expected[..], "row {}", old_r);
        }
    }

    #[test]
    fn branch_and_bound_never_loses_to_greedy(msa in arb_gapped_msa()) {
        let greedy = trim_msa(&msa, &TrimConfig::default());
        let refined = trim_msa(&msa, &TrimConfig { max_dropped: None, branch_bound: true });
        prop_assert!(refined.area_after >= greedy.area_after,
            "branch-and-bound {} lost to greedy {}", refined.area_after, greedy.area_after);
    }

    #[test]
    fn trim_outcome_arithmetic_is_consistent(msa in arb_gapped_msa()) {
        let out = trim_msa(&msa, &TrimConfig::default());
        prop_assert_eq!(out.rows_dropped(), out.dropped.len());
        prop_assert_eq!(out.msa.num_rows(), msa.num_rows() - out.rows_dropped());
        prop_assert_eq!(out.area_before, (msa.num_rows() * out.free_cols_before) as u64);
        prop_assert_eq!(out.area_after, (out.msa.num_rows() * out.free_cols_after) as u64);
        prop_assert_eq!(out.cols_gained(), out.free_cols_after - out.free_cols_before);
        // The per-row marginal gains decompose the total exactly.
        let total: i64 = out.dropped.iter().map(|d| d.area_gain).sum();
        prop_assert_eq!(total, out.area_after as i64 - out.area_before as i64);
    }

    #[test]
    fn fasta_write_roundtrips_arbitrary_alignments(msa in arb_gapped_msa()) {
        let text = fasta::write_alignment(&msa);
        let parsed = fasta::parse_alignment(&text).unwrap();
        prop_assert_eq!(parsed.ids(), msa.ids());
        prop_assert_eq!(parsed.rows(), msa.rows());
        // Writing the re-parsed alignment is a fixpoint.
        prop_assert_eq!(fasta::write_alignment(&parsed), text);
    }

    #[test]
    fn fasta_write_roundtrips_arbitrary_sequences(seqs in arb_sequences()) {
        let text = fasta::write(&seqs);
        let parsed = fasta::parse(&text).unwrap();
        prop_assert_eq!(parsed, seqs);
    }
}
