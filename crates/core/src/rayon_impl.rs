//! Shared-memory Sample-Align-D using rayon.
//!
//! Same pipeline as [`crate::distributed`], but buckets are aligned by a
//! rayon thread pool instead of cluster ranks — the backend a downstream
//! user on one big multicore machine would pick. Results are deterministic
//! (bucketing is identical; only scheduling differs).

use crate::ancestor::{anchor_to_ancestor, glue_anchored, glue_block_diagonal};
use crate::config::SadConfig;
use align::consensus::consensus_sequence;
use bioseq::kmer::{self, KmerProfile};
use bioseq::{Msa, Sequence, Work};
use rayon::prelude::*;

/// Outcome of the shared-memory run.
#[derive(Debug)]
pub struct RayonOutcome {
    /// The assembled alignment.
    pub msa: Msa,
    /// Total work performed (all buckets; the virtual-time analogue of
    /// aggregate CPU time).
    pub work: Work,
    /// Bucket sizes after redistribution.
    pub bucket_sizes: Vec<usize>,
}

fn profile_of(seq: &Sequence, cfg: &SadConfig) -> KmerProfile {
    KmerProfile::build(seq, cfg.kmer_k, cfg.alphabet)
        .unwrap_or_else(|| KmerProfile::build(seq, 1, cfg.alphabet).expect("k=1 always works"))
}

/// Run the pipeline with `p` logical buckets on the rayon pool.
///
/// # Panics
/// Panics if `seqs` is empty or `p == 0`.
pub fn run_rayon(seqs: &[Sequence], p: usize, cfg: &SadConfig) -> RayonOutcome {
    assert!(!seqs.is_empty(), "cannot align an empty set");
    assert!(p >= 1, "need at least one bucket");
    let mut work = Work::ZERO;
    let n = seqs.len();

    // Emulate the per-rank sampling: split into p blocks, rank locally,
    // sort each block by its local rank (the distributed step 2) and pick
    // regular samples. The locally sorted order also decides how rank ties
    // break during redistribution, so it must match the cluster backend.
    let chunk = n.div_ceil(p);
    let k = cfg.samples_for(p);
    let block_results: Vec<(Vec<usize>, Vec<usize>, Work)> = (0..p)
        .into_par_iter()
        .map(|b| {
            let lo = (b * chunk).min(n);
            let hi = ((b + 1) * chunk).min(n);
            let mut w = Work::ZERO;
            if lo >= hi {
                return (Vec::new(), Vec::new(), w);
            }
            let idx: Vec<usize> = (lo..hi).collect();
            let profs: Vec<KmerProfile> = idx.iter().map(|&i| profile_of(&seqs[i], cfg)).collect();
            let ranks: Vec<f64> = profs
                .iter()
                .map(|pr| kmer::kmer_rank(pr, &profs, cfg.rank_transform, &mut w))
                .collect();
            let mut order: Vec<usize> = (0..idx.len()).collect();
            order.sort_by(|&a, &b| ranks[a].total_cmp(&ranks[b]));
            let sorted_idx: Vec<usize> = order.iter().map(|&o| idx[o]).collect();
            let m = idx.len();
            let kk = k.min(m);
            let samples: Vec<usize> =
                (0..kk).map(|s| sorted_idx[(((s + 1) * m) / (kk + 1)).min(m - 1)]).collect();
            (sorted_idx, samples, w)
        })
        .collect();
    let mut sample_indices: Vec<usize> = Vec::new();
    // Global order of entry into redistribution: blocks in rank order, each
    // block in its locally sorted order — exactly the distributed protocol.
    let mut entry_order: Vec<usize> = Vec::with_capacity(n);
    for (sorted_idx, s, w) in block_results {
        entry_order.extend(sorted_idx);
        sample_indices.extend(s);
        work += w;
    }
    let sample_profiles: Vec<KmerProfile> =
        sample_indices.iter().map(|&i| profile_of(&seqs[i], cfg)).collect();

    // Globalized ranks, in parallel over the entry order.
    let ranked: Vec<(usize, f64, Work)> = entry_order
        .into_par_iter()
        .map(|i| {
            let mut w = Work::ZERO;
            let pr = profile_of(&seqs[i], cfg);
            let r = kmer::kmer_rank(&pr, &sample_profiles, cfg.rank_transform, &mut w);
            (i, r, w)
        })
        .collect();
    let mut keyed: Vec<(usize, f64)> = Vec::with_capacity(n);
    for (i, r, w) in ranked {
        keyed.push((i, r));
        work += w;
    }

    // Sample-partition into p buckets by rank.
    let buckets_idx = psrs::shared::sample_partition_by(keyed, p, |&(_, r)| r);
    let bucket_sizes: Vec<usize> = buckets_idx.iter().map(Vec::len).collect();
    let buckets: Vec<Vec<Sequence>> =
        buckets_idx.iter().map(|b| b.iter().map(|&(i, _)| seqs[i].clone()).collect()).collect();

    // Align buckets in parallel.
    let aligned: Vec<Option<(Msa, Work)>> = buckets
        .into_par_iter()
        .map(|bucket| {
            if bucket.is_empty() {
                None
            } else {
                Some(cfg.engine.build().align_with_work(&bucket))
            }
        })
        .collect();
    let mut local_msas: Vec<Msa> = Vec::new();
    for entry in aligned.into_iter().flatten() {
        local_msas.push(entry.0);
        work += entry.1;
    }
    assert!(!local_msas.is_empty());

    if p == 1 || local_msas.len() == 1 {
        return RayonOutcome {
            msa: local_msas.into_iter().next().expect("one bucket"),
            work,
            bucket_sizes,
        };
    }
    if !cfg.fine_tune {
        let msa = glue_block_diagonal(&local_msas, &mut work);
        return RayonOutcome { msa, work, bucket_sizes };
    }

    // Ancestors → global ancestor.
    let ancestors: Vec<Sequence> = local_msas
        .iter()
        .enumerate()
        .map(|(i, msa)| consensus_sequence(msa, format!("local-anc-{i}"), &mut work))
        .collect();
    let ga = if ancestors.len() == 1 {
        ancestors.into_iter().next().expect("one ancestor")
    } else {
        let (anc_msa, w) = cfg.engine.build().align_with_work(&ancestors);
        work += w;
        consensus_sequence(&anc_msa, "global-ancestor", &mut work)
    };

    // Fine-tune each bucket against the global ancestor, in parallel.
    let blocks: Vec<(crate::messages::AnchoredBlockMsg, Work)> = local_msas
        .par_iter()
        .map(|msa| {
            let mut w = Work::ZERO;
            let b = anchor_to_ancestor(msa, &ga, &cfg.matrix, cfg.gaps, &mut w);
            (b, w)
        })
        .collect();
    let mut anchored = Vec::with_capacity(blocks.len());
    for (b, w) in blocks {
        anchored.push(b);
        work += w;
    }
    let msa = glue_anchored(ga.len(), &anchored, &mut work);
    RayonOutcome { msa, work, bucket_sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rosegen::{Family, FamilyConfig};
    use std::collections::HashMap;

    fn family(n: usize, seed: u64) -> Vec<Sequence> {
        Family::generate(&FamilyConfig {
            n_seqs: n,
            avg_len: 60,
            relatedness: 700.0,
            seed,
            ..Default::default()
        })
        .seqs
    }

    fn check_complete(result: &Msa, input: &[Sequence]) {
        result.validate().unwrap();
        assert_eq!(result.num_rows(), input.len());
        let by_id: HashMap<&str, &Sequence> = input.iter().map(|s| (s.id.as_str(), s)).collect();
        for r in 0..result.num_rows() {
            let want = by_id[result.ids()[r].as_str()];
            assert_eq!(&result.ungapped(r), want);
        }
    }

    #[test]
    fn end_to_end() {
        let seqs = family(24, 1);
        let out = run_rayon(&seqs, 4, &SadConfig::default());
        check_complete(&out.msa, &seqs);
        assert_eq!(out.bucket_sizes.iter().sum::<usize>(), 24);
        assert!(!out.work.is_zero());
    }

    #[test]
    fn deterministic_despite_parallelism() {
        let seqs = family(20, 2);
        let a = run_rayon(&seqs, 4, &SadConfig::default());
        let b = run_rayon(&seqs, 4, &SadConfig::default());
        assert_eq!(a.msa, b.msa);
        assert_eq!(a.work, b.work);
    }

    #[test]
    fn p1_is_single_bucket() {
        let seqs = family(8, 3);
        let out = run_rayon(&seqs, 1, &SadConfig::default());
        check_complete(&out.msa, &seqs);
        assert_eq!(out.bucket_sizes, vec![8]);
    }

    #[test]
    fn agrees_with_distributed_on_bucketing() {
        // Same sampling rules ⇒ same bucket sizes as the message-passing
        // backend.
        let seqs = family(32, 4);
        let cfg = SadConfig::default();
        let ray = run_rayon(&seqs, 4, &cfg);
        let cluster = vcluster::VirtualCluster::new(4, vcluster::CostModel::beowulf_2008());
        let dist = crate::distributed::run_distributed(&cluster, &seqs, &cfg);
        assert_eq!(ray.bucket_sizes, dist.bucket_sizes);
        // And the same final alignment (pipelines are step-identical).
        assert_eq!(ray.msa, dist.msa);
    }

    #[test]
    fn fine_tune_off_is_block_diagonal() {
        let seqs = family(16, 5);
        let cfg = SadConfig { fine_tune: false, ..Default::default() };
        let out = run_rayon(&seqs, 4, &cfg);
        check_complete(&out.msa, &seqs);
    }

    #[test]
    fn tiny_inputs() {
        let seqs = family(1, 6);
        let out = run_rayon(&seqs, 4, &SadConfig::default());
        assert_eq!(out.msa.num_rows(), 1);
        let seqs3 = family(3, 7);
        let out3 = run_rayon(&seqs3, 8, &SadConfig::default());
        check_complete(&out3.msa, &seqs3);
    }
}
