//! Canonical neighbor joining (Saitou & Nei 1987).
//!
//! Produces an (arbitrarily) rooted binary tree compatible with our
//! [`Tree`] arena: NJ is naturally unrooted, so the final three-way join is
//! resolved by rooting at the last join, which is the convention CLUSTALW's
//! progressive stage tolerates well.

use crate::distmat::DistMatrix;
use crate::tree::{NodeId, Tree};

/// Build an NJ tree from a distance matrix. Leaf `i` of the tree
/// corresponds to matrix index `i`. `O(n³)` time, `O(n²)` space.
pub fn neighbor_joining(dist: &DistMatrix) -> Tree {
    let n = dist.len();
    if n == 1 {
        return Tree::singleton();
    }
    if n == 2 {
        return Tree::from_merges(2, &[(0, 1, dist.get(0, 1) / 2.0)]);
    }
    let mut d = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            d[i * n + j] = dist.get(i, j);
        }
    }
    let mut active: Vec<usize> = (0..n).collect();
    let mut rep: Vec<NodeId> = (0..n).collect();
    // Cumulative "height" proxy so Tree::from_merges derives non-negative
    // branch lengths; NJ branch lengths themselves are attached afterwards.
    let mut depth: Vec<f64> = vec![0.0; n];
    let mut merges: Vec<(NodeId, NodeId, f64)> = Vec::with_capacity(n - 1);
    let mut next_id = n;
    let mut branch_for: Vec<(NodeId, f64)> = Vec::new();

    while active.len() > 2 {
        let m = active.len();
        // Row sums over active entries.
        let r: Vec<f64> =
            active.iter().map(|&i| active.iter().map(|&j| d[i * n + j]).sum::<f64>()).collect();
        // Minimise Q(i,j) = (m-2) d(i,j) − r_i − r_j.
        let (mut bi, mut bj, mut bq) = (0usize, 1usize, f64::INFINITY);
        for a in 0..m {
            for b in (a + 1)..m {
                let q = (m as f64 - 2.0) * d[active[a] * n + active[b]] - r[a] - r[b];
                if q < bq {
                    bq = q;
                    bi = a;
                    bj = b;
                }
            }
        }
        let (i, j) = (active[bi], active[bj]);
        let dij = d[i * n + j];
        // Branch lengths to the new node.
        let li = 0.5 * dij + (r[bi] - r[bj]) / (2.0 * (m as f64 - 2.0));
        let lj = dij - li;
        let (li, lj) = (li.max(0.0), lj.max(0.0));
        branch_for.push((rep[i], li));
        branch_for.push((rep[j], lj));
        let h = depth[i].max(depth[j]) + li.max(lj).max(1e-9);
        merges.push((rep[i], rep[j], h));
        // Distances from the new node u to every other active k.
        for &k in &active {
            if k != i && k != j {
                let duk = 0.5 * (d[i * n + k] + d[j * n + k] - dij);
                d[i * n + k] = duk.max(0.0);
                d[k * n + i] = duk.max(0.0);
            }
        }
        depth[i] = h;
        rep[i] = next_id;
        next_id += 1;
        active.retain(|&x| x != j);
    }
    // Final join of the last two clusters.
    let (i, j) = (active[0], active[1]);
    let dij = d[i * n + j];
    branch_for.push((rep[i], 0.5 * dij));
    branch_for.push((rep[j], 0.5 * dij));
    let h = depth[i].max(depth[j]) + (0.5 * dij).max(1e-9);
    merges.push((rep[i], rep[j], h));

    let mut tree = Tree::from_merges(n, &merges);
    for (id, len) in branch_for {
        tree.set_branch_len(id, len);
    }
    debug_assert!(tree.validate().is_ok());
    tree
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_and_one_leaf_edge_cases() {
        let t1 = neighbor_joining(&DistMatrix::zeros(1));
        assert_eq!(t1.n_leaves(), 1);
        let mut m = DistMatrix::zeros(2);
        m.set(0, 1, 6.0);
        let t2 = neighbor_joining(&m);
        t2.validate().unwrap();
        assert_eq!(t2.n_leaves(), 2);
    }

    #[test]
    fn recovers_additive_tree_distances() {
        // Wikipedia's canonical 5-taxon additive example.
        //     a  b  c  d  e
        // a   0  5  9  9  8
        // b      0 10 10  9
        // c         0  8  7
        // d            0  3
        // e               0
        let vals = [
            (1, 0, 5.0),
            (2, 0, 9.0),
            (2, 1, 10.0),
            (3, 0, 9.0),
            (3, 1, 10.0),
            (3, 2, 8.0),
            (4, 0, 8.0),
            (4, 1, 9.0),
            (4, 2, 7.0),
            (4, 3, 3.0),
        ];
        let mut m = DistMatrix::zeros(5);
        for (i, j, v) in vals {
            m.set(i, j, v);
        }
        let t = neighbor_joining(&m);
        t.validate().unwrap();
        // NJ recovers additive distances exactly.
        for i in 0..5 {
            for j in 0..i {
                let li = t.leaf_node(i).unwrap();
                let lj = t.leaf_node(j).unwrap();
                let got = t.path_length(li, lj);
                assert!(
                    (got - m.get(i, j)).abs() < 1e-9,
                    "pair ({i},{j}): got {got}, want {}",
                    m.get(i, j)
                );
            }
        }
    }

    #[test]
    fn first_join_is_the_true_cherry() {
        // In the example above NJ must join a and b first.
        let vals = [
            (1, 0, 5.0),
            (2, 0, 9.0),
            (2, 1, 10.0),
            (3, 0, 9.0),
            (3, 1, 10.0),
            (3, 2, 8.0),
            (4, 0, 8.0),
            (4, 1, 9.0),
            (4, 2, 7.0),
            (4, 3, 3.0),
        ];
        let mut m = DistMatrix::zeros(5);
        for (i, j, v) in vals {
            m.set(i, j, v);
        }
        let t = neighbor_joining(&m);
        // Find the smallest internal node (first created = id 5).
        let mut leaves = t.leaves_under(5);
        leaves.sort_unstable();
        assert_eq!(leaves, vec![0, 1]);
    }

    #[test]
    fn deterministic() {
        let m = DistMatrix::from_fn(7, |i, j| ((i * 13 + j * 5) % 17) as f64 + 1.0);
        assert_eq!(neighbor_joining(&m), neighbor_joining(&m));
    }

    #[test]
    fn all_leaves_present() {
        let m = DistMatrix::from_fn(9, |i, j| ((i + j * 3) % 7) as f64 + 0.5);
        let t = neighbor_joining(&m);
        t.validate().unwrap();
        let mut order = t.leaf_order();
        order.sort_unstable();
        assert_eq!(order, (0..9).collect::<Vec<_>>());
    }
}
